//! Observability contract for the causal tracer: the recorded causality
//! is deterministic per seed and identical across schedulers, the Chrome
//! export is valid JSON with monotonic timestamps per track, and the
//! critical-path analysis obeys its invariants on real traces.

use codes::SimulationBuilder;
use dragonfly::{DragonflyConfig, Routing};
use harness::{analyze, causality_fingerprint, parse_chrome, TraceRun};
use placement::Placement;
use ross::{Scheduler, SimDuration, SimTime, Tracer};
use std::sync::Arc;
use workloads::{app, AppKind, Profile};

/// Run the tiny two-job mix under `sched` with a fresh tracer at the
/// given sample rate, returning the parsed trace runs and raw JSON.
fn traced_run(sched: Scheduler, rate: u32) -> (Vec<TraceRun>, String) {
    let tracer = Arc::new(Tracer::new(rate));
    let mut b = SimulationBuilder::new(DragonflyConfig::tiny_1d())
        .routing(Routing::Adaptive)
        .placement(Placement::RandomGroups)
        .seed(11)
        .tracer(tracer.clone());
    for (kind, ranks) in [(AppKind::UniformRandom, 16), (AppKind::NearestNeighbor, 8)] {
        let mut cfg = app(kind, Profile::Quick, 1, 64);
        cfg.ranks = ranks;
        if kind == AppKind::NearestNeighbor {
            cfg.args.extend(["--nx", "2", "--ny", "2", "--nz", "2"].iter().map(|s| s.to_string()));
        }
        b = b.job(cfg.name(), cfg.vms(1).unwrap());
    }
    let mut sim = b.build().unwrap();
    let r = sim.run(sched, SimTime::MAX);
    assert!(r.stats.committed > 0, "empty run under {sched:?}");
    let json = tracer.to_chrome_json();
    let runs = parse_chrome(&json).expect("export must parse");
    assert_eq!(runs.len(), 1, "one scheduler run traced");
    (runs, json)
}

fn par3() -> Scheduler {
    Scheduler::ConservativeParallel { threads: 3, lookahead: SimDuration::from_ns(100) }
}

/// Same seed + same scheduler ⇒ byte-identical causal structure, and the
/// committed causality must not depend on the scheduler or sample rate
/// (durations are sampled wall-clock noise and are excluded by design).
#[test]
fn causality_fingerprint_is_deterministic_and_scheduler_independent() {
    let (seq_a, _) = traced_run(Scheduler::Sequential, 1);
    let (seq_b, _) = traced_run(Scheduler::Sequential, 1);
    let reference = causality_fingerprint(&seq_a[0]);
    assert_eq!(reference, causality_fingerprint(&seq_b[0]), "same seed, same fingerprint");

    let (sampled, _) = traced_run(Scheduler::Sequential, 64);
    assert_eq!(reference, causality_fingerprint(&sampled[0]), "sample rate changed causality");

    for sched in [Scheduler::Conservative(3), par3(), Scheduler::Optimistic(3)] {
        let (runs, _) = traced_run(sched, 1);
        assert_eq!(
            reference,
            causality_fingerprint(&runs[0]),
            "committed causality under {sched:?} differs from sequential"
        );
    }
}

/// The Chrome export must be one valid JSON object whose `traceEvents`
/// have non-decreasing `ts` within every (pid, tid) track — the property
/// Perfetto relies on to lay out tracks without re-sorting.
#[test]
fn chrome_export_is_valid_json_with_monotonic_tracks() {
    let (_, json) = traced_run(par3(), 4);
    let v: serde::Value = serde_json::from_str(&json).expect("chrome export must be valid JSON");
    let events = v.get("traceEvents").and_then(|e| e.as_array()).expect("traceEvents array");
    assert!(!events.is_empty());
    let mut last: std::collections::HashMap<(u64, u64), f64> = std::collections::HashMap::new();
    let mut complete = 0u64;
    for ev in events {
        let ph = ev.get("ph").and_then(|p| p.as_str()).expect("ph");
        if ph != "X" {
            continue;
        }
        complete += 1;
        let pid = ev.get("pid").and_then(|p| p.as_u64()).expect("pid");
        let tid = ev.get("tid").and_then(|t| t.as_u64()).expect("tid");
        let ts = ev.get("ts").and_then(|t| t.as_f64()).expect("ts");
        let dur = ev.get("dur").and_then(|d| d.as_f64()).expect("dur");
        assert!(ts >= 0.0 && dur >= 0.0, "negative ts/dur");
        let prev = last.insert((pid, tid), ts);
        if let Some(prev) = prev {
            assert!(ts >= prev, "track ({pid},{tid}) went backwards: {prev} -> {ts}");
        }
    }
    assert!(complete > 0, "no complete events exported");
}

/// Critical-path invariants on real traces from every scheduler: the
/// path is no longer than the committed event count, no heavier than the
/// committed work, and the speedup bound is at least 1. For optimistic
/// runs the wasted fraction must be a sane [0, 1) ratio.
#[test]
fn critical_path_invariants_hold_on_real_traces() {
    for sched in
        [Scheduler::Sequential, Scheduler::Conservative(3), par3(), Scheduler::Optimistic(3)]
    {
        let (runs, _) = traced_run(sched, 1);
        let a = analyze(&runs[0]);
        let violations = a.check_invariants();
        assert!(violations.is_empty(), "{sched:?}: {violations:?}");
        assert!(a.critical_path_len <= a.committed_events, "{sched:?} path too long");
        assert!(a.critical_path_ns <= a.committed_work_ns, "{sched:?} path too heavy");
        assert!(a.speedup_bound >= 1.0, "{sched:?} bound below 1");
        let w = a.wasted_fraction();
        assert!((0.0..1.0).contains(&w), "{sched:?} wasted fraction {w} out of range");
        if !matches!(sched, Scheduler::Optimistic(_)) {
            assert_eq!(a.wasted_events, 0, "{sched:?} cannot roll back");
        }
    }
}

/// Satellite: malformed numeric flag values must exit with code 2 and a
/// clear message, not silently fall back to the default.
#[test]
fn malformed_numeric_flag_exits_two() {
    let cases: &[&[&str]] = &[
        &["fig7", "--profile", "quick", "--iters", "abc"],
        &["fig7", "--profile", "quick", "--seed", "1.5"],
        &["table1", "--ranks", "many"],
        &["fig7", "--profile", "quick", "--trace"],
    ];
    for args in cases {
        let out = std::process::Command::new(env!("CARGO_BIN_EXE_union-exp"))
            .args(*args)
            .output()
            .expect("spawn union-exp");
        assert_eq!(out.status.code(), Some(2), "{args:?} should exit 2");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("union-exp"), "{args:?} stderr lacks context: {err}");
    }
}
