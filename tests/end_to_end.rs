//! Integration tests spanning every crate: DSL source → Union translator
//! → skeleton VM → MPI layer → dragonfly network → PDES engine → metrics.

use codes::SimulationBuilder;
use dragonfly::{DragonflyConfig, Routing};
use harness::sweep::{self, SweepConfig};
use metrics::AppLatencySummary;
use placement::Placement;
use ross::{Scheduler, SimTime};
use union_core::{translate_source, RankVm, SkeletonInstance, Validation};
use workloads::{app, AppKind, Profile};

/// The paper's Fig 1 ping-pong program, end to end, on both dragonfly
/// flavors.
#[test]
fn fig1_pingpong_runs_on_both_networks() {
    let src = r#"
        Require language version "1.5".
        reps is "Number of repetitions" and comes from "--reps" or "-r" with default 50.
        msgsize is "Message size" and comes from "--msgsize" or "-m" with default 1024.
        Assert that "the latency test requires at least two tasks" with num_tasks >= 2.
        For reps repetitions {
          task 0 resets its counters then
          task 0 sends a msgsize byte message to task 1 then
          task 1 sends a msgsize byte message to task 0 then
          task 0 logs the msgsize as "Bytes" and the median of elapsed_usecs/2 as "1/2 RTT (usecs)"
        }
        then task 0 computes aggregates.
    "#;
    let skel = translate_source(src, "pingpong").unwrap();
    for cfg in [DragonflyConfig::tiny_1d(), DragonflyConfig::tiny_2d()] {
        let inst = SkeletonInstance::new(&skel, 2, &["-r", "25"]).unwrap();
        let vms: Vec<RankVm> = (0..2).map(|r| RankVm::new(inst.clone(), r, 3)).collect();
        let mut sim = SimulationBuilder::new(cfg)
            .routing(Routing::Minimal)
            .placement(Placement::RandomNodes)
            .job("pingpong", vms)
            .build()
            .unwrap();
        let r = sim.run(Scheduler::Sequential, SimTime::MAX);
        assert!(r.apps[0].all_done());
        assert_eq!(r.apps[0].latency[0].count, 25);
        assert_eq!(r.apps[0].latency[1].count, 25);
    }
}

/// Every Table III workload mix completes on both Quick networks under
/// every placement policy.
#[test]
fn all_workload_mixes_complete() {
    for w in 1..=3u8 {
        let apps = workloads::workload(w, Profile::Quick, 1, 64);
        for placement in Placement::all() {
            let mut b = SimulationBuilder::new(DragonflyConfig::small_1d())
                .routing(Routing::Adaptive)
                .placement(placement)
                .seed(9);
            for a in &apps {
                b = b.job(a.name(), a.vms(1).unwrap());
            }
            let mut sim = b.build().unwrap();
            let r = sim.run(Scheduler::Sequential, SimTime::MAX);
            for a in &r.apps {
                assert!(a.done_or_panic(&format!("W{w}/{placement:?}")));
            }
        }
    }
}

trait DoneExt {
    fn done_or_panic(&self, ctx: &str) -> bool;
}
impl DoneExt for codes::AppResult {
    fn done_or_panic(&self, ctx: &str) -> bool {
        assert!(self.all_done(), "{ctx}: {} did not finish", self.name);
        true
    }
}

/// Union's skeleton path and the independent reference generator agree
/// for AlexNet at full 512 ranks (Tables IV/V + Fig 6).
#[test]
fn alexnet_validation_at_paper_scale() {
    let skel = workloads::alexnet();
    let inst = SkeletonInstance::new(&skel, 512, &[]).unwrap();
    let s = Validation::collect(512, |r| RankVm::new(inst.clone(), r, 1));
    let a = Validation::collect(512, |r| workloads::alexnet_reference::ops(r, 512).into_iter());
    assert!(s.matches(&a));
    assert_eq!(s.event_counts["MPI_Bcast"], 1969);
    assert_eq!(s.event_counts["MPI_Allreduce"], 1958);
    assert_eq!(s.event_counts["MPI_Init"], 512);
}

/// The three PDES schedulers produce bit-identical hybrid-workload
/// results on the full composed model.
#[test]
fn schedulers_agree_on_hybrid_workload() {
    let fingerprint = |sched: Scheduler| {
        let mut b = SimulationBuilder::new(DragonflyConfig::tiny_1d())
            .routing(Routing::Adaptive)
            .placement(Placement::RandomNodes)
            .seed(4);
        for kind in [AppKind::NearestNeighbor, AppKind::UniformRandom] {
            let mut cfg = app(kind, Profile::Quick, 2, 64);
            cfg.ranks = 24; // shrink to the tiny system
            if kind == AppKind::NearestNeighbor {
                // 24 ranks need a smaller grid than the quick default.
                for (i, a) in cfg.args.iter().enumerate() {
                    if a == "--nx" || a == "--ny" {
                        let _ = i;
                    }
                }
                cfg.args.extend([
                    "--nx".into(),
                    "3".into(),
                    "--ny".into(),
                    "2".into(),
                    "--nz".into(),
                    "4".into(),
                ]);
            }
            b = b.job(cfg.name(), cfg.vms(1).unwrap());
        }
        let mut sim = b.build().unwrap();
        let r = sim.run(sched, SimTime::MAX);
        let mut fp: Vec<(String, u64, u64)> = Vec::new();
        for a in &r.apps {
            let lat: u64 = a.latency.iter().map(|l| l.sum_ns).sum();
            let fin: u64 = a.finished_at_ns.iter().map(|f| f.unwrap()).max().unwrap();
            fp.push((a.name.clone(), lat, fin));
        }
        (fp, r.link_load)
    };
    let seq = fingerprint(Scheduler::Sequential);
    assert_eq!(seq, fingerprint(Scheduler::Conservative(3)));
    assert_eq!(seq, fingerprint(Scheduler::Optimistic(3)));
}

/// The sweep machinery produces baselines and mixes with sane structure.
#[test]
fn smoke_sweep_has_expected_records() {
    let mut cfg = SweepConfig::smoke();
    cfg.baselines = true;
    let records = sweep::run_sweep(&cfg, |_| {});
    // 5 baselines (W3 apps) + 1 mix.
    assert_eq!(records.len(), 6);
    let mix = records.iter().find(|r| matches!(r.key.workload, sweep::Workload::Mix(3))).unwrap();
    assert_eq!(mix.apps.len(), 5);
    for a in &mix.apps {
        assert!(a.done, "{} unfinished in mix", a.name);
        let base =
            sweep::baseline_of(&records, mix.key.net, &a.name, mix.key.placement, mix.key.routing)
                .unwrap();
        assert!(base.done);
    }
}

/// Per-rank latency summaries feed boxplots with coherent ordering.
#[test]
fn latency_summaries_are_ordered() {
    let cfg = app(AppKind::NearestNeighbor, Profile::Quick, 2, 16);
    let mut sim = SimulationBuilder::new(DragonflyConfig::small_1d())
        .placement(Placement::RandomRouters)
        .job(cfg.name(), cfg.vms(1).unwrap())
        .build()
        .unwrap();
    let r = sim.run(Scheduler::Sequential, SimTime::MAX);
    let s = AppLatencySummary::from_ranks(&r.apps[0].latency);
    assert!(s.max_box.min <= s.max_box.q1);
    assert!(s.max_box.q1 <= s.max_box.median);
    assert!(s.max_box.median <= s.max_box.q3);
    assert!(s.max_box.q3 <= s.max_box.max);
    assert!(s.min_box.mean <= s.max_box.mean);
}

/// Running the same configuration twice gives identical results
/// (reproducibility across process lifetime, not just schedulers).
#[test]
fn runs_are_reproducible() {
    let run = || {
        // 32 ranks of UR on the 72-node tiny system.
        let mut cfg = app(AppKind::UniformRandom, Profile::Quick, 3, 64);
        cfg.ranks = 32;
        let mut sim = SimulationBuilder::new(DragonflyConfig::tiny_1d())
            .placement(Placement::RandomNodes)
            .seed(77)
            .job(cfg.name(), cfg.vms(5).unwrap())
            .build()
            .unwrap();
        let r = sim.run(Scheduler::Sequential, SimTime::MAX);
        (r.stats.committed, r.link_load)
    };
    assert_eq!(run(), run());
}
