//! Breadth tests for the coNCePTuaL → Union → simulation pipeline:
//! every major language construct compiled, executed, and (where cheap)
//! simulated on the network.

use codes::SimulationBuilder;
use dragonfly::DragonflyConfig;
use ross::{Scheduler, SimTime};
use union_core::{translate_source, MpiOp, RankVm, SkeletonInstance, Validation};

fn validation(src: &str, n: u32, args: &[&str]) -> Validation {
    let skel = translate_source(src, "t").unwrap();
    let inst = SkeletonInstance::new(&skel, n, args).unwrap();
    Validation::collect(n, |r| RankVm::new(inst.clone(), r, 1))
}

#[test]
fn knomial_tree_written_in_dsl() {
    // A manual binomial "reduce" using the KNOMIAL builtins: every
    // non-root sends once to its parent.
    let v = validation(
        "tasks t such that t > 0 send a 8 byte message to task KNOMIAL_PARENT(t).",
        16,
        &[],
    );
    assert_eq!(v.event_counts["MPI_Send"], 15);
    assert_eq!(v.event_counts["MPI_Recv"], 15);
}

#[test]
fn torus_halo_in_dsl_conserves_bytes() {
    let v = validation(
        "all tasks t asynchronously send a 1000 byte message to \
         task TORUS_NEIGHBOR(4, 4, 1, t, 1, 0, 0) then \
         all tasks t asynchronously send a 1000 byte message to \
         task TORUS_NEIGHBOR(4, 4, 1, t, 0, 1, 0) then \
         all tasks await completions.",
        16,
        &[],
    );
    // Periodic 4x4 grid: every rank sends exactly twice.
    let total: u64 = v.bytes_per_rank.iter().sum();
    assert_eq!(total, 16 * 2 * 1000);
    assert!(v.bytes_per_rank.iter().all(|&b| b == 2000));
}

#[test]
fn conditionals_select_rank_subsets() {
    let v = validation(
        "for each i in {1, ..., 4} \
           if i is even then task i sends a i byte message to task 0 \
           otherwise task i computes for 1 microseconds.",
        5,
        &[],
    );
    assert_eq!(v.event_counts["MPI_Send"], 2); // i = 2, 4
    assert_eq!(v.bytes_per_rank, vec![0, 0, 2, 0, 4]);
}

#[test]
fn let_bindings_parameterize_patterns() {
    let v = validation(
        "let half be num_tasks/2 while \
         tasks t such that t < half send a 100 byte message to task t + half.",
        10,
        &[],
    );
    assert_eq!(v.event_counts["MPI_Send"], 5);
    for r in 0..5 {
        assert_eq!(v.bytes_per_rank[r], 100);
    }
}

#[test]
fn message_counts_multiply() {
    let v = validation("task 0 sends 7 64 byte messages to task 1.", 2, &[]);
    assert_eq!(v.event_counts["MPI_Send"], 7);
    assert_eq!(v.bytes_per_rank[0], 7 * 64);
}

#[test]
fn sync_loops_insert_barriers() {
    let v = validation(
        "for 3 repetitions plus a synchronization \
         task 0 sends a 4 byte message to task 1.",
        4,
        &[],
    );
    assert_eq!(v.event_counts["MPI_Barrier"], 3);
}

#[test]
fn size_units_scale() {
    let v = validation(
        "task 0 sends a 2 kilobyte message to task 1 then \
         task 0 sends a 1 megabyte message to task 1.",
        2,
        &[],
    );
    assert_eq!(v.bytes_per_rank[0], 2048 + (1 << 20));
}

#[test]
fn reduce_to_root_and_sleep() {
    let v = validation(
        "all tasks reduce a 100 byte message to task 3 then \
         all tasks sleep for 5 microseconds.",
        8,
        &[],
    );
    assert_eq!(v.event_counts["MPI_Reduce"], 1);
}

/// A nontrivial DSL program (tree + halo + collectives) survives the full
/// network simulation under every scheduler.
#[test]
fn rich_program_runs_on_the_network() {
    let src = "
        steps is \"steps\" and comes from \"--steps\" with default 2.
        Assert that \"need a 3x3 grid\" with num_tasks >= 9.
        For steps repetitions {
          all tasks t asynchronously send a 20000 byte message
            to task MESH_NEIGHBOR(3, 3, 1, t, 1, 0, 0) then
          all tasks t asynchronously send a 20000 byte message
            to task MESH_NEIGHBOR(3, 3, 1, t, 0, 1, 0) then
          all tasks await completions then
          all tasks reduce a 8 byte message to all tasks then
          tasks t such that t > 0 send a 16 byte message to task TREE_PARENT(t) then
          all tasks synchronize
        }.
    ";
    let skel = translate_source(src, "rich").unwrap();
    let inst = SkeletonInstance::new(&skel, 9, &[]).unwrap();
    let mut fingerprints = Vec::new();
    for sched in [Scheduler::Sequential, Scheduler::Optimistic(3)] {
        let vms: Vec<RankVm> = (0..9).map(|r| RankVm::new(inst.clone(), r, 2)).collect();
        let mut sim = SimulationBuilder::new(DragonflyConfig::tiny_1d())
            .seed(5)
            .job("rich", vms)
            .build()
            .unwrap();
        let r = sim.run(sched, SimTime::MAX);
        assert!(r.apps[0].all_done(), "{sched:?}");
        let fp: Vec<u64> = r.apps[0].latency.iter().map(|l| l.sum_ns).collect();
        fingerprints.push(fp);
    }
    assert_eq!(fingerprints[0], fingerprints[1]);
}

/// The generated C skeleton (Fig 5 rendering) stays well-formed for every
/// registered paper workload.
#[test]
fn all_registered_skeletons_render_c() {
    let reg = workloads::registry();
    for name in reg.names() {
        let c = union_core::codegen::render_c(reg.get(name).unwrap());
        assert_eq!(c.matches('{').count(), c.matches('}').count(), "unbalanced braces in {name}");
        assert!(c.contains("UNION_MPI_Init"));
        assert!(c.contains(&format!(".program_name = \"{name}\"")));
    }
}

/// Parameter plumbing end to end: flags rename behaviour without
/// recompiling (Table I's "scaling application size" row).
#[test]
fn same_skeleton_rebinds_to_any_size() {
    let skel = workloads::nearest_neighbor();
    for (n, dims) in [(8u32, ["2", "2", "2"]), (27, ["3", "3", "3"]), (64, ["4", "4", "4"])] {
        let args = ["--nx", dims[0], "--ny", dims[1], "--nz", dims[2], "--iters", "1"];
        let inst = SkeletonInstance::new(&skel, n, &args).unwrap();
        let interior_sends =
            RankVm::new(inst.clone(), 0, 1).filter(|o| matches!(o, MpiOp::Isend { .. })).count();
        assert_eq!(interior_sends, 3, "corner rank always has 3 neighbors");
    }
}
