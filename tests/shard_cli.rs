//! End-to-end tests of the `union-exp` multi-process shard launcher:
//! a gang of real worker processes over TCP must reproduce the
//! sequential fingerprint, a checkpoint taken at an intermediate GVT
//! must restore to the same final state, and damaged checkpoint files
//! must be rejected with exit code 2 and a clear message — never a
//! panic.

use std::path::PathBuf;
use std::process::{Command, Output};

fn exe() -> &'static str {
    env!("CARGO_BIN_EXE_union-exp")
}

fn phold(args: &[&str]) -> Output {
    Command::new(exe()).arg("phold").args(args).output().expect("spawn union-exp")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).into_owned()
}

/// The `phold fingerprint …` line, which every successful run prints.
fn fingerprint_line(o: &Output) -> String {
    stdout(o)
        .lines()
        .find(|l| l.starts_with("phold fingerprint "))
        .unwrap_or_else(|| panic!("no fingerprint line in:\n{}{}", stdout(o), stderr(o)))
        .to_string()
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("union-shard-cli-{}-{name}", std::process::id()))
}

/// FNV-1a matching `ross::shard::wire::fnv1a`, so the wrong-version test
/// below can forge a file whose checksum is valid.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[test]
fn gang_checkpoint_and_restore_all_match_sequential() {
    let ck = temp_path("roundtrip.ckpt");
    std::fs::remove_file(&ck).ok();
    let ck_s = ck.to_str().unwrap().to_string();

    let seq = phold(&[]);
    assert!(seq.status.success(), "sequential run failed: {}", stderr(&seq));
    let want = fingerprint_line(&seq);

    // Two real worker processes, checkpointing every 5 µs of virtual
    // time; the launcher's own verify pass re-runs sequentially.
    let ckpt_arg = format!("{ck_s}:5");
    let gang = phold(&["--sched", "shard:2:1:50", "--checkpoint", &ckpt_arg]);
    assert!(gang.status.success(), "gang run failed: {}", stderr(&gang));
    assert_eq!(fingerprint_line(&gang), want, "gang fingerprint diverged");
    assert!(stdout(&gang).contains("phold verify sequential match"));
    assert!(ck.exists(), "no checkpoint written");

    // Fresh gang restored from the intermediate cut must converge to the
    // same final state (verify accounts for the pre-cut committed count).
    let restored = phold(&["--sched", "shard:2:1:50", "--restore", &ck_s]);
    assert!(restored.status.success(), "restore run failed: {}", stderr(&restored));
    assert_eq!(fingerprint_line(&restored), want, "restored fingerprint diverged");
    assert!(stdout(&restored).contains("phold verify sequential match"));

    std::fs::remove_file(&ck).ok();
}

#[test]
fn damaged_checkpoints_exit_2_with_a_clear_message() {
    let ck = temp_path("reject.ckpt");
    std::fs::remove_file(&ck).ok();
    let ck_s = ck.to_str().unwrap().to_string();

    // Produce a valid single-process checkpoint to damage.
    let ckpt_arg = format!("{ck_s}:5");
    let made = phold(&["--checkpoint", &ckpt_arg]);
    assert!(made.status.success(), "checkpointing run failed: {}", stderr(&made));
    let good = std::fs::read(&ck).unwrap();
    assert!(good.len() > 32, "implausibly small checkpoint");

    let reject = |bytes: &[u8], expect_in_msg: &str| {
        let bad = temp_path("damaged.ckpt");
        std::fs::write(&bad, bytes).unwrap();
        let out = phold(&["--restore", bad.to_str().unwrap()]);
        let msg = stderr(&out);
        assert_eq!(
            out.status.code(),
            Some(2),
            "expected exit 2 for {expect_in_msg:?}, got {:?}: {msg}",
            out.status.code()
        );
        assert!(!msg.contains("panicked"), "panicked instead of erroring: {msg}");
        assert!(
            msg.to_lowercase().contains(expect_in_msg),
            "message does not mention {expect_in_msg:?}: {msg}"
        );
        std::fs::remove_file(&bad).ok();
    };

    // Truncated: half the file, and a file shorter than the header.
    reject(&good[..good.len() / 2], "checksum");
    reject(&good[..4], "truncated");
    reject(b"", "truncated");

    // Corrupt: one byte flipped mid-file breaks the checksum.
    let mut flipped = good.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0xff;
    reject(&flipped, "checksum");

    // Not a checkpoint at all.
    let mut bad_magic = good.clone();
    bad_magic[0] = b'X';
    reject(&bad_magic, "magic");

    // Unsupported format version, with a valid checksum so the version
    // check itself is what rejects it.
    let mut body = good[8..good.len() - 8].to_vec();
    body[0] = 99;
    let mut wrong_version = Vec::new();
    wrong_version.extend_from_slice(&good[..8]);
    wrong_version.extend_from_slice(&body);
    wrong_version.extend_from_slice(&fnv1a(&body).to_le_bytes());
    reject(&wrong_version, "version");

    // Missing file is a run failure (exit 1), not a format error — and
    // still not a panic.
    let missing = temp_path("does-not-exist.ckpt");
    let out = phold(&["--restore", missing.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "missing file: {}", stderr(&out));
    assert!(!stderr(&out).contains("panicked"));
    assert!(stderr(&out).contains("cannot read checkpoint"));

    std::fs::remove_file(&ck).ok();
}

/// Restoring a checkpoint into a different shard count must be refused
/// up front — shard rebalancing from a cut is not implemented (ROADMAP
/// item 2) — with a format error (exit 2, never a panic) that names both
/// counts and the file so the operator can relaunch correctly.
#[test]
fn restore_with_mismatched_shard_count_exits_2_naming_both_counts() {
    let ck = temp_path("mismatch.ckpt");
    std::fs::remove_file(&ck).ok();
    let ck_s = ck.to_str().unwrap().to_string();

    // Take a valid cut with a 2-shard gang…
    let ckpt_arg = format!("{ck_s}:5");
    let gang = phold(&["--sched", "shard:2:1:50", "--checkpoint", &ckpt_arg]);
    assert!(gang.status.success(), "gang checkpoint run failed: {}", stderr(&gang));
    assert!(ck.exists(), "no checkpoint written");

    // …then try to restore it into a single-process (1-shard) run.
    let out = phold(&["--restore", &ck_s]);
    let msg = stderr(&out);
    assert_eq!(out.status.code(), Some(2), "expected exit 2: {msg}");
    assert!(!msg.contains("panicked"), "panicked instead of erroring: {msg}");
    assert!(msg.contains("2 shards"), "message does not name the checkpoint's count: {msg}");
    assert!(msg.contains("into 1"), "message does not name the requested count: {msg}");
    assert!(msg.contains(&ck_s), "message does not name the file: {msg}");
    assert!(msg.contains("rebalancing"), "message does not point at the rebalancing gap: {msg}");
    assert!(msg.contains("shard:2:T:L"), "message does not say how to relaunch: {msg}");

    std::fs::remove_file(&ck).ok();
}

#[test]
fn bad_shard_specs_are_usage_errors() {
    for (args, needle) in [
        (vec!["--sched", "shard:0:1:50"], "shard"),
        (vec!["--sched", "shard:2:1"], "shard"),
        (vec!["--sched", "shard:2:1:51"], "causality"),
        (vec!["--sched", "optimistic"], "phold supports"),
        (vec!["--checkpoint"], "--checkpoint"),
        (vec!["--checkpoint", "x:0"], "interval"),
    ] {
        let out = phold(&args);
        assert_eq!(out.status.code(), Some(2), "{args:?}: {}", stderr(&out));
        assert!(
            stderr(&out).to_lowercase().contains(needle),
            "{args:?} message does not mention {needle:?}: {}",
            stderr(&out)
        );
    }
}
