//! Crash/recover drill for the shard launcher: SIGKILL one worker
//! process mid-run (right after it helps commit a checkpoint), watch the
//! gang fail, then restart the whole gang from that checkpoint and
//! assert the final fingerprint is identical to an uninterrupted run.

use std::process::{Command, Output};

fn exe() -> &'static str {
    env!("CARGO_BIN_EXE_union-exp")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).into_owned()
}

fn fingerprint_line(o: &Output) -> String {
    stdout(o)
        .lines()
        .find(|l| l.starts_with("phold fingerprint "))
        .unwrap_or_else(|| panic!("no fingerprint line in:\n{}{}", stdout(o), stderr(o)))
        .to_string()
}

#[test]
fn killed_worker_fails_the_gang_and_restart_recovers_the_run() {
    let ck = std::env::temp_dir().join(format!("union-shard-fault-{}.ckpt", std::process::id()));
    std::fs::remove_file(&ck).ok();
    let ck_s = ck.to_str().unwrap().to_string();

    // Uninterrupted reference.
    let seq = Command::new(exe()).arg("phold").output().unwrap();
    assert!(seq.status.success(), "sequential run failed: {}", stderr(&seq));
    let want = fingerprint_line(&seq);

    // Gang of two workers; shard 1 SIGKILLs itself immediately after the
    // first checkpoint round commits. The launcher must notice the death
    // and fail the run — it cannot produce a result with a dead shard.
    let ckpt_arg = format!("{ck_s}:5");
    let faulted = Command::new(exe())
        .args(["phold", "--sched", "shard:2:1:50", "--checkpoint", &ckpt_arg])
        .env("UNION_SHARD_FAULT", "kill-after-ckpt:1")
        .output()
        .unwrap();
    assert!(
        !faulted.status.success(),
        "gang reported success despite a SIGKILLed worker:\n{}",
        stdout(&faulted)
    );
    assert!(
        !stdout(&faulted).contains("phold verify sequential match"),
        "a failed gang must not claim verification"
    );

    // The fault fires only after the checkpoint is durably on disk, so a
    // consistent cut survives the crash.
    assert!(ck.exists(), "no checkpoint survived the crash: {}", stderr(&faulted));

    // Restart the gang from that cut: it must finish and match the
    // uninterrupted run bit-for-bit (the launcher's verify pass also
    // checks the committed-event count against the cut's metadata).
    let recovered = Command::new(exe())
        .args(["phold", "--sched", "shard:2:1:50", "--restore", &ck_s])
        .output()
        .unwrap();
    assert!(recovered.status.success(), "recovery run failed: {}", stderr(&recovered));
    assert_eq!(fingerprint_line(&recovered), want, "recovered run diverged");
    assert!(stdout(&recovered).contains("phold verify sequential match"));

    std::fs::remove_file(&ck).ok();
}
