//! End-to-end tests of the live metrics plane: a shard gang run with
//! `--live` must expose ONE aggregated endpoint whose gang-wide
//! `events_committed` equals the merged end-of-run total exactly, the
//! exposition formats must parse, `union-exp top` must render from both
//! an endpoint and a snapshot JSONL file, and the CLI's exit-2 paths
//! must keep stdout clean (diagnostics go to stderr).

use std::io::BufRead;
use std::path::PathBuf;
use std::process::{Command, Output, Stdio};

fn exe() -> &'static str {
    env!("CARGO_BIN_EXE_union-exp")
}

fn run(args: &[&str]) -> Output {
    Command::new(exe()).args(args).output().expect("spawn union-exp")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).into_owned()
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("union-live-{}-{name}", std::process::id()))
}

/// Pull `prefix N` off a stdout dump.
fn number_after(text: &str, prefix: &str) -> Option<u64> {
    text.lines().find_map(|l| l.strip_prefix(prefix)?.trim().parse().ok())
}

/// The acceptance test: a 4-shard PHOLD gang with `--live` serves one
/// aggregated endpoint; after the run the endpoint's gang-wide
/// `events_committed` matches the merged total exactly, and both
/// exposition formats are well-formed.
#[test]
fn gang_endpoint_matches_merged_total_exactly() {
    let mut child = Command::new(exe())
        .args([
            "phold",
            "--lps",
            "32",
            "--horizon-us",
            "200",
            "--sched",
            "shard:4:2:50",
            "--shard-no-verify",
            "--live",
            "127.0.0.1:0",
            "--live-hold",
            "30000",
            "--live-interval",
            "25",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn gang");

    // The launcher prints the bound address to stderr before spawning
    // workers, then the run output to stdout before the hold window.
    let mut errs = std::io::BufReader::new(child.stderr.take().expect("stderr piped"));
    let addr = loop {
        let mut line = String::new();
        assert!(errs.read_line(&mut line).expect("read stderr") > 0, "endpoint line never came");
        if let Some(rest) = line.split("http://").nth(1) {
            break rest.split('/').next().unwrap().trim().to_string();
        }
    };
    let mut outs = std::io::BufReader::new(child.stdout.take().expect("stdout piped"));
    let committed = loop {
        let mut line = String::new();
        assert!(outs.read_line(&mut line).expect("read stdout") > 0, "committed line never came");
        if let Some(n) = number_after(&line, "phold committed") {
            break n;
        }
    };

    // JSON snapshot: gang-wide committed equals the merged total.
    let snap = harness::live::fetch_snapshot(&addr).expect("snapshot");
    assert_eq!(snap.counter_total("events_committed"), Some(committed), "endpoint != merged");
    assert!(snap.counter_total("cross_shard_events").unwrap_or(0) > 0, "gang saw no traffic?");
    assert!(harness::live::snapshot_buckets_valid(&snap));
    // In-flight quantiles are served from merged histograms.
    let h = snap.histogram("commit_batch").expect("commit_batch histogram");
    assert!(h.count > 0);
    assert!(h.quantile(0.5) <= h.max);

    // Prometheus text: the counter line carries the same exact value.
    let prom = telemetry::live::http_get(&addr, "/metrics").expect("metrics");
    assert!(prom.contains("# TYPE union_events_committed counter"), "{prom}");
    assert!(prom.contains(&format!("union_events_committed {committed}")), "{prom}");

    // `top ADDR` renders the live table.
    let top = run(&["top", &addr]);
    assert!(top.status.success(), "{}", stderr(&top));
    assert!(stdout(&top).contains("events_committed"), "{}", stdout(&top));

    child.kill().ok();
    child.wait().ok();
}

/// `--telemetry` + `--live` on a gang run lands the final aggregated
/// snapshot in the JSONL file, and `top FILE` renders it.
#[test]
fn top_renders_final_snapshot_from_telemetry_file() {
    let tf = temp_path("gang.jsonl");
    std::fs::remove_file(&tf).ok();
    let tf_s = tf.to_str().unwrap().to_string();
    let gang = run(&[
        "phold",
        "--lps",
        "16",
        "--horizon-us",
        "100",
        "--sched",
        "shard:2:1:50",
        "--shard-no-verify",
        "--live",
        "127.0.0.1:0",
        "--live-interval",
        "25",
        "--telemetry",
        &tf_s,
    ]);
    assert!(gang.status.success(), "{}", stderr(&gang));
    let committed = number_after(&stdout(&gang), "phold committed").expect("committed line");

    let text = std::fs::read_to_string(&tf).expect("telemetry file");
    let snap = harness::live::last_snapshot_in_jsonl(&text).expect("snapshot in JSONL");
    assert_eq!(snap.counter_total("events_committed"), Some(committed));

    let top = run(&["top", &tf_s]);
    assert!(top.status.success(), "{}", stderr(&top));
    let out = stdout(&top);
    assert!(out.contains("events_committed"), "{out}");
    assert!(out.contains("commit_batch"), "{out}");
    std::fs::remove_file(&tf).ok();
}

/// Single-process `--live`: the sequential scheduler feeds the same
/// registry, and the endpoint total matches the run's committed count.
#[test]
fn sequential_live_endpoint_matches_run() {
    let mut child = Command::new(exe())
        .args([
            "phold",
            "--lps",
            "16",
            "--horizon-us",
            "500",
            "--live",
            "127.0.0.1:0",
            "--live-hold",
            "30000",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn phold");
    let mut errs = std::io::BufReader::new(child.stderr.take().expect("stderr piped"));
    let addr = loop {
        let mut line = String::new();
        assert!(errs.read_line(&mut line).expect("read stderr") > 0, "endpoint line never came");
        if let Some(rest) = line.split("http://").nth(1) {
            break rest.split('/').next().unwrap().trim().to_string();
        }
    };
    let mut outs = std::io::BufReader::new(child.stdout.take().expect("stdout piped"));
    let committed = loop {
        let mut line = String::new();
        assert!(outs.read_line(&mut line).expect("read stdout") > 0, "committed line never came");
        if let Some(n) = number_after(&line, "phold committed") {
            break n;
        }
    };
    let snap = harness::live::fetch_snapshot(&addr).expect("snapshot");
    assert_eq!(snap.counter_total("events_committed"), Some(committed));
    child.kill().ok();
    child.wait().ok();
}

/// Exit-2 (usage error) paths must never write to stdout: scripts pipe
/// stdout, and diagnostics belong on stderr.
#[test]
fn exit2_paths_keep_stdout_clean() {
    let cases: &[&[&str]] = &[
        &["trace"],
        &["trace", "--analyze", "/nonexistent/trace.json"],
        &["lint", "--fixture", "no-such-fixture"],
        &["lint", "--file", "/nonexistent/prog.ncptl"],
        &["phold", "--lps", "0"],
        &["phold", "--sched", "bogus:1:2:3"],
        &["top"],
        &["no-such-command"],
    ];
    for args in cases {
        let o = run(args);
        assert_eq!(o.status.code(), Some(2), "args {args:?}: {}", stderr(&o));
        assert!(
            o.stdout.is_empty(),
            "args {args:?} wrote to stdout on a usage error: {}",
            stdout(&o)
        );
        assert!(!o.stderr.is_empty(), "args {args:?}: exit 2 with no diagnostic");
    }
}

/// An analyzable-but-empty trace is a diagnostic on stderr, success on
/// exit, and a clean stdout.
#[test]
fn empty_trace_diagnostic_goes_to_stderr() {
    let tf = temp_path("empty-trace.json");
    std::fs::write(&tf, "{\"traceEvents\":[]}").expect("write trace");
    let o = run(&["trace", "--analyze", tf.to_str().unwrap()]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(o.stdout.is_empty(), "diagnostic leaked to stdout: {}", stdout(&o));
    assert!(stderr(&o).contains("no runs recorded"), "{}", stderr(&o));
    std::fs::remove_file(&tf).ok();
}
