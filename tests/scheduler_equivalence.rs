//! Cross-scheduler determinism: all five PDES schedulers must produce
//! bit-identical `SimResults` for the same model and seed, under either
//! pending-event queue (binary heap or ladder). This is the contract
//! that lets the harness sweep schedulers and queues freely — a parallel
//! run is a faster sequential run, never a different experiment.

use codes::{SimResults, SimulationBuilder};
use dragonfly::{DragonflyConfig, Routing};
use placement::Placement;
use ross::{OptimisticConfig, QueueKind, Scheduler, SimDuration, SimTime};
use workloads::{app, AppKind, Profile};

/// Per app: (name, per-rank latency (count, sum, min, max), per-rank comm
/// total, per-rank finish time, bytes, ops).
type AppPrint = (String, Vec<(u64, u64, u64, u64)>, Vec<u64>, Vec<Option<u64>>, u64, u64);

/// Every observable a run produces, flattened for equality comparison.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Fingerprint {
    apps: Vec<AppPrint>,
    link_load: (u64, u64, u64, u64, u64),
    router_windows: Vec<(u32, Vec<Vec<u64>>)>,
    committed: u64,
}

fn fingerprint(r: &SimResults) -> Fingerprint {
    Fingerprint {
        apps: r
            .apps
            .iter()
            .map(|a| {
                (
                    a.name.clone(),
                    a.latency.iter().map(|l| (l.count, l.sum_ns, l.min_ns, l.max_ns)).collect(),
                    a.comm.iter().map(|c| c.total_ns).collect(),
                    a.finished_at_ns.clone(),
                    a.bytes_sent,
                    a.ops_executed,
                )
            })
            .collect(),
        link_load: (
            r.link_load.global_bytes,
            r.link_load.local_bytes,
            r.link_load.terminal_bytes,
            r.link_load.n_global_links,
            r.link_load.n_local_links,
        ),
        router_windows: r.router_windows.clone(),
        committed: r.stats.committed,
    }
}

/// Two-job mix on the tiny 1D dragonfly with windowed router counters
/// on — the shared model every cell of the equivalence matrix runs.
fn build_mix(queue: QueueKind) -> codes::CodesSim {
    let mut b = SimulationBuilder::new(DragonflyConfig::tiny_1d())
        .routing(Routing::Adaptive)
        .placement(Placement::RandomGroups)
        .seed(11)
        .window_ns(500_000)
        .queue(queue);
    for kind in [AppKind::UniformRandom, AppKind::NearestNeighbor] {
        let mut cfg = app(kind, Profile::Quick, 2, 64);
        if kind == AppKind::NearestNeighbor {
            cfg.ranks = 24;
            cfg.args.extend(["--nx", "3", "--ny", "2", "--nz", "4"].iter().map(|s| s.to_string()));
        } else {
            cfg.ranks = 16;
        }
        b = b.job(cfg.name(), cfg.vms(1).unwrap());
    }
    b.build().unwrap()
}

fn run_q(sched: Scheduler, queue: QueueKind) -> Fingerprint {
    let mut sim = build_mix(queue);
    let r = sim.run(sched, SimTime::MAX);
    for a in &r.apps {
        assert!(a.all_done(), "{} unfinished under {sched:?}/{queue:?}", a.name);
    }
    fingerprint(&r)
}

fn run(sched: Scheduler) -> Fingerprint {
    run_q(sched, QueueKind::default())
}

#[test]
fn all_schedulers_agree_bit_for_bit() {
    let seq = run(Scheduler::Sequential);
    assert!(seq.committed > 0);
    assert_eq!(seq, run(Scheduler::Conservative(3)), "conservative != sequential");
    assert_eq!(seq, run(Scheduler::Optimistic(3)), "optimistic != sequential");
    // 100 ns is the minimum cross-partition delay on the default config
    // (local link latency); wider windows would violate causality, a
    // 1 ns window is always legal. Both must match.
    for (threads, lookahead_ns) in [(2usize, 100u64), (3, 100), (4, 1)] {
        let par = run(Scheduler::ConservativeParallel {
            threads,
            lookahead: SimDuration::from_ns(lookahead_ns),
        });
        assert_eq!(seq, par, "par:{threads}:{lookahead_ns} != sequential");
        let asy = run(Scheduler::ConservativeAsync {
            threads,
            lookahead: SimDuration::from_ns(lookahead_ns),
        });
        assert_eq!(seq, asy, "async:{threads}:{lookahead_ns} != sequential");
    }
}

/// The full {scheduler} × {queue} matrix: the queue choice must be
/// invisible in the results — every cell agrees bit-for-bit with the
/// sequential/heap reference cell.
#[test]
fn queue_choice_never_changes_results() {
    let reference = run_q(Scheduler::Sequential, QueueKind::Heap);
    assert!(reference.committed > 0);
    let scheds = [
        Scheduler::Sequential,
        Scheduler::Conservative(3),
        Scheduler::Optimistic(3),
        Scheduler::ConservativeParallel { threads: 3, lookahead: SimDuration::from_ns(100) },
        Scheduler::ConservativeAsync { threads: 3, lookahead: SimDuration::from_ns(100) },
    ];
    for sched in scheds {
        for queue in [QueueKind::Heap, QueueKind::Ladder] {
            // The reference cell is `reference` itself; skip re-running it.
            if sched == Scheduler::Sequential && queue == QueueKind::Heap {
                continue;
            }
            assert_eq!(reference, run_q(sched, queue), "{sched:?}/{queue:?} != sequential/heap");
        }
    }
}

/// Aggressive optimistic tunings — small batches (frequent GVT epochs,
/// more fossil collections) with sparse snapshots force deep rollbacks
/// through the GVT-fence restore path; the results must still be
/// bit-identical to sequential.
#[test]
fn optimistic_small_snapshot_interval_agrees() {
    let seq = run(Scheduler::Sequential);
    for (threads, batch, snapshot_interval) in [(3usize, 32usize, 4u64), (2, 8, 4), (4, 64, 8)] {
        let opt = run(Scheduler::OptimisticWith {
            threads,
            config: OptimisticConfig { batch, snapshot_interval },
        });
        assert_eq!(seq, opt, "opt:{threads}:{batch}:{snapshot_interval} != sequential");
    }
}

/// The parallel scheduler must also agree with itself when interrupted:
/// pausing at a bound and resuming under a different scheduler cannot
/// change the outcome.
#[test]
fn parallel_run_survives_rescheduling_midway() {
    let seq = run(Scheduler::Sequential);
    let mut sim = build_mix(QueueKind::default());
    let par = Scheduler::ConservativeParallel { threads: 3, lookahead: SimDuration::from_ns(100) };
    sim.run(par, SimTime::from_us(50));
    let r = sim.run(Scheduler::Sequential, SimTime::MAX);
    let mut fp = fingerprint(&r);
    // Committed counts are per-leg; compare everything else.
    fp.committed = seq.committed;
    assert_eq!(seq, fp);

    // Same contract for the barrier-free scheduler: pause at a bound,
    // finish sequentially, and the observables must be untouched.
    let mut sim = build_mix(QueueKind::default());
    let asy = Scheduler::ConservativeAsync { threads: 3, lookahead: SimDuration::from_ns(100) };
    sim.run(asy, SimTime::from_us(50));
    let r = sim.run(Scheduler::Sequential, SimTime::MAX);
    let mut fp = fingerprint(&r);
    fp.committed = seq.committed;
    assert_eq!(seq, fp, "async pause/resume diverged");
}

/// The shard dimension of the matrix: the same mix run as one
/// simulation split across {1, 2, 4} shard transports (in-process
/// loopback standing in for the launcher's worker processes) × both
/// queues. Each shard's owned-LP digest must `wrapping_add`-merge to
/// exactly the sequential run's whole-model fingerprint, and the
/// per-shard committed counts must sum to the sequential total.
#[test]
fn sharded_runs_merge_to_the_sequential_fingerprint() {
    let (want_fp, want_committed) = {
        let mut sim = build_mix(QueueKind::Heap);
        let r = sim.run(Scheduler::Sequential, SimTime::MAX);
        (sim.state_fingerprint(), r.stats.committed)
    };
    assert_ne!(want_fp, 0);
    for n_shards in [1usize, 2, 4] {
        for queue in [QueueKind::Heap, QueueKind::Ladder] {
            let mesh = ross::shard::loopback_mesh::<codes::Event>(n_shards);
            let handles: Vec<_> = mesh
                .into_iter()
                .map(|mut t| {
                    std::thread::spawn(move || {
                        let mut sim = build_mix(queue);
                        let stats = sim
                            .run_sharded(&mut t, 2, SimDuration::from_ns(100), SimTime::MAX)
                            .unwrap();
                        (sim, stats)
                    })
                })
                .collect();
            let mut fp = 0u64;
            let mut committed = 0u64;
            for (me, h) in handles.into_iter().enumerate() {
                let (sim, stats) = h.join().unwrap();
                fp = fp.wrapping_add(sim.shard_fingerprint(me, n_shards));
                committed += stats.committed;
            }
            assert_eq!(fp, want_fp, "{n_shards} shards x {queue:?}: fingerprint diverged");
            assert_eq!(
                committed, want_committed,
                "{n_shards} shards x {queue:?}: committed diverged"
            );
        }
    }
}
