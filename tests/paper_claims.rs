//! Shape tests for the paper's key findings (§VI summary). These assert
//! *directions* — who is hurt more, which policy confines traffic — on
//! Quick-profile systems, not absolute numbers.

use codes::{SimResults, SimulationBuilder};
use dragonfly::{DragonflyConfig, Routing, Topology};
use metrics::AppLatencySummary;
use placement::{JobRequest, Layout, Placement};
use ross::{Scheduler, SimTime};
use workloads::{app, AppKind, Profile};

fn run_mix(
    net: DragonflyConfig,
    placement: Placement,
    routing: Routing,
    kinds: &[AppKind],
    iters: i64,
    scale: i64,
    window_ns: u64,
) -> SimResults {
    let mut b = SimulationBuilder::new(net)
        .routing(routing)
        .placement(placement)
        .seed(13)
        .window_ns(window_ns);
    for &k in kinds {
        let cfg = app(k, Profile::Quick, iters, scale);
        b = b.job(cfg.name(), cfg.vms(1).unwrap());
    }
    let mut sim = b.build().unwrap();
    sim.run(Scheduler::Sequential, SimTime::MAX)
}

fn avg_latency(r: &SimResults, name: &str) -> f64 {
    let a = r.apps.iter().find(|a| a.name == name).unwrap();
    AppLatencySummary::from_ranks(&a.latency).overall_avg_ns
}

/// Finding: "Placing communication-intensive applications into separate
/// groups helps confine their messages within the assigned groups" —
/// under RG placement, a job's traffic stays mostly inside its own
/// groups; under RN it spreads.
#[test]
fn random_groups_confines_traffic() {
    let kinds = [AppKind::NearestNeighbor, AppKind::UniformRandom];
    let rg = run_mix(
        DragonflyConfig::small_1d(),
        Placement::RandomGroups,
        Routing::Minimal,
        &kinds,
        3,
        32,
        0,
    );
    let rn = run_mix(
        DragonflyConfig::small_1d(),
        Placement::RandomNodes,
        Routing::Minimal,
        &kinds,
        3,
        32,
        0,
    );
    // NN's halo partners are mostly rank-adjacent: with RG they share a
    // group, so the share of traffic crossing global links must be far
    // smaller than under RN.
    assert!(
        rg.link_load.global_fraction() < rn.link_load.global_fraction(),
        "RG {:.3} vs RN {:.3}",
        rg.link_load.global_fraction(),
        rn.link_load.global_fraction()
    );
}

/// Finding (Fig 7): network interference inflates message latency; the
/// co-run latency is at least the baseline latency.
#[test]
fn interference_does_not_reduce_latency() {
    let alone = run_mix(
        DragonflyConfig::small_1d(),
        Placement::RandomNodes,
        Routing::Adaptive,
        &[AppKind::NearestNeighbor],
        3,
        16,
        0,
    );
    let mixed = run_mix(
        DragonflyConfig::small_1d(),
        Placement::RandomNodes,
        Routing::Adaptive,
        &[AppKind::NearestNeighbor, AppKind::Milc, AppKind::UniformRandom],
        3,
        16,
        0,
    );
    let base = avg_latency(&alone, "NN");
    let with = avg_latency(&mixed, "NN");
    assert!(
        with >= base * 0.95,
        "co-run latency {with:.0}ns unexpectedly below baseline {base:.0}ns"
    );
}

/// Finding (Fig 7/9, §VI-D): "adaptive routing performs better than
/// minimal routing under the same placement method" for congested
/// workloads.
#[test]
fn adaptive_routing_helps_under_load() {
    let kinds = [AppKind::Cosmoflow, AppKind::Milc, AppKind::NearestNeighbor];
    let min = run_mix(
        DragonflyConfig::small_1d(),
        Placement::RandomNodes,
        Routing::Minimal,
        &kinds,
        2,
        16,
        0,
    );
    let adp = run_mix(
        DragonflyConfig::small_1d(),
        Placement::RandomNodes,
        Routing::Adaptive,
        &kinds,
        2,
        16,
        0,
    );
    // Use the worst app makespan as the congestion proxy.
    let worst =
        |r: &SimResults| r.apps.iter().map(|a| a.makespan_ns().unwrap()).max().unwrap() as f64;
    assert!(
        worst(&adp) <= worst(&min) * 1.10,
        "ADP {:.1}ms should not lose badly to MIN {:.1}ms",
        worst(&adp) / 1e6,
        worst(&min) / 1e6
    );
}

/// Finding (Table VI): the 1D system pushes a larger share of its traffic
/// through global links than the 2D system, and loads each link more.
#[test]
fn one_d_loads_links_harder_than_two_d() {
    let kinds = [AppKind::Cosmoflow, AppKind::NearestNeighbor, AppKind::Milc];
    let d1 = run_mix(
        DragonflyConfig::small_1d(),
        Placement::RandomGroups,
        Routing::Adaptive,
        &kinds,
        2,
        16,
        0,
    );
    let d2 = run_mix(
        DragonflyConfig::small_2d(),
        Placement::RandomGroups,
        Routing::Adaptive,
        &kinds,
        2,
        16,
        0,
    );
    assert!(
        d1.link_load.global_fraction() > d2.link_load.global_fraction(),
        "1D global share {:.3} should exceed 2D {:.3}",
        d1.link_load.global_fraction(),
        d2.link_load.global_fraction()
    );
    assert!(
        d1.link_load.per_global_link() > d2.link_load.per_global_link(),
        "1D per-global-link load should exceed 2D"
    );
}

/// Finding (Fig 8): under RG placement, the routers serving one job see
/// less traffic from *other* jobs than under RR placement.
#[test]
fn rg_reduces_foreign_traffic_on_job_routers() {
    let kinds = [AppKind::Cosmoflow, AppKind::NearestNeighbor, AppKind::Milc];
    let window = 500_000u64;
    let foreign = |placement: Placement| -> u64 {
        let r = run_mix(
            DragonflyConfig::small_1d(),
            placement,
            Routing::Adaptive,
            &kinds,
            2,
            16,
            window,
        );
        // Recompute the layout to find Cosmoflow's (app 0's) routers.
        let topo = Topology::build(DragonflyConfig::small_1d());
        let reqs: Vec<JobRequest> = kinds
            .iter()
            .map(|&k| {
                let c = app(k, Profile::Quick, 2, 16);
                JobRequest::new(c.name(), c.ranks)
            })
            .collect();
        let layout = Layout::place(&topo, &reqs, placement, 13).unwrap();
        let routers = layout.routers_of_job(&topo, 0);
        let series = r.series_over(&routers, window);
        // Total bytes those routers received from apps 1 and 2.
        (1..kinds.len()).map(|a| series.total(a)).sum()
    };
    let rg = foreign(Placement::RandomGroups);
    let rr = foreign(Placement::RandomRouters);
    assert!(rg < rr, "foreign bytes on job routers: RG {rg} should be below RR {rr}");
}

/// Finding (§VI-B): ML applications absorb latency variation better —
/// their communication-time slowdown is milder than their latency
/// slowdown.
#[test]
fn ml_absorbs_latency_variation() {
    let alone = run_mix(
        DragonflyConfig::small_1d(),
        Placement::RandomNodes,
        Routing::Adaptive,
        &[AppKind::Cosmoflow],
        2,
        16,
        0,
    );
    let mixed = run_mix(
        DragonflyConfig::small_1d(),
        Placement::RandomNodes,
        Routing::Adaptive,
        &[AppKind::Cosmoflow, AppKind::Milc, AppKind::NearestNeighbor],
        2,
        16,
        0,
    );
    let lat_slow = avg_latency(&mixed, "Cosmoflow") / avg_latency(&alone, "Cosmoflow");
    let comm = |r: &SimResults| {
        let a = r.apps.iter().find(|a| a.name == "Cosmoflow").unwrap();
        a.comm.iter().map(|c| c.total_ns as f64).sum::<f64>() / a.comm.len() as f64
    };
    let comm_slow = comm(&mixed) / comm(&alone);
    // The communication-time slowdown must not exceed the latency
    // slowdown by much: latency spikes are absorbed by the already-long
    // blocking allreduces.
    assert!(
        comm_slow <= lat_slow * 1.5 + 0.5,
        "comm slowdown {comm_slow:.2} vs latency slowdown {lat_slow:.2}"
    );
}
