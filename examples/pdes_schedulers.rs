//! The ROSS-style PDES engine on its own: run the same workload under the
//! sequential, conservative, and optimistic (Time Warp) schedulers and
//! compare wall time, event rates, and rollback behaviour.
//!
//! ```sh
//! cargo run --release --example pdes_schedulers
//! ```

use codes::SimulationBuilder;
use dragonfly::{DragonflyConfig, Routing};
use placement::Placement;
use ross::{Scheduler, SimTime};
use workloads::{app, AppKind, Profile};

fn main() {
    println!("One Workload3-style mix, three schedulers (the paper used\nCODES/ROSS's optimistic parallel mode on 144 cores):\n");
    println!("| scheduler | events | wall (s) | events/s | rolled back | efficiency |");
    println!("|---|---|---|---|---|---|");

    let mut reference: Option<u64> = None;
    for sched in [Scheduler::Sequential, Scheduler::Conservative(4), Scheduler::Optimistic(4)] {
        // Rebuild the identical simulation for each scheduler.
        let mut b = SimulationBuilder::new(DragonflyConfig::small_1d())
            .routing(Routing::Adaptive)
            .placement(Placement::RandomGroups)
            .seed(5);
        for kind in [AppKind::Cosmoflow, AppKind::NearestNeighbor, AppKind::Milc] {
            let cfg = app(kind, Profile::Quick, 2, 32);
            b = b.job(cfg.name(), cfg.vms(1).unwrap());
        }
        let mut sim = b.build().unwrap();
        let r = sim.run(sched, SimTime::MAX);
        println!(
            "| {:?} | {} | {:.2} | {:.0} | {} | {:.1}% |",
            sched,
            r.stats.committed,
            r.stats.wall_seconds,
            r.stats.event_rate(),
            r.stats.rolled_back,
            100.0 * r.stats.rollback_efficiency(),
        );
        // All three must commit exactly the same events.
        match reference {
            None => reference = Some(r.stats.committed),
            Some(c) => assert_eq!(c, r.stats.committed, "schedulers disagreed!"),
        }
    }
    println!("\nAll three schedulers committed identical event counts — the\nengine's determinism guarantee (same model, bit-identical results).");
}
