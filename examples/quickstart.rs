//! Quickstart: write a network test in the coNCePTuaL DSL, let Union
//! skeletonize it, and simulate it on a dragonfly — the full pipeline of
//! the paper in ~40 lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use codes::SimulationBuilder;
use dragonfly::{DragonflyConfig, Routing};
use placement::Placement;
use ross::{Scheduler, SimTime};
use union_core::{translate_source, RankVm, SkeletonInstance};

fn main() {
    // 1. An application, described in plain English (paper Fig 1).
    let source = r#"
        Require language version "1.5".
        reps is "Number of repetitions" and comes from "--reps" or "-r" with default 100.
        msgsize is "Message size of bytes to transmit" and comes from "--msgsize" or "-m" with default 1024.
        Assert that "the latency test requires at least two tasks" with num_tasks >= 2.
        For reps repetitions {
          task 0 resets its counters then
          task 0 sends a msgsize byte message to task 1 then
          task 1 sends a msgsize byte message to task 0 then
          task 0 logs the msgsize as "Bytes" and the median of elapsed_usecs/2 as "1/2 RTT (usecs)"
        }
        then task 0 computes aggregates.
    "#;

    // 2. Union's translator turns it into a skeleton automatically.
    let skeleton = translate_source(source, "pingpong").expect("compile");
    println!("compiled `{}`: {} bytecode instructions", skeleton.name, skeleton.code.len());

    // 3. Bind it to a 2-rank job with overridden parameters.
    let inst = SkeletonInstance::new(&skeleton, 2, &["--msgsize", "4096"]).expect("bind");
    let vms: Vec<RankVm> = (0..2).map(|r| RankVm::new(inst.clone(), r, 7)).collect();

    // 4. Simulate it in situ on a small 1D dragonfly.
    let mut sim = SimulationBuilder::new(DragonflyConfig::tiny_1d())
        .routing(Routing::Adaptive)
        .placement(Placement::RandomNodes)
        .job("pingpong", vms)
        .build()
        .expect("build simulation");
    let results = sim.run(Scheduler::Sequential, SimTime::MAX);

    // 5. Read the metrics the paper analyzes.
    let app = &results.apps[0];
    println!("simulated {} events", results.stats.committed);
    for (rank, lat) in app.latency.iter().enumerate() {
        println!(
            "rank {rank}: {} messages, latency min/avg/max = {:.2}/{:.2}/{:.2} us",
            lat.count,
            lat.min_ns as f64 / 1e3,
            lat.avg_ns() / 1e3,
            lat.max_ns as f64 / 1e3,
        );
    }
    println!(
        "makespan: {:.3} ms, all ranks finished: {}",
        app.makespan_ns().unwrap() as f64 / 1e6,
        app.all_done()
    );
}
