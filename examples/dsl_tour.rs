//! A tour of the coNCePTuaL DSL and the Union toolchain: virtual
//! topologies, selectors, conditionals — and what the translator emits.
//!
//! ```sh
//! cargo run --release --example dsl_tour
//! ```

use union_core::{codegen, translate_source, RankVm, SkeletonInstance, Validation};

fn main() {
    // A 4x4 torus halo exchange with a tree reduction, written in English.
    let source = r#"
        Require language version "1.5".
        side is "Torus side" and comes from "--side" with default 4.
        iters is "Iterations" and comes from "--iters" with default 3.
        Assert that "need a full square grid" with side*side <= num_tasks.

        For iters repetitions {
          all tasks t asynchronously send a 64 kilobyte message
            to task TORUS_NEIGHBOR(side, side, 1, t, 1, 0, 0) then
          all tasks t asynchronously send a 64 kilobyte message
            to task TORUS_NEIGHBOR(side, side, 1, t, 0, 1, 0) then
          all tasks await completions then
          tasks t such that t <> 0 send a 8 byte message to task TREE_PARENT(t) then
          all tasks synchronize
        }.
    "#;

    let skeleton = translate_source(source, "torus_halo").expect("compile");
    println!("=== generated Union skeleton (paper Fig 5 style) ===\n");
    println!("{}", codegen::render_c(&skeleton));

    // Execute the skeleton's op streams and summarize them (the machinery
    // behind the paper's validation tables).
    let n = 16;
    let inst = SkeletonInstance::new(&skeleton, n, &[]).expect("bind");
    let v = Validation::collect(n, |r| RankVm::new(inst.clone(), r, 1));
    println!("=== validation summary over {n} ranks ===\n");
    println!("event counts:");
    for (f, c) in &v.event_counts {
        println!("  {f:<14} {c}");
    }
    let total: u64 = v.bytes_per_rank.iter().sum();
    println!("total bytes transmitted: {}", metrics::fmt_bytes(total as f64));
    println!(
        "rank 0 control flow starts: {}",
        v.control_flow[..12.min(v.control_flow.len())].join(" -> ")
    );
}
