//! Interference study: co-run an ML application with an HPC halo kernel —
//! the scenario that motivates the paper — and measure how job placement
//! changes the ML job's message latency.
//!
//! ```sh
//! cargo run --release --example interference_study
//! ```

use codes::{SimResults, SimulationBuilder};
use dragonfly::{DragonflyConfig, Routing};
use metrics::AppLatencySummary;
use placement::Placement;
use ross::{Scheduler, SimTime};
use workloads::{app, AppKind, Profile};

fn run(placement: Placement, with_interference: bool) -> SimResults {
    // The victim is Nekbone: a CG solver trading small 8-byte dot-product
    // collectives and mid-size halos — exactly the communication style the
    // paper finds most interference-sensitive. The aggressors are the two
    // bandwidth-heavy ML/HPC codes.
    let victim = app(AppKind::Nekbone, Profile::Quick, 10, 8);
    let mut b = SimulationBuilder::new(DragonflyConfig::small_1d())
        .routing(Routing::Adaptive)
        .placement(placement)
        .seed(11)
        .job(victim.name(), victim.vms(1).unwrap());
    if with_interference {
        let ml = app(AppKind::Cosmoflow, Profile::Quick, 3, 16);
        let milc = app(AppKind::Milc, Profile::Quick, 12, 4);
        b = b.job(ml.name(), ml.vms(1).unwrap()).job(milc.name(), milc.vms(1).unwrap());
    }
    b.build().unwrap().run(Scheduler::Sequential, SimTime::MAX)
}

fn main() {
    println!("Nekbone (27 ranks) vs Cosmoflow + MILC interference on a 544-node 1D dragonfly\n");
    println!("| placement | avg latency alone (us) | avg latency co-run (us) | slowdown |");
    println!("|---|---|---|---|");
    for placement in Placement::all() {
        let alone = run(placement, false);
        let mixed = run(placement, true);
        let base = AppLatencySummary::from_ranks(&alone.apps[0].latency);
        let with = AppLatencySummary::from_ranks(&mixed.apps[0].latency);
        println!(
            "| {} | {:.1} | {:.1} | {:.2}x |",
            placement.label(),
            base.overall_avg_ns / 1e3,
            with.overall_avg_ns / 1e3,
            with.overall_avg_ns / base.overall_avg_ns,
        );
    }
    println!(
        "\nThe paper's finding: random-group placement confines each job's \
         traffic to its own groups, so it usually shows the smallest latency \
         degradation; random-node placement mixes jobs on shared routers and \
         degrades the most."
    );
}
