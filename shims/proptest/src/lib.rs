//! Offline stand-in for `proptest`: random-input testing without
//! shrinking. The `proptest!` macro expands each case into a plain
//! `#[test]` that samples every strategy `cases` times from a
//! deterministic per-test RNG (seeded by hashing the test name), so runs
//! are reproducible. On failure the offending inputs are printed —
//! rerunning reproduces them exactly; there is no shrinking phase.

use std::fmt;
use std::ops::Range;

/// Subset of proptest's config: only `cases` is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Failure raised by `prop_assert…!` macros; carries the message only.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Deterministic test RNG (splitmix64), seeded from the test name.
pub struct TestRng(u64);

impl TestRng {
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// FNV-1a of the test name → stable per-test seed.
pub fn test_rng(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng(h)
}

/// A source of random values for one macro argument.
pub trait Strategy {
    type Value: fmt::Debug;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `proptest::bool::ANY`.
pub mod bool {
    pub struct Any;
    pub const ANY: Any = Any;

    impl super::Strategy for Any {
        type Value = ::core::primitive::bool;
        fn sample(&self, rng: &mut super::TestRng) -> ::core::primitive::bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cfg.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    let __inputs = format!(
                        concat!($(stringify!($arg), " = {:?}, "),+),
                        $(&$arg),+
                    );
                    let __result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = __result {
                        panic!(
                            "proptest case {}/{} failed: {}\n  inputs: {}",
                            __case + 1, __cfg.cases, e, __inputs,
                        );
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assert_eq failed: {} != {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            __l,
            __r
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::test_rng("x");
        let mut b = crate::test_rng("x");
        let mut c = crate::test_rng("y");
        let (va, vb, vc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(a in 0u32..7, b in -5i64..5, flip in crate::bool::ANY) {
            prop_assert!(a < 7);
            prop_assert!((-5..5).contains(&b));
            let _ = flip;
        }

        #[test]
        fn eq_macro_passes(x in 1u64..100) {
            prop_assert_eq!(x + x, 2 * x);
        }
    }

    #[test]
    #[should_panic(expected = "inputs:")]
    fn failure_reports_inputs() {
        proptest! {
            fn inner(v in 0u32..10) {
                prop_assert!(v > 100, "deliberately false, v = {}", v);
            }
        }
        inner();
    }
}
