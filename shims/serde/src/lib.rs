//! Offline stand-in for `serde`.
//!
//! Instead of serde's visitor-based zero-copy data model, this shim uses
//! a plain JSON value tree: [`Serialize`] lowers a type to a [`Value`],
//! [`Deserialize`] rebuilds it from one. `serde_json` (the sibling shim)
//! prints and parses `Value`s. The derive macros (re-exported from
//! `serde_derive`) generate the same externally-tagged representation
//! real serde uses, so JSON written by this shim looks like ordinary
//! serde_json output.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A JSON-shaped value: the intermediate representation for both
/// serialization and deserialization.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Signed integers (also covers every unsigned value ≤ `i64::MAX`).
    Int(i64),
    /// Unsigned values above `i64::MAX`.
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered key/value pairs (field order is preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(v) => Some(v),
            Value::UInt(v) => i64::try_from(v).ok(),
            Value::Float(v) if v.fract() == 0.0 && v.abs() < 9.0e18 => Some(v as i64),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(v) => u64::try_from(v).ok(),
            Value::UInt(v) => Some(v),
            Value::Float(v) if v.fract() == 0.0 && (0.0..1.9e19).contains(&v) => Some(v as u64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(v) => Some(v as f64),
            Value::UInt(v) => Some(v as f64),
            Value::Float(v) => Some(v),
            _ => None,
        }
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// Deserialization error (also reused by `serde_json` for parse errors).
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    pub fn msg(m: impl Into<String>) -> Error {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Lower `self` into a [`Value`].
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`].
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Helper used by derived code: look up and deserialize an object field.
/// Missing fields deserialize as `Null` (covers `Option` fields omitted
/// by hand-written JSON).
pub fn field<T: Deserialize>(obj: &[(String, Value)], key: &str) -> Result<T, Error> {
    match obj.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_value(v).map_err(|e| Error::msg(format!("field `{key}`: {e}"))),
        None => {
            T::from_value(&Value::Null).map_err(|_| Error::msg(format!("missing field `{key}`")))
        }
    }
}

// ---------------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------------

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as u64;
                match i64::try_from(v) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::UInt(v),
                }
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! ser_tuple {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    )+};
}
ser_tuple!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3),);

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Deterministic output: sort keys like a BTreeMap.
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------------

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = v.as_i64()
                    .ok_or_else(|| Error::msg(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(i).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize);

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let u = v.as_u64()
                    .ok_or_else(|| Error::msg(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(u).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}
de_uint!(u8, u16, u32, u64, usize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::msg("expected number"))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().map(|f| f as f32).ok_or_else(|| Error::msg("expected number"))
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::msg("expected bool")),
        }
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_string).ok_or_else(|| Error::msg("expected string"))
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            _ => Err(Error::msg("expected null")),
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::msg("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

macro_rules! de_tuple {
    ($(($len:literal, $($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let a = v.as_array().ok_or_else(|| Error::msg("expected array"))?;
                if a.len() != $len {
                    return Err(Error::msg("tuple length mismatch"));
                }
                Ok(($($name::from_value(&a[$idx])?,)+))
            }
        }
    )+};
}
de_tuple!((2, A.0, B.1), (3, A.0, B.1, C.2), (4, A.0, B.1, C.2, D.3),);

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::msg("expected object"))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::msg("expected object"))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
