//! Offline stand-in for `serde_derive`.
//!
//! Hand-rolled derive macros for the `serde` shim's value-tree data model
//! — no `syn`/`quote` (the build environment cannot fetch them). The
//! parser handles the item shapes this workspace actually derives on:
//!
//! * structs with named fields, tuple structs, unit structs;
//! * enums with unit, tuple, and struct variants (externally tagged, the
//!   serde default);
//! * `#[serde(skip)]` on fields (skipped on serialize; filled from
//!   `Default::default()` on deserialize);
//! * lifetime/type generics copied verbatim onto the generated impl.
//!
//! Representation matches real serde_json output: structs → objects,
//! unit variants → `"Variant"`, newtype variants → `{"Variant": value}`,
//! tuple variants → `{"Variant": [..]}`, struct variants →
//! `{"Variant": {..}}`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: Option<String>,
    skip: bool,
}

enum Fields {
    Unit,
    Named(Vec<Field>),
    Tuple(Vec<Field>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Kind {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    /// Raw generic parameter tokens (without the outer `<`/`>`).
    generics: Vec<TokenTree>,
    kind: Kind,
}

/// Does an attribute group (the `[...]` part) spell `serde(skip)`?
fn is_serde_skip(g: &proc_macro::Group) -> bool {
    let mut toks = g.stream().into_iter();
    match (toks.next(), toks.next()) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(inner)))
            if id.to_string() == "serde" =>
        {
            inner
                .stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "skip"))
        }
        _ => false,
    }
}

/// Skip attributes at `i`, returning whether any was `#[serde(skip)]`.
fn skip_attrs(toks: &[TokenTree], i: &mut usize) -> bool {
    let mut skip = false;
    while matches!(toks.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        if let Some(TokenTree::Group(g)) = toks.get(*i + 1) {
            if is_serde_skip(g) {
                skip = true;
            }
        }
        *i += 2;
    }
    skip
}

/// Skip a `pub` / `pub(...)` visibility qualifier.
fn skip_vis(toks: &[TokenTree], i: &mut usize) {
    if matches!(toks.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Skip tokens until a top-level comma (tracking `<`/`>` nesting for
/// types like `BTreeMap<String, u64>`; parens/brackets/braces are already
/// single `Group` tokens). Consumes the comma.
fn skip_to_comma(toks: &[TokenTree], i: &mut usize) {
    let mut depth = 0i64;
    while *i < toks.len() {
        match &toks[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}

fn parse_named_fields(g: &proc_macro::Group) -> Vec<Field> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        let skip = skip_attrs(&toks, &mut i);
        skip_vis(&toks, &mut i);
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim derive: expected field name, got {other}"),
        };
        i += 1; // name
        i += 1; // ':'
        skip_to_comma(&toks, &mut i);
        fields.push(Field { name: Some(name), skip });
    }
    fields
}

fn parse_tuple_fields(g: &proc_macro::Group) -> Vec<Field> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        let skip = skip_attrs(&toks, &mut i);
        skip_vis(&toks, &mut i);
        skip_to_comma(&toks, &mut i);
        fields.push(Field { name: None, skip });
    }
    fields
}

fn parse_variants(g: &proc_macro::Group) -> Vec<Variant> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        skip_attrs(&toks, &mut i); // incl. #[default] on Default enums
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim derive: expected variant name, got {other}"),
        };
        i += 1;
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(parse_tuple_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g))
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant and/or the trailing comma.
        skip_to_comma(&toks, &mut i);
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    loop {
        skip_attrs(&toks, &mut i);
        skip_vis(&toks, &mut i);
        match &toks[i] {
            TokenTree::Ident(id) if id.to_string() == "struct" || id.to_string() == "enum" => break,
            _ => i += 1, // e.g. `union` would land here; unsupported shapes panic below
        }
    }
    let is_enum = matches!(&toks[i], TokenTree::Ident(id) if id.to_string() == "enum");
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected item name, got {other}"),
    };
    i += 1;

    // Generic parameters.
    let mut generics = Vec::new();
    if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        i += 1;
        let mut depth = 1i64;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {}
            }
            generics.push(toks[i].clone());
            i += 1;
        }
    }

    // Optional where-clause: skip to the body.
    while i < toks.len() && !matches!(&toks[i], TokenTree::Group(_) | TokenTree::Punct(_)) {
        i += 1;
    }

    let kind = if is_enum {
        match &toks[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g))
            }
            other => panic!("serde shim derive: expected enum body, got {other}"),
        }
    } else {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Struct(Fields::Named(parse_named_fields(g)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::Struct(Fields::Tuple(parse_tuple_fields(g)))
            }
            _ => Kind::Struct(Fields::Unit),
        }
    };

    Item { name, generics, kind }
}

/// `<'a, T: Bound>` → (`<'a, T: Bound>`, `<'a, T>`); empty generics →
/// two empty strings.
fn generic_strings(generics: &[TokenTree]) -> (String, String) {
    if generics.is_empty() {
        return (String::new(), String::new());
    }
    // Lifetimes arrive as a `'` punct followed by an ident; the quote
    // must stay glued to the name or the output does not lex.
    let mut raw = String::new();
    for t in generics {
        match t {
            TokenTree::Punct(p) if p.as_char() == '\'' => raw.push('\''),
            other => {
                raw.push_str(&other.to_string());
                raw.push(' ');
            }
        }
    }
    // Argument list: each top-level comma-separated param up to its `:`.
    let mut args: Vec<String> = Vec::new();
    let mut cur = String::new();
    let mut in_bound = false;
    let mut depth = 0i64;
    for t in generics {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                args.push(std::mem::take(&mut cur));
                in_bound = false;
                continue;
            }
            TokenTree::Punct(p) if p.as_char() == ':' && depth == 0 => {
                in_bound = true;
                continue;
            }
            _ => {}
        }
        if !in_bound {
            match t {
                TokenTree::Punct(p) if p.as_char() == '\'' => cur.push('\''),
                other => {
                    cur.push_str(&other.to_string());
                }
            }
        }
    }
    if !cur.is_empty() {
        args.push(cur);
    }
    (format!("<{raw}>"), format!("<{}>", args.join(", ")))
}

// ---------------------------------------------------------------------------
// Serialize
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let (gen_params, gen_args) = generic_strings(&item.generics);
    let body = match &item.kind {
        Kind::Struct(fields) => ser_struct_body(fields),
        Kind::Enum(variants) => ser_enum_body(variants),
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(warnings, clippy::all, clippy::pedantic)]\n\
         impl{gen_params} serde::Serialize for {name}{gen_args} {{\n\
             fn to_value(&self) -> serde::Value {{\n{body}\n}}\n\
         }}\n",
        name = item.name,
    )
}

fn ser_struct_body(fields: &Fields) -> String {
    match fields {
        Fields::Unit => "serde::Value::Null".to_string(),
        Fields::Named(fs) => {
            let mut out =
                String::from("let mut __obj: Vec<(String, serde::Value)> = Vec::new();\n");
            for f in fs.iter().filter(|f| !f.skip) {
                let n = f.name.as_ref().unwrap();
                out.push_str(&format!(
                    "__obj.push((\"{n}\".to_string(), serde::Serialize::to_value(&self.{n})));\n"
                ));
            }
            out.push_str("serde::Value::Object(__obj)");
            out
        }
        Fields::Tuple(fs) => {
            let live: Vec<usize> =
                fs.iter().enumerate().filter(|(_, f)| !f.skip).map(|(i, _)| i).collect();
            match live.as_slice() {
                [] => "serde::Value::Null".to_string(),
                [i] => format!("serde::Serialize::to_value(&self.{i})"),
                many => {
                    let elems: Vec<String> = many
                        .iter()
                        .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("serde::Value::Array(vec![{}])", elems.join(", "))
                }
            }
        }
    }
}

fn ser_enum_body(variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.fields {
            Fields::Unit => {
                arms.push_str(&format!("Self::{vn} => serde::Value::Str(\"{vn}\".to_string()),\n"));
            }
            Fields::Tuple(fs) => {
                let pat: Vec<String> = fs
                    .iter()
                    .enumerate()
                    .map(|(i, f)| if f.skip { "_".to_string() } else { format!("__f{i}") })
                    .collect();
                let live: Vec<usize> =
                    fs.iter().enumerate().filter(|(_, f)| !f.skip).map(|(i, _)| i).collect();
                let inner = match live.as_slice() {
                    [] => None,
                    [i] => Some(format!("serde::Serialize::to_value(__f{i})")),
                    many => {
                        let elems: Vec<String> = many
                            .iter()
                            .map(|i| format!("serde::Serialize::to_value(__f{i})"))
                            .collect();
                        Some(format!("serde::Value::Array(vec![{}])", elems.join(", ")))
                    }
                };
                match inner {
                    None => arms.push_str(&format!(
                        "Self::{vn}({}) => serde::Value::Str(\"{vn}\".to_string()),\n",
                        pat.join(", ")
                    )),
                    Some(inner) => arms.push_str(&format!(
                        "Self::{vn}({}) => serde::Value::Object(vec![(\"{vn}\".to_string(), {inner})]),\n",
                        pat.join(", ")
                    )),
                }
            }
            Fields::Named(fs) => {
                let pat: Vec<String> = fs
                    .iter()
                    .map(|f| {
                        let n = f.name.as_ref().unwrap();
                        if f.skip {
                            format!("{n}: _")
                        } else {
                            n.clone()
                        }
                    })
                    .collect();
                let mut inner =
                    String::from("{ let mut __fobj: Vec<(String, serde::Value)> = Vec::new();\n");
                for f in fs.iter().filter(|f| !f.skip) {
                    let n = f.name.as_ref().unwrap();
                    inner.push_str(&format!(
                        "__fobj.push((\"{n}\".to_string(), serde::Serialize::to_value({n})));\n"
                    ));
                }
                inner.push_str("serde::Value::Object(__fobj) }");
                arms.push_str(&format!(
                    "Self::{vn} {{ {} }} => serde::Value::Object(vec![(\"{vn}\".to_string(), {inner})]),\n",
                    pat.join(", ")
                ));
            }
        }
    }
    format!("match self {{\n{arms}}}")
}

// ---------------------------------------------------------------------------
// Deserialize
// ---------------------------------------------------------------------------

fn gen_deserialize(item: &Item) -> String {
    let (gen_params, gen_args) = generic_strings(&item.generics);
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(fields) => de_struct_body(name, fields),
        Kind::Enum(variants) => de_enum_body(name, variants),
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(warnings, clippy::all, clippy::pedantic)]\n\
         impl{gen_params} serde::Deserialize for {name}{gen_args} {{\n\
             fn from_value(__v: &serde::Value) -> Result<Self, serde::Error> {{\n{body}\n}}\n\
         }}\n",
    )
}

fn de_struct_body(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => format!(
            "match __v {{ serde::Value::Null => Ok(Self), \
             _ => Err(serde::Error::msg(\"expected null for {name}\")) }}"
        ),
        Fields::Named(fs) => {
            let mut out = format!(
                "let __obj = __v.as_object()\
                 .ok_or_else(|| serde::Error::msg(\"expected object for {name}\"))?;\n\
                 Ok(Self {{\n"
            );
            for f in fs {
                let n = f.name.as_ref().unwrap();
                if f.skip {
                    out.push_str(&format!("{n}: Default::default(),\n"));
                } else {
                    out.push_str(&format!("{n}: serde::field(__obj, \"{n}\")?,\n"));
                }
            }
            out.push_str("})");
            out
        }
        Fields::Tuple(fs) => de_tuple_ctor(fs, "Self", "__v", name),
    }
}

/// Build `Ctor(a, b, ...)` deserialization from value expr `src`.
fn de_tuple_ctor(fs: &[Field], ctor: &str, src: &str, what: &str) -> String {
    let live: Vec<usize> = fs.iter().enumerate().filter(|(_, f)| !f.skip).map(|(i, _)| i).collect();
    let arg = |expr: String, idx: usize| -> String {
        if fs[idx].skip {
            "Default::default()".to_string()
        } else {
            expr
        }
    };
    match live.len() {
        0 => {
            let args: Vec<String> = fs.iter().map(|_| "Default::default()".to_string()).collect();
            format!("Ok({ctor}({}))", args.join(", "))
        }
        1 => {
            let args: Vec<String> = (0..fs.len())
                .map(|i| arg(format!("serde::Deserialize::from_value({src})?"), i))
                .collect();
            format!("Ok({ctor}({}))", args.join(", "))
        }
        n => {
            let mut out = format!(
                "let __a = {src}.as_array()\
                 .ok_or_else(|| serde::Error::msg(\"expected array for {what}\"))?;\n\
                 if __a.len() != {n} {{ \
                 return Err(serde::Error::msg(\"wrong tuple length for {what}\")); }}\n"
            );
            let mut next = 0usize;
            let args: Vec<String> = (0..fs.len())
                .map(|i| {
                    if fs[i].skip {
                        "Default::default()".to_string()
                    } else {
                        let e = format!("serde::Deserialize::from_value(&__a[{next}])?");
                        next += 1;
                        e
                    }
                })
                .collect();
            out.push_str(&format!("Ok({ctor}({}))", args.join(", ")));
            out
        }
    }
}

fn de_enum_body(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter_map(|v| match &v.fields {
            Fields::Unit => Some(format!("\"{0}\" => Ok(Self::{0}),\n", v.name)),
            Fields::Tuple(fs) if fs.iter().all(|f| f.skip) => {
                let args: Vec<String> =
                    fs.iter().map(|_| "Default::default()".to_string()).collect();
                Some(format!("\"{0}\" => Ok(Self::{0}({1})),\n", v.name, args.join(", ")))
            }
            _ => None,
        })
        .collect();
    let mut data_arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.fields {
            Fields::Unit => {}
            Fields::Tuple(fs) => {
                if fs.iter().all(|f| f.skip) {
                    continue;
                }
                let ctor = format!("Self::{vn}");
                let inner = de_tuple_ctor(fs, &ctor, "__inner", &format!("{name}::{vn}"));
                data_arms.push_str(&format!("\"{vn}\" => {{ {inner} }}\n"));
            }
            Fields::Named(fs) => {
                let mut inner = format!(
                    "let __fo = __inner.as_object()\
                     .ok_or_else(|| serde::Error::msg(\"expected object for {name}::{vn}\"))?;\n\
                     Ok(Self::{vn} {{\n"
                );
                for f in fs {
                    let n = f.name.as_ref().unwrap();
                    if f.skip {
                        inner.push_str(&format!("{n}: Default::default(),\n"));
                    } else {
                        inner.push_str(&format!("{n}: serde::field(__fo, \"{n}\")?,\n"));
                    }
                }
                inner.push_str("})");
                data_arms.push_str(&format!("\"{vn}\" => {{ {inner} }}\n"));
            }
        }
    }
    let str_arm = if unit_arms.is_empty() {
        format!(
            "serde::Value::Str(_) => \
             Err(serde::Error::msg(\"unexpected string for enum {name}\")),\n"
        )
    } else {
        format!(
            "serde::Value::Str(__s) => match __s.as_str() {{\n{}\
             __other => Err(serde::Error::msg(\
             format!(\"unknown {name} variant `{{__other}}`\"))),\n}},\n",
            unit_arms.join("")
        )
    };
    let obj_arm = if data_arms.is_empty() {
        String::new()
    } else {
        format!(
            "serde::Value::Object(__o) if __o.len() == 1 => {{\n\
             let (__k, __inner) = &__o[0];\n\
             match __k.as_str() {{\n{data_arms}\
             __other => Err(serde::Error::msg(\
             format!(\"unknown {name} variant `{{__other}}`\"))),\n}}\n}},\n"
        )
    };
    format!(
        "match __v {{\n{str_arm}{obj_arm}\
         _ => Err(serde::Error::msg(\"expected enum value for {name}\")),\n}}"
    )
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("serde shim derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("serde shim derive: generated invalid Deserialize impl")
}
