//! Offline stand-in for the `rand` crate.
//!
//! Implements only the surface this workspace uses: [`rngs::SmallRng`]
//! seeded via [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over
//! half-open integer ranges, and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xorshift64\* with a splitmix64 seed expansion: fast,
//! `Clone`-able (so LP state snapshots restore the stream under Time Warp
//! rollbacks), and platform-independent. Streams are **not** compatible
//! with upstream `rand`; the workspace only relies on determinism for a
//! fixed seed, never on specific stream values.

/// A source of 64-bit randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a 64-bit seed (the only constructor the workspace
/// uses; full `from_seed` byte-array seeding is deliberately omitted).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// splitmix64: expands a (possibly tiny) seed into a well-mixed state.
#[inline]
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Integer types usable with [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Width of `lo..hi` as a `u64` (caller guarantees `lo < hi`).
    fn span(lo: Self, hi: Self) -> u64;
    /// `lo + idx` (caller guarantees the result is below `hi`).
    fn offset(lo: Self, idx: u64) -> Self;
}

macro_rules! impl_sample_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn span(lo: Self, hi: Self) -> u64 {
                (hi - lo) as u64
            }
            #[inline]
            fn offset(lo: Self, idx: u64) -> Self {
                lo + idx as $t
            }
        }
    )*};
}
impl_sample_uniform_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn span(lo: Self, hi: Self) -> u64 {
                hi.wrapping_sub(lo) as u64
            }
            #[inline]
            fn offset(lo: Self, idx: u64) -> Self {
                lo.wrapping_add(idx as $t)
            }
        }
    )*};
}
impl_sample_uniform_signed!(i8, i16, i32, i64, isize);

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (modulo reduction; the negligible bias
    /// is irrelevant here — we need determinism, not cryptography).
    #[inline]
    fn gen_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T {
        assert!(range.start < range.end, "gen_range called with empty range");
        let span = T::span(range.start, range.end);
        T::offset(range.start, self.next_u64() % span)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, cloneable PRNG (xorshift64\*).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = splitmix64(seed);
            if state == 0 {
                state = 0x9E37_79B9_7F4A_7C15; // xorshift state must be nonzero
            }
            SmallRng { state }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn clone_preserves_stream() {
        let mut a = SmallRng::seed_from_u64(7);
        let _ = a.gen_range(0u32..100);
        let mut b = a.clone();
        assert_eq!(a.gen_range(0u32..100), b.gen_range(0u32..100));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(5u32..17);
            assert!((5..17).contains(&v));
            let w = rng.gen_range(-4i64..9);
            assert!((-4..9).contains(&w));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX / 2)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX / 2)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "shuffle left the identity permutation");
    }
}
