//! Offline stand-in for `parking_lot`: a `Mutex` whose `lock()` returns
//! the guard directly (no `Result`), backed by `std::sync::Mutex`.
//! Poisoning is ignored — a panicked critical section in this workspace
//! aborts the test/run anyway, and the schedulers never rely on poison
//! semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    #[inline]
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    #[inline]
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(*m.lock(), vec![1, 2, 3]);
        assert_eq!(std::mem::take(&mut *m.lock()), vec![1, 2, 3]);
        assert!(m.lock().is_empty());
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
