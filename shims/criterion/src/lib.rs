//! Offline stand-in for `criterion`: a minimal wall-clock benchmark
//! harness with the same macro/builder surface. Each benchmark is timed
//! with `std::time::Instant` over `sample_size` iterations (after one
//! warm-up) and the mean is printed — no statistics, plots, or HTML
//! reports. Passing `--test` (as `cargo test --benches` does) runs every
//! closure exactly once so benches double as smoke tests.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

pub struct Bencher<'a> {
    iters: u64,
    elapsed: &'a mut Duration,
}

impl Bencher<'_> {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up round, unmeasured.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        *self.elapsed = start.elapsed();
    }
}

pub struct Criterion {
    test_mode: bool,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test --benches` / `cargo bench -- --test` pass `--test`:
        // run each closure once so benches act as smoke tests.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode, sample_size: 10 }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, id: &str, f: F) -> &mut Self {
        let sample_size = self.sample_size;
        run_bench(self.test_mode, sample_size, id, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), sample_size: self.sample_size, parent: self }
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher<'_>),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        run_bench(self.parent.test_mode, self.sample_size, &full, f);
        self
    }

    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher<'_>)>(test_mode: bool, sample_size: usize, id: &str, mut f: F) {
    // Keep even "real" runs cheap: this shim is for keeping bench code
    // compiled and exercised, not for publication-grade numbers.
    let iters = if test_mode { 1 } else { sample_size.min(20) as u64 };
    let mut elapsed = Duration::ZERO;
    let mut b = Bencher { iters, elapsed: &mut elapsed };
    f(&mut b);
    if test_mode {
        println!("bench {id}: ok (test mode)");
    } else {
        let mean = elapsed.as_secs_f64() / iters as f64;
        println!("bench {id}: {:.3} ms/iter (mean of {iters})", mean * 1e3);
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        // `pub` mirrors real criterion's expansion; groups live in bench
        // binaries where nothing is nameable from outside.
        #[allow(unreachable_pub)]
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("plain", |b| b.iter(|| black_box(2u64 + 2)));
        let mut g = c.benchmark_group("grouped");
        g.sample_size(3);
        g.bench_function(BenchmarkId::new("fn", 7), |b| b.iter(|| black_box(7 * 6)));
        g.bench_function(BenchmarkId::from_parameter("p"), |b| b.iter(|| black_box(1)));
        g.bench_function("bare-str", |b| b.iter(|| black_box(0)));
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
