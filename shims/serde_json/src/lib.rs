//! Offline stand-in for `serde_json`: prints and parses the `serde`
//! shim's [`Value`] tree as ordinary JSON. Output is plain ASCII JSON
//! (non-ASCII and control characters are `\u`-escaped), so files written
//! here parse with the real serde_json and vice versa.

use serde::{Deserialize, Serialize, Value};
use std::io::Write;

pub use serde::Error;

type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c if c.is_ascii() => out.push(c),
            c => {
                // Escape non-ASCII as UTF-16 code units (surrogate pairs
                // above the BMP), matching what strict parsers expect.
                let mut buf = [0u16; 2];
                for unit in c.encode_utf16(&mut buf) {
                    out.push_str(&format!("\\u{unit:04x}"));
                }
            }
        }
    }
    out.push('"');
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // Keep floats recognizable as floats on re-parse.
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        // Real serde_json emits null for non-finite floats.
        "null".to_string()
    }
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => out.push_str(&fmt_f64(*f)),
        Value::Str(s) => escape_into(s, out),
        Value::Array(a) => {
            out.push('[');
            for (i, e) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(e, out);
            }
            out.push(']');
        }
        Value::Object(o) => {
            out.push('{');
            for (i, (k, e)) in o.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(k, out);
                out.push(':');
                write_compact(e, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    const STEP: usize = 2;
    match v {
        Value::Array(a) if !a.is_empty() => {
            out.push_str("[\n");
            for (i, e) in a.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&" ".repeat(indent + STEP));
                write_pretty(e, indent + STEP, out);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push(']');
        }
        Value::Object(o) if !o.is_empty() => {
            out.push_str("{\n");
            for (i, (k, e)) in o.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&" ".repeat(indent + STEP));
                escape_into(k, out);
                out.push_str(": ");
                write_pretty(e, indent + STEP, out);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_compact(&value.to_value(), &mut out);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

pub fn to_vec<T: Serialize>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Unlike real serde_json this returns `io::Result` directly, which is
/// what every call site in this workspace wants (`?` inside
/// `io::Result` functions).
pub fn to_writer<W: Write, T: Serialize>(mut writer: W, value: &T) -> std::io::Result<()> {
    let mut out = String::new();
    write_compact(&value.to_value(), &mut out);
    writer.write_all(out.as_bytes())
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &str) -> Error {
        Error::msg(format!("{what} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn eat_word(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') | Some(b't') | Some(b'f') => {
                if self.eat_word("null") {
                    Ok(Value::Null)
                } else if self.eat_word("true") {
                    Ok(Value::Bool(true))
                } else if self.eat_word("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("expected JSON value"))
                }
            }
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected JSON value")),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or_else(|| self.err("unterminated string"))? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !(self.eat_word("\\u")) {
                                    return Err(self.err("lone surrogate"));
                                }
                                let lo = self.hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(char::from_u32(cp).ok_or_else(|| self.err("bad \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                b if b < 0x80 => {
                    // ASCII fast path; also keeps the char-at-a-time
                    // decode below O(1) instead of re-validating the
                    // whole remaining input per character.
                    out.push(b as char);
                    self.pos += 1;
                }
                _ => {
                    // Consume one multi-byte UTF-8 char (≤ 4 bytes).
                    let end = (self.pos + 4).min(self.bytes.len());
                    let chunk = &self.bytes[self.pos..end];
                    let c = match std::str::from_utf8(chunk) {
                        Ok(s) => s.chars().next(),
                        // A clean prefix means only the tail of the
                        // 4-byte window split a char; the first char is
                        // still whole.
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&chunk[..e.valid_up_to()])
                                .expect("validated prefix")
                                .chars()
                                .next()
                        }
                        Err(_) => None,
                    };
                    let c = c.ok_or_else(|| self.err("invalid UTF-8"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let s = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(s).map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if is_float {
            s.parse::<f64>().map(Value::Float).map_err(|_| self.err("bad number"))
        } else if let Ok(i) = s.parse::<i64>() {
            Ok(Value::Int(i))
        } else if let Ok(u) = s.parse::<u64>() {
            Ok(Value::UInt(u))
        } else {
            Err(self.err("number out of range"))
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.eat(b'[', "expected array")?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(out));
        }
        loop {
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(out));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.eat(b'{', "expected object")?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected `:`")?;
            let val = self.value()?;
            out.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(out));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    T::from_value(&v)
}

pub fn from_slice<T: Deserialize>(s: &[u8]) -> Result<T> {
    from_str(std::str::from_utf8(s).map_err(|_| Error::msg("invalid UTF-8"))?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_value() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::Int(-3)),
            ("b".to_string(), Value::Array(vec![Value::Bool(true), Value::Null])),
            ("c".to_string(), Value::Str("x \"y\"\nz".to_string())),
            ("d".to_string(), Value::Float(1.5)),
            ("e".to_string(), Value::UInt(u64::MAX)),
        ]);
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parses_plain_json() {
        let v: Value = from_str(r#" {"k": [1, 2.0, "three", {"n": null}] } "#).unwrap();
        assert_eq!(v.get("k").unwrap().as_array().unwrap().len(), 4);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2] trailing").is_err());
    }

    #[test]
    fn parses_raw_multibyte_utf8() {
        let v: Value = from_str("{\"name\":\"node 3 · AlexNet 🎉\"}").unwrap();
        assert_eq!(v.get("name").and_then(Value::as_str), Some("node 3 · AlexNet 🎉"));
        // A multi-byte char hard against the end of input.
        let v: Value = from_str("\"é\"").unwrap();
        assert_eq!(v.as_str(), Some("é"));
    }

    #[test]
    fn unicode_escapes() {
        let v = Value::Str("héllo 🎉".to_string());
        let s = to_string(&v).unwrap();
        assert!(s.is_ascii(), "{s}");
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }
}
