//! Exhaustive model of the Treiber-stack mailbox protocol used by
//! `ross::mailbox`: 2 producers × 1 consumer, CAS-push with `Release`,
//! swap-drain with `Acquire`. Asserts no event is lost or duplicated on
//! any interleaving, and that the deliberately mis-ordered variant (the
//! seeded bug from the issue: a `Relaxed` head swap in the drain) is
//! caught as a data race with a deterministically replayable schedule.

use ross_check::cell::UnsafeCell;
use ross_check::sync::atomic::{AtomicPtr, Ordering};
use ross_check::sync::Arc;
use ross_check::{thread, Builder};
use std::mem::ManuallyDrop;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::ptr;

struct Node<T> {
    item: UnsafeCell<ManuallyDrop<T>>,
    next: UnsafeCell<*mut Node<T>>,
}

struct Stack<T> {
    head: AtomicPtr<Node<T>>,
}

unsafe impl<T: Send> Send for Stack<T> {}
unsafe impl<T: Send> Sync for Stack<T> {}

impl<T> Stack<T> {
    fn new() -> Self {
        Stack { head: AtomicPtr::new(ptr::null_mut()) }
    }

    fn push(&self, item: T) {
        let node = Box::into_raw(Box::new(Node {
            item: UnsafeCell::new(ManuallyDrop::new(item)),
            next: UnsafeCell::new(ptr::null_mut()),
        }));
        loop {
            let head = self.head.load(Ordering::Relaxed);
            unsafe { (*node).next.with_mut(|p| *p = head) };
            if self.head.compare_exchange(head, node, Ordering::Release, Ordering::Relaxed).is_ok()
            {
                return;
            }
        }
    }

    /// Detach the whole stack and return items in LIFO order. `order` is
    /// the swap ordering — `Acquire` is correct; `Relaxed` is the seeded
    /// bug the checker must catch.
    fn drain(&self, order: Ordering) -> Vec<T> {
        let mut out = Vec::new();
        let mut p = self.head.swap(ptr::null_mut(), order);
        while !p.is_null() {
            let node = unsafe { Box::from_raw(p) };
            let item = node.item.with_mut(|i| unsafe { ManuallyDrop::take(&mut *i) });
            p = node.next.with(|n| unsafe { *n });
            out.push(item);
        }
        out
    }
}

fn two_producer_model(drain_order: Ordering) {
    let stack = Arc::new(Stack::new());
    let producers: Vec<_> = (0..2u64)
        .map(|p| {
            let s = stack.clone();
            thread::spawn(move || s.push(p))
        })
        .collect();
    // Consumer: drain concurrently with the producers, then once more after
    // both have finished; nothing may be lost or duplicated.
    let mut got = stack.drain(drain_order);
    for h in producers {
        h.join().unwrap();
    }
    got.extend(stack.drain(drain_order));
    got.sort_unstable();
    assert_eq!(got, vec![0, 1], "mailbox lost or duplicated events: {got:?}");
}

#[test]
fn treiber_two_producers_one_consumer_exhaustive() {
    let n = Builder::new().exhaustive().check(|| two_producer_model(Ordering::Acquire));
    // The concurrent drain interleaves with both CAS loops: many schedules.
    assert!(n >= 10, "suspiciously few schedules explored: {n}");
    eprintln!("treiber exhaustive: {n} schedules");
}

#[test]
fn seeded_relaxed_drain_race_is_detected_and_replays() {
    let run = || {
        Builder::new().exhaustive().check(|| two_producer_model(Ordering::Relaxed));
    };
    let msg = match catch_unwind(AssertUnwindSafe(run)) {
        Ok(()) => panic!("relaxed drain must race"),
        Err(p) => p.downcast_ref::<String>().cloned().expect("race message"),
    };
    assert!(msg.contains("data race"), "unexpected failure: {msg}");

    // Extract the schedule and replay it: the identical race must reappear
    // on the first (and only) execution.
    let tag = "ROSS_CHECK_REPLAY=\"";
    let start = msg.find(tag).expect("replay schedule in message") + tag.len();
    let end = msg[start..].find('"').unwrap() + start;
    let schedule = msg[start..end].to_string();

    let replay = catch_unwind(AssertUnwindSafe(|| {
        Builder::new().replay(&schedule).check(|| two_producer_model(Ordering::Relaxed));
    }));
    let m = replay.expect_err("replay must reproduce the race");
    let m = m.downcast_ref::<String>().expect("race message");
    assert!(m.contains("data race"), "replay diverged: {m}");
    assert!(m.contains(&schedule), "replay followed a different schedule: {m}");
}
