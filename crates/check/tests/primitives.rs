//! Exercises every checker primitive: happens-before edges through
//! atomics, mutexes, barriers and channels; race, deadlock, and panic
//! reporting; deterministic replay of a failing schedule.

use ross_check::cell::UnsafeCell;
use ross_check::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use ross_check::sync::mpsc;
use ross_check::sync::{Arc, Barrier, Mutex};
use ross_check::{thread, Builder};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Run `f` expecting the checker to panic; return the panic message.
fn expect_failure(f: impl Fn() + 'static) -> String {
    let res = catch_unwind(AssertUnwindSafe(|| ross_check::model(f)));
    match res {
        Ok(n) => panic!("expected the model to fail, but {n} schedules passed"),
        Err(p) => p
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "<non-string panic>".to_string()),
    }
}

/// Extract the replay schedule from a failure message.
fn schedule_of(msg: &str) -> String {
    let tag = "ROSS_CHECK_REPLAY=\"";
    let start = msg.find(tag).expect("failure message carries a replay schedule") + tag.len();
    let end = msg[start..].find('"').unwrap() + start;
    msg[start..end].to_string()
}

#[test]
fn release_acquire_publish_is_race_free() {
    let n = Builder::new().exhaustive().check(|| {
        let cell = Arc::new(UnsafeCell::new(0u64));
        let flag = Arc::new(AtomicBool::new(false));
        let (c2, f2) = (cell.clone(), flag.clone());
        let h = thread::spawn(move || {
            c2.with_mut(|p| unsafe { *p = 42 });
            f2.store(true, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) {
            let v = cell.with(|p| unsafe { *p });
            assert_eq!(v, 42);
        }
        h.join().unwrap();
    });
    // The load can observe the flag both ways, so at least two schedules.
    assert!(n >= 2, "expected >= 2 schedules, explored {n}");
}

#[test]
fn relaxed_publish_is_reported_as_race() {
    let msg = expect_failure(|| {
        let cell = Arc::new(UnsafeCell::new(0u64));
        let flag = Arc::new(AtomicBool::new(false));
        let (c2, f2) = (cell.clone(), flag.clone());
        let h = thread::spawn(move || {
            c2.with_mut(|p| unsafe { *p = 42 });
            // BUG under test: relaxed store does not publish the write.
            f2.store(true, Ordering::Relaxed);
        });
        if flag.load(Ordering::Acquire) {
            cell.with(|p| unsafe { *p });
        }
        h.join().unwrap();
    });
    assert!(msg.contains("data race"), "unexpected failure: {msg}");
    assert!(msg.contains("ROSS_CHECK_REPLAY"), "no replay schedule: {msg}");
}

#[test]
fn mutex_provides_exclusion_and_ordering() {
    Builder::new().exhaustive().check(|| {
        let m = Arc::new(Mutex::new(0u64));
        let cell = Arc::new(UnsafeCell::new(0u64));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let (m2, c2) = (m.clone(), cell.clone());
                thread::spawn(move || {
                    let mut g = m2.lock();
                    *g += 1;
                    c2.with_mut(|p| unsafe { *p += 1 });
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 2);
        assert_eq!(cell.with(|p| unsafe { *p }), 2);
    });
}

#[test]
fn lock_order_inversion_deadlock_is_detected() {
    let msg = expect_failure(|| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (a.clone(), b.clone());
        let h = thread::spawn(move || {
            let _ga = a2.lock();
            let _gb = b2.lock();
        });
        let _gb = b.lock();
        let _ga = a.lock();
        drop((_gb, _ga));
        h.join().unwrap();
    });
    assert!(msg.contains("deadlock"), "unexpected failure: {msg}");
}

#[test]
fn barrier_synchronizes_both_sides() {
    ross_check::model(|| {
        let bar = Arc::new(Barrier::new(2));
        let cell = Arc::new(UnsafeCell::new(0u64));
        let (bar2, c2) = (bar.clone(), cell.clone());
        let h = thread::spawn(move || {
            c2.with_mut(|p| unsafe { *p = 7 });
            bar2.wait();
        });
        bar.wait();
        // The barrier is the only edge ordering this read after the write.
        assert_eq!(cell.with(|p| unsafe { *p }), 7);
        h.join().unwrap();
    });
}

/// The pre-fix `ross::parallel` hazard in miniature: a worker dies before
/// reaching the round barrier and the survivor waits forever. The checker
/// turns the hang into a deterministic deadlock report.
#[test]
fn abandoned_barrier_wait_deadlocks() {
    let msg = expect_failure(|| {
        let bar = Arc::new(Barrier::new(2));
        let bar2 = bar.clone();
        let worker = thread::spawn(move || {
            // Simulates a worker that bails out (e.g. after a caught panic)
            // without arriving at the barrier.
        });
        bar.wait();
        worker.join().unwrap();
        drop(bar2);
    });
    assert!(msg.contains("deadlock"), "unexpected failure: {msg}");
    assert!(msg.contains("Barrier"), "unexpected detail: {msg}");
}

#[test]
fn channel_is_fifo_and_carries_causality() {
    Builder::new().exhaustive().check(|| {
        let (tx, rx) = mpsc::channel::<u64>();
        let cell = Arc::new(UnsafeCell::new(0u64));
        let c2 = cell.clone();
        let h = thread::spawn(move || {
            c2.with_mut(|p| unsafe { *p = 9 });
            tx.send(1).unwrap();
            tx.send(2).unwrap();
        });
        assert_eq!(rx.recv().unwrap(), 1);
        // The recv joined the sender's clock: reading the cell is ordered.
        assert_eq!(cell.with(|p| unsafe { *p }), 9);
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv(), Err(mpsc::RecvError));
        h.join().unwrap();
    });
}

#[test]
fn try_recv_reports_empty_and_disconnected() {
    ross_check::model(|| {
        let (tx, rx) = mpsc::channel::<u64>();
        assert_eq!(rx.try_recv(), Err(mpsc::TryRecvError::Empty));
        tx.send(5).unwrap();
        assert_eq!(rx.try_recv(), Ok(5));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(mpsc::TryRecvError::Disconnected));
    });
}

#[test]
fn failing_schedule_replays_deterministically() {
    // An assert that only fires on schedules where the spawned thread wins
    // the increment race.
    let model = || {
        let a = Arc::new(AtomicU64::new(0));
        let a2 = a.clone();
        let h = thread::spawn(move || {
            a2.store(1, Ordering::Relaxed);
        });
        let seen = a.load(Ordering::Relaxed);
        h.join().unwrap();
        assert_eq!(seen, 0, "spawned store won the race");
    };
    let msg = {
        let res = catch_unwind(AssertUnwindSafe(|| Builder::new().exhaustive().check(model)));
        match res {
            Ok(n) => panic!("expected a failing schedule, explored {n} cleanly"),
            Err(p) => *p.downcast::<String>().expect("assert message"),
        }
    };
    assert!(msg.contains("spawned store won the race"), "wrong failure: {msg}");

    // Recover the schedule from the model's own stderr is not practical in
    // a unit test; instead replay every schedule of the same shape and
    // check the failing one is reproduced stably.
    for _ in 0..3 {
        let again = catch_unwind(AssertUnwindSafe(|| {
            Builder::new().exhaustive().check(model);
        }));
        let m = *again.expect_err("must fail again").downcast::<String>().unwrap();
        assert_eq!(m, msg, "exploration is not deterministic");
    }
}

#[test]
fn explicit_replay_runs_single_schedule() {
    // Capture a failing schedule via the race reporter, then replay it.
    let model = || {
        let cell = Arc::new(UnsafeCell::new(0u64));
        let c2 = cell.clone();
        let h = thread::spawn(move || {
            c2.with_mut(|p| unsafe { *p = 1 });
        });
        cell.with(|p| unsafe { *p });
        h.join().unwrap();
    };
    let msg = expect_failure(model);
    assert!(msg.contains("data race"), "unexpected failure: {msg}");
    let schedule = schedule_of(&msg);

    let replayed = catch_unwind(AssertUnwindSafe(|| {
        Builder::new().replay(&schedule).check(model);
    }));
    let m = replayed.expect_err("replay must reproduce the race");
    let m = m.downcast_ref::<String>().expect("race message");
    assert!(m.contains("data race"), "replay produced a different failure: {m}");
    assert!(m.contains(&schedule), "replay schedule drifted: {m}");
}

#[test]
fn fringe_mode_bounds_preemptions() {
    // Fringe(0) explores strictly fewer schedules than exhaustive on the
    // same model, and still passes a correct model.
    let mk = |b: Builder| {
        b.check(|| {
            let a = Arc::new(AtomicU64::new(0));
            let a2 = a.clone();
            let h = thread::spawn(move || {
                a2.fetch_add(1, Ordering::AcqRel);
                a2.fetch_add(1, Ordering::AcqRel);
            });
            a.fetch_add(1, Ordering::AcqRel);
            h.join().unwrap();
            assert_eq!(a.load(Ordering::Acquire), 3);
        })
    };
    let exhaustive = mk(Builder::new().exhaustive());
    let fringe = mk(Builder::new().fringe(0));
    assert!(
        fringe < exhaustive,
        "fringe(0) = {fringe} should explore fewer schedules than exhaustive = {exhaustive}"
    );
}
