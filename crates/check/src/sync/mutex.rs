//! Checked mutex with the `parking_lot` API shape (`lock()` returns the
//! guard directly, no poisoning) — the shape `ross` uses in production.

use crate::rt::with_rt;
use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};

pub struct Mutex<T> {
    obj: usize,
    data: UnsafeCell<T>,
}

// Same bounds as parking_lot / std.
unsafe impl<T: Send> Send for Mutex<T> {}
unsafe impl<T: Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    pub fn new(data: T) -> Self {
        let obj = with_rt(|rt, _| rt.mutex_new());
        Mutex { obj, data: UnsafeCell::new(data) }
    }

    /// Acquire the lock (a scheduling decision point; blocks the controlled
    /// thread while another holds it).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        with_rt(|rt, tid| rt.mutex_lock(tid, self.obj));
        MutexGuard { mutex: self }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }

    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

pub struct MutexGuard<'a, T> {
    mutex: &'a Mutex<T>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Exclusive by the lock discipline; the runtime serializes threads.
        unsafe { &*self.mutex.data.get() }
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        unsafe { &mut *self.mutex.data.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        with_rt(|rt, tid| rt.mutex_unlock(tid, self.mutex.obj));
    }
}
