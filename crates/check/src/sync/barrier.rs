//! Checked barrier mirroring `std::sync::Barrier`.

use crate::rt::with_rt;

pub struct Barrier {
    obj: usize,
    n: usize,
}

impl Barrier {
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "Barrier::new(0)");
        let obj = with_rt(|rt, _| rt.barrier_new(n));
        Barrier { obj, n }
    }

    pub fn wait(&self) -> BarrierWaitResult {
        if self.n == 1 {
            return BarrierWaitResult(true);
        }
        let leader = with_rt(|rt, tid| (rt.clone(), tid));
        let (rt, tid) = leader;
        BarrierWaitResult(rt.barrier_wait(tid, self.obj))
    }
}

pub struct BarrierWaitResult(bool);

impl BarrierWaitResult {
    pub fn is_leader(&self) -> bool {
        self.0
    }
}
