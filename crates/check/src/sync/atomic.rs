//! Checked atomic types mirroring `std::sync::atomic`.
//!
//! Values live in the controlled runtime; every access is a scheduling
//! decision point. Memory orderings are modeled on the happens-before
//! level: release stores publish the writer's vector clock on the atomic's
//! release sequence, acquire loads join it; relaxed stores begin a new,
//! empty release sequence; rmw operations continue the existing release
//! sequence regardless of their own ordering (C++11 release-sequence
//! rules). `SeqCst` is modeled as `AcqRel` (no global order is tracked).

pub use std::sync::atomic::Ordering;

use crate::rt::with_rt;
use std::marker::PhantomData;

fn acq(o: Ordering) -> bool {
    matches!(o, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn rel(o: Ordering) -> bool {
    matches!(o, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

macro_rules! int_atomic {
    ($name:ident, $ty:ty) => {
        /// Checked counterpart of the std atomic of the same name.
        #[derive(Debug)]
        pub struct $name {
            obj: usize,
        }

        impl $name {
            #[allow(clippy::new_without_default)]
            pub fn new(v: $ty) -> Self {
                let obj = with_rt(|rt, _| rt.atomic_new(v as u64));
                $name { obj }
            }

            pub fn load(&self, order: Ordering) -> $ty {
                with_rt(|rt, tid| rt.atomic_load(tid, self.obj, acq(order))) as $ty
            }

            pub fn store(&self, val: $ty, order: Ordering) {
                with_rt(|rt, tid| rt.atomic_store(tid, self.obj, val as u64, rel(order)))
            }

            pub fn swap(&self, val: $ty, order: Ordering) -> $ty {
                with_rt(|rt, tid| {
                    rt.atomic_rmw(tid, self.obj, acq(order), rel(order), |_| val as u64)
                }) as $ty
            }

            pub fn fetch_add(&self, val: $ty, order: Ordering) -> $ty {
                with_rt(|rt, tid| {
                    rt.atomic_rmw(tid, self.obj, acq(order), rel(order), |v| {
                        (v as $ty).wrapping_add(val) as u64
                    })
                }) as $ty
            }

            pub fn fetch_sub(&self, val: $ty, order: Ordering) -> $ty {
                with_rt(|rt, tid| {
                    rt.atomic_rmw(tid, self.obj, acq(order), rel(order), |v| {
                        (v as $ty).wrapping_sub(val) as u64
                    })
                }) as $ty
            }

            pub fn fetch_max(&self, val: $ty, order: Ordering) -> $ty {
                with_rt(|rt, tid| {
                    rt.atomic_rmw(tid, self.obj, acq(order), rel(order), |v| {
                        (v as $ty).max(val) as u64
                    })
                }) as $ty
            }

            pub fn fetch_min(&self, val: $ty, order: Ordering) -> $ty {
                with_rt(|rt, tid| {
                    rt.atomic_rmw(tid, self.obj, acq(order), rel(order), |v| {
                        (v as $ty).min(val) as u64
                    })
                }) as $ty
            }

            pub fn compare_exchange(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                with_rt(|rt, tid| {
                    rt.atomic_cas(
                        tid,
                        self.obj,
                        current as u64,
                        new as u64,
                        acq(success),
                        rel(success),
                        acq(failure),
                    )
                })
                .map(|v| v as $ty)
                .map_err(|v| v as $ty)
            }

            pub fn compare_exchange_weak(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                // No spurious failures are modeled.
                self.compare_exchange(current, new, success, failure)
            }
        }
    };
}

int_atomic!(AtomicU64, u64);
int_atomic!(AtomicUsize, usize);
int_atomic!(AtomicU32, u32);
int_atomic!(AtomicI64, i64);

/// Checked counterpart of `std::sync::atomic::AtomicBool`.
#[derive(Debug)]
pub struct AtomicBool {
    obj: usize,
}

impl AtomicBool {
    pub fn new(v: bool) -> Self {
        let obj = with_rt(|rt, _| rt.atomic_new(v as u64));
        AtomicBool { obj }
    }

    pub fn load(&self, order: Ordering) -> bool {
        with_rt(|rt, tid| rt.atomic_load(tid, self.obj, acq(order))) != 0
    }

    pub fn store(&self, val: bool, order: Ordering) {
        with_rt(|rt, tid| rt.atomic_store(tid, self.obj, val as u64, rel(order)))
    }

    pub fn swap(&self, val: bool, order: Ordering) -> bool {
        with_rt(|rt, tid| rt.atomic_rmw(tid, self.obj, acq(order), rel(order), |_| val as u64)) != 0
    }

    pub fn fetch_or(&self, val: bool, order: Ordering) -> bool {
        with_rt(|rt, tid| rt.atomic_rmw(tid, self.obj, acq(order), rel(order), |v| v | val as u64))
            != 0
    }
}

/// Checked counterpart of `std::sync::atomic::AtomicPtr`.
#[derive(Debug)]
pub struct AtomicPtr<T> {
    obj: usize,
    _marker: PhantomData<*mut T>,
}

unsafe impl<T> Send for AtomicPtr<T> {}
unsafe impl<T> Sync for AtomicPtr<T> {}

impl<T> AtomicPtr<T> {
    pub fn new(p: *mut T) -> Self {
        let obj = with_rt(|rt, _| rt.atomic_new(p as usize as u64));
        AtomicPtr { obj, _marker: PhantomData }
    }

    pub fn load(&self, order: Ordering) -> *mut T {
        with_rt(|rt, tid| rt.atomic_load(tid, self.obj, acq(order))) as usize as *mut T
    }

    pub fn store(&self, p: *mut T, order: Ordering) {
        with_rt(|rt, tid| rt.atomic_store(tid, self.obj, p as usize as u64, rel(order)))
    }

    pub fn swap(&self, p: *mut T, order: Ordering) -> *mut T {
        with_rt(|rt, tid| {
            rt.atomic_rmw(tid, self.obj, acq(order), rel(order), |_| p as usize as u64)
        }) as usize as *mut T
    }

    pub fn compare_exchange(
        &self,
        current: *mut T,
        new: *mut T,
        success: Ordering,
        failure: Ordering,
    ) -> Result<*mut T, *mut T> {
        with_rt(|rt, tid| {
            rt.atomic_cas(
                tid,
                self.obj,
                current as usize as u64,
                new as usize as u64,
                acq(success),
                rel(success),
                acq(failure),
            )
        })
        .map(|v| v as usize as *mut T)
        .map_err(|v| v as usize as *mut T)
    }

    pub fn compare_exchange_weak(
        &self,
        current: *mut T,
        new: *mut T,
        success: Ordering,
        failure: Ordering,
    ) -> Result<*mut T, *mut T> {
        self.compare_exchange(current, new, success, failure)
    }
}
