//! Checked multi-producer single-consumer channel mirroring the
//! `std::sync::mpsc` API surface used by `ross::shard`'s loopback
//! transport. Each message carries the sender's vector clock; a receive
//! joins it, establishing the send→recv happens-before edge. A blocking
//! `recv` on an empty channel parks the controlled thread (it is simply
//! not *enabled* until a send lands or all senders disconnect).

use crate::rt::with_rt;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex as StdMutex};

#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

#[derive(Debug, PartialEq, Eq)]
pub struct RecvError;

#[derive(Debug, PartialEq, Eq)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

struct Shared<T> {
    obj: usize,
    // The value queue mirrors the runtime's clock queue index-for-index;
    // the baton scheduler serializes all pushes/pops, the std mutex only
    // provides `Sync`.
    queue: StdMutex<VecDeque<T>>,
}

pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let obj = with_rt(|rt, _| rt.chan_new());
    let shared = Arc::new(Shared { obj, queue: StdMutex::new(VecDeque::new()) });
    (Sender { shared: shared.clone() }, Receiver { shared })
}

pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Sender<T> {
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        with_rt(|rt, tid| rt.chan_send(tid, self.shared.obj));
        self.shared.queue.lock().unwrap().push_back(value);
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        with_rt(|rt, _| rt.chan_sender_cloned(self.shared.obj));
        Sender { shared: self.shared.clone() }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        with_rt(|rt, _| rt.chan_sender_dropped(self.shared.obj));
    }
}

pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Receiver<T> {
    /// Blocking receive; errors once the channel is empty and every sender
    /// has been dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let got = with_rt(|rt, tid| rt.chan_recv(tid, self.shared.obj));
        match got {
            Ok(()) => Ok(self
                .shared
                .queue
                .lock()
                .unwrap()
                .pop_front()
                .expect("clock/value queues out of sync")),
            Err(()) => Err(RecvError),
        }
    }

    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let got = with_rt(|rt, tid| rt.chan_try_recv(tid, self.shared.obj));
        match got {
            Ok(true) => Ok(self
                .shared
                .queue
                .lock()
                .unwrap()
                .pop_front()
                .expect("clock/value queues out of sync")),
            Ok(false) => Err(TryRecvError::Empty),
            Err(()) => Err(TryRecvError::Disconnected),
        }
    }
}
