//! Shim synchronization types. Inside `ross_check::model()` these replace
//! the std / parking_lot primitives one-for-one; `ross`'s `crate::sync`
//! alias module selects between them and the real types via
//! `cfg(union_check)`.

pub mod atomic;
pub mod barrier;
pub mod mpsc;
pub mod mutex;

pub use barrier::{Barrier, BarrierWaitResult};
pub use mutex::{Mutex, MutexGuard};
// Arc's own reference counting is trusted (it is std's, and sound); only
// the data-flow primitives are modeled.
pub use std::sync::Arc;
