//! The controlled runtime: a baton-passing scheduler that serializes every
//! controlled thread, explores scheduling decision points via [`path::Path`],
//! and tracks causality with vector clocks.
//!
//! Real OS threads are used (so real stacks, real `Send`/`Sync` checking),
//! but exactly one controlled thread executes at any instant: each thread
//! parks inside [`Rt::op_point`] until the scheduler hands it the baton.
//! Every synchronization operation (atomic access, mutex lock, barrier wait,
//! channel send/recv, join) is a *pending op* declared before parking; the
//! scheduler only selects threads whose pending op is currently *enabled*,
//! which is also how blocking and deadlock detection fall out naturally: a
//! state with unfinished threads and no enabled op is a deadlock.

pub(crate) mod path;
pub(crate) mod vv;

use path::{Mode, Path};
use std::any::Any;
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::panic::Location;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use vv::VersionVec;

/// Maximum controlled threads per model (incl. the model closure itself).
pub(crate) const MAX_THREADS: usize = 8;

const NO_THREAD: usize = usize::MAX;

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Rt>, usize)>> = const { RefCell::new(None) };
}

/// Marker payload used to unwind controlled threads once an execution has
/// failed; caught (and swallowed) by the thread wrappers and the model loop.
pub(crate) struct Abort;

pub(crate) fn set_current(rt: Arc<Rt>, tid: usize) {
    CURRENT.with(|c| *c.borrow_mut() = Some((rt, tid)));
}

pub(crate) fn clear_current() {
    CURRENT.with(|c| *c.borrow_mut() = None);
}

/// Run `f` against the current thread's runtime handle. Panics (cleanly)
/// when a shim type is used outside `ross_check::model`.
pub(crate) fn with_rt<R>(f: impl FnOnce(&Arc<Rt>, usize) -> R) -> R {
    CURRENT.with(|c| {
        let b = c.borrow();
        let (rt, tid) =
            b.as_ref().expect("ross-check sync primitive used outside of ross_check::model()");
        f(rt, *tid)
    })
}

pub(crate) fn current_rt() -> (Arc<Rt>, usize) {
    with_rt(|rt, tid| (rt.clone(), tid))
}

/// A pending synchronization operation, declared before parking.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Op {
    /// Thread start / plain yield — always enabled, never dependent.
    Yield,
    AtomicLoad(usize),
    /// Store, rmw, or compare-exchange (conservatively write-class).
    AtomicWrite(usize),
    Lock(usize),
    Send(usize),
    Recv(usize),
    /// Non-blocking receive — always enabled, dependent like `Recv`.
    TryRecv(usize),
    BarrierArrive(usize),
    /// Wait for the barrier generation to advance past `gen`.
    BarrierRelease(usize, u64),
    /// Join on a finished controlled thread.
    Join(usize),
}

impl Op {
    /// DPOR dependency key: `(object class, id, is_read)`. `None` ⇒ the op
    /// is independent of everything (commutative or thread-local).
    fn dep_key(&self) -> Option<(u8, usize, bool)> {
        match *self {
            Op::AtomicLoad(o) => Some((0, o, true)),
            Op::AtomicWrite(o) => Some((0, o, false)),
            Op::Lock(o) => Some((1, o, false)),
            // Sends conflict with each other (FIFO content order) and
            // with `try_recv` (its Empty-vs-value outcome is order-
            // sensitive). A *blocking* recv is a separate class: which
            // message it returns is fully determined by the send order
            // already explored via Send↔Send conflicts, and it cannot
            // execute before the send that enables it — reordering it
            // against sends only re-explores equivalent interleavings
            // (this is what made message-passing protocols blow up).
            Op::Send(o) | Op::TryRecv(o) => Some((2, o, false)),
            Op::Recv(o) => Some((3, o, false)),
            // Barrier arrivals/releases commute; yields and joins are
            // ordered by other means.
            Op::Yield | Op::BarrierArrive(_) | Op::BarrierRelease(_, _) | Op::Join(_) => None,
        }
    }
}

struct ThreadState {
    pending: Option<Op>,
    finished: bool,
    clock: VersionVec,
}

struct AtomicState {
    val: u64,
    /// Release clock: the causal knowledge carried by the current value's
    /// release sequence. Cleared by a relaxed store, joined by release
    /// stores/rmws, acquired by acquire loads.
    release: VersionVec,
}

struct MutexState {
    locked_by: Option<usize>,
    clock: VersionVec,
}

struct BarrierState {
    n: usize,
    arrived: usize,
    gen: u64,
    pending_clock: VersionVec,
    release_clock: VersionVec,
}

struct ChanState {
    /// Sender clock snapshots, FIFO with the shim-side value queue.
    queue: VecDeque<VersionVec>,
    senders: usize,
}

type CellAccess = (usize, u32, &'static Location<'static>);

#[derive(Default)]
struct CellState {
    last_write: Option<CellAccess>,
    /// Reads since the last write (at most one entry per thread).
    reads: Vec<CellAccess>,
}

/// Per-object DPOR access history (branch indices of the latest accesses).
#[derive(Default)]
struct ObjHist {
    /// `(tid, branch_idx, epoch)` of the most recent write-class op.
    last_write: Option<(usize, usize, u32)>,
    /// Most recent read-class op per thread.
    reads: Vec<(usize, usize, u32)>,
}

pub(crate) enum Failure {
    Deadlock { schedule: String, detail: String },
    Race { schedule: String, detail: String },
    Panic { schedule: String, payload: Box<dyn Any + Send> },
}

pub(crate) struct ExecState {
    path: Option<Path>,
    /// Index of the next decision point.
    pos: usize,
    active: usize,
    /// Chosen thread per decision point (the replayable schedule).
    schedule: Vec<usize>,
    threads: Vec<ThreadState>,
    atomics: Vec<AtomicState>,
    mutexes: Vec<MutexState>,
    barriers: Vec<BarrierState>,
    chans: Vec<ChanState>,
    cells: Vec<CellState>,
    history: HashMap<(u8, usize), ObjHist>,
    pub(crate) failure: Option<Failure>,
}

impl ExecState {
    fn enabled(&self, op: Op) -> bool {
        match op {
            Op::Lock(o) => self.mutexes[o].locked_by.is_none(),
            Op::Recv(o) => !self.chans[o].queue.is_empty() || self.chans[o].senders == 0,
            Op::BarrierRelease(o, gen) => self.barriers[o].gen != gen,
            Op::Join(t) => self.threads[t].finished,
            _ => true,
        }
    }

    fn runnable(&self) -> Vec<usize> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.finished && t.pending.is_some_and(|op| self.enabled(op)))
            .map(|(i, _)| i)
            .collect()
    }

    fn all_finished(&self) -> bool {
        self.threads.iter().all(|t| t.finished)
    }

    pub(crate) fn schedule_string(&self) -> String {
        Path::schedule_string(&self.schedule)
    }
}

pub(crate) struct Rt {
    mu: Mutex<ExecState>,
    cv: Condvar,
}

fn lock_state(mu: &Mutex<ExecState>) -> MutexGuard<'_, ExecState> {
    mu.lock().unwrap_or_else(|e| e.into_inner())
}

impl Rt {
    pub(crate) fn new(path: Path) -> Rt {
        let mut threads = Vec::with_capacity(MAX_THREADS);
        threads.push(ThreadState { pending: None, finished: false, clock: VersionVec::new() });
        Rt {
            mu: Mutex::new(ExecState {
                path: Some(path),
                pos: 0,
                active: 0,
                schedule: Vec::new(),
                threads,
                atomics: Vec::new(),
                mutexes: Vec::new(),
                barriers: Vec::new(),
                chans: Vec::new(),
                cells: Vec::new(),
                history: HashMap::new(),
                failure: None,
            }),
            cv: Condvar::new(),
        }
    }

    fn state(&self) -> MutexGuard<'_, ExecState> {
        lock_state(&self.mu)
    }

    /// Abort the current thread unless it is already unwinding (a panic
    /// inside a panic would abort the whole process).
    fn abort() -> ! {
        std::panic::resume_unwind(Box::new(Abort))
    }

    /// Declare `op` as this thread's next operation, hand the baton to the
    /// scheduler, and return once this thread is scheduled to execute it.
    /// Returns `false` when the execution has failed and the caller should
    /// complete the operation inline without scheduling (unwind path).
    fn op_point(&self, tid: usize, op: Op) -> bool {
        let mut st = self.state();
        if st.failure.is_some() {
            drop(st);
            if std::thread::panicking() {
                return false;
            }
            Self::abort();
        }
        st.threads[tid].pending = Some(op);
        self.pass_baton(&mut st, tid);
        loop {
            if st.failure.is_some() {
                drop(st);
                if std::thread::panicking() {
                    return false;
                }
                Self::abort();
            }
            if st.active == tid {
                break;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st.threads[tid].pending = None;
        st.threads[tid].clock.tick(tid);
        true
    }

    /// Pick the next thread to run. Called with the baton in hand (by the
    /// active thread, or by a finishing/blocking one).
    fn pass_baton(&self, st: &mut ExecState, from: usize) {
        let runnable = st.runnable();
        if runnable.is_empty() {
            if st.all_finished() {
                st.active = NO_THREAD;
            } else {
                let detail = st
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| !t.finished)
                    .map(|(i, t)| format!("thread {i} blocked on {:?}", t.pending))
                    .collect::<Vec<_>>()
                    .join("; ");
                st.failure = Some(Failure::Deadlock { schedule: st.schedule_string(), detail });
            }
            self.cv.notify_all();
            return;
        }
        let chosen = if runnable.len() == 1 {
            // Forced move: no decision point is recorded (nothing to
            // explore), keeping paths short through serial phases.
            runnable[0]
        } else {
            let idx = st.pos;
            let path = st.path.as_mut().expect("path taken");
            let chosen = path.schedule(idx, &runnable, from);
            st.pos += 1;
            st.schedule.push(chosen);
            chosen
        };
        self.dpor_update(st, chosen);
        st.active = chosen;
        self.cv.notify_all();
    }

    /// Record the chosen thread's pending op in the per-object history and
    /// queue DPOR backtrack points for earlier conflicting accesses that are
    /// not already ordered by happens-before.
    fn dpor_update(&self, st: &mut ExecState, chosen: usize) {
        let op = match st.threads[chosen].pending {
            Some(op) => op,
            None => return,
        };
        let (class, id, is_read) = match op.dep_key() {
            Some(k) => k,
            None => return,
        };
        // Branch index this op is (approximately) attached to: the decision
        // point just consumed, or the most recent one for forced moves
        // (NO_BRANCH before the first real decision point).
        const NO_BRANCH: usize = usize::MAX;
        let here = if st.pos == 0 { NO_BRANCH } else { st.pos - 1 };
        let clock = st.threads[chosen].clock;
        let epoch = clock.get(chosen) + 1;
        let dpor = st.path.as_ref().map(|p| p.mode == Mode::Dpor).unwrap_or(false);
        let hist = st.history.entry((class, id)).or_default();
        let mut marks: Vec<usize> = Vec::new();
        if dpor {
            if let Some((wt, widx, wep)) = hist.last_write {
                if wt != chosen && widx != NO_BRANCH && widx <= here && !clock.dominates(wt, wep) {
                    marks.push(widx);
                }
            }
            if !is_read {
                for &(rt, ridx, rep) in &hist.reads {
                    if rt != chosen
                        && ridx != NO_BRANCH
                        && ridx <= here
                        && !clock.dominates(rt, rep)
                    {
                        marks.push(ridx);
                    }
                }
            }
        }
        if is_read {
            if let Some(r) = hist.reads.iter_mut().find(|r| r.0 == chosen) {
                *r = (chosen, here, epoch);
            } else {
                hist.reads.push((chosen, here, epoch));
            }
        } else {
            hist.last_write = Some((chosen, here, epoch));
            hist.reads.clear();
        }
        if !marks.is_empty() {
            let path = st.path.as_mut().expect("path taken");
            for m in marks {
                path.mark_backtrack(m, chosen);
            }
        }
    }

    // ---- thread lifecycle -------------------------------------------------

    /// Register a child thread (inline; the spawner holds the baton).
    pub(crate) fn spawn_thread(&self, parent: usize) -> usize {
        let mut st = self.state();
        let tid = st.threads.len();
        assert!(tid < MAX_THREADS, "ross-check: model spawned more than {MAX_THREADS} threads");
        let clock = st.threads[parent].clock;
        st.threads.push(ThreadState { pending: Some(Op::Yield), finished: false, clock });
        // Fork is a release point: the parent's later accesses must not be
        // covered by the clock the child inherited.
        st.threads[parent].clock.tick(parent);
        tid
    }

    /// First park of a child thread: wait until the scheduler first selects
    /// it (its registered `Yield` start op).
    pub(crate) fn start_thread(&self, tid: usize) {
        let mut st = self.state();
        loop {
            if st.failure.is_some() {
                drop(st);
                Self::abort();
            }
            if st.active == tid {
                break;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st.threads[tid].pending = None;
        st.threads[tid].clock.tick(tid);
    }

    /// Normal completion of a child thread.
    pub(crate) fn finish_thread(&self, tid: usize) {
        let mut st = self.state();
        st.threads[tid].finished = true;
        st.threads[tid].pending = None;
        if st.failure.is_none() {
            self.pass_baton(&mut st, tid);
        } else {
            self.cv.notify_all();
        }
    }

    /// Completion after an abort/panic: just mark finished and wake everyone.
    pub(crate) fn finish_thread_aborted(&self, tid: usize) {
        let mut st = self.state();
        st.threads[tid].finished = true;
        st.threads[tid].pending = None;
        self.cv.notify_all();
    }

    /// Record a genuine user panic from thread `tid` as the execution's
    /// failure (first panic wins) and wake all parked threads.
    pub(crate) fn record_panic(&self, _tid: usize, payload: Box<dyn Any + Send>) {
        let mut st = self.state();
        if st.failure.is_none() {
            st.failure = Some(Failure::Panic { schedule: st.schedule_string(), payload });
        }
        self.cv.notify_all();
    }

    /// Called by the model loop after the closure returns on thread 0:
    /// keep scheduling children until everything has finished (or failed).
    pub(crate) fn finish_main(&self) {
        let mut st = self.state();
        st.threads[0].finished = true;
        st.threads[0].pending = None;
        if st.failure.is_none() && !st.all_finished() {
            self.pass_baton(&mut st, 0);
        }
        while !st.all_finished() && st.failure.is_none() {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Controlled join: block until `target` finishes, then acquire its
    /// causal history.
    pub(crate) fn join_thread(&self, tid: usize, target: usize) {
        if self.op_point(tid, Op::Join(target)) {
            let mut st = self.state();
            let tclock = st.threads[target].clock;
            st.threads[tid].clock.join(&tclock);
        }
    }

    /// Tear down after an execution: hand back the path, the executed
    /// schedule, and the failure (if any).
    pub(crate) fn take_results(&self) -> (Path, Vec<usize>, Option<Failure>) {
        let mut st = self.state();
        let path = st.path.take().expect("path already taken");
        let schedule = std::mem::take(&mut st.schedule);
        let failure = st.failure.take();
        (path, schedule, failure)
    }

    // ---- atomics ----------------------------------------------------------

    pub(crate) fn atomic_new(&self, init: u64) -> usize {
        let mut st = self.state();
        st.atomics.push(AtomicState { val: init, release: VersionVec::new() });
        st.atomics.len() - 1
    }

    pub(crate) fn atomic_load(&self, tid: usize, obj: usize, acquire: bool) -> u64 {
        self.op_point(tid, Op::AtomicLoad(obj));
        let mut st = self.state();
        if acquire {
            let rel = st.atomics[obj].release;
            st.threads[tid].clock.join(&rel);
        }
        st.atomics[obj].val
    }

    pub(crate) fn atomic_store(&self, tid: usize, obj: usize, val: u64, release: bool) {
        self.op_point(tid, Op::AtomicWrite(obj));
        let mut st = self.state();
        st.atomics[obj].val = val;
        if release {
            let clock = st.threads[tid].clock;
            let rel = &mut st.atomics[obj].release;
            rel.clear();
            rel.join(&clock);
            // Release point: later same-thread accesses are not published.
            st.threads[tid].clock.tick(tid);
        } else {
            // A relaxed store begins a new, empty release sequence.
            st.atomics[obj].release.clear();
        }
    }

    /// Read-modify-write. Joins the release clock when `acquire`; continues
    /// the release sequence (joining this thread's clock when `release`).
    pub(crate) fn atomic_rmw(
        &self,
        tid: usize,
        obj: usize,
        acquire: bool,
        release: bool,
        f: impl FnOnce(u64) -> u64,
    ) -> u64 {
        self.op_point(tid, Op::AtomicWrite(obj));
        let mut st = self.state();
        let old = st.atomics[obj].val;
        if acquire {
            let rel = st.atomics[obj].release;
            st.threads[tid].clock.join(&rel);
        }
        st.atomics[obj].val = f(old);
        if release {
            let clock = st.threads[tid].clock;
            st.atomics[obj].release.join(&clock);
            st.threads[tid].clock.tick(tid);
        }
        old
    }

    /// Compare-exchange: on success behaves like an rmw, on failure like a
    /// load with the failure ordering.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn atomic_cas(
        &self,
        tid: usize,
        obj: usize,
        current: u64,
        new: u64,
        acquire: bool,
        release: bool,
        fail_acquire: bool,
    ) -> Result<u64, u64> {
        self.op_point(tid, Op::AtomicWrite(obj));
        let mut st = self.state();
        let val = st.atomics[obj].val;
        if val == current {
            if acquire {
                let rel = st.atomics[obj].release;
                st.threads[tid].clock.join(&rel);
            }
            st.atomics[obj].val = new;
            if release {
                let clock = st.threads[tid].clock;
                st.atomics[obj].release.join(&clock);
                st.threads[tid].clock.tick(tid);
            }
            Ok(val)
        } else {
            if fail_acquire {
                let rel = st.atomics[obj].release;
                st.threads[tid].clock.join(&rel);
            }
            Err(val)
        }
    }

    // ---- mutexes ----------------------------------------------------------

    pub(crate) fn mutex_new(&self) -> usize {
        let mut st = self.state();
        st.mutexes.push(MutexState { locked_by: None, clock: VersionVec::new() });
        st.mutexes.len() - 1
    }

    pub(crate) fn mutex_lock(&self, tid: usize, obj: usize) {
        self.op_point(tid, Op::Lock(obj));
        let mut st = self.state();
        debug_assert!(st.mutexes[obj].locked_by.is_none() || st.failure.is_some());
        st.mutexes[obj].locked_by = Some(tid);
        let clock = st.mutexes[obj].clock;
        st.threads[tid].clock.join(&clock);
    }

    /// Unlock is inline (not a decision point): it only releases.
    pub(crate) fn mutex_unlock(&self, tid: usize, obj: usize) {
        let mut st = self.state();
        if st.failure.is_some() {
            st.mutexes[obj].locked_by = None;
            return;
        }
        st.mutexes[obj].locked_by = None;
        let clock = st.threads[tid].clock;
        st.mutexes[obj].clock.join(&clock);
        st.threads[tid].clock.tick(tid);
    }

    // ---- barriers ---------------------------------------------------------

    pub(crate) fn barrier_new(&self, n: usize) -> usize {
        let mut st = self.state();
        st.barriers.push(BarrierState {
            n,
            arrived: 0,
            gen: 0,
            pending_clock: VersionVec::new(),
            release_clock: VersionVec::new(),
        });
        st.barriers.len() - 1
    }

    /// Returns `true` for the releasing (leader) arrival.
    pub(crate) fn barrier_wait(&self, tid: usize, obj: usize) -> bool {
        self.op_point(tid, Op::BarrierArrive(obj));
        let my_gen;
        {
            let mut st = self.state();
            let clock = st.threads[tid].clock;
            let b = &mut st.barriers[obj];
            b.pending_clock.join(&clock);
            b.arrived += 1;
            if b.arrived == b.n {
                b.arrived = 0;
                b.gen += 1;
                b.release_clock = b.pending_clock;
                let rel = b.release_clock;
                st.threads[tid].clock.join(&rel);
                // Arrival published this thread's clock: release point.
                st.threads[tid].clock.tick(tid);
                return true;
            }
            my_gen = b.gen;
            st.threads[tid].clock.tick(tid);
        }
        self.op_point(tid, Op::BarrierRelease(obj, my_gen));
        let mut st = self.state();
        let rel = st.barriers[obj].release_clock;
        st.threads[tid].clock.join(&rel);
        false
    }

    // ---- channels ---------------------------------------------------------

    pub(crate) fn chan_new(&self) -> usize {
        let mut st = self.state();
        st.chans.push(ChanState { queue: VecDeque::new(), senders: 1 });
        st.chans.len() - 1
    }

    pub(crate) fn chan_send(&self, tid: usize, obj: usize) {
        self.op_point(tid, Op::Send(obj));
        let mut st = self.state();
        let clock = st.threads[tid].clock;
        st.chans[obj].queue.push_back(clock);
        st.threads[tid].clock.tick(tid);
    }

    /// Blocking receive; `Err(())` means all senders disconnected.
    pub(crate) fn chan_recv(&self, tid: usize, obj: usize) -> Result<(), ()> {
        self.op_point(tid, Op::Recv(obj));
        let mut st = self.state();
        match st.chans[obj].queue.pop_front() {
            Some(c) => {
                st.threads[tid].clock.join(&c);
                Ok(())
            }
            None => Err(()),
        }
    }

    /// Non-blocking receive: `Ok(true)` got a message, `Ok(false)` empty,
    /// `Err(())` empty and disconnected.
    pub(crate) fn chan_try_recv(&self, tid: usize, obj: usize) -> Result<bool, ()> {
        self.op_point(tid, Op::TryRecv(obj));
        let mut st = self.state();
        match st.chans[obj].queue.pop_front() {
            Some(c) => {
                st.threads[tid].clock.join(&c);
                Ok(true)
            }
            None if st.chans[obj].senders == 0 => Err(()),
            None => Ok(false),
        }
    }

    pub(crate) fn chan_sender_cloned(&self, obj: usize) {
        let mut st = self.state();
        st.chans[obj].senders += 1;
    }

    pub(crate) fn chan_sender_dropped(&self, obj: usize) {
        let mut st = self.state();
        st.chans[obj].senders = st.chans[obj].senders.saturating_sub(1);
    }

    // ---- cells (race detection proper) ------------------------------------

    /// Register a cell. Construction counts as a write by the creating
    /// thread, so a reader that never synchronizes with the creator races
    /// with the initialization itself.
    pub(crate) fn cell_new(&self, tid: usize, loc: &'static Location<'static>) -> usize {
        let mut st = self.state();
        let epoch = st.threads[tid].clock.get(tid);
        st.cells.push(CellState { last_write: Some((tid, epoch, loc)), reads: Vec::new() });
        st.cells.len() - 1
    }

    fn report_race(
        &self,
        st: &mut ExecState,
        what: &str,
        a: CellAccess,
        b: (usize, &'static Location<'static>),
    ) -> ! {
        if st.failure.is_none() {
            let detail = format!(
                "{what}: thread {} at {} is unsynchronized with thread {} at {}",
                a.0, a.2, b.0, b.1
            );
            st.failure = Some(Failure::Race { schedule: st.schedule_string(), detail });
        }
        self.cv.notify_all();
        Self::abort();
    }

    pub(crate) fn cell_read(&self, tid: usize, obj: usize, loc: &'static Location<'static>) {
        let mut st = self.state();
        if st.failure.is_some() {
            return;
        }
        let clock = st.threads[tid].clock;
        if let Some(w) = st.cells[obj].last_write {
            if w.0 != tid && !clock.dominates(w.0, w.1) {
                self.report_race(&mut st, "write/read race", w, (tid, loc));
            }
        }
        let epoch = clock.get(tid);
        let cell = &mut st.cells[obj];
        if let Some(r) = cell.reads.iter_mut().find(|r| r.0 == tid) {
            *r = (tid, epoch, loc);
        } else {
            cell.reads.push((tid, epoch, loc));
        }
    }

    pub(crate) fn cell_write(&self, tid: usize, obj: usize, loc: &'static Location<'static>) {
        let mut st = self.state();
        if st.failure.is_some() {
            return;
        }
        let clock = st.threads[tid].clock;
        if let Some(w) = st.cells[obj].last_write {
            if w.0 != tid && !clock.dominates(w.0, w.1) {
                self.report_race(&mut st, "write/write race", w, (tid, loc));
            }
        }
        let racy_read =
            st.cells[obj].reads.iter().find(|r| r.0 != tid && !clock.dominates(r.0, r.1)).copied();
        if let Some(r) = racy_read {
            self.report_race(&mut st, "read/write race", r, (tid, loc));
        }
        let epoch = clock.get(tid);
        let cell = &mut st.cells[obj];
        cell.reads.clear();
        cell.last_write = Some((tid, epoch, loc));
    }

    /// Explicit yield — a plain decision point with no dependency.
    pub(crate) fn yield_now(&self, tid: usize) {
        self.op_point(tid, Op::Yield);
    }
}

/// Wrapper running a child thread's body under the controlled scheduler.
/// Returns `None` when the execution aborted before the body completed.
pub(crate) fn run_child<T>(rt: Arc<Rt>, tid: usize, f: impl FnOnce() -> T) -> Option<T> {
    set_current(rt.clone(), tid);
    let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        rt.start_thread(tid);
        f()
    }));
    clear_current();
    match res {
        Ok(v) => {
            rt.finish_thread(tid);
            Some(v)
        }
        Err(payload) => {
            if !payload.is::<Abort>() {
                rt.record_panic(tid, payload);
            }
            rt.finish_thread_aborted(tid);
            None
        }
    }
}
