//! The exploration path: a DFS over scheduling decision points.
//!
//! One `Branch` is recorded per decision point (a point where more than one
//! thread was runnable). Re-running the model closure while replaying the
//! recorded `chosen` prefix deterministically reproduces a schedule; after
//! each execution [`Path::step`] backtracks to the deepest branch with an
//! unexplored alternative and truncates everything after it.
//!
//! Three exploration modes are supported:
//!
//! * **Exhaustive** — every runnable thread at every branch is explored.
//!   Only tractable for tiny models (a handful of threads × tens of ops).
//! * **Dpor** — dynamic partial-order reduction (Flanagan–Godefroid style):
//!   alternatives are only queued at a branch when a later operation by a
//!   different thread is *dependent* (same object, not both reads) on the
//!   operation scheduled there. Conservative dependences, so it explores a
//!   superset of one representative per Mazurkiewicz trace.
//! * **Fringe(n)** — CHESS-style iterative preemption bounding: explore all
//!   schedules with at most `n` preemptions (context switches at a point
//!   where the previous thread could have continued).

/// How the schedule space is walked.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Explore every runnable choice at every branch.
    Exhaustive,
    /// Dynamic partial-order reduction (default).
    Dpor,
    /// Bounded-preemption "fringe" exploration.
    Fringe(u32),
}

/// One scheduling decision point.
#[derive(Clone, Debug)]
pub(crate) struct Branch {
    /// Threads that were runnable (enabled, unfinished) at this point.
    pub(crate) runnable: Vec<usize>,
    /// The thread scheduled on the current path.
    pub(crate) chosen: usize,
    /// Thread that was running immediately before this point (used for
    /// preemption accounting).
    pub(crate) prev: usize,
    /// Preemptions accumulated on the path strictly before this branch.
    pub(crate) preempts_before: u32,
    /// Choices already explored from this branch.
    pub(crate) explored: Vec<usize>,
    /// Choices that still must be explored (DPOR backtrack set; in
    /// Exhaustive/Fringe modes this is seeded with every runnable thread).
    pub(crate) backtrack: Vec<usize>,
}

impl Branch {
    fn is_preemption(&self, choice: usize) -> bool {
        choice != self.prev && self.runnable.contains(&self.prev)
    }
}

/// A (re-executable) path through the schedule space.
pub(crate) struct Path {
    pub(crate) mode: Mode,
    pub(crate) branches: Vec<Branch>,
    /// Fixed schedule to replay (from `ROSS_CHECK_REPLAY` or
    /// `Builder::replay`); consulted when a branch is first created.
    pub(crate) replay: Vec<usize>,
    /// Hard cap on branches per execution — a loud failure, never silent.
    pub(crate) max_branches: usize,
}

impl Path {
    pub(crate) fn new(mode: Mode, replay: Vec<usize>, max_branches: usize) -> Path {
        Path { mode, branches: Vec::new(), replay, max_branches }
    }

    /// Return the scheduled thread for decision point `idx`, creating the
    /// branch if this is the first execution to reach it. `runnable` must be
    /// non-empty and sorted.
    pub(crate) fn schedule(&mut self, idx: usize, runnable: &[usize], prev: usize) -> usize {
        if let Some(b) = self.branches.get(idx) {
            debug_assert_eq!(
                b.runnable, runnable,
                "non-deterministic model: runnable set changed on replay"
            );
            return b.chosen;
        }
        assert!(
            idx < self.max_branches,
            "ross-check: path exceeded {} branches — model too large for exhaustive \
             exploration; use Builder::fringe or shrink the model",
            self.max_branches
        );
        let preempts_before = self
            .branches
            .last()
            .map(|b| b.preempts_before + b.is_preemption(b.chosen) as u32)
            .unwrap_or(0);
        // Default choice: keep the previous thread running when possible
        // (fewest preemptions first), otherwise the lowest runnable id.
        let chosen =
            self.replay.get(idx).copied().filter(|c| runnable.contains(c)).unwrap_or_else(|| {
                if runnable.contains(&prev) {
                    prev
                } else {
                    runnable[0]
                }
            });
        let backtrack = match self.mode {
            Mode::Dpor => vec![chosen],
            Mode::Exhaustive | Mode::Fringe(_) => runnable.to_vec(),
        };
        self.branches.push(Branch {
            runnable: runnable.to_vec(),
            chosen,
            prev,
            preempts_before,
            explored: vec![chosen],
            backtrack,
        });
        chosen
    }

    /// DPOR: queue `tid` for exploration at branch `idx`. If `tid` was not
    /// runnable there, conservatively queue every runnable thread.
    pub(crate) fn mark_backtrack(&mut self, idx: usize, tid: usize) {
        let b = &mut self.branches[idx];
        if b.runnable.contains(&tid) {
            if !b.backtrack.contains(&tid) {
                b.backtrack.push(tid);
            }
        } else {
            for &t in &b.runnable {
                if !b.backtrack.contains(&t) {
                    b.backtrack.push(t);
                }
            }
        }
    }

    /// Backtrack to the deepest branch with an unexplored alternative,
    /// truncating everything after it. Returns `false` when the space is
    /// exhausted.
    pub(crate) fn step(&mut self) -> bool {
        // Replay mode runs exactly one execution.
        if !self.replay.is_empty() {
            return false;
        }
        while let Some(b) = self.branches.last_mut() {
            let bound = match self.mode {
                Mode::Fringe(n) => Some(n),
                _ => None,
            };
            let next = b.backtrack.iter().copied().find(|&c| {
                if b.explored.contains(&c) {
                    return false;
                }
                match bound {
                    Some(n) => b.preempts_before + b.is_preemption(c) as u32 <= n,
                    None => true,
                }
            });
            match next {
                Some(c) => {
                    b.chosen = c;
                    b.explored.push(c);
                    return true;
                }
                None => {
                    self.branches.pop();
                }
            }
        }
        false
    }

    /// Serialize the executed schedule prefix as one hex digit per branch.
    pub(crate) fn schedule_string(schedule: &[usize]) -> String {
        schedule.iter().map(|&t| char::from_digit(t as u32, 16).unwrap()).collect()
    }

    /// Parse a schedule string produced by [`Path::schedule_string`].
    pub(crate) fn parse_schedule(s: &str) -> Result<Vec<usize>, String> {
        s.trim()
            .chars()
            .map(|c| {
                c.to_digit(16)
                    .map(|d| d as usize)
                    .ok_or_else(|| format!("invalid schedule digit {c:?} in {s:?}"))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn explore_all(mode: Mode, runnables: &[&[usize]]) -> Vec<Vec<usize>> {
        // Simulate a model whose decision points always present the given
        // runnable sets, collecting every explored schedule.
        let mut path = Path::new(mode, Vec::new(), 1000);
        let mut out = Vec::new();
        loop {
            let mut sched = Vec::new();
            let mut prev = 0;
            for (i, r) in runnables.iter().enumerate() {
                let c = path.schedule(i, r, prev);
                sched.push(c);
                prev = c;
            }
            out.push(sched);
            if !path.step() {
                break;
            }
        }
        out
    }

    #[test]
    fn exhaustive_enumerates_product() {
        let scheds = explore_all(Mode::Exhaustive, &[&[0, 1], &[0, 1]]);
        assert_eq!(scheds.len(), 4);
        let uniq: std::collections::BTreeSet<_> = scheds.into_iter().collect();
        assert_eq!(uniq.len(), 4);
    }

    #[test]
    fn fringe_zero_allows_no_preemption() {
        // With bound 0 the previous thread must keep running while runnable.
        let scheds = explore_all(Mode::Fringe(0), &[&[0, 1], &[0, 1]]);
        // First branch: prev=0 runnable, so only 0 is within bound; second
        // likewise. Only one schedule survives.
        assert_eq!(scheds, vec![vec![0, 0]]);
    }

    #[test]
    fn schedule_roundtrip() {
        let s = Path::schedule_string(&[0, 1, 7, 2]);
        assert_eq!(s, "0172");
        assert_eq!(Path::parse_schedule(&s).unwrap(), vec![0, 1, 7, 2]);
        assert!(Path::parse_schedule("zz").is_err());
    }
}
