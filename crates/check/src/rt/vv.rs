//! Version vectors (vector clocks) — the causality backbone.
//!
//! Every controlled thread carries a `VersionVec`; every synchronization
//! object carries one or more. A happens-before edge from thread `a` to
//! thread `b` is established by joining `a`'s clock into an object's clock
//! at a release point and joining the object's clock into `b`'s at the
//! matching acquire point. Two accesses are concurrent (and therefore a
//! candidate data race) iff neither clock dominates the other's epoch.

use crate::rt::MAX_THREADS;

/// A fixed-width vector clock, one component per controlled thread.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub(crate) struct VersionVec {
    v: [u32; MAX_THREADS],
}

impl VersionVec {
    pub(crate) fn new() -> Self {
        VersionVec::default()
    }

    /// The component for thread `tid` — the newest event of `tid` that
    /// this clock has observed.
    #[inline]
    pub(crate) fn get(&self, tid: usize) -> u32 {
        self.v[tid]
    }

    /// Advance this thread's own component (called once per scheduled
    /// operation, so every access has a distinct epoch).
    #[inline]
    pub(crate) fn tick(&mut self, tid: usize) {
        self.v[tid] += 1;
    }

    /// Pointwise maximum: after `a.join(b)`, `a` has observed everything
    /// either clock had observed.
    #[inline]
    pub(crate) fn join(&mut self, other: &VersionVec) {
        for i in 0..MAX_THREADS {
            if other.v[i] > self.v[i] {
                self.v[i] = other.v[i];
            }
        }
    }

    /// Forget everything: used when a plain relaxed store begins a new
    /// (empty) release sequence on an atomic.
    #[inline]
    pub(crate) fn clear(&mut self) {
        self.v = [0; MAX_THREADS];
    }

    /// Does this clock dominate the epoch `(tid, n)` — i.e. has the owner
    /// of this clock observed event `n` of thread `tid`?
    #[inline]
    pub(crate) fn dominates(&self, tid: usize, n: u32) -> bool {
        self.v[tid] >= n
    }
}

impl std::fmt::Debug for VersionVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "vv{:?}", &self.v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VersionVec::new();
        let mut b = VersionVec::new();
        a.tick(0);
        a.tick(0);
        b.tick(1);
        a.join(&b);
        assert_eq!(a.get(0), 2);
        assert_eq!(a.get(1), 1);
        assert!(a.dominates(1, 1));
        assert!(!a.dominates(1, 2));
    }
}
