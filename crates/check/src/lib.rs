//! # ross-check — deterministic concurrency model-checker for ross
//!
//! A loom-style checker purpose-built for the `ross` schedulers: shim
//! synchronization types ([`sync`], [`cell`], [`thread`]) route every
//! operation through a controlled scheduler that serializes the model's
//! threads and explores the space of interleavings by depth-first search
//! over scheduling decision points. Per-thread vector clocks track
//! causality; unsynchronized accesses to [`cell::UnsafeCell`] data are
//! reported as data races with both access sites and a replay schedule.
//!
//! ```
//! use ross_check::sync::atomic::{AtomicU64, Ordering};
//! use ross_check::sync::Arc;
//!
//! ross_check::model(|| {
//!     let a = Arc::new(AtomicU64::new(0));
//!     let b = a.clone();
//!     let h = ross_check::thread::spawn(move || b.store(1, Ordering::Release));
//!     let _ = a.load(Ordering::Acquire);
//!     h.join().unwrap();
//! });
//! ```
//!
//! Every failure (assertion panic, data race, deadlock) is reported with a
//! hex schedule string; re-run the same model with
//! `ROSS_CHECK_REPLAY=<schedule>` (or [`Builder::replay`]) to replay that
//! exact interleaving deterministically.

pub mod cell;
mod rt;
pub mod sync;
pub mod thread;

pub use rt::path::Mode;

use rt::path::Path;
use rt::{Failure, Rt};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Configures and runs a model exploration.
#[derive(Clone, Debug)]
pub struct Builder {
    mode: Mode,
    /// Loud upper bound on explored schedules (never a silent truncation).
    pub max_paths: usize,
    /// Loud upper bound on decision points per schedule.
    pub max_branches: usize,
    replay: Option<String>,
    /// Log progress every N schedules (0 = quiet).
    pub log_every: usize,
}

impl Default for Builder {
    fn default() -> Self {
        Builder {
            mode: Mode::Dpor,
            max_paths: 1_000_000,
            max_branches: 50_000,
            replay: None,
            log_every: 0,
        }
    }
}

impl Builder {
    pub fn new() -> Builder {
        Builder::default()
    }

    /// Explore every runnable choice at every decision point. Only viable
    /// for tiny models.
    pub fn exhaustive(mut self) -> Builder {
        self.mode = Mode::Exhaustive;
        self
    }

    /// Dynamic partial-order reduction (the default): explores at least one
    /// representative of every Mazurkiewicz trace, skipping reorderings of
    /// independent operations.
    pub fn dpor(mut self) -> Builder {
        self.mode = Mode::Dpor;
        self
    }

    /// CHESS-style bounded-preemption exploration: all schedules with at
    /// most `bound` preemptions.
    pub fn fringe(mut self, bound: u32) -> Builder {
        self.mode = Mode::Fringe(bound);
        self
    }

    pub fn max_paths(mut self, n: usize) -> Builder {
        self.max_paths = n;
        self
    }

    /// Replay exactly one schedule (as printed in a failure report).
    pub fn replay(mut self, schedule: &str) -> Builder {
        self.replay = Some(schedule.to_string());
        self
    }

    /// Run `f` under the controlled scheduler until the schedule space is
    /// exhausted. Returns the number of schedules explored. Panics — with
    /// a replayable schedule string — on the first assertion failure, data
    /// race, or deadlock.
    pub fn check(&self, f: impl Fn()) -> usize {
        let replay = match std::env::var("ROSS_CHECK_REPLAY") {
            Ok(s) if !s.trim().is_empty() => Some(s),
            _ => self.replay.clone(),
        };
        let replay = replay
            .map(|s| Path::parse_schedule(&s).expect("invalid ROSS_CHECK_REPLAY schedule"))
            .unwrap_or_default();
        let mut path = Path::new(self.mode, replay, self.max_branches);
        let mut executions: usize = 0;
        loop {
            executions += 1;
            assert!(
                executions <= self.max_paths,
                "ross-check: exceeded max_paths = {} schedules without exhausting the \
                 space; raise Builder::max_paths or use a bounded mode",
                self.max_paths
            );
            if self.log_every != 0 && executions.is_multiple_of(self.log_every) {
                eprintln!("ross-check: {executions} schedules explored...");
            }
            let rt = Arc::new(Rt::new(path));
            rt::set_current(rt.clone(), 0);
            let res = catch_unwind(AssertUnwindSafe(&f));
            if res.is_ok() {
                rt.finish_main();
            }
            rt::clear_current();
            let (p, schedule, failure) = rt.take_results();
            path = p;
            match failure {
                Some(Failure::Panic { schedule, payload }) => {
                    eprintln!(
                        "ross-check: model panicked on schedule \"{schedule}\" \
                         (replay with ROSS_CHECK_REPLAY=\"{schedule}\")"
                    );
                    resume_unwind(payload);
                }
                Some(Failure::Race { schedule, detail }) => {
                    panic!(
                        "ross-check: data race: {detail} — schedule \"{schedule}\" \
                         (replay with ROSS_CHECK_REPLAY=\"{schedule}\")"
                    );
                }
                Some(Failure::Deadlock { schedule, detail }) => {
                    panic!(
                        "ross-check: deadlock: {detail} — schedule \"{schedule}\" \
                         (replay with ROSS_CHECK_REPLAY=\"{schedule}\")"
                    );
                }
                None => {
                    if let Err(payload) = res {
                        // A panic on the model thread outside any sync op
                        // (plain assert between operations).
                        let schedule = Path::schedule_string(&schedule);
                        eprintln!(
                            "ross-check: model panicked on schedule \"{schedule}\" \
                             (replay with ROSS_CHECK_REPLAY=\"{schedule}\")"
                        );
                        resume_unwind(payload);
                    }
                }
            }
            if !path.step() {
                break;
            }
        }
        executions
    }
}

/// Explore `f` with the default [`Builder`] (DPOR mode). Returns the
/// number of schedules explored.
pub fn model(f: impl Fn()) -> usize {
    Builder::default().check(f)
}
