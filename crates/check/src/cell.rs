//! Race-detected `UnsafeCell`. Every access goes through `with`/`with_mut`
//! (the loom API shape); the runtime checks the access against the cell's
//! FastTrack-style epoch history and reports a data race — with both access
//! sites and the replay schedule — when two accesses are not ordered by
//! happens-before.

use crate::rt::with_rt;
use std::panic::Location;

#[derive(Debug)]
pub struct UnsafeCell<T> {
    obj: usize,
    data: std::cell::UnsafeCell<T>,
}

// Mirrors loom: the checked cell is shareable; the runtime serializes all
// physical access, and logical races are what the checker reports.
unsafe impl<T: Send> Send for UnsafeCell<T> {}
unsafe impl<T: Send> Sync for UnsafeCell<T> {}

impl<T> UnsafeCell<T> {
    #[track_caller]
    pub fn new(data: T) -> Self {
        let loc = Location::caller();
        let obj = with_rt(|rt, tid| rt.cell_new(tid, loc));
        UnsafeCell { obj, data: std::cell::UnsafeCell::new(data) }
    }

    /// Immutable access; records a read at the caller's source location.
    #[track_caller]
    pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        let loc = Location::caller();
        with_rt(|rt, tid| rt.cell_read(tid, self.obj, loc));
        f(self.data.get())
    }

    /// Mutable access; records a write at the caller's source location.
    #[track_caller]
    pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        let loc = Location::caller();
        with_rt(|rt, tid| rt.cell_write(tid, self.obj, loc));
        f(self.data.get())
    }

    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}
