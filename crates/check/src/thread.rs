//! Controlled threads: real OS threads serialized by the runtime's baton.
//! Mirrors the `std::thread` spawn/scope API surface `ross` uses.

use crate::rt::{self, current_rt, run_child, Abort, Rt};
use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

pub use std::thread::Result;

/// Controlled counterpart of `std::thread::spawn`.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (rt, parent) = current_rt();
    let tid = rt.spawn_thread(parent);
    let rt2 = rt.clone();
    let real = std::thread::spawn(move || run_child(rt2, tid, f));
    JoinHandle { tid, real }
}

pub struct JoinHandle<T> {
    tid: usize,
    real: std::thread::JoinHandle<Option<T>>,
}

impl<T> JoinHandle<T> {
    pub fn join(self) -> Result<T> {
        let (rt, me) = current_rt();
        rt.join_thread(me, self.tid);
        match self.real.join() {
            Ok(Some(v)) => Ok(v),
            // The child aborted: the execution has failed and join_thread
            // would normally have unwound us already; bail out the same way.
            Ok(None) => resume_unwind(Box::new(Abort)),
            Err(e) => Err(e),
        }
    }
}

/// Controlled counterpart of `std::thread::yield_now` — a plain decision
/// point with no dependency, useful to widen exploration in tests.
pub fn yield_now() {
    let (rt, tid) = current_rt();
    rt.yield_now(tid);
}

/// Controlled counterpart of `std::thread::scope`.
///
/// Children are controlled-joined (baton discipline) before the underlying
/// std scope performs its real joins, so the real joins never block on a
/// thread that is still waiting to be scheduled.
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
{
    let (rt, me) = current_rt();
    std::thread::scope(|s| {
        let scope = Scope { std: s, rt: rt.clone(), children: RefCell::new(Vec::new()) };
        let out = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        match out {
            Ok(v) => {
                for tid in scope.children.take() {
                    rt.join_thread(me, tid);
                }
                v
            }
            Err(payload) => {
                // Mark the execution failed (waking all parked children so
                // the std scope's real joins can complete), then unwind.
                if !payload.is::<Abort>() {
                    rt.record_panic(me, payload);
                }
                resume_unwind(Box::new(Abort));
            }
        }
    })
}

pub struct Scope<'scope, 'env: 'scope> {
    std: &'scope std::thread::Scope<'scope, 'env>,
    rt: Arc<Rt>,
    children: RefCell<Vec<usize>>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    // `&self` (not `&'scope self`): the callback only holds a short
    // borrow of the Scope, and `Scope` is invariant over `'scope`; the
    // `'scope`-lived std handle is copied out of the field instead.
    pub fn spawn<T, F>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let me = rt::with_rt(|_, tid| tid);
        let tid = self.rt.spawn_thread(me);
        let rt = self.rt.clone();
        let real = self.std.spawn(move || run_child(rt, tid, f));
        self.children.borrow_mut().push(tid);
        ScopedJoinHandle { tid, real }
    }
}

pub struct ScopedJoinHandle<'scope, T> {
    tid: usize,
    real: std::thread::ScopedJoinHandle<'scope, Option<T>>,
}

impl<T> ScopedJoinHandle<'_, T> {
    pub fn join(self) -> Result<T> {
        let (rt, me) = current_rt();
        rt.join_thread(me, self.tid);
        match self.real.join() {
            Ok(Some(v)) => Ok(v),
            Ok(None) => resume_unwind(Box::new(Abort)),
            Err(e) => Err(e),
        }
    }
}
