//! Critical-path analysis over exported Chrome traces.
//!
//! [`parse_chrome`] rebuilds per-run event and span records from the
//! JSON `ross::Tracer::to_chrome_json` writes (the `args` carry the
//! exact integers; `ts`/`dur` round-trip through microseconds with
//! nanosecond precision). [`analyze`] then reconstructs the committed
//! event dependency DAG — an event depends on the execution that sent it
//! (uid-range linkage) and on the previous committed event of its LP —
//! and reports the longest weighted causal chain, the resulting upper
//! bound on parallel speedup, per-LP / per-kind critical-path residency,
//! and (for optimistic runs) how much executed work was rolled back.

use serde::Value;
use std::collections::HashMap;
use std::fmt::Write;

/// One executed-event record rebuilt from a Chrome export.
#[derive(Clone, Debug)]
pub struct TracedEvent {
    /// Executing (destination) LP.
    pub lp: u32,
    /// Sending LP.
    pub src: u32,
    /// Model kind tag; `kind_name` is its display name.
    pub kind: u16,
    pub kind_name: String,
    pub recv_ns: u64,
    pub send_ns: u64,
    /// Event uid (sender LP, sender-local sequence number).
    pub uid_src: u32,
    pub uid_seq: u64,
    /// The events this execution sent carry uids
    /// `(lp, child_lo..child_lo + children)`.
    pub child_lo: u64,
    pub children: u64,
    /// Sampled handler wall time.
    pub dur_ns: u64,
    /// Rolled back or annihilated after executing (optimistic only).
    pub wasted: bool,
}

/// One scheduler-phase span rebuilt from a Chrome export.
#[derive(Clone, Debug)]
pub struct TracedSpan {
    pub worker: u32,
    /// `gvt`, `fossil`, `rollback` or `barrier`.
    pub kind: String,
    pub start_ns: u64,
    pub dur_ns: u64,
}

/// One traced run: metadata plus every event/span record.
#[derive(Clone, Debug, Default)]
pub struct TraceRun {
    pub run: u32,
    pub label: String,
    pub sched: String,
    pub threads: u64,
    pub wall_ns: u64,
    pub end_ns: u64,
    pub sample_rate: u64,
    /// LP id → track name (from `thread_name` metadata).
    pub lp_names: HashMap<u32, String>,
    pub events: Vec<TracedEvent>,
    pub spans: Vec<TracedSpan>,
}

/// Chrome `ts`/`dur` microseconds (3-decimal) back to nanoseconds.
fn to_ns(us: f64) -> u64 {
    (us * 1000.0).round().max(0.0) as u64
}

fn req_u64(v: &Value, key: &str, what: &str) -> Result<u64, String> {
    v.get(key).and_then(Value::as_u64).ok_or_else(|| format!("{what}: missing `{key}`"))
}

/// Parse a Chrome trace-event JSON document written by
/// `ross::Tracer::to_chrome_json` back into per-run records. Unknown
/// records (metadata Perfetto adds, foreign phases) are skipped; a
/// malformed document is an error, not a partial result.
pub fn parse_chrome(json: &str) -> Result<Vec<TraceRun>, String> {
    let doc: Value = serde_json::from_str(json).map_err(|e| format!("invalid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or("no `traceEvents` array — not a Chrome trace")?;
    let mut runs: HashMap<u32, TraceRun> = HashMap::new();
    let run_of = |runs: &mut HashMap<u32, TraceRun>, pid: u64| -> u32 {
        let id = (pid / 2) as u32;
        runs.entry(id).or_insert_with(|| TraceRun { run: id, ..TraceRun::default() });
        id
    };
    for (i, ev) in events.iter().enumerate() {
        let what = format!("traceEvents[{i}]");
        let ph = ev.get("ph").and_then(Value::as_str).unwrap_or("");
        let Some(pid) = ev.get("pid").and_then(Value::as_u64) else { continue };
        let tid = ev.get("tid").and_then(Value::as_u64).unwrap_or(0);
        let name = ev.get("name").and_then(Value::as_str).unwrap_or("");
        match ph {
            "M" => {
                let id = run_of(&mut runs, pid);
                let run = runs.get_mut(&id).expect("just inserted");
                match name {
                    "union_run" => {
                        let a = ev.get("args").ok_or_else(|| format!("{what}: no args"))?;
                        run.label =
                            a.get("label").and_then(Value::as_str).unwrap_or("").to_string();
                        run.sched =
                            a.get("sched").and_then(Value::as_str).unwrap_or("?").to_string();
                        run.threads = req_u64(a, "threads", &what)?;
                        run.wall_ns = req_u64(a, "wall_ns", &what)?;
                        run.end_ns = req_u64(a, "end_ns", &what)?;
                        run.sample_rate = req_u64(a, "sample_rate", &what)?.max(1);
                    }
                    "thread_name" if pid % 2 == 0 => {
                        if let Some(n) =
                            ev.get("args").and_then(|a| a.get("name")).and_then(Value::as_str)
                        {
                            run.lp_names.insert(tid as u32, n.to_string());
                        }
                    }
                    _ => {}
                }
            }
            "X" => {
                let ts = ev.get("ts").and_then(Value::as_f64).ok_or(format!("{what}: no ts"))?;
                let dur = ev.get("dur").and_then(Value::as_f64).unwrap_or(0.0);
                let id = run_of(&mut runs, pid);
                let run = runs.get_mut(&id).expect("just inserted");
                if pid % 2 == 0 {
                    let a = ev.get("args").ok_or_else(|| format!("{what}: event without args"))?;
                    run.events.push(TracedEvent {
                        lp: tid as u32,
                        src: req_u64(a, "src", &what)? as u32,
                        kind: req_u64(a, "k", &what)? as u16,
                        kind_name: name.to_string(),
                        recv_ns: to_ns(ts),
                        send_ns: req_u64(a, "st", &what)?,
                        uid_src: req_u64(a, "us", &what)? as u32,
                        uid_seq: req_u64(a, "q", &what)?,
                        child_lo: req_u64(a, "lo", &what)?,
                        children: req_u64(a, "nc", &what)?,
                        dur_ns: to_ns(dur),
                        wasted: req_u64(a, "w", &what)? != 0,
                    });
                } else {
                    run.spans.push(TracedSpan {
                        worker: tid as u32,
                        kind: name.to_string(),
                        start_ns: to_ns(ts),
                        dur_ns: to_ns(dur),
                    });
                }
            }
            _ => {}
        }
    }
    let mut out: Vec<TraceRun> = runs.into_values().collect();
    out.sort_by_key(|r| r.run);
    Ok(out)
}

/// Name + how much of the critical path (or wasted work) it accounts for.
#[derive(Clone, Debug)]
pub struct Residency {
    pub name: String,
    pub events: u64,
    pub ns: u64,
}

/// Everything the critical-path analyzer derives from one run.
#[derive(Clone, Debug)]
pub struct RunAnalysis {
    pub run: u32,
    pub label: String,
    pub sched: String,
    pub threads: u64,
    pub wall_ns: u64,
    pub end_ns: u64,
    pub sample_rate: u64,
    pub committed_events: u64,
    pub wasted_events: u64,
    /// Σ sampled handler time over committed / wasted executions.
    pub committed_work_ns: u64,
    pub wasted_work_ns: u64,
    /// Longest weighted chain through the committed dependency DAG.
    pub critical_path_len: u64,
    pub critical_path_ns: u64,
    /// `committed_work_ns / critical_path_ns` — no scheduler can beat it.
    pub speedup_bound: f64,
    /// Critical-path residency, descending by time.
    pub lp_residency: Vec<Residency>,
    pub kind_residency: Vec<Residency>,
    /// Wasted (rolled-back) work per kind, descending by time.
    pub wasted_by_kind: Vec<Residency>,
    /// Scheduler-phase totals: (kind, count, Σ ns).
    pub span_totals: Vec<(String, u64, u64)>,
}

impl RunAnalysis {
    /// Fraction of all executed handler time that was rolled back.
    pub fn wasted_fraction(&self) -> f64 {
        let total = self.committed_work_ns + self.wasted_work_ns;
        if total == 0 {
            0.0
        } else {
            self.wasted_work_ns as f64 / total as f64
        }
    }

    /// Structural invariants every well-formed analysis satisfies;
    /// returns human-readable violations (empty = sound). Used by the CI
    /// smoke step and the observability tests.
    pub fn check_invariants(&self) -> Vec<String> {
        let mut bad = Vec::new();
        if self.critical_path_len > self.committed_events {
            bad.push(format!(
                "critical path has {} events but only {} committed",
                self.critical_path_len, self.committed_events
            ));
        }
        if self.critical_path_ns > self.committed_work_ns {
            bad.push(format!(
                "critical path {} ns exceeds total committed work {} ns",
                self.critical_path_ns, self.committed_work_ns
            ));
        }
        if self.committed_events > 0 && self.speedup_bound < 1.0 {
            bad.push(format!("speedup bound {:.3} below 1", self.speedup_bound));
        }
        if self.committed_events > 0 && self.critical_path_len == 0 {
            bad.push("committed events but an empty critical path".to_string());
        }
        let path_lp_ns: u64 = self.lp_residency.iter().map(|r| r.ns).sum();
        if path_lp_ns != self.critical_path_ns {
            bad.push(format!(
                "LP residency sums to {} ns, critical path is {} ns",
                path_lp_ns, self.critical_path_ns
            ));
        }
        bad
    }
}

/// Group (name → events/ns) accumulation, returned descending by ns.
fn residency_table(items: impl Iterator<Item = (String, u64)>) -> Vec<Residency> {
    let mut by_name: HashMap<String, (u64, u64)> = HashMap::new();
    for (name, ns) in items {
        let e = by_name.entry(name).or_insert((0, 0));
        e.0 += 1;
        e.1 += ns;
    }
    let mut out: Vec<Residency> =
        by_name.into_iter().map(|(name, (events, ns))| Residency { name, events, ns }).collect();
    out.sort_by(|a, b| b.ns.cmp(&a.ns).then_with(|| a.name.cmp(&b.name)));
    out
}

/// Reconstruct the committed dependency DAG of `run` and measure it.
pub fn analyze(run: &TraceRun) -> RunAnalysis {
    // Committed events in deterministic execution order: recv time first,
    // then the same tiebreak coordinates the engine orders equal-time
    // events by.
    let mut committed: Vec<&TracedEvent> = run.events.iter().filter(|e| !e.wasted).collect();
    committed.sort_by_key(|e| (e.recv_ns, e.send_ns, e.uid_src, e.uid_seq, e.lp));
    let n = committed.len();

    // Parent lookup: an event with uid (s, q) was sent by the committed
    // execution on LP s whose child range covers q. Ranges on one LP are
    // disjoint (the uid counter never rolls back), so binary search works.
    let mut ranges: HashMap<u32, Vec<(u64, u64, usize)>> = HashMap::new();
    for (i, e) in committed.iter().enumerate() {
        if e.children > 0 {
            ranges.entry(e.lp).or_default().push((e.child_lo, e.child_lo + e.children, i));
        }
    }
    for v in ranges.values_mut() {
        v.sort_unstable_by_key(|&(lo, ..)| lo);
    }
    let parent_of = |e: &TracedEvent| -> Option<usize> {
        let v = ranges.get(&e.uid_src)?;
        let at = v.partition_point(|&(lo, ..)| lo <= e.uid_seq);
        let &(lo, hi, i) = v.get(at.checked_sub(1)?)?;
        (lo <= e.uid_seq && e.uid_seq < hi).then_some(i)
    };

    // Per-event dependencies: the sending execution and the previous
    // committed execution on the same LP (LPs are sequential).
    let mut deps: Vec<[Option<usize>; 2]> = vec![[None, None]; n];
    let mut last_on_lp: HashMap<u32, usize> = HashMap::new();
    for (i, e) in committed.iter().enumerate() {
        deps[i][0] = parent_of(e).filter(|&p| p != i);
        deps[i][1] = last_on_lp.insert(e.lp, i).filter(|&p| p != i);
    }

    // Longest weighted path via Kahn ordering (robust to any recording
    // order; a malformed cyclic input degrades to partial finishes
    // instead of hanging).
    let mut indeg = vec![0u32; n];
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, d) in deps.iter().enumerate() {
        for p in d.iter().flatten() {
            indeg[i] += 1;
            rev[*p].push(i);
        }
    }
    let mut finish = vec![0u64; n];
    let mut best_dep: Vec<Option<usize>> = vec![None; n];
    let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    while let Some(i) = ready.pop() {
        let e = committed[i];
        let (start, from) =
            deps[i].iter().flatten().map(|&p| (finish[p], Some(p))).max().unwrap_or((0, None));
        finish[i] = start + e.dur_ns;
        best_dep[i] = from;
        for &c in &rev[i] {
            indeg[c] -= 1;
            if indeg[c] == 0 {
                ready.push(c);
            }
        }
    }

    // Recover the path ending at the globally latest finish.
    let mut path: Vec<usize> = Vec::new();
    if let Some(end) = (0..n).max_by_key(|&i| (finish[i], std::cmp::Reverse(i))) {
        let mut cur = Some(end);
        while let Some(i) = cur {
            path.push(i);
            cur = best_dep[i];
        }
        path.reverse();
    }

    let committed_work_ns: u64 = committed.iter().map(|e| e.dur_ns).sum();
    let critical_path_ns: u64 = path.iter().map(|&i| committed[i].dur_ns).sum();
    let wasted: Vec<&TracedEvent> = run.events.iter().filter(|e| e.wasted).collect();
    let lp_name = |lp: u32| run.lp_names.get(&lp).cloned().unwrap_or_else(|| format!("lp {lp}"));
    let speedup_bound = if critical_path_ns == 0 {
        1.0
    } else {
        (committed_work_ns as f64 / critical_path_ns as f64).max(1.0)
    };
    RunAnalysis {
        run: run.run,
        label: run.label.clone(),
        sched: run.sched.clone(),
        threads: run.threads,
        wall_ns: run.wall_ns,
        // Completed optimistic runs report their final GVT (u64::MAX) as
        // the end time; the last committed event is the honest horizon.
        end_ns: if run.end_ns == u64::MAX {
            committed.last().map_or(0, |e| e.recv_ns)
        } else {
            run.end_ns
        },
        sample_rate: run.sample_rate,
        committed_events: n as u64,
        wasted_events: wasted.len() as u64,
        committed_work_ns,
        wasted_work_ns: wasted.iter().map(|e| e.dur_ns).sum(),
        critical_path_len: path.len() as u64,
        critical_path_ns,
        speedup_bound,
        lp_residency: residency_table(
            path.iter().map(|&i| (lp_name(committed[i].lp), committed[i].dur_ns)),
        ),
        kind_residency: residency_table(
            path.iter().map(|&i| (committed[i].kind_name.clone(), committed[i].dur_ns)),
        ),
        wasted_by_kind: residency_table(wasted.iter().map(|e| (e.kind_name.clone(), e.dur_ns))),
        span_totals: {
            let t = residency_table(run.spans.iter().map(|s| (s.kind.clone(), s.dur_ns)));
            t.into_iter().map(|r| (r.name, r.events, r.ns)).collect()
        },
    }
}

/// A stable fingerprint of a run's committed causal structure: equal
/// seeds and schedulers must produce equal fingerprints regardless of
/// thread interleaving or wall-clock noise (durations are excluded).
pub fn causality_fingerprint(run: &TraceRun) -> u64 {
    let mut committed: Vec<&TracedEvent> = run.events.iter().filter(|e| !e.wasted).collect();
    committed.sort_by_key(|e| (e.recv_ns, e.send_ns, e.uid_src, e.uid_seq, e.lp));
    // FNV-1a over the causal coordinates of every committed event.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    mix(committed.len() as u64);
    for e in committed {
        mix(e.lp as u64);
        mix(e.src as u64);
        mix(e.recv_ns);
        mix(e.send_ns);
        mix(e.uid_src as u64);
        mix(e.uid_seq);
        mix(e.children);
        mix(e.kind as u64);
    }
    h
}

pub(crate) fn fmt_ns(ns: u64) -> String {
    let v = ns as f64;
    if v >= 1e9 {
        format!("{:.2} s", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2} ms", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2} us", v / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn write_residency(out: &mut String, title: &str, rows: &[Residency], total_ns: u64, top: usize) {
    if rows.is_empty() {
        return;
    }
    let _ = writeln!(out, "  {title}:");
    let _ = writeln!(out, "  | where | events | time | share |");
    let _ = writeln!(out, "  |---|---|---|---|");
    for r in rows.iter().take(top) {
        let share = if total_ns == 0 { 0.0 } else { 100.0 * r.ns as f64 / total_ns as f64 };
        let _ = writeln!(out, "  | {} | {} | {} | {:.1}% |", r.name, r.events, fmt_ns(r.ns), share);
    }
    if rows.len() > top {
        let _ = writeln!(out, "  | … {} more | | | |", rows.len() - top);
    }
}

/// Render a full analysis report (one block per run).
pub fn render(analyses: &[RunAnalysis]) -> String {
    let mut out = String::new();
    for a in analyses {
        let label = if a.label.is_empty() { "run".to_string() } else { a.label.clone() };
        let _ = writeln!(
            out,
            "Critical path — run {} · {label} · {}:{} (sample rate {})",
            a.run, a.sched, a.threads, a.sample_rate
        );
        let _ = writeln!(
            out,
            "  committed: {} events, {} of handler time; wall {} to virtual t={}",
            a.committed_events,
            fmt_ns(a.committed_work_ns),
            fmt_ns(a.wall_ns),
            fmt_ns(a.end_ns),
        );
        if a.wasted_events > 0 {
            let _ = writeln!(
                out,
                "  wasted (rolled back): {} events, {} ({:.1}% of executed time)",
                a.wasted_events,
                fmt_ns(a.wasted_work_ns),
                100.0 * a.wasted_fraction(),
            );
        }
        let _ = writeln!(
            out,
            "  critical path: {} events, {}",
            a.critical_path_len,
            fmt_ns(a.critical_path_ns)
        );
        let _ = writeln!(out, "  max parallel speedup bound: {:.2}x", a.speedup_bound);
        write_residency(
            &mut out,
            "critical-path residency by LP",
            &a.lp_residency,
            a.critical_path_ns,
            8,
        );
        write_residency(
            &mut out,
            "critical-path residency by kind",
            &a.kind_residency,
            a.critical_path_ns,
            8,
        );
        write_residency(&mut out, "wasted work by kind", &a.wasted_by_kind, a.wasted_work_ns, 8);
        if !a.span_totals.is_empty() {
            let joined: Vec<String> = a
                .span_totals
                .iter()
                .map(|(k, c, ns)| format!("{k} ×{c} {}", fmt_ns(*ns)))
                .collect();
            let _ = writeln!(out, "  scheduler phases: {}", joined.join(", "));
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::too_many_arguments)]
    fn ev(
        lp: u32,
        src: u32,
        recv: u64,
        send: u64,
        uid: (u32, u64),
        lo: u64,
        nc: u64,
        dur: u64,
        wasted: bool,
    ) -> TracedEvent {
        TracedEvent {
            lp,
            src,
            kind: 0,
            kind_name: "net".to_string(),
            recv_ns: recv,
            send_ns: send,
            uid_src: uid.0,
            uid_seq: uid.1,
            child_lo: lo,
            children: nc,
            dur_ns: dur,
            wasted,
        }
    }

    /// A two-LP chain: root on LP0 sends to LP1; a second independent
    /// root on LP0. Critical path = root + child.
    #[test]
    fn chain_beats_independent_work() {
        let run = TraceRun {
            events: vec![
                ev(0, 0, 10, 0, (0, 0), 0, 1, 100, false),
                ev(1, 0, 20, 10, (0, 0), 0, 0, 50, false),
                ev(0, 0, 15, 0, (9, 7), 5, 0, 60, false),
            ],
            ..TraceRun::default()
        };
        let a = analyze(&run);
        assert_eq!(a.committed_events, 3);
        // Chain 100 + 50 = 150 vs the lone 60+... LP0 serializes the
        // independent event after the root: 100 + 60 = 160; the path end
        // is LP0's second event.
        assert_eq!(a.critical_path_ns, 160);
        assert_eq!(a.critical_path_len, 2);
        assert!((a.speedup_bound - 210.0 / 160.0).abs() < 1e-9);
        assert!(a.check_invariants().is_empty(), "{:?}", a.check_invariants());
    }

    #[test]
    fn parent_linkage_crosses_lps() {
        // Root (lp0) sends two children to lp1 and lp2; each child is
        // cheap, so the path is root + one child and the bound ~3x... but
        // LP-order serializes nothing extra here.
        let run = TraceRun {
            events: vec![
                ev(0, 0, 10, 0, (0, 0), 0, 2, 90, false),
                ev(1, 0, 30, 10, (0, 0), 0, 0, 10, false),
                ev(2, 0, 30, 10, (0, 1), 0, 0, 10, false),
            ],
            ..TraceRun::default()
        };
        let a = analyze(&run);
        assert_eq!(a.critical_path_ns, 100);
        assert_eq!(a.critical_path_len, 2);
        assert!(a.check_invariants().is_empty());
    }

    #[test]
    fn wasted_events_are_excluded_from_the_dag_but_counted() {
        let run = TraceRun {
            events: vec![
                ev(0, 0, 10, 0, (0, 0), 0, 0, 40, false),
                ev(0, 1, 5, 0, (1, 3), 0, 0, 70, true),
            ],
            ..TraceRun::default()
        };
        let a = analyze(&run);
        assert_eq!(a.committed_events, 1);
        assert_eq!(a.wasted_events, 1);
        assert_eq!(a.critical_path_ns, 40);
        assert_eq!(a.wasted_work_ns, 70);
        assert!(a.wasted_fraction() > 0.6 && a.wasted_fraction() < 0.7);
        assert_eq!(a.wasted_by_kind.len(), 1);
        assert!(a.check_invariants().is_empty());
    }

    #[test]
    fn fingerprint_ignores_durations_and_order() {
        let mut run = TraceRun {
            events: vec![
                ev(0, 0, 10, 0, (0, 0), 0, 1, 100, false),
                ev(1, 0, 20, 10, (0, 0), 0, 0, 50, false),
            ],
            ..TraceRun::default()
        };
        let f1 = causality_fingerprint(&run);
        run.events.reverse();
        for e in &mut run.events {
            e.dur_ns *= 3;
        }
        assert_eq!(causality_fingerprint(&run), f1);
        run.events[0].recv_ns += 1;
        assert_ne!(causality_fingerprint(&run), f1);
    }

    #[test]
    fn parses_tracer_export() {
        use ross::Tracer;
        let tr = Tracer::new(1);
        tr.label_next_run("unit");
        tr.stage_kind_names(vec!["net".into()]);
        tr.stage_lp_names(vec!["node 0".into(), "node 1".into()]);
        let run = tr.open_run("sequential", 1);
        let mut buf = tr.buf(run, 0);
        for i in 0..4u64 {
            let t0 = buf.event_start();
            let env = ross::Envelope {
                recv_time: ross::SimTime(1000 * (i + 1)),
                send_time: ross::SimTime(1000 * i),
                src: 0,
                dst: 0,
                tiebreak: i,
                uid: ross::EventUid { src: 0, seq: i },
                payload: (),
            };
            // Execution of uid (0, i) sends uid (0, i+1): the sender's
            // counter sits one past its own uid when the handler runs.
            buf.record(&env, i + 1, u32::from(i < 3), 0, t0);
        }
        tr.submit(buf);
        tr.close_run(run, 12_345, 4000);
        let runs = parse_chrome(&tr.to_chrome_json()).expect("parse");
        assert_eq!(runs.len(), 1);
        let r = &runs[0];
        assert_eq!(r.label, "unit");
        assert_eq!(r.sched, "sequential");
        assert_eq!(r.wall_ns, 12_345);
        assert_eq!(r.events.len(), 4);
        assert_eq!(r.lp_names.get(&0).map(String::as_str), Some("node 0"));
        let a = analyze(r);
        assert_eq!(a.committed_events, 4);
        // seq 0..3 chain through the uid ranges: every event's child
        // range is [i, i+1), so event i+1 is event i's child.
        assert_eq!(a.critical_path_len, 4);
        assert!(a.check_invariants().is_empty(), "{:?}", a.check_invariants());
    }
}
