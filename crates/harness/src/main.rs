//! `union-exp` — regenerate the paper's tables and figures.
//!
//! ```text
//! union-exp table2                      # system configurations
//! union-exp validate [--ranks 512]     # Tables IV & V + Fig 6 (AlexNet)
//! union-exp fig7 [sweep opts]          # message-latency boxplots
//! union-exp fig9 [sweep opts]          # communication times
//! union-exp fig8 [sweep opts]          # router time series (RG vs RR)
//! union-exp table6 [sweep opts]        # link loads (1D vs 2D)
//! union-exp all [sweep opts]           # everything above
//! union-exp skeleton <name>            # print the generated C skeleton
//! union-exp lint [--fixture N|--file F] # static analysis (union-lint);
//!                                       # exit 0 clean / 1 findings / 2 usage
//! union-exp trace --analyze F.json     # critical-path analysis of an
//!                                       # exported Chrome trace
//!
//! sweep opts:
//!   --profile quick|paper   (default quick)
//!   --iters N               iterations per app (default 2)
//!   --scale N               payload divisor (default 16)
//!   --seed N
//!   --sched seq|cons:T|opt:T[:B:I]|par:T:L|async:T:L
//!                                       (par = conservative-parallel,
//!                                       async = barrier-free conservative,
//!                                       T threads, L ns lookahead window;
//!                                       opt:T:B:I = batch B, snapshot
//!                                       interval I)
//!   --queue heap|ladder     pending-event queue (default ladder)
//!   --nets 1d,2d  --placements RN,RR,RG  --routings MIN,ADP
//!   --workloads 1,2,3  --no-baselines
//!   --json FILE             dump records as JSON
//!   --telemetry FILE        write run telemetry as JSONL and print a
//!                           summary (first record is the run manifest)
//!   --trace FILE[:RATE]     record a causal event trace and export it as
//!                           Chrome trace-event JSON (Perfetto-loadable);
//!                           RATE samples handler durations every RATE-th
//!                           event (default 1 = every event)
//! ```

use dragonfly::Routing;
use harness::report;
use harness::sweep::{self, Net, SweepConfig};
use placement::Placement;
use ross::Scheduler;
use union_core::{codegen, RankVm, SkeletonInstance, Validation};
use workloads::Profile;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(|s| s.as_str()).unwrap_or("help");
    let rest = &args[1.min(args.len())..];
    match cmd {
        "table1" => table1(rest),
        "table2" => print!("{}", report::table2()),
        "validate" | "table4" | "table5" | "fig6" => validate(cmd, rest),
        "fig7" | "fig9" | "table6" | "all" => sweep_cmd(cmd, rest),
        "fig8" => fig8(rest),
        "skeleton" => skeleton(rest),
        "lint" => lint_cmd(rest),
        "trace" => trace_cmd(rest),
        "phold" => phold_cmd(rest),
        "mix" => mix_cmd(rest),
        "top" => top_cmd(rest),
        _ => {
            eprintln!(
                "usage: union-exp <table1|table2|validate|fig7|fig8|fig9|table6|all|skeleton|lint|trace|phold|mix|top> [opts]\n\
                 sweep opts: --profile quick|paper  --iters N  --scale N  --seed N\n\
                 \x20           --sched seq|cons:T|opt:T[:B:I]|par:T:L|async:T:L  (T threads,\n\
                 \x20           L ns lookahead, B batch, I snapshot interval)\n\
                 \x20           --queue heap|ladder  (pending-event queue, default ladder)\n\
                 \x20           --nets 1d,2d  --placements RN,RR,RG  --routings MIN,ADP\n\
                 \x20           --workloads 1,2,3  --no-baselines  --json FILE  --allow-lint\n\
                 \x20           --telemetry FILE  (JSONL run telemetry + summary)\n\
                 \x20           --trace FILE[:RATE]  (Chrome trace-event export; RATE = duration\n\
                 \x20           sampling divisor, default 1)\n\
                 lint opts:  [--fixture NAME | --file PROG.ncptl [--ranks N] | sweep opts]\n\
                 \x20           exit 0 = clean, 1 = findings, 2 = usage error\n\
                 trace opts: --analyze FILE.json  (critical path, speedup bound, wasted work)\n\
                 phold opts: --sched seq|shard:N:T:L  --lps N  --horizon-us U  --seed N\n\
                 \x20           --queue heap|ladder  --until-us U  --checkpoint FILE[:EVERY_US]\n\
                 \x20           --restore FILE  --shard-no-verify  --telemetry FILE\n\
                 \x20           --live ADDR [--live-hold MS] [--live-interval MS]\n\
                 \x20           (exposition endpoint: GET /metrics Prometheus text,\n\
                 \x20           /snapshot JSON; gang runs serve one aggregated endpoint)\n\
                 mix opts:   --sched seq|shard:N:T:L  --workload W  --net 1d|2d\n\
                 \x20           --placement RN|RR|RG  --routing MIN|ADP  [sweep opts]\n\
                 \x20           --shard-no-verify  --telemetry FILE  --live ADDR\n\
                 top:        union-exp top ADDR|FILE  (live summary table from a\n\
                 \x20           running endpoint or a snapshot JSONL file)"
            );
            std::process::exit(2);
        }
    }
}

/// Table I: quantify the trace-replay vs Union comparison on one
/// workload: artifact sizes, preparation cost, and result equivalence.
fn table1(rest: &[String]) {
    use std::sync::Arc;
    use union_core::Trace;
    let ranks: u32 = opt(rest, "--ranks", 64);
    let iters: i64 = opt(rest, "--iters", 5);
    let cfg = workloads::app(workloads::AppKind::NearestNeighbor, Profile::Quick, iters, 16);
    let args: Vec<&str> = cfg.args.iter().map(|s| s.as_str()).collect();
    let inst = SkeletonInstance::new(&cfg.skeleton, ranks, &args).expect("instance");

    let t0 = std::time::Instant::now();
    let trace = Arc::new(Trace::record(&inst, 1));
    let record_s = t0.elapsed().as_secs_f64();
    let skeleton_size = serde_json::to_vec(&cfg.skeleton).unwrap().len() as u64;
    let trace_size = trace.jsonl_size();

    let run = |b: codes::SimulationBuilder| {
        let mut sim = b.build().unwrap();
        let t = std::time::Instant::now();
        let r = sim.run(ross::Scheduler::Sequential, ross::SimTime::MAX);
        (r, t.elapsed().as_secs_f64())
    };
    let mk = || codes::SimulationBuilder::new(dragonfly::DragonflyConfig::small_1d()).seed(2);
    let (r_skel, t_skel) =
        run(mk().job(cfg.name(), (0..ranks).map(|r| RankVm::new(inst.clone(), r, 1)).collect()));
    let (r_trace, t_trace) = run(mk().job_trace(cfg.name(), &trace));

    let lat = |r: &codes::SimResults| r.apps[0].latency.iter().map(|l| l.sum_ns).sum::<u64>();
    println!("Table I — workload mechanisms compared on NN ({ranks} ranks, {iters} iters)");
    println!("| Feature | Trace Replay | Union |");
    println!("|---|---|---|");
    println!("| Trace collection | Yes ({record_s:.3}s app run) | No |");
    println!(
        "| Workload artifact size | {} (JSONL, {} records) | {} (skeleton) |",
        metrics::fmt_bytes(trace_size as f64),
        trace.len(),
        metrics::fmt_bytes(skeleton_size as f64),
    );
    println!("| Scaling application size | re-trace per size | rebind num_tasks |");
    println!("| Automatic skeletonization | n/a | Yes (translator) |");
    println!("| Integration to CODES | file ingest | automated registry |");
    println!("| Simulation wall time | {t_trace:.2}s | {t_skel:.2}s |");
    println!(
        "| Identical simulation results | {} |  |",
        if lat(&r_skel) == lat(&r_trace) { "yes (verified)" } else { "NO (bug!)" }
    );
}

/// Parse the value of `flag`, or `default` when the flag is absent.
/// A present-but-malformed value is a usage error (exit 2), matching
/// the strict `--sched`/`--queue` convention — `--iters abc` must not
/// silently run with the default.
fn opt<T: std::str::FromStr>(rest: &[String], flag: &str, default: T) -> T {
    let Some(i) = rest.iter().position(|a| a == flag) else { return default };
    let Some(v) = rest.get(i + 1) else {
        eprintln!("union-exp: flag {flag} needs a value");
        std::process::exit(2);
    };
    v.parse().unwrap_or_else(|_| {
        eprintln!("union-exp: bad value `{v}` for {flag}");
        std::process::exit(2);
    })
}

fn opt_str<'a>(rest: &'a [String], flag: &str, default: &'a str) -> &'a str {
    rest.iter()
        .position(|a| a == flag)
        .and_then(|i| rest.get(i + 1))
        .map(|s| s.as_str())
        .unwrap_or(default)
}

fn has(rest: &[String], flag: &str) -> bool {
    rest.iter().any(|a| a == flag)
}

/// Parse a `--sched` spec: `seq`, `cons:T`, `opt:T` or `opt:T:B:I`,
/// `par:T:L`, or `async:T:L` where `T` is the worker-thread count, `L`
/// the lookahead in ns (`par:4:500` = 4 workers, 500 ns windows;
/// `async:4:500` = the barrier-free scheduler with the same lookahead
/// promise), `B` the optimistic batch size and `I` the snapshot interval
/// (`opt:4:32:4` = 4 workers, 32-event batches, snapshot every 4 events).
/// Malformed specs are reported, not silently defaulted.
fn parse_sched(s: &str) -> Result<Scheduler, String> {
    fn threads(t: &str, spec: &str) -> Result<usize, String> {
        t.parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| format!("bad thread count `{t}` in scheduler spec `{spec}`"))
    }
    if s == "seq" {
        Ok(Scheduler::Sequential)
    } else if let Some(t) = s.strip_prefix("cons:") {
        Ok(Scheduler::Conservative(threads(t, s)?))
    } else if let Some(rest) = s.strip_prefix("opt:") {
        let mut parts = rest.split(':');
        let t = threads(parts.next().unwrap_or(""), s)?;
        match (parts.next(), parts.next(), parts.next()) {
            (None, ..) => Ok(Scheduler::Optimistic(t)),
            (Some(b), Some(i), None) => {
                let batch = b
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("bad batch `{b}` in scheduler spec `{s}`"))?;
                let snapshot_interval =
                    i.parse::<u64>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                        format!("bad snapshot interval `{i}` in scheduler spec `{s}`")
                    })?;
                Ok(Scheduler::OptimisticWith {
                    threads: t,
                    config: ross::OptimisticConfig { batch, snapshot_interval },
                })
            }
            _ => Err(format!(
                "scheduler spec `{s}` must be opt:<threads> or opt:<threads>:<batch>:<interval>"
            )),
        }
    } else if let Some(rest) = s.strip_prefix("par:") {
        let (t, l) = rest
            .split_once(':')
            .ok_or_else(|| format!("scheduler spec `{s}` must be par:<threads>:<lookahead-ns>"))?;
        let lookahead_ns: u64 =
            l.parse().map_err(|_| format!("bad lookahead `{l}` in scheduler spec `{s}`"))?;
        Ok(Scheduler::ConservativeParallel {
            threads: threads(t, s)?,
            lookahead: ross::SimDuration::from_ns(lookahead_ns),
        })
    } else if let Some(rest) = s.strip_prefix("async:") {
        let (t, l) = rest.split_once(':').ok_or_else(|| {
            format!("scheduler spec `{s}` must be async:<threads>:<lookahead-ns>")
        })?;
        let lookahead_ns: u64 =
            l.parse().map_err(|_| format!("bad lookahead `{l}` in scheduler spec `{s}`"))?;
        Ok(Scheduler::ConservativeAsync {
            threads: threads(t, s)?,
            lookahead: ross::SimDuration::from_ns(lookahead_ns),
        })
    } else if s.starts_with("shard:") {
        Err(format!(
            "`{s}`: multi-process sharding is supported by the `phold` and `mix` commands, \
             not by the sweep commands"
        ))
    } else {
        Err(format!(
            "unknown scheduler `{s}` (expected seq, cons:T, opt:T, opt:T:B:I, par:T:L, or \
             async:T:L)"
        ))
    }
}

/// Parse sweep options and validate them with `union-lint` before any
/// simulation starts: a `par:T:L` or `async:T:L` lookahead exceeding the
/// statically computed minimum cross-partition delay is rejected here
/// (exit 2) rather than panicking mid-run. `--allow-lint` overrides.
fn sweep_config(rest: &[String]) -> SweepConfig {
    let cfg = parse_sweep(rest);
    let r = harness::lint::check_sched_lookahead(&cfg);
    if !r.is_empty() {
        eprint!("{r}");
        if r.has_errors() && !has(rest, "--allow-lint") {
            eprintln!(
                "union-exp: parallel schedule rejected by union-lint \
                 (use --allow-lint to override)"
            );
            std::process::exit(2);
        }
    }
    cfg
}

fn parse_sweep(rest: &[String]) -> SweepConfig {
    let mut cfg = SweepConfig::quick();
    cfg.profile = match opt_str(rest, "--profile", "quick") {
        "paper" => Profile::Paper,
        _ => Profile::Quick,
    };
    if cfg.profile == Profile::Paper {
        cfg.scale = 1;
    }
    cfg.iters = opt(rest, "--iters", cfg.iters);
    cfg.scale = opt(rest, "--scale", cfg.scale);
    cfg.seed = opt(rest, "--seed", cfg.seed);
    cfg.sched = parse_sched(opt_str(rest, "--sched", "seq")).unwrap_or_else(|e| {
        eprintln!("union-exp: {e}");
        std::process::exit(2);
    });
    cfg.queue =
        ross::QueueKind::parse(opt_str(rest, "--queue", ross::QueueKind::default().label()))
            .unwrap_or_else(|e| {
                eprintln!("union-exp: {e}");
                std::process::exit(2);
            });
    if opt_str(rest, "--flow", "busy") == "credit" {
        cfg.flow = dragonfly::FlowControl::credit_default();
    }
    cfg.baselines = !has(rest, "--no-baselines");
    cfg.nets = opt_str(rest, "--nets", "1d,2d")
        .split(',')
        .filter_map(|s| match s.trim() {
            "1d" | "1D" => Some(Net::OneD),
            "2d" | "2D" => Some(Net::TwoD),
            _ => None,
        })
        .collect();
    cfg.placements = opt_str(rest, "--placements", "RN,RR,RG")
        .split(',')
        .filter_map(|s| match s.trim() {
            "RN" => Some(Placement::RandomNodes),
            "RR" => Some(Placement::RandomRouters),
            "RG" => Some(Placement::RandomGroups),
            _ => None,
        })
        .collect();
    cfg.routings = opt_str(rest, "--routings", "MIN,ADP")
        .split(',')
        .filter_map(|s| match s.trim() {
            "MIN" => Some(Routing::Minimal),
            "ADP" => Some(Routing::Adaptive),
            _ => None,
        })
        .collect();
    cfg.workloads = opt_str(rest, "--workloads", "1,2,3")
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    cfg
}

/// Tables IV & V and Fig 6: AlexNet application vs Union skeleton.
fn validate(cmd: &str, rest: &[String]) {
    let ranks: u32 = opt(rest, "--ranks", 512);
    let skel = workloads::alexnet();
    let inst = SkeletonInstance::new(&skel, ranks, &[]).expect("alexnet instance");
    eprintln!("collecting AlexNet skeleton + reference streams at {ranks} ranks…");
    let skel_v = Validation::collect(ranks, |r| RankVm::new(inst.clone(), r, 1));
    let app_v =
        Validation::collect(ranks, |r| workloads::alexnet_reference::ops(r, ranks).into_iter());

    if cmd == "validate" || cmd == "table4" {
        println!("Table IV — AlexNet MPI event count (application vs Union skeleton)");
        print!("{}", Validation::table4(&app_v, &skel_v));
        println!();
    }
    if cmd == "validate" || cmd == "table5" {
        println!("Table V — AlexNet bytes transmitted by each rank");
        print!("{}", Validation::table5(&app_v, &skel_v));
        println!();
    }
    if cmd == "validate" || cmd == "fig6" {
        println!("Fig 6 — control flow (first 16 events of rank 0):");
        println!(
            "  application : {}",
            app_v.control_flow[..16.min(app_v.control_flow.len())].join(" -> ")
        );
        println!(
            "  skeleton    : {}",
            skel_v.control_flow[..16.min(skel_v.control_flow.len())].join(" -> ")
        );
        println!(
            "  full control flow match over {} events: {}",
            app_v.control_flow.len(),
            app_v.control_flow == skel_v.control_flow
        );
    }
    let ok = skel_v.matches(&app_v);
    println!("\nvalidation {}", if ok { "PASSED" } else { "FAILED" });
    if !ok {
        std::process::exit(1);
    }
}

/// `git describe` of the working tree for the run manifest, or `unknown`
/// when git (or the repository) is unavailable.
fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// When `--telemetry FILE` is given: create a recorder, emit the run
/// manifest as its first record, attach it to the sweep, and return it
/// with the output path for [`telemetry_finish`].
fn telemetry_setup(
    cmd: &str,
    rest: &[String],
    cfg: &mut SweepConfig,
) -> Option<(std::sync::Arc<telemetry::Recorder>, String)> {
    let path = rest.iter().position(|a| a == "--telemetry").and_then(|i| rest.get(i + 1))?.clone();
    let rec = std::sync::Arc::new(telemetry::Recorder::new());
    let sched = opt_str(rest, "--sched", "seq");
    let mut manifest =
        telemetry::ManifestRecord::new(cmd, rest.to_vec(), cfg.seed, sched, &git_describe());
    manifest.config = serde::Value::Object(vec![
        (
            "profile".to_string(),
            serde::Value::Str(
                match cfg.profile {
                    Profile::Paper => "paper",
                    Profile::Quick => "quick",
                }
                .to_string(),
            ),
        ),
        ("iters".to_string(), serde::Value::Int(cfg.iters)),
        ("scale".to_string(), serde::Value::Int(cfg.scale)),
        ("queue".to_string(), serde::Value::Str(cfg.queue.label().to_string())),
        (
            "nets".to_string(),
            serde::Value::Array(
                cfg.nets.iter().map(|n| serde::Value::Str(n.label().to_string())).collect(),
            ),
        ),
        (
            "workloads".to_string(),
            serde::Value::Array(
                cfg.workloads.iter().map(|&w| serde::Value::Int(w as i64)).collect(),
            ),
        ),
        ("baselines".to_string(), serde::Value::Bool(cfg.baselines)),
    ]);
    rec.emit(&manifest);
    cfg.telemetry = Some(rec.clone());
    Some((rec, path))
}

/// Close out a telemetry run: stamp the total wall time, write the JSONL
/// file, and print the summary table (with the critical-path block when
/// the run was traced too).
fn telemetry_finish(
    telem: Option<(std::sync::Arc<telemetry::Recorder>, String)>,
    analyses: &[harness::RunAnalysis],
) {
    let Some((rec, path)) = telem else { return };
    rec.emit(&telemetry::PhaseRecord::new("total", rec.elapsed_ns()));
    if let Err(e) = rec.write_jsonl(std::path::Path::new(&path)) {
        eprintln!("union-exp: cannot write telemetry file `{path}`: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {path} ({} records)", rec.len());
    print!("{}", report::telemetry_summary_with_trace(&rec, analyses));
}

/// When `--trace FILE[:RATE]` is given: create a causal tracer sampling
/// handler durations on every `RATE`-th event (default 1 = all), attach
/// it to the sweep, and return it with the output path for
/// [`trace_finish`].
fn trace_setup(
    rest: &[String],
    cfg: &mut SweepConfig,
) -> Option<(std::sync::Arc<ross::Tracer>, String)> {
    let i = rest.iter().position(|a| a == "--trace")?;
    let Some(spec) = rest.get(i + 1) else {
        eprintln!("union-exp: flag --trace needs a value");
        std::process::exit(2);
    };
    let spec = spec.clone();
    // A trailing `:N` is the sampling rate; any other `:` stays in the
    // path.
    let (path, rate) = match spec.rsplit_once(':') {
        Some((p, r)) if !p.is_empty() && r.parse::<u32>().is_ok() => {
            let rate = r.parse::<u32>().expect("checked above");
            if rate == 0 {
                eprintln!("union-exp: --trace sample rate must be >= 1 in `{spec}`");
                std::process::exit(2);
            }
            (p.to_string(), rate)
        }
        _ => (spec, 1),
    };
    let tracer = std::sync::Arc::new(ross::Tracer::new(rate));
    cfg.tracer = Some(tracer.clone());
    Some((tracer, path))
}

/// Close out a traced run: export the Chrome trace JSON, note the export
/// in the telemetry stream (if any), and return the per-run
/// critical-path analyses for the summary block.
fn trace_finish(
    trace: Option<(std::sync::Arc<ross::Tracer>, String)>,
    telem: Option<&telemetry::Recorder>,
) -> Vec<harness::RunAnalysis> {
    let Some((tr, path)) = trace else { return Vec::new() };
    let json = tr.to_chrome_json();
    let write = || -> std::io::Result<()> {
        let mut w = telemetry::StreamWriter::create(std::path::Path::new(&path))?;
        w.write_str(&json)?;
        w.finish()
    };
    if let Err(e) = write() {
        eprintln!("union-exp: cannot write trace file `{path}`: {e}");
        std::process::exit(1);
    }
    let dropped = tr.events_dropped();
    eprintln!(
        "wrote {path} ({} trace events{})",
        tr.event_count(),
        if dropped > 0 { format!(", {dropped} dropped at the cap") } else { String::new() }
    );
    if let Some(rec) = telem {
        rec.emit(&telemetry::TraceExportRecord::new(
            &path,
            tr.event_count() as u64,
            dropped,
            tr.spans_dropped(),
        ));
    }
    match harness::parse_chrome(&json) {
        Ok(runs) => runs.iter().map(harness::analyze).collect(),
        Err(e) => {
            eprintln!("union-exp: exported trace failed to re-parse: {e}");
            Vec::new()
        }
    }
}

/// `union-exp trace --analyze FILE` — critical-path analysis of an
/// exported Chrome trace. Prints per-run DAG metrics and causality
/// fingerprints; exits 1 if any structural invariant fails, 2 on usage
/// or read errors.
fn trace_cmd(rest: &[String]) {
    let Some(path) = rest.iter().position(|a| a == "--analyze").and_then(|i| rest.get(i + 1))
    else {
        eprintln!("usage: union-exp trace --analyze FILE.json");
        std::process::exit(2);
    };
    let json = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("union-exp: cannot read `{path}`: {e}");
        std::process::exit(2);
    });
    let runs = harness::parse_chrome(&json).unwrap_or_else(|e| {
        eprintln!("union-exp: {path}: {e}");
        std::process::exit(1);
    });
    if runs.is_empty() {
        // Diagnostic, not analysis output: stdout stays machine-clean.
        eprintln!("{path}: no runs recorded");
        return;
    }
    let analyses: Vec<harness::RunAnalysis> = runs.iter().map(harness::analyze).collect();
    print!("{}", harness::trace_analysis::render(&analyses));
    for r in &runs {
        println!("run {} causality fingerprint: {:016x}", r.run, harness::causality_fingerprint(r));
    }
    let mut sound = true;
    for a in &analyses {
        for v in a.check_invariants() {
            eprintln!("union-exp: run {}: invariant violated: {v}", a.run);
            sound = false;
        }
    }
    if !sound {
        std::process::exit(1);
    }
}

fn sweep_cmd(cmd: &str, rest: &[String]) {
    let mut cfg = sweep_config(rest);
    let telem = telemetry_setup(cmd, rest, &mut cfg);
    let trace = trace_setup(rest, &mut cfg);
    let records = sweep::run_sweep(&cfg, |label| eprintln!("running {label}…"));
    if cmd == "fig7" || cmd == "all" {
        print!("{}", report::fig7(&records));
        println!();
    }
    if cmd == "fig9" || cmd == "all" {
        print!("{}", report::fig9(&records));
        println!();
    }
    if cmd == "table6" || cmd == "all" {
        print!("{}", report::table6(&records));
        println!();
    }
    if cmd == "all" {
        print!("{}", report::engine_stats(&records));
    }
    if let Some(path) = rest.iter().position(|a| a == "--json").and_then(|i| rest.get(i + 1)) {
        dump_json(path, &records);
    }
    let analyses = trace_finish(trace, telem.as_ref().map(|(r, _)| r.as_ref()));
    if telem.is_none() && !analyses.is_empty() {
        print!("{}", report::critical_path_block(&analyses, &[]));
    }
    telemetry_finish(telem, &analyses);
}

/// Fig 8: Workload3 on 1D with adaptive routing; compare the byte series
/// on AlexNet's routers under RG vs RR placement.
fn fig8(rest: &[String]) {
    let mut cfg = sweep_config(rest);
    cfg.window_ns = 500_000; // the paper's 0.5 ms window
    cfg.keep_results = true;
    cfg.baselines = false;
    cfg.workloads = vec![3];
    cfg.nets = vec![Net::OneD];
    cfg.routings = vec![Routing::Adaptive];
    cfg.placements = vec![Placement::RandomGroups, Placement::RandomRouters];
    let telem = telemetry_setup("fig8", rest, &mut cfg);
    let trace = trace_setup(rest, &mut cfg);
    let records = sweep::run_sweep(&cfg, |label| eprintln!("running {label}…"));
    for r in &records {
        let Some(results) = &r.results else { continue };
        // Routers serving AlexNet (app id 1 in Workload3).
        let topo = dragonfly::Topology::build(r.key.net.config(cfg.profile));
        let apps = workloads::workload(3, cfg.profile, cfg.iters, cfg.scale);
        let alexnet_idx =
            apps.iter().position(|a| a.name() == "AlexNet").expect("AlexNet in W3") as u32;
        // Recompute the layout used by the run to find AlexNet's routers.
        let requests: Vec<placement::JobRequest> =
            apps.iter().map(|a| placement::JobRequest::new(a.name(), a.ranks)).collect();
        let layout = placement::Layout::place(&topo, &requests, r.key.placement, cfg.seed).unwrap();
        let routers = layout.routers_of_job(&topo, alexnet_idx);
        let series = results.series_over(&routers, cfg.window_ns);
        let names: Vec<String> = apps.iter().map(|a| a.name().to_string()).collect();
        println!("{}", report::fig8(&r.key.label(), cfg.window_ns, &series, &names));
        // Peak interference from other applications on AlexNet's routers.
        let other_peak: u64 = (0..names.len())
            .filter(|&i| i != alexnet_idx as usize)
            .map(|i| series.peak(i))
            .max()
            .unwrap_or(0);
        println!(
            "peak bytes/window from other apps on AlexNet routers ({}): {}\n",
            r.key.placement.label(),
            metrics::fmt_bytes(other_peak as f64)
        );
    }
    let analyses = trace_finish(trace, telem.as_ref().map(|(r, _)| r.as_ref()));
    if telem.is_none() && !analyses.is_empty() {
        print!("{}", report::critical_path_block(&analyses, &[]));
    }
    telemetry_finish(telem, &analyses);
}

/// Print the generated Fig-5-style C skeleton of a registered workload.
fn skeleton(rest: &[String]) {
    let name = rest.first().map(|s| s.as_str()).unwrap_or("alexnet");
    let reg = workloads::registry();
    match reg.get(name) {
        Some(s) => print!("{}", codegen::render_c(s)),
        None => {
            eprintln!("unknown skeleton `{name}`; available: {:?}", reg.names());
            std::process::exit(2);
        }
    }
}

/// `union-exp lint` — run `union-lint`'s static analysis without
/// simulating anything. Default: every bundled workload skeleton at the
/// configuration a sweep would instantiate, plus the model-level
/// lookahead check when `--sched par:T:L` or `async:T:L` is given.
/// `--fixture NAME`
/// lints a seeded-bug fixture; `--file PROG.ncptl` lints a DSL program.
/// Exit codes: 0 = clean (infos allowed), 1 = findings at Warning or
/// above, 2 = usage error.
fn lint_cmd(rest: &[String]) {
    use union_lint::{fixtures, LintOptions, Severity};
    let opts = LintOptions::default();
    let mut reports: Vec<(String, union_lint::Report)> = Vec::new();
    if let Some(name) = rest.iter().position(|a| a == "--fixture").and_then(|i| rest.get(i + 1)) {
        match fixtures::lint(name, &opts) {
            Some(r) => reports.push((format!("fixture {name}"), r)),
            None => {
                eprintln!("unknown fixture `{name}`; available: {:?}", fixtures::NAMES);
                std::process::exit(2);
            }
        }
    } else if let Some(path) = rest.iter().position(|a| a == "--file").and_then(|i| rest.get(i + 1))
    {
        let ranks: u32 = opt(rest, "--ranks", 4);
        let src = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("union-exp: cannot read `{path}`: {e}");
            std::process::exit(2);
        });
        reports.push((
            format!("{path} ({ranks} ranks)"),
            union_lint::lint_source(&src, path, ranks, &[], &opts),
        ));
    } else {
        let cfg = parse_sweep(rest);
        for kind in workloads::AppKind::ALL {
            let app = workloads::app(kind, cfg.profile, cfg.iters, cfg.scale);
            let args: Vec<&str> = app.args.iter().map(|s| s.as_str()).collect();
            let r = union_lint::lint_skeleton(&app.skeleton, app.ranks, &args, &opts);
            reports.push((format!("{} ({} ranks)", app.name(), app.ranks), r));
        }
        reports.push(("model/lookahead".to_string(), harness::lint::check_sched_lookahead(&cfg)));
    }
    let mut worst = None;
    for (label, r) in &reports {
        match r.max_severity() {
            None => println!("{label}: clean"),
            some => {
                print!("{label}:\n{r}");
                worst = worst.max(some);
            }
        }
    }
    if worst >= Some(Severity::Warning) {
        std::process::exit(1);
    }
}

/// Parse `--checkpoint FILE[:EVERY_US]` (default interval 5 µs of
/// virtual time) and `--restore FILE`.
fn parse_checkpoint_flags(
    rest: &[String],
) -> (Option<ross::shard::CheckpointSpec>, Option<std::path::PathBuf>) {
    let checkpoint = rest.iter().position(|a| a == "--checkpoint").map(|i| {
        let Some(spec) = rest.get(i + 1) else {
            eprintln!("union-exp: flag --checkpoint needs a value (FILE[:EVERY_US])");
            std::process::exit(2);
        };
        let (path, every_us) = match spec.rsplit_once(':') {
            Some((p, n)) if !p.is_empty() && n.parse::<u64>().is_ok() => {
                let every = n.parse::<u64>().expect("checked above");
                if every == 0 {
                    eprintln!("union-exp: --checkpoint interval must be >= 1 µs in `{spec}`");
                    std::process::exit(2);
                }
                (p.to_string(), every)
            }
            _ => (spec.clone(), 5),
        };
        ross::shard::CheckpointSpec {
            path: std::path::PathBuf::from(path),
            every: ross::SimDuration::from_us(every_us),
        }
    });
    let restore = rest.iter().position(|a| a == "--restore").map(|i| match rest.get(i + 1) {
        Some(p) => std::path::PathBuf::from(p),
        None => {
            eprintln!("union-exp: flag --restore needs a value");
            std::process::exit(2);
        }
    });
    (checkpoint, restore)
}

/// Minimal telemetry setup for the single-run commands (`phold`, `mix`):
/// recorder + manifest when `--telemetry FILE` is present.
fn single_run_telemetry(
    cmd: &str,
    rest: &[String],
    seed: u64,
) -> Option<(std::sync::Arc<telemetry::Recorder>, String)> {
    let path = rest.iter().position(|a| a == "--telemetry").and_then(|i| rest.get(i + 1))?.clone();
    let rec = std::sync::Arc::new(telemetry::Recorder::new());
    let sched = opt_str(rest, "--sched", "seq");
    rec.emit(&telemetry::ManifestRecord::new(cmd, rest.to_vec(), seed, sched, &git_describe()));
    Some((rec, path))
}

fn single_run_telemetry_finish(telem: Option<(std::sync::Arc<telemetry::Recorder>, String)>) {
    let Some((rec, path)) = telem else { return };
    rec.emit(&telemetry::PhaseRecord::new("total", rec.elapsed_ns()));
    if let Err(e) = rec.write_jsonl(std::path::Path::new(&path)) {
        eprintln!("union-exp: cannot write telemetry file `{path}`: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {path} ({} records)", rec.len());
}

/// Parse `--live ADDR [--live-hold MS] [--live-interval MS]`.
fn parse_live_flags(rest: &[String]) -> Option<harness::live::LiveOpts> {
    let i = rest.iter().position(|a| a == "--live")?;
    let Some(addr) = rest.get(i + 1) else {
        eprintln!("union-exp: flag --live needs a bind address (e.g. 127.0.0.1:0)");
        std::process::exit(2);
    };
    Some(harness::live::LiveOpts {
        addr: addr.clone(),
        hold_ms: opt(rest, "--live-hold", 0),
        interval_ms: opt(rest, "--live-interval", 250),
    })
}

/// Registry + sampler + exposition endpoint for a single-process
/// `--live` run. [`LivePlane::finish`] is the orderly teardown: final
/// exact snapshot, optional hold for scrapers, endpoint shutdown.
struct LivePlane {
    registry: std::sync::Arc<telemetry::live::MetricsRegistry>,
    sampler: Option<telemetry::live::Sampler>,
    server: telemetry::live::Server,
    hold_ms: u64,
}

fn live_plane_start(lo: &harness::live::LiveOpts) -> LivePlane {
    use telemetry::live::{MetricsRegistry, MetricsSource, Sampler, Server};
    let registry = std::sync::Arc::new(MetricsRegistry::new());
    let server =
        Server::bind(&lo.addr, MetricsSource::Registry(registry.clone())).unwrap_or_else(|e| {
            eprintln!("union-exp: cannot bind live endpoint `{}`: {e}", lo.addr);
            std::process::exit(2);
        });
    eprintln!("live endpoint on http://{}/metrics", server.local_addr());
    let sampler = Sampler::start(
        registry.clone(),
        std::time::Duration::from_millis(lo.interval_ms.max(1)),
        harness::live::RING_CAP,
        None,
    );
    LivePlane { registry, sampler: Some(sampler), server, hold_ms: lo.hold_ms }
}

impl LivePlane {
    /// Stop sampling (the stop takes one final snapshot, so the ring's
    /// last entry has exact end-of-run totals), append the ring to the
    /// telemetry stream when one is attached, hold, shut down.
    fn finish(mut self, telemetry: Option<&telemetry::Recorder>) {
        if let Some(s) = self.sampler.take() {
            let ring = s.stop();
            if let Some(rec) = telemetry {
                for snap in &ring {
                    rec.emit(snap);
                }
            }
        }
        if self.hold_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(self.hold_ms));
        }
        self.server.shutdown();
    }
}

/// Gang aggregator + exposition endpoint on the launcher: workers stream
/// snapshots over the control socket, this endpoint serves the merged
/// view (counter-sum, gauge-max, histogram-merge).
struct GangLivePlane {
    agg: std::sync::Arc<telemetry::live::GangAggregator>,
    server: telemetry::live::Server,
    hold_ms: u64,
}

fn gang_live_start(lo: &harness::live::LiveOpts) -> GangLivePlane {
    use telemetry::live::{GangAggregator, MetricsSource, Server};
    let agg = std::sync::Arc::new(GangAggregator::new());
    let server = Server::bind(&lo.addr, MetricsSource::Gang(agg.clone())).unwrap_or_else(|e| {
        eprintln!("union-exp: cannot bind live endpoint `{}`: {e}", lo.addr);
        std::process::exit(2);
    });
    eprintln!("live endpoint on http://{}/metrics (gang-aggregated)", server.local_addr());
    GangLivePlane { agg, server, hold_ms: lo.hold_ms }
}

impl GangLivePlane {
    /// Record the final merged snapshot, hold for scrapers, shut down.
    fn finish(self, telemetry: Option<&telemetry::Recorder>) {
        if let Some(rec) = telemetry {
            rec.emit(&self.agg.aggregate());
        }
        if self.hold_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(self.hold_ms));
        }
        self.server.shutdown();
    }
}

/// `union-exp top ADDR|FILE` — one-screen summary of a live run: from a
/// running endpoint's `/snapshot` route, or from the last snapshot
/// record in a JSONL file written by `--telemetry` + `--live`.
fn top_cmd(rest: &[String]) {
    let Some(target) = rest.first() else {
        eprintln!("usage: union-exp top ADDR|FILE");
        std::process::exit(2);
    };
    let snap = if std::path::Path::new(target).exists() {
        let text = std::fs::read_to_string(target).unwrap_or_else(|e| {
            eprintln!("union-exp: cannot read `{target}`: {e}");
            std::process::exit(2);
        });
        harness::live::last_snapshot_in_jsonl(&text).unwrap_or_else(|| {
            eprintln!("union-exp: no snapshot records in `{target}`");
            std::process::exit(1);
        })
    } else if target.contains(':') {
        harness::live::fetch_snapshot(target).unwrap_or_else(|e| {
            eprintln!("union-exp: {e}");
            std::process::exit(1);
        })
    } else {
        eprintln!("union-exp: `{target}` is neither a readable file nor an ADDR:PORT");
        std::process::exit(2);
    };
    print!("{}", harness::live::render_top(&snap));
}

/// `union-exp phold` — the sharding/checkpoint demonstration model: a
/// deterministic PHOLD whose full state (explicit RNG included) is
/// checkpointable. `--sched shard:N:T:L` runs it across N OS processes;
/// the launcher verifies the merged result against an in-process
/// sequential run unless `--shard-no-verify` is given.
fn phold_cmd(rest: &[String]) {
    use harness::shard::{self, PholdParams, ShardSpec, PHOLD_MIN_DELAY_NS};
    let lps: u32 = opt(rest, "--lps", 16);
    if lps == 0 {
        eprintln!("union-exp: --lps must be >= 1");
        std::process::exit(2);
    }
    let horizon_us: u64 = opt(rest, "--horizon-us", 30);
    let seed: u64 = opt(rest, "--seed", 42);
    let until_us: u64 = opt(rest, "--until-us", 0);
    let queue =
        ross::QueueKind::parse(opt_str(rest, "--queue", ross::QueueKind::default().label()))
            .unwrap_or_else(|e| {
                eprintln!("union-exp: {e}");
                std::process::exit(2);
            });
    let params = PholdParams { lps, horizon_ns: horizon_us * 1_000, seed, queue };
    let until = if until_us == 0 { ross::SimTime::MAX } else { ross::SimTime::from_us(until_us) };
    let (checkpoint, restore) = parse_checkpoint_flags(rest);
    let live_opts = parse_live_flags(rest);
    let sched = opt_str(rest, "--sched", "seq");

    let spec = match ShardSpec::parse(sched) {
        Some(Ok(spec)) => {
            if spec.lookahead_ns > PHOLD_MIN_DELAY_NS {
                eprintln!(
                    "union-exp: phold's minimum event delay is {PHOLD_MIN_DELAY_NS} ns; \
                     a {} ns lookahead window would violate causality",
                    spec.lookahead_ns
                );
                std::process::exit(2);
            }
            Some(spec)
        }
        Some(Err(e)) => {
            eprintln!("union-exp: {e}");
            std::process::exit(2);
        }
        None if sched == "seq" => None,
        None => {
            eprintln!("union-exp: phold supports --sched seq or shard:N:T:L, not `{sched}`");
            std::process::exit(2);
        }
    };

    let Some(spec) = spec else {
        // Single process. Checkpoint/restore still work: they ride on the
        // sharded runner's GVT fence, so route through a 1-shard mesh.
        let mut sim = shard::build_phold(&params);
        let live = live_opts.as_ref().map(live_plane_start);
        if let Some(lp) = &live {
            sim.set_live(Some(lp.registry.clone()));
        }
        let stats = if checkpoint.is_some() || restore.is_some() {
            let mut mesh = ross::shard::loopback_mesh::<u64>(1);
            let mut t = mesh.pop().expect("1-shard mesh");
            let opts = ross::shard::ShardRun {
                threads: 1,
                window: ross::SimDuration::from_ns(PHOLD_MIN_DELAY_NS),
                checkpoint,
                restore,
                codec: Some(&shard::PholdCodec),
                on_checkpoint: None,
            };
            sim.run_sharded(&mut t, opts, until).unwrap_or_else(|e| {
                eprintln!("union-exp: phold: {e}");
                std::process::exit(if matches!(e, ross::shard::ShardError::Format(_)) {
                    2
                } else {
                    1
                });
            })
        } else {
            sim.run_sequential(until)
        };
        println!("phold fingerprint {:016x}", shard::phold_fingerprint(&sim, 0, 1));
        println!("phold committed {}", stats.committed);
        if let Some(lp) = live {
            lp.finish(None);
        }
        return;
    };

    if let Some((me, n, ctrl)) = shard::worker_role() {
        if n != spec.shards {
            eprintln!("union-exp: shard worker env disagrees with --sched {sched}");
            std::process::exit(1);
        }
        let run = || -> Result<harness::shard::WorkerReport, String> {
            let (mut link, listener) = shard::WorkerLink::connect(me, n, &ctrl)?;
            let peers = link.peers()?;
            let rec = std::sync::Arc::new(telemetry::Recorder::new());
            // Workers never bind an endpoint: they stream snapshots to
            // the launcher over the control socket instead.
            let live_reg = live_opts
                .as_ref()
                .map(|_| std::sync::Arc::new(telemetry::live::MetricsRegistry::new()));
            let sampler = live_opts.as_ref().zip(live_reg.as_ref()).map(|(lo, reg)| {
                telemetry::live::Sampler::start(
                    reg.clone(),
                    std::time::Duration::from_millis(lo.interval_ms.max(1)),
                    harness::live::RING_CAP,
                    Some(link.snapshot_sink()),
                )
            });
            let out = shard::phold_worker_run(
                me,
                n,
                listener,
                &peers,
                &params,
                &spec,
                checkpoint.clone(),
                restore.clone(),
                until,
                Some(rec.clone()),
                live_reg,
            );
            // Stop before reporting: the stop tick streams the exact
            // end-of-run snapshot ahead of the report line.
            if let Some(s) = sampler {
                s.stop();
            }
            let report = match out {
                Ok((fingerprint, stats)) => harness::shard::WorkerReport {
                    shard: me as u64,
                    ok: true,
                    error: None,
                    fingerprint,
                    committed: stats.committed,
                    cross_shard_events: stats.cross_shard_events,
                    rounds: stats.rounds,
                    telemetry: rec.lines(),
                },
                Err(e) => harness::shard::WorkerReport {
                    shard: me as u64,
                    ok: false,
                    error: Some(e.to_string()),
                    fingerprint: 0,
                    committed: 0,
                    cross_shard_events: 0,
                    rounds: 0,
                    telemetry: rec.lines(),
                },
            };
            link.report(&report);
            Ok(report)
        };
        match run() {
            Ok(r) if r.ok => std::process::exit(0),
            Ok(_) => std::process::exit(1),
            Err(e) => {
                eprintln!("union-exp: shard {me}: {e}");
                std::process::exit(1);
            }
        }
    }

    // Launcher.
    let telem = single_run_telemetry("phold", rest, seed);
    let gang_live = live_opts.as_ref().map(gang_live_start);
    let outcome = harness::shard::launch_gang(
        &spec,
        telem.as_ref().map(|(r, _)| r.as_ref()),
        gang_live.as_ref().map(|g| g.agg.as_ref()),
    )
    .unwrap_or_else(|e| {
        eprintln!("union-exp: {e}");
        std::process::exit(1);
    });
    for r in &outcome.reports {
        eprintln!(
            "shard {}: committed {} cross-shard {} rounds {}",
            r.shard, r.committed, r.cross_shard_events, r.rounds
        );
    }
    println!("phold fingerprint {:016x}", outcome.fingerprint);
    println!("phold committed {}", outcome.committed);
    println!("phold cross-shard events {}", outcome.cross_shard_events);
    if !has(rest, "--shard-no-verify") {
        let mut sim = shard::build_phold(&params);
        let stats = sim.run_sequential(until);
        let want = shard::phold_fingerprint(&sim, 0, 1);
        // A restored run only commits the events after the cut; the cut's
        // metadata records how many the interrupted run had committed.
        let base_committed = match &restore {
            Some(path) => {
                let meta = ross::shard::checkpoint::read_file(path)
                    .and_then(|b| ross::shard::checkpoint::parse_file(&b).map(|(m, _)| m));
                match meta {
                    Ok(m) => m.committed,
                    Err(e) => {
                        eprintln!("union-exp: cannot re-read restore file for verify: {e}");
                        std::process::exit(1);
                    }
                }
            }
            None => 0,
        };
        if want == outcome.fingerprint && stats.committed == outcome.committed + base_committed {
            println!("phold verify sequential match");
        } else {
            eprintln!(
                "union-exp: sharded run diverged from sequential \
                 (fingerprint {:016x} vs {:016x}, committed {}+{} vs {})",
                outcome.fingerprint, want, outcome.committed, base_committed, stats.committed
            );
            std::process::exit(1);
        }
    }
    if let Some(g) = gang_live {
        g.finish(telem.as_ref().map(|(r, _)| r.as_ref()));
    }
    single_run_telemetry_finish(telem);
}

/// The model parameters of one `union-exp mix` run; every shard worker
/// rebuilds the identical simulation from these.
struct MixSetup {
    workload: u8,
    profile: Profile,
    iters: i64,
    scale: i64,
    seed: u64,
    queue: ross::QueueKind,
    net: Net,
    placement: Placement,
    routing: Routing,
}

fn parse_mix(rest: &[String]) -> MixSetup {
    let profile = match opt_str(rest, "--profile", "quick") {
        "paper" => Profile::Paper,
        _ => Profile::Quick,
    };
    MixSetup {
        workload: opt(rest, "--workload", 3),
        profile,
        iters: opt(rest, "--iters", 2),
        scale: opt(rest, "--scale", if profile == Profile::Paper { 1 } else { 16 }),
        seed: opt(rest, "--seed", 42),
        queue: ross::QueueKind::parse(opt_str(rest, "--queue", ross::QueueKind::default().label()))
            .unwrap_or_else(|e| {
                eprintln!("union-exp: {e}");
                std::process::exit(2);
            }),
        net: match opt_str(rest, "--net", "1d") {
            "1d" | "1D" => Net::OneD,
            "2d" | "2D" => Net::TwoD,
            other => {
                eprintln!("union-exp: unknown net `{other}` (expected 1d or 2d)");
                std::process::exit(2);
            }
        },
        placement: match opt_str(rest, "--placement", "RG") {
            "RN" => Placement::RandomNodes,
            "RR" => Placement::RandomRouters,
            "RG" => Placement::RandomGroups,
            other => {
                eprintln!("union-exp: unknown placement `{other}` (expected RN, RR, or RG)");
                std::process::exit(2);
            }
        },
        routing: match opt_str(rest, "--routing", "ADP") {
            "MIN" => Routing::Minimal,
            "ADP" => Routing::Adaptive,
            other => {
                eprintln!("union-exp: unknown routing `{other}` (expected MIN or ADP)");
                std::process::exit(2);
            }
        },
    }
}

fn build_mix(
    m: &MixSetup,
    telemetry: Option<std::sync::Arc<telemetry::Recorder>>,
) -> codes::CodesSim {
    let apps = workloads::workload(m.workload, m.profile, m.iters, m.scale);
    let mut b = codes::SimulationBuilder::new(m.net.config(m.profile))
        .routing(m.routing)
        .placement(m.placement)
        .seed(m.seed)
        .queue(m.queue);
    if let Some(rec) = telemetry {
        b = b.telemetry(rec);
    }
    for a in &apps {
        b = b.job(
            a.name(),
            a.vms(m.seed).unwrap_or_else(|e| {
                eprintln!("union-exp: {e}");
                std::process::exit(2);
            }),
        );
    }
    b.build().unwrap_or_else(|e| {
        eprintln!("union-exp: {e}");
        std::process::exit(2);
    })
}

/// `union-exp mix` — run ONE Union workload mix (no sweep) under `seq`
/// or, with `--sched shard:N:T:L`, across N OS processes; the launcher
/// verifies the merged state fingerprint against an in-process
/// sequential run of the same model.
fn mix_cmd(rest: &[String]) {
    use harness::shard::{self, ShardSpec};
    if has(rest, "--checkpoint") || has(rest, "--restore") {
        eprintln!(
            "union-exp: checkpoint/restart is supported for the phold model only \
             (CODES rank-VM state has no snapshot codec)"
        );
        std::process::exit(2);
    }
    let m = parse_mix(rest);
    let until_us: u64 = opt(rest, "--until-us", 0);
    let until = if until_us == 0 { ross::SimTime::MAX } else { ross::SimTime::from_us(until_us) };
    let live_opts = parse_live_flags(rest);
    let sched = opt_str(rest, "--sched", "seq");

    let spec = match ShardSpec::parse(sched) {
        Some(Ok(spec)) => Some(spec),
        Some(Err(e)) => {
            eprintln!("union-exp: {e}");
            std::process::exit(2);
        }
        None if sched == "seq" => None,
        None => {
            eprintln!("union-exp: mix supports --sched seq or shard:N:T:L, not `{sched}`");
            std::process::exit(2);
        }
    };

    let Some(spec) = spec else {
        let telem = single_run_telemetry("mix", rest, m.seed);
        let mut sim = build_mix(&m, telem.as_ref().map(|(r, _)| r.clone()));
        let live = live_opts.as_ref().map(live_plane_start);
        if let Some(lp) = &live {
            sim.set_live(Some(lp.registry.clone()));
        }
        let results = sim.run(Scheduler::Sequential, until);
        for a in &results.apps {
            if a.failed() {
                eprintln!("union-exp: {}: MPI protocol failure: {}", a.name, a.errors.join("; "));
                std::process::exit(1);
            }
            eprintln!(
                "app {}: {} ranks, done={}, bytes {}",
                a.name,
                a.finished_at_ns.len(),
                a.all_done(),
                a.bytes_sent
            );
        }
        println!("mix fingerprint {:016x}", sim.state_fingerprint());
        println!("mix committed {}", results.stats.committed);
        if let Some(lp) = live {
            lp.finish(telem.as_ref().map(|(r, _)| r.as_ref()));
        }
        single_run_telemetry_finish(telem);
        return;
    };

    // Validate the lookahead window against the model before spawning
    // anything. The check mirrors the runtime exactly: shards own whole
    // partition blocks, so only cross-shard edges bind the window — plus
    // intra-shard cross-block edges when each shard runs several worker
    // threads. (A flat par-style check would spuriously reject windows
    // that `shard:N:1:L` handles fine.)
    {
        let mut cfg = SweepConfig::quick();
        cfg.profile = m.profile;
        cfg.iters = m.iters;
        cfg.scale = m.scale;
        cfg.seed = m.seed;
        cfg.queue = m.queue;
        cfg.nets = vec![m.net];
        cfg.placements = vec![m.placement];
        cfg.routings = vec![m.routing];
        cfg.workloads = vec![m.workload];
        cfg.baselines = false;
        let r = harness::lint::check_shard_lookahead(
            &cfg,
            spec.shards,
            spec.threads,
            spec.lookahead_ns,
        );
        if !r.is_empty() {
            eprint!("{r}");
            if r.has_errors() && !has(rest, "--allow-lint") {
                eprintln!(
                    "union-exp: shard lookahead rejected by union-lint \
                     (use --allow-lint to override)"
                );
                std::process::exit(2);
            }
        }
    }

    if let Some((me, n, ctrl)) = shard::worker_role() {
        if n != spec.shards {
            eprintln!("union-exp: shard worker env disagrees with --sched {sched}");
            std::process::exit(1);
        }
        let run = || -> Result<harness::shard::WorkerReport, String> {
            let (mut link, listener) = shard::WorkerLink::connect(me, n, &ctrl)?;
            let peers = link.peers()?;
            let rec = std::sync::Arc::new(telemetry::Recorder::new());
            let mut sim = build_mix(&m, Some(rec.clone()));
            let live_reg = live_opts
                .as_ref()
                .map(|_| std::sync::Arc::new(telemetry::live::MetricsRegistry::new()));
            let sampler = live_opts.as_ref().zip(live_reg.as_ref()).map(|(lo, reg)| {
                telemetry::live::Sampler::start(
                    reg.clone(),
                    std::time::Duration::from_millis(lo.interval_ms.max(1)),
                    harness::live::RING_CAP,
                    Some(link.snapshot_sink()),
                )
            });
            sim.set_live(live_reg);
            let mut transport = ross::shard::TcpTransport::mesh(
                me,
                listener,
                &peers,
                std::sync::Arc::new(codes::CodesEventCodec),
            )
            .map_err(|e| e.to_string())?;
            let out = sim.run_sharded(
                &mut transport,
                spec.threads,
                ross::SimDuration::from_ns(spec.lookahead_ns),
                until,
            );
            // Exact final snapshot streams before the report line.
            if let Some(s) = sampler {
                s.stop();
            }
            let report = match out {
                Ok(stats) => harness::shard::WorkerReport {
                    shard: me as u64,
                    ok: true,
                    error: None,
                    fingerprint: sim.shard_fingerprint(me, n),
                    committed: stats.committed,
                    cross_shard_events: stats.cross_shard_events,
                    rounds: stats.rounds,
                    telemetry: rec.lines(),
                },
                Err(e) => harness::shard::WorkerReport {
                    shard: me as u64,
                    ok: false,
                    error: Some(e.to_string()),
                    fingerprint: 0,
                    committed: 0,
                    cross_shard_events: 0,
                    rounds: 0,
                    telemetry: rec.lines(),
                },
            };
            link.report(&report);
            Ok(report)
        };
        match run() {
            Ok(r) if r.ok => std::process::exit(0),
            Ok(_) => std::process::exit(1),
            Err(e) => {
                eprintln!("union-exp: shard {me}: {e}");
                std::process::exit(1);
            }
        }
    }

    // Launcher.
    let telem = single_run_telemetry("mix", rest, m.seed);
    let gang_live = live_opts.as_ref().map(gang_live_start);
    let outcome = harness::shard::launch_gang(
        &spec,
        telem.as_ref().map(|(r, _)| r.as_ref()),
        gang_live.as_ref().map(|g| g.agg.as_ref()),
    )
    .unwrap_or_else(|e| {
        eprintln!("union-exp: {e}");
        std::process::exit(1);
    });
    for r in &outcome.reports {
        eprintln!(
            "shard {}: committed {} cross-shard {} rounds {}",
            r.shard, r.committed, r.cross_shard_events, r.rounds
        );
    }
    println!("mix fingerprint {:016x}", outcome.fingerprint);
    println!("mix committed {}", outcome.committed);
    println!("mix cross-shard events {}", outcome.cross_shard_events);
    if !has(rest, "--shard-no-verify") {
        let mut sim = build_mix(&m, None);
        let results = sim.run(Scheduler::Sequential, until);
        let want = sim.state_fingerprint();
        if want == outcome.fingerprint && results.stats.committed == outcome.committed {
            println!("mix verify sequential match");
        } else {
            eprintln!(
                "union-exp: sharded run diverged from sequential \
                 (fingerprint {:016x} vs {:016x}, committed {} vs {})",
                outcome.fingerprint, want, outcome.committed, results.stats.committed
            );
            std::process::exit(1);
        }
    }
    if let Some(g) = gang_live {
        g.finish(telem.as_ref().map(|(r, _)| r.as_ref()));
    }
    single_run_telemetry_finish(telem);
}

fn dump_json(path: &str, records: &[sweep::RunRecord]) {
    #[derive(serde::Serialize)]
    struct Rec<'a> {
        net: &'a str,
        workload: String,
        placement: &'a str,
        routing: &'a str,
        apps: &'a [sweep::AppOutcome],
        global_bytes: u64,
        local_bytes: u64,
        committed_events: u64,
        wall_seconds: f64,
    }
    let out: Vec<Rec> = records
        .iter()
        .map(|r| Rec {
            net: r.key.net.label(),
            workload: r.key.workload.label(),
            placement: r.key.placement.label(),
            routing: r.key.routing.label(),
            apps: &r.apps,
            global_bytes: r.link_load.global_bytes,
            local_bytes: r.link_load.local_bytes,
            committed_events: r.stats.committed,
            wall_seconds: r.stats.wall_seconds,
        })
        .collect();
    std::fs::write(path, serde_json::to_string_pretty(&out).unwrap()).unwrap();
    eprintln!("wrote {path}");
}
