//! # harness
//!
//! Experiment harness regenerating every table and figure in the paper's
//! evaluation (the `union-exp` binary). See DESIGN.md §4 for the
//! experiment index and EXPERIMENTS.md for recorded paper-vs-measured
//! results.

pub mod lint;
pub mod live;
pub mod report;
pub mod shard;
pub mod sweep;
pub mod trace_analysis;

pub use sweep::{Net, RunKey, RunRecord, SweepConfig, Workload};
pub use trace_analysis::{analyze, causality_fingerprint, parse_chrome, RunAnalysis, TraceRun};
