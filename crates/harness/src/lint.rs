//! Glue between `union-lint` and the assembled experiment: install the
//! skeleton analysis as the registry's pre-instantiation hook, extract
//! the LP delay graph from a built topology, and validate `par:T:L`
//! schedules against it before a sweep starts (DESIGN.md §7).

use crate::sweep::SweepConfig;
use dragonfly::Topology;
use ross::Scheduler;
use std::sync::Arc;
use union_core::SkeletonRegistry;
use union_lint::model::{DelayEdge, ModelGraph};
use union_lint::{LintOptions, Report};

/// Install `union-lint`'s skeleton analysis on a registry: from then on,
/// every `instantiate`/`spawn_job` rejects skeletons with Error-severity
/// findings. `allow_lint` is the `--allow-lint` escape hatch.
pub fn install_linter(reg: &mut SkeletonRegistry, allow_lint: bool) {
    reg.set_linter(Arc::new(|skel, num_tasks, args| {
        let r = union_lint::lint_skeleton(skel, num_tasks, args, &LintOptions::default());
        if r.has_errors() {
            Err(r.render())
        } else {
            Ok(())
        }
    }));
    reg.set_allow_lint(allow_lint);
}

/// The static LP delay graph of a built topology, with the partition
/// assignment the conservative-parallel scheduler would use.
pub fn model_graph(topo: &Topology) -> ModelGraph {
    let edges = codes::lp_delay_edges(topo)
        .into_iter()
        .map(|e| DelayEdge {
            src_lp: e.src_lp,
            dst_lp: e.dst_lp,
            delay_ns: e.delay_ns,
            kind: e.kind,
        })
        .collect();
    ModelGraph::new(codes::partition_blocks(topo), edges).with_names(codes::lp_names(topo))
}

/// Tier-B validation of a sweep configuration: for a conservative-parallel
/// or asynchronous-conservative schedule, check the lookahead window
/// against the minimum cross-partition delay of every selected network —
/// both schedulers make the same per-partition lookahead promise, so one
/// bound covers them. Empty report = safe (or neither `par` nor `async`).
pub fn check_sched_lookahead(cfg: &SweepConfig) -> Report {
    let lookahead = match cfg.sched {
        Scheduler::ConservativeParallel { lookahead, .. }
        | Scheduler::ConservativeAsync { lookahead, .. } => lookahead,
        _ => return Report::new(),
    };
    let mut out = Report::new();
    for &net in &cfg.nets {
        let mut net_cfg = net.config(cfg.profile);
        net_cfg.flow = cfg.flow;
        let graph = model_graph(&Topology::build(net_cfg));
        for d in graph.check_lookahead(lookahead.as_ns()).iter() {
            let mut d = d.clone();
            d.message = format!("{} network: {}", net.label(), d.message);
            out.push(d);
        }
    }
    out
}

/// Tier-B validation of a `shard:N:T:L` schedule: compute the shard-level
/// owner map exactly as `run_sharded` will (whole partition blocks through
/// the same deterministic bin-packer) and check the lookahead window
/// against every edge the sharded protocol synchronizes — cross-shard
/// edges always, intra-shard cross-block edges when `threads > 1`.
/// Ignores `cfg.sched`; the shard spec is passed explicitly.
pub fn check_shard_lookahead(
    cfg: &SweepConfig,
    shards: usize,
    threads: usize,
    window_ns: u64,
) -> Report {
    let mut out = Report::new();
    for &net in &cfg.nets {
        let mut net_cfg = net.config(cfg.profile);
        net_cfg.flow = cfg.flow;
        let graph = model_graph(&Topology::build(net_cfg));
        let part = ross::Partition::from_blocks(graph.block_of.clone());
        let shard_of = ross::shard::shard_owner_map(Some(&part), graph.block_of.len(), shards);
        for d in graph.check_shard_lookahead(&shard_of, threads, window_ns).iter() {
            let mut d = d.clone();
            d.message = format!("{} network: {}", net.label(), d.message);
            out.push(d);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::SweepConfig;
    use ross::SimDuration;

    #[test]
    fn tiny_model_accepts_min_delay_and_rejects_above() {
        let topo = Topology::build(dragonfly::DragonflyConfig::tiny_1d());
        let g = model_graph(&topo);
        let (min, e) = g.min_cross_partition_delay().expect("multi-router model");
        // Partitions are router-rooted, so node<->router edges are
        // internal and the binding edge is router-to-router.
        assert!(e.kind == "packet" || e.kind == "credit");
        assert!(g.check_lookahead(min).is_empty());
        assert!(g.check_lookahead(min + 1).has_errors());
    }

    #[test]
    fn sweep_par_lookahead_is_validated_per_net() {
        let mut cfg = SweepConfig::smoke();
        cfg.sched =
            Scheduler::ConservativeParallel { threads: 2, lookahead: SimDuration::from_ns(1) };
        assert!(check_sched_lookahead(&cfg).is_empty());
        cfg.sched = Scheduler::ConservativeParallel {
            threads: 2,
            lookahead: SimDuration::from_ns(u64::MAX),
        };
        let r = check_sched_lookahead(&cfg);
        assert!(r.has_errors(), "{r}");
        // The diagnostic must name the offending LP pair.
        assert!(r.iter().any(|d| d.message.contains(" -> ")), "{r}");
        cfg.sched = Scheduler::Sequential;
        assert!(check_sched_lookahead(&cfg).is_empty());
    }

    #[test]
    fn sweep_async_lookahead_shares_the_par_bound() {
        let mut cfg = SweepConfig::smoke();
        cfg.sched = Scheduler::ConservativeAsync { threads: 2, lookahead: SimDuration::from_ns(1) };
        assert!(check_sched_lookahead(&cfg).is_empty());
        cfg.sched =
            Scheduler::ConservativeAsync { threads: 2, lookahead: SimDuration::from_ns(u64::MAX) };
        let r = check_sched_lookahead(&cfg);
        assert!(r.has_errors(), "{r}");
        assert!(r.iter().any(|d| d.message.contains(" -> ")), "{r}");
    }

    #[test]
    fn sweep_shard_lookahead_is_validated_per_net() {
        let cfg = SweepConfig::smoke();
        assert!(check_shard_lookahead(&cfg, 2, 1, 1).is_empty());
        let r = check_shard_lookahead(&cfg, 2, 1, u64::MAX);
        assert!(r.has_errors(), "{r}");
        // The diagnostic must name the offending LP pair and the shards.
        assert!(r.iter().any(|d| d.message.contains(" -> ")), "{r}");
        assert!(r.iter().any(|d| d.message.contains("crosses shards")), "{r}");
        // One shard, one thread: nothing crosses a synchronization
        // boundary, so even an absurd window is accepted.
        assert!(check_shard_lookahead(&cfg, 1, 1, u64::MAX).is_empty());
        // One shard, many threads: the in-process conservative rounds
        // still bind the window to the block-level minimum.
        assert!(check_shard_lookahead(&cfg, 1, 4, u64::MAX).has_errors());
    }

    #[test]
    fn shard_map_is_coarser_than_blocks() {
        // A window legal for shard:2:1 can be illegal for par — the
        // shard check must mirror the runtime's whole-block sharding,
        // not reuse the per-block partition.
        let topo = Topology::build(dragonfly::DragonflyConfig::tiny_1d());
        let g = model_graph(&topo);
        let part = ross::Partition::from_blocks(g.block_of.clone());
        let shard_of = ross::shard::shard_owner_map(Some(&part), g.block_of.len(), 2);
        let (block_min, _) = g.min_cross_partition_delay().expect("multi-router model");
        let (shard_min, _) = g.min_cross_shard_delay(&shard_of).expect("2 shards must cross");
        assert!(shard_min >= block_min, "shard grouping can only relax the constraint");
        assert!(g.check_shard_lookahead(&shard_of, 1, shard_min).is_empty());
        assert!(g.check_shard_lookahead(&shard_of, 1, shard_min + 1).has_errors());
    }

    #[test]
    fn registry_hook_rejects_deadlocking_skeleton() {
        let mut reg = SkeletonRegistry::new();
        reg.register(
            union_core::translate_source(union_lint::fixtures::SEND_SEND_DEADLOCK, "bad").unwrap(),
        );
        install_linter(&mut reg, false);
        let err = reg.instantiate("bad", 2, &[]).err().unwrap();
        assert!(err.contains("rejected by lint"), "{err}");
        assert!(err.contains("deadlock"), "{err}");
        // --allow-lint downgrades the rejection to pass-through.
        reg.set_allow_lint(true);
        assert!(reg.instantiate("bad", 2, &[]).is_ok());
    }
}
