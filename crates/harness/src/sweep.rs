//! The hybrid-workload experiment sweep (methodology of paper §IV):
//! baseline runs (each application alone) and the Table III mixes, across
//! {1D, 2D} × {RN, RR, RG} × {MIN, ADP}, collecting message-latency and
//! communication-time distributions, link loads, and (optionally)
//! windowed router counters.

use codes::{SimResults, SimulationBuilder};
use dragonfly::{DragonflyConfig, FlowControl, Routing};
use metrics::{AppLatencySummary, Boxplot, LinkLoad};
use placement::Placement;
use ross::{QueueKind, RunStats, Scheduler, SimTime};
use serde::Serialize;
use workloads::{AppConfig, AppKind, Profile};

/// Which network (paper Table II).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize)]
pub enum Net {
    OneD,
    TwoD,
}

impl Net {
    pub fn label(self) -> &'static str {
        match self {
            Net::OneD => "1D",
            Net::TwoD => "2D",
        }
    }

    /// The dragonfly configuration for this network at a profile.
    pub fn config(self, profile: Profile) -> DragonflyConfig {
        match (self, profile) {
            (Net::OneD, Profile::Paper) => DragonflyConfig::dragonfly_1d(),
            (Net::TwoD, Profile::Paper) => DragonflyConfig::dragonfly_2d(),
            (Net::OneD, Profile::Quick) => DragonflyConfig::small_1d(),
            (Net::TwoD, Profile::Quick) => DragonflyConfig::small_2d(),
        }
    }
}

/// What is running: one application alone (baseline) or a Table III mix.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize)]
pub enum Workload {
    Baseline(#[serde(skip)] AppKind),
    Mix(u8),
}

impl Workload {
    pub fn label(self) -> String {
        match self {
            Workload::Baseline(_) => "baseline".to_string(),
            Workload::Mix(w) => format!("Workload{w}"),
        }
    }
}

/// One point of the sweep.
#[derive(Clone, Copy, Debug)]
pub struct RunKey {
    pub net: Net,
    pub workload: Workload,
    pub placement: Placement,
    pub routing: Routing,
}

impl RunKey {
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}/{}",
            self.net.label(),
            self.workload.label(),
            self.placement.label(),
            self.routing.label()
        )
    }
}

/// Per-application outcome of one run.
#[derive(Clone, Debug, Serialize)]
pub struct AppOutcome {
    pub name: String,
    /// Distribution over ranks of each rank's **maximum** message latency
    /// (Fig 7's boxes), ns.
    pub max_latency: Boxplot,
    /// Distribution of per-rank average latency, ns.
    pub avg_latency: Boxplot,
    /// Mean over ranks of per-rank average latency (the red square), ns.
    pub overall_avg_latency_ns: f64,
    /// Distribution over ranks of communication time (Fig 9), ns.
    pub comm_time: Boxplot,
    /// Did every rank finish?
    pub done: bool,
    pub bytes_sent: u64,
}

/// One completed run.
#[derive(Clone, Debug)]
pub struct RunRecord {
    pub key: RunKey,
    pub apps: Vec<AppOutcome>,
    pub link_load: LinkLoad,
    /// LP count of the built model (routers + NICs + ranks).
    pub n_lps: u32,
    pub stats: RunStats,
    /// Raw results retained when windowed counters were enabled (Fig 8).
    pub results: Option<SimResults>,
}

impl RunRecord {
    pub fn app(&self, name: &str) -> Option<&AppOutcome> {
        self.apps.iter().find(|a| a.name == name)
    }
}

/// Sweep parameters.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    pub profile: Profile,
    /// Iterations/updates per application.
    pub iters: i64,
    /// Payload/compute scale divisor.
    pub scale: i64,
    pub seed: u64,
    pub nets: Vec<Net>,
    pub placements: Vec<Placement>,
    pub routings: Vec<Routing>,
    /// Which Table III mixes to run.
    pub workloads: Vec<u8>,
    /// Also run each involved application alone (the paper's baselines).
    pub baselines: bool,
    pub sched: Scheduler,
    /// Pending-event queue implementation for the engine.
    pub queue: QueueKind,
    /// Router counter window (0 = off).
    pub window_ns: u64,
    /// Virtual-time bound per run.
    pub until: SimTime,
    /// Keep raw results (needed for Fig 8 / Table VI post-processing).
    pub keep_results: bool,
    /// Router flow-control model.
    pub flow: FlowControl,
    /// Telemetry sink: every run appends scheduler/network/phase records.
    pub telemetry: Option<std::sync::Arc<telemetry::Recorder>>,
    /// Causal tracer: every run records executed events and scheduler
    /// phases, labelled with the run key, for Chrome-trace export.
    pub tracer: Option<std::sync::Arc<ross::Tracer>>,
}

impl SweepConfig {
    /// The paper's full methodology at Quick scale: both networks, all
    /// six placement/routing combinations, all three workloads plus
    /// baselines.
    pub fn quick() -> SweepConfig {
        SweepConfig {
            profile: Profile::Quick,
            iters: 2,
            scale: 16,
            seed: 42,
            nets: vec![Net::OneD, Net::TwoD],
            placements: Placement::all().to_vec(),
            routings: vec![Routing::Minimal, Routing::Adaptive],
            workloads: vec![1, 2, 3],
            baselines: true,
            sched: Scheduler::Sequential,
            queue: QueueKind::default(),
            window_ns: 0,
            until: SimTime::MAX,
            keep_results: false,
            flow: FlowControl::BusyUntil,
            telemetry: None,
            tracer: None,
        }
    }

    /// A minimal smoke configuration (used by tests and benches).
    pub fn smoke() -> SweepConfig {
        SweepConfig {
            iters: 1,
            scale: 64,
            nets: vec![Net::OneD],
            placements: vec![Placement::RandomGroups],
            routings: vec![Routing::Adaptive],
            workloads: vec![3],
            baselines: false,
            ..SweepConfig::quick()
        }
    }
}

/// The applications participating in a workload (for baseline selection).
fn apps_of(workload: u8) -> Vec<AppKind> {
    workloads::workload(workload, Profile::Quick, 1, 64).into_iter().map(|a| a.kind).collect()
}

/// Run one configuration and summarize it.
pub fn run_one(cfg: &SweepConfig, key: RunKey) -> Result<RunRecord, String> {
    let apps: Vec<AppConfig> = match key.workload {
        Workload::Mix(w) => workloads::workload(w, cfg.profile, cfg.iters, cfg.scale),
        Workload::Baseline(kind) => {
            vec![workloads::app(kind, cfg.profile, cfg.iters, cfg.scale)]
        }
    };
    let mut net_cfg = key.net.config(cfg.profile);
    net_cfg.flow = cfg.flow;
    let mut b = SimulationBuilder::new(net_cfg)
        .routing(key.routing)
        .placement(key.placement)
        .seed(cfg.seed)
        .window_ns(cfg.window_ns)
        .queue(cfg.queue);
    if let Some(rec) = &cfg.telemetry {
        b = b.telemetry(rec.clone());
    }
    if let Some(tr) = &cfg.tracer {
        tr.label_next_run(&key.label());
        b = b.tracer(tr.clone());
    }
    for a in &apps {
        b = b.job(a.name(), a.vms(cfg.seed)?);
    }
    let mut sim = b.build()?;
    let t0 = std::time::Instant::now();
    let results = sim.run(cfg.sched, cfg.until);
    // A wire-protocol violation is a simulation failure, not a result.
    for a in &results.apps {
        if a.failed() {
            return Err(format!("{}: MPI protocol failure: {}", a.name, a.errors.join("; ")));
        }
    }
    if let Some(rec) = &cfg.telemetry {
        rec.emit(&telemetry::PhaseRecord::new(&key.label(), t0.elapsed().as_nanos() as u64));
    }
    let outcomes = results
        .apps
        .iter()
        .map(|a| {
            let lat = AppLatencySummary::from_ranks(&a.latency);
            let comm: Vec<f64> = a.comm.iter().map(|c| c.total_ns as f64).collect();
            AppOutcome {
                name: a.name.clone(),
                max_latency: lat.max_box,
                avg_latency: lat.avg_box,
                overall_avg_latency_ns: lat.overall_avg_ns,
                comm_time: Boxplot::from_samples(&comm),
                done: a.all_done(),
                bytes_sent: a.bytes_sent,
            }
        })
        .collect();
    Ok(RunRecord {
        key,
        apps: outcomes,
        link_load: results.link_load,
        n_lps: sim.n_lps(),
        stats: results.stats.clone(),
        results: if cfg.keep_results { Some(results) } else { None },
    })
}

/// Run the full sweep: for every (net, placement, routing): each selected
/// workload mix, plus (once per involved app) its baseline.
pub fn run_sweep(cfg: &SweepConfig, mut progress: impl FnMut(&str)) -> Vec<RunRecord> {
    let mut records = Vec::new();
    // Which baselines to run: the union of apps over selected workloads.
    let mut baseline_kinds: Vec<AppKind> = Vec::new();
    if cfg.baselines {
        for &w in &cfg.workloads {
            for k in apps_of(w) {
                if !baseline_kinds.contains(&k) {
                    baseline_kinds.push(k);
                }
            }
        }
    }
    for &net in &cfg.nets {
        for &placement in &cfg.placements {
            for &routing in &cfg.routings {
                for &k in &baseline_kinds {
                    let key = RunKey { net, workload: Workload::Baseline(k), placement, routing };
                    progress(&format!("{} [{}]", key.label(), k.label()));
                    match run_one(cfg, key) {
                        Ok(r) => records.push(r),
                        Err(e) => panic!("{}: {e}", key.label()),
                    }
                }
                for &w in &cfg.workloads {
                    let key = RunKey { net, workload: Workload::Mix(w), placement, routing };
                    progress(&key.label());
                    match run_one(cfg, key) {
                        Ok(r) => records.push(r),
                        Err(e) => panic!("{}: {e}", key.label()),
                    }
                }
            }
        }
    }
    records
}

/// Find the baseline record for (net, app, placement, routing).
pub fn baseline_of<'a>(
    records: &'a [RunRecord],
    net: Net,
    app: &str,
    placement: Placement,
    routing: Routing,
) -> Option<&'a AppOutcome> {
    records
        .iter()
        .find(|r| {
            matches!(r.key.workload, Workload::Baseline(k) if k.label() == app)
                && r.key.net == net
                && r.key.placement == placement
                && r.key.routing == routing
        })
        .and_then(|r| r.app(app))
}
