//! `union-exp` side of the live metrics plane: CLI plumbing for
//! `--live ADDR` and the `union-exp top` summary renderer.
//!
//! The heavy machinery (registry, sampler, endpoint, gang aggregation)
//! lives in [`telemetry::live`]; this module owns what is CLI-shaped —
//! parsing the flags, fetching a snapshot from an endpoint or a JSONL
//! file, and rendering the one-screen summary table.

use telemetry::live::{bucket_bounds, SnapshotRecord};

/// Parsed `--live ADDR [--live-hold MS] [--live-interval MS]` flags.
#[derive(Clone, Debug)]
pub struct LiveOpts {
    /// Bind address for the exposition endpoint, e.g. `127.0.0.1:9464`
    /// (port 0 picks a free port; the bound address goes to stderr).
    pub addr: String,
    /// Keep the endpoint up this long after the run finishes so scrapers
    /// (CI, a human with curl) can read final totals.
    pub hold_ms: u64,
    /// Sampler tick interval.
    pub interval_ms: u64,
}

/// Snapshots kept in the sampler ring — enough for a few minutes of
/// history at the default interval without unbounded growth.
pub const RING_CAP: usize = 512;

/// Fetch the JSON snapshot from a live endpoint.
pub fn fetch_snapshot(addr: &str) -> Result<SnapshotRecord, String> {
    let body = telemetry::live::http_get(addr, "/snapshot")
        .map_err(|e| format!("cannot fetch snapshot from {addr}: {e}"))?;
    serde_json::from_str(&body).map_err(|e| format!("bad snapshot from {addr}: {e}"))
}

/// The last snapshot record in a JSONL stream (telemetry files mix
/// snapshots with other record types; non-snapshot lines are skipped).
pub fn last_snapshot_in_jsonl(text: &str) -> Option<SnapshotRecord> {
    text.lines().rev().filter(|l| !l.trim().is_empty()).find_map(|l| {
        match serde_json::from_str::<SnapshotRecord>(l) {
            Ok(s) if s.record == "snapshot" => Some(s),
            _ => None,
        }
    })
}

fn fmt_count(v: u64) -> String {
    if v >= 10_000_000 {
        format!("{:.1}M", v as f64 / 1e6)
    } else if v >= 10_000 {
        format!("{:.1}k", v as f64 / 1e3)
    } else {
        v.to_string()
    }
}

/// Render the `union-exp top` summary: throughput header, counter table
/// (cumulative + last-interval delta), gauges, and histogram quantiles.
pub fn render_top(snap: &SnapshotRecord) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "live snapshot #{} at {:.1}s (interval {} ms) — {:.0} events/s",
        snap.seq,
        snap.wall_ms as f64 / 1000.0,
        snap.interval_ms,
        snap.events_per_sec(),
    );
    if !snap.counters.is_empty() {
        let _ = writeln!(out, "\n  {:<28} {:>12} {:>12}", "counter", "total", "delta");
        for c in &snap.counters {
            let _ = writeln!(out, "  {:<28} {:>12} {:>12}", c.name, fmt_count(c.total), c.delta);
        }
    }
    if !snap.gauges.is_empty() {
        let _ = writeln!(out, "\n  {:<28} {:>12}", "gauge", "value");
        for (name, v) in &snap.gauges {
            let _ = writeln!(out, "  {:<28} {:>12}", name, v);
        }
    }
    if !snap.histograms.is_empty() {
        let _ = writeln!(
            out,
            "\n  {:<28} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "histogram", "count", "p50", "p90", "p99", "max"
        );
        for hs in &snap.histograms {
            let h = hs.to_histogram();
            let _ = writeln!(
                out,
                "  {:<28} {:>10} {:>10} {:>10} {:>10} {:>10}",
                hs.name,
                fmt_count(hs.count),
                h.quantile(0.50),
                h.quantile(0.90),
                h.quantile(0.99),
                hs.max,
            );
        }
    }
    out
}

/// Sanity check exercised by the CI smoke: every sparse histogram bucket
/// index in a snapshot must be a valid registry bucket.
pub fn snapshot_buckets_valid(snap: &SnapshotRecord) -> bool {
    snap.histograms.iter().all(|h| {
        h.buckets.iter().all(|&(i, _)| {
            let (lo, hi) = bucket_bounds(i as usize);
            lo <= hi
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use telemetry::live::MetricsRegistry;

    fn sample_snapshot() -> SnapshotRecord {
        let reg = Arc::new(MetricsRegistry::with_shards(2));
        reg.counter("events_committed").add(5000);
        reg.gauge("gvt_ns").set(123_456);
        let h = reg.histogram("commit_batch");
        for v in [1u64, 100, 10_000] {
            h.record(v);
        }
        let mut snap = reg.snapshot();
        snap.interval_ms = 1000;
        snap.counters[0].delta = 2500;
        snap
    }

    #[test]
    fn top_renders_counters_gauges_and_quantiles() {
        let s = sample_snapshot();
        let out = render_top(&s);
        assert!(out.contains("events_committed"), "{out}");
        assert!(out.contains("gvt_ns"), "{out}");
        assert!(out.contains("commit_batch"), "{out}");
        assert!(out.contains("2500 events/s"), "{out}");
        assert!(snapshot_buckets_valid(&s));
    }

    #[test]
    fn last_snapshot_skips_foreign_lines_and_picks_newest() {
        let s1 = serde_json::to_string(&sample_snapshot()).unwrap();
        let mut newer = sample_snapshot();
        newer.seq = 7;
        let s2 = serde_json::to_string(&newer).unwrap();
        let text = format!("{{\"record\":\"manifest\"}}\n{s1}\n{s2}\n{{\"not\":\"json\"");
        let got = last_snapshot_in_jsonl(&text).expect("snapshot found");
        assert_eq!(got.seq, 7);
        assert!(last_snapshot_in_jsonl("{\"record\":\"manifest\"}\n").is_none());
    }
}
