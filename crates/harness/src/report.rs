//! Report formatters: print the same rows/series the paper's figures and
//! tables report.

use crate::sweep::{baseline_of, Net, RunRecord, Workload};
use crate::trace_analysis::{fmt_ns, RunAnalysis};
use metrics::fmt_bytes;
use std::fmt::Write;

/// Table II: the two system configurations.
pub fn table2() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| Topology | Radix | #Groups | #Routers/Group | #Nodes/Router | #Nodes/Group | #Global/Router | System |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|---|---|");
    for (name, cfg) in [
        ("1D dragonfly", dragonfly::DragonflyConfig::dragonfly_1d()),
        ("2D dragonfly", dragonfly::DragonflyConfig::dragonfly_2d()),
    ] {
        let _ = writeln!(
            out,
            "| {name} | 48 | {} | {} | {} | {} | {} | {} |",
            cfg.groups,
            cfg.routers_per_group(),
            cfg.nodes_per_router,
            cfg.nodes_per_group(),
            cfg.global_per_router,
            cfg.total_nodes(),
        );
    }
    out
}

/// Fig 7: message-latency boxes per application, workload, placement,
/// routing, network — plus the slowdown of the per-rank average versus
/// the matching baseline.
pub fn fig7(records: &[RunRecord]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig 7 — maximum message latency per rank (us): min/q1/median/q3/max, mean, \
         and avg-latency slowdown vs baseline"
    );
    let _ = writeln!(
        out,
        "| Net | App | Workload | Plc | Rt | min | q1 | med | q3 | max | mean | avg-slowdown |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|---|---|---|---|---|---|");
    for r in records {
        for a in &r.apps {
            let b = r.key;
            let base = baseline_of(records, b.net, &a.name, b.placement, b.routing);
            let slow = match (&b.workload, base) {
                (Workload::Mix(_), Some(base)) if base.overall_avg_latency_ns > 0.0 => {
                    format!("{:.2}x", a.overall_avg_latency_ns / base.overall_avg_latency_ns)
                }
                _ => "-".to_string(),
            };
            let x = &a.max_latency;
            let us = 1e3;
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {} | {:.1} | {:.1} | {:.1} | {:.1} | {:.1} | {:.1} | {} |",
                b.net.label(),
                a.name,
                b.workload.label(),
                b.placement.label(),
                b.routing.label(),
                x.min / us,
                x.q1 / us,
                x.median / us,
                x.q3 / us,
                x.max / us,
                x.mean / us,
                slow,
            );
        }
    }
    out
}

/// Fig 9: communication-time distributions per app/config, with slowdown
/// of the mean versus the matching baseline.
pub fn fig9(records: &[RunRecord]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig 9 — communication time per rank (ms): min/median/max, mean, slowdown vs baseline"
    );
    let _ =
        writeln!(out, "| Net | App | Workload | Plc | Rt | min | med | max | mean | slowdown |");
    let _ = writeln!(out, "|---|---|---|---|---|---|---|---|---|---|");
    for r in records {
        for a in &r.apps {
            let b = r.key;
            let base = baseline_of(records, b.net, &a.name, b.placement, b.routing);
            let slow = match (&b.workload, base) {
                (Workload::Mix(_), Some(base)) if base.comm_time.mean > 0.0 => {
                    format!("{:.2}x", a.comm_time.mean / base.comm_time.mean)
                }
                _ => "-".to_string(),
            };
            let x = &a.comm_time;
            let ms = 1e6;
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {} | {:.3} | {:.3} | {:.3} | {:.3} | {} |",
                b.net.label(),
                a.name,
                b.workload.label(),
                b.placement.label(),
                b.routing.label(),
                x.min / ms,
                x.median / ms,
                x.max / ms,
                x.mean / ms,
                slow,
            );
        }
    }
    out
}

/// Table VI: global/local link loads for a set of records (the paper uses
/// Workload3 with RG placement and adaptive routing, on both networks).
pub fn table6(records: &[RunRecord]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table VI — link loads (Workload3, RG placement, adaptive routing)");
    let _ = writeln!(
        out,
        "| Dragonfly | Glink Load | Llink Load | per Glink | per Llink | global share |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|");
    for net in [Net::OneD, Net::TwoD] {
        let Some(r) = records.iter().find(|r| {
            r.key.net == net
                && matches!(r.key.workload, Workload::Mix(3))
                && r.key.placement == placement::Placement::RandomGroups
                && r.key.routing == dragonfly::Routing::Adaptive
        }) else {
            continue;
        };
        let l = &r.link_load;
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} | {:.1}% |",
            net.label(),
            fmt_bytes(l.global_bytes as f64),
            fmt_bytes(l.local_bytes as f64),
            fmt_bytes(l.per_global_link()),
            fmt_bytes(l.per_local_link()),
            100.0 * l.global_fraction(),
        );
    }
    out
}

/// Fig 8: windowed per-app bytes over the routers serving one job.
/// `series[w][app]` in bytes; apps named by `names`.
pub fn fig8(label: &str, window_ns: u64, series: &metrics::TimeSeries, names: &[String]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig 8 — bytes received per {:.1} ms window on the routers serving AlexNet ({label})",
        window_ns as f64 / 1e6
    );
    let mut head = String::from("| window(ms) |");
    for n in names {
        head.push_str(&format!(" {n} |"));
    }
    let _ = writeln!(out, "{head}");
    let _ = writeln!(out, "|{}", "---|".repeat(names.len() + 1));
    for (w, apps) in series.bytes.iter().enumerate() {
        let mut row = format!("| {:.2} |", (w as f64) * window_ns as f64 / 1e6);
        for a in 0..names.len() {
            row.push_str(&format!(" {} |", fmt_bytes(apps.get(a).copied().unwrap_or(0) as f64)));
        }
        let _ = writeln!(out, "{row}");
    }
    out
}

/// Engine run statistics summary (events, rollbacks, rates).
/// End-of-run telemetry summary: one row per scheduler record, network
/// totals, and phase timings — parsed back out of the recorder's JSONL
/// buffer so this renders exactly what the file will contain.
pub fn telemetry_summary(rec: &telemetry::Recorder) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Telemetry — {} records, {} dropped", rec.len(), rec.dropped());
    // Degraded-capture warnings must be impossible to miss in the
    // summary: dropped records mean the cap was hit, serialization
    // errors mean some records silently turned into trailer notes.
    if rec.dropped() > 0 {
        let _ = writeln!(
            out,
            "WARNING: {} telemetry records dropped at the record cap — totals below undercount",
            rec.dropped()
        );
    }
    if rec.serialization_errors() > 0 {
        let _ = writeln!(
            out,
            "WARNING: {} records failed to serialize and were replaced by trailer notes",
            rec.serialization_errors()
        );
    }
    let _ = writeln!(
        out,
        "| Scheduler | Thr | Queue | Committed | Rolled back | Anti | Annihilated | Rounds | \
         Q-ops | Q-max | Steals | Stall ms | Lag ns | Wall ms |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|---|---|---|---|---|---|---|---|");
    let mut nets = (0u64, 0u64, 0u64, 0u64);
    let mut phases: Vec<(String, u64)> = Vec::new();
    for line in rec.lines() {
        let Ok(v) = serde_json::from_str::<serde::Value>(&line) else { continue };
        let g = |k: &str| v.get(k).and_then(|x| x.as_u64()).unwrap_or(0);
        match v.get("record").and_then(|r| r.as_str()) {
            Some("scheduler") => {
                let _ = writeln!(
                    out,
                    "| {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {:.1} | {} | {:.1} |",
                    v.get("scheduler").and_then(|s| s.as_str()).unwrap_or("?"),
                    g("threads"),
                    v.get("queue").and_then(|s| s.as_str()).unwrap_or("?"),
                    g("committed"),
                    g("rolled_back"),
                    g("anti_messages"),
                    g("annihilated"),
                    g("rounds"),
                    g("queue_ops"),
                    g("queue_max_len"),
                    g("steals"),
                    g("horizon_stall_ns") as f64 / 1e6,
                    g("horizon_lag_max"),
                    g("wall_ns") as f64 / 1e6,
                );
            }
            Some("network") => {
                nets.0 += g("packets_injected");
                nets.1 += g("packets_delivered");
                nets.2 += g("bytes_injected");
                nets.3 += g("credit_stalls");
            }
            Some("phase") => {
                let name = v.get("phase").and_then(|p| p.as_str()).unwrap_or("?").to_string();
                phases.push((name, g("wall_ns")));
            }
            _ => {}
        }
    }
    let _ = writeln!(
        out,
        "network: {} packets injected, {} delivered, {} on the wire, {} credit stalls",
        nets.0,
        nets.1,
        fmt_bytes(nets.2 as f64),
        nets.3,
    );
    if let Some((name, wall)) = phases.last().filter(|(n, _)| n == "total") {
        let _ = writeln!(
            out,
            "{} phases, {name} wall time {:.2} s",
            phases.len().saturating_sub(1),
            *wall as f64 / 1e9
        );
    }
    out
}

/// Measured parallelism of every `scheduler` telemetry record, in
/// emission order: Σ per-thread busy time ÷ wall time (1.0 = serial,
/// `None` when the record carries no usable timing). Runs emit one
/// scheduler record each, in the same order the tracer numbers runs, so
/// this aligns with trace analyses by index.
fn measured_speedups(rec: &telemetry::Recorder) -> Vec<Option<f64>> {
    let mut out = Vec::new();
    for line in rec.lines() {
        let Ok(v) = serde_json::from_str::<serde::Value>(&line) else { continue };
        if v.get("record").and_then(|r| r.as_str()) != Some("scheduler") {
            continue;
        }
        let wall = v.get("wall_ns").and_then(|x| x.as_u64()).unwrap_or(0);
        let busy: u64 = v
            .get("per_thread")
            .and_then(|t| t.as_array())
            .map(|threads| {
                threads.iter().filter_map(|t| t.get("busy_ns").and_then(|b| b.as_u64())).sum()
            })
            .unwrap_or(0);
        out.push((wall > 0 && busy > 0).then(|| busy as f64 / wall as f64));
    }
    out
}

/// The achievable-vs-achieved parallelism table: the critical-path bound
/// from the traced event DAG next to the speedup the scheduler actually
/// measured (Σ busy / wall from telemetry), one row per traced run.
pub fn critical_path_block(analyses: &[RunAnalysis], measured: &[Option<f64>]) -> String {
    let mut out = String::new();
    if analyses.is_empty() {
        return out;
    }
    let _ = writeln!(out, "Critical path — achievable vs achieved parallelism");
    let _ = writeln!(
        out,
        "| Run | Label | Sched | Thr | Committed | Path | Path time | Bound | Measured | Wasted |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|---|---|---|---|");
    for (i, a) in analyses.iter().enumerate() {
        let m = match measured.get(i) {
            Some(Some(s)) => format!("{s:.2}x"),
            _ => "-".to_string(),
        };
        let wasted = if a.wasted_events > 0 {
            format!("{:.1}%", 100.0 * a.wasted_fraction())
        } else {
            "-".to_string()
        };
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} | {} | {} | {:.2}x | {} | {} |",
            a.run,
            if a.label.is_empty() { "-" } else { &a.label },
            a.sched,
            a.threads,
            a.committed_events,
            a.critical_path_len,
            fmt_ns(a.critical_path_ns),
            a.speedup_bound,
            m,
            wasted,
        );
    }
    out
}

/// [`telemetry_summary`] plus the critical-path block when the run was
/// traced: the speedup bound the event DAG allows, side by side with the
/// parallelism the scheduler achieved.
pub fn telemetry_summary_with_trace(rec: &telemetry::Recorder, analyses: &[RunAnalysis]) -> String {
    let mut out = telemetry_summary(rec);
    if !analyses.is_empty() {
        out.push_str(&critical_path_block(analyses, &measured_speedups(rec)));
    }
    out
}

pub fn engine_stats(records: &[RunRecord]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "| Run | events | wall(s) | ev/s | rollbacks |");
    let _ = writeln!(out, "|---|---|---|---|---|");
    for r in records {
        let _ = writeln!(
            out,
            "| {} | {} | {:.2} | {:.0} | {} |",
            r.key.label(),
            r.stats.committed,
            r.stats.wall_seconds,
            r.stats.event_rate(),
            r.stats.rollbacks,
        );
    }
    out
}
