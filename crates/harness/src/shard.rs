//! Multi-process sharded execution for `union-exp`.
//!
//! `--sched shard:N:T:L` turns one `union-exp` invocation into a gang of
//! `N` OS processes (each running `T` worker threads with lookahead
//! window `L` ns). The parent re-execs its own argv `N` times with a
//! hidden worker role in the environment; workers rebuild the identical
//! simulation from that argv, form a TCP mesh, and run their shard via
//! [`ross::Simulation::run_sharded`]. The parent merges per-shard
//! fingerprints, committed-event counts, and telemetry, and (unless told
//! otherwise) verifies the merged fingerprint against an in-process
//! sequential run of the same model.
//!
//! Control protocol (JSONL over one TCP connection per worker):
//!
//! 1. worker → parent  `{"hello": id, "addr": "ip:port"}` — the worker's
//!    data-mesh listener address;
//! 2. parent → worker  `{"peers": ["ip:port", ...]}` — all `N` data
//!    addresses in shard order;
//! 3. worker → parent  zero or more `{"record":"snapshot", ...}` live
//!    metric snapshots (when the gang runs with `--live`), then one
//!    [`WorkerReport`] line, then exit.
//!
//! A worker that dies mid-run (crash, fault injection) closes its
//! control connection; the parent then kills the rest of the gang and
//! reports which shard was lost.

use ross::shard::wire::{fnv1a, put_u64, ByteReader};
use ross::shard::{
    shard_owner_map, CheckpointSpec, EventCodec, ShardCodec, ShardError, ShardRun, TcpTransport,
};
use ross::{Ctx, Envelope, Lp, QueueKind, RunStats, SimDuration, SimTime, Simulation};
use serde::{Deserialize, Serialize};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use telemetry::live::{GangAggregator, SnapshotRecord, SnapshotSink};

/// Environment of a spawned worker process.
pub const ENV_ROLE: &str = "UNION_SHARD_ROLE";
pub const ENV_ID: &str = "UNION_SHARD_ID";
pub const ENV_N: &str = "UNION_SHARD_N";
pub const ENV_CONTROL: &str = "UNION_SHARD_CONTROL";
/// Fault injection: `kill-after-ckpt:<shard>` makes that worker kill
/// itself (SIGKILL) right after its first completed checkpoint round.
pub const ENV_FAULT: &str = "UNION_SHARD_FAULT";

/// A parsed `shard:N:T:L` scheduler spec.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    pub shards: usize,
    pub threads: usize,
    pub lookahead_ns: u64,
}

impl ShardSpec {
    /// `None` when `s` is not a `shard:` spec at all; `Some(Err)` when it
    /// is one but malformed.
    pub fn parse(s: &str) -> Option<Result<ShardSpec, String>> {
        let rest = s.strip_prefix("shard:")?;
        let parts: Vec<&str> = rest.split(':').collect();
        let bad =
            || format!("scheduler spec `{s}` must be shard:<shards>:<threads>:<lookahead-ns>");
        if parts.len() != 3 {
            return Some(Err(bad()));
        }
        let shards = match parts[0].parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => return Some(Err(bad())),
        };
        let threads = match parts[1].parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => return Some(Err(bad())),
        };
        let lookahead_ns = match parts[2].parse::<u64>() {
            Ok(n) if n >= 1 => n,
            _ => return Some(Err(bad())),
        };
        Some(Ok(ShardSpec { shards, threads, lookahead_ns }))
    }
}

/// The worker role of this process, if the launcher spawned it:
/// `(shard id, gang size, control address)`.
pub fn worker_role() -> Option<(usize, usize, String)> {
    if std::env::var(ENV_ROLE).ok()?.as_str() != "worker" {
        return None;
    }
    let id = std::env::var(ENV_ID).ok()?.parse().ok()?;
    let n = std::env::var(ENV_N).ok()?.parse().ok()?;
    let ctrl = std::env::var(ENV_CONTROL).ok()?;
    Some((id, n, ctrl))
}

/// Which shard (if any) the fault-injection environment tells to die
/// after its first checkpoint.
pub fn fault_kill_after_ckpt() -> Option<usize> {
    let v = std::env::var(ENV_FAULT).ok()?;
    v.strip_prefix("kill-after-ckpt:")?.parse().ok()
}

/// Die the way a crashed machine does: no unwinding, no cleanup, no
/// flushing. SIGKILL via the system `kill`, abort as fallback.
pub fn die_hard() -> ! {
    let pid = std::process::id().to_string();
    let _ = Command::new("kill").args(["-9", &pid]).status();
    std::process::abort();
}

/// What each worker sends back on its control connection.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WorkerReport {
    pub shard: u64,
    pub ok: bool,
    /// Present when `ok` is false.
    pub error: Option<String>,
    /// Order-independent digest of the owned LPs' final state; gang
    /// fingerprints merge by wrapping addition.
    pub fingerprint: u64,
    pub committed: u64,
    pub cross_shard_events: u64,
    pub rounds: u64,
    /// The worker's telemetry lines (JSONL), merged into the parent's
    /// recorder.
    pub telemetry: Vec<String>,
}

fn write_line(stream: &mut TcpStream, line: &str) -> std::io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

/// A worker's connection to the launcher. The writer is shared: the
/// live sampler thread streams snapshot lines through it concurrently
/// with (strictly before, by the sampler-stop ordering) the final
/// report, and the mutex keeps lines whole.
pub struct WorkerLink {
    reader: BufReader<TcpStream>,
    writer: Arc<Mutex<TcpStream>>,
    pub me: usize,
    pub n: usize,
}

impl WorkerLink {
    /// Connect to the launcher, bind the data-mesh listener, and say
    /// hello. Returns the link and the listener to pass to
    /// [`TcpTransport::mesh`].
    pub fn connect(
        me: usize,
        n: usize,
        control: &str,
    ) -> Result<(WorkerLink, TcpListener), String> {
        let stream = TcpStream::connect(control)
            .map_err(|e| format!("shard {me}: cannot reach launcher at {control}: {e}"))?;
        let listener = TcpListener::bind("127.0.0.1:0")
            .map_err(|e| format!("shard {me}: cannot bind data listener: {e}"))?;
        let addr = listener.local_addr().map_err(|e| e.to_string())?;
        let writer = Arc::new(Mutex::new(stream.try_clone().map_err(|e| e.to_string())?));
        let link = WorkerLink { reader: BufReader::new(stream), writer, me, n };
        let hello = serde::Value::Object(vec![
            ("hello".to_string(), serde::Value::UInt(me as u64)),
            ("addr".to_string(), serde::Value::Str(addr.to_string())),
        ]);
        write_line(
            &mut link.writer.lock().expect("control writer"),
            &serde_json::to_string(&hello).expect("hello json"),
        )
        .map_err(|e| format!("shard {me}: hello failed: {e}"))?;
        Ok((link, listener))
    }

    /// Receive the full gang's data addresses, in shard order.
    pub fn peers(&mut self) -> Result<Vec<SocketAddr>, String> {
        let mut line = String::new();
        self.reader
            .read_line(&mut line)
            .map_err(|e| format!("shard {}: reading peer list: {e}", self.me))?;
        let v: serde::Value = serde_json::from_str(line.trim())
            .map_err(|e| format!("shard {}: bad peer list: {e}", self.me))?;
        let peers = v
            .get("peers")
            .and_then(|p| p.as_array())
            .ok_or_else(|| format!("shard {}: peer list missing `peers`", self.me))?;
        let addrs: Option<Vec<SocketAddr>> =
            peers.iter().map(|a| a.as_str()?.parse().ok()).collect();
        addrs
            .filter(|a| a.len() == self.n)
            .ok_or_else(|| format!("shard {}: malformed peer list", self.me))
    }

    /// Send the final report. Errors are ignored deliberately: if the
    /// launcher is already gone there is nobody left to tell.
    pub fn report(&mut self, report: &WorkerReport) {
        if let Ok(json) = serde_json::to_string(report) {
            let _ = write_line(&mut self.writer.lock().expect("control writer"), &json);
        }
    }

    /// A sampler sink streaming every snapshot to the launcher as one
    /// JSONL line. Send failures are swallowed: a gang with a dead
    /// launcher is already doomed, and the run's correctness never
    /// depends on live metrics arriving.
    pub fn snapshot_sink(&self) -> SnapshotSink {
        let writer = Arc::clone(&self.writer);
        Box::new(move |snap: &SnapshotRecord| {
            if let Ok(json) = serde_json::to_string(snap) {
                let _ = write_line(&mut writer.lock().expect("control writer"), &json);
            }
        })
    }
}

// ---------------------------------------------------------------------------
// Launcher side
// ---------------------------------------------------------------------------

/// The merged outcome of a successful gang run.
#[derive(Clone, Debug)]
pub struct GangOutcome {
    /// Wrapping sum of the per-shard fingerprints — comparable to the
    /// same model's sequential fingerprint.
    pub fingerprint: u64,
    pub committed: u64,
    pub cross_shard_events: u64,
    pub reports: Vec<WorkerReport>,
}

fn kill_all(children: &mut [Child]) {
    for c in children.iter_mut() {
        let _ = c.kill();
    }
    for c in children.iter_mut() {
        let _ = c.wait();
    }
}

/// Spawn `spec.shards` copies of this binary with the same argv, broker
/// the data mesh, and collect one report per worker. `telemetry`
/// receives every worker's telemetry lines in shard order; `live`
/// ingests the snapshot lines workers stream mid-run so one endpoint
/// observes the whole gang.
pub fn launch_gang(
    spec: &ShardSpec,
    telemetry: Option<&telemetry::Recorder>,
    live: Option<&GangAggregator>,
) -> Result<GangOutcome, String> {
    let listener =
        TcpListener::bind("127.0.0.1:0").map_err(|e| format!("cannot bind control socket: {e}"))?;
    let control = listener.local_addr().map_err(|e| e.to_string())?.to_string();
    let exe = std::env::current_exe().map_err(|e| format!("cannot find own binary: {e}"))?;
    let args: Vec<String> = std::env::args().skip(1).collect();

    let mut children: Vec<Child> = Vec::with_capacity(spec.shards);
    for i in 0..spec.shards {
        let child = Command::new(&exe)
            .args(&args)
            .env(ENV_ROLE, "worker")
            .env(ENV_ID, i.to_string())
            .env(ENV_N, spec.shards.to_string())
            .env(ENV_CONTROL, &control)
            .stdin(Stdio::null())
            // Workers inherit stdout/stderr so a panic is visible.
            .spawn()
            .map_err(|e| format!("cannot spawn shard worker {i}: {e}"));
        match child {
            Ok(c) => children.push(c),
            Err(e) => {
                kill_all(&mut children);
                return Err(e);
            }
        }
    }

    let out = broker_and_collect(spec, &listener, &mut children, live);
    if out.is_err() {
        kill_all(&mut children);
    } else {
        for c in children.iter_mut() {
            let _ = c.wait();
        }
    }
    let reports = out?;

    if let Some(rec) = telemetry {
        for r in &reports {
            for line in &r.telemetry {
                rec.emit_raw(line.clone());
            }
        }
    }
    let mut outcome = GangOutcome { fingerprint: 0, committed: 0, cross_shard_events: 0, reports };
    for r in &outcome.reports {
        outcome.fingerprint = outcome.fingerprint.wrapping_add(r.fingerprint);
        outcome.committed += r.committed;
        outcome.cross_shard_events += r.cross_shard_events;
    }
    Ok(outcome)
}

/// Accept all workers, relay the peer list, and gather reports. Any
/// worker dying (connection EOF before its report) fails the gang.
/// Snapshot lines arriving before a worker's report go to `live`.
fn broker_and_collect(
    spec: &ShardSpec,
    listener: &TcpListener,
    children: &mut [Child],
    live: Option<&GangAggregator>,
) -> Result<Vec<WorkerReport>, String> {
    listener.set_nonblocking(true).map_err(|e| e.to_string())?;
    // Accept one control connection per worker; poll child liveness so a
    // worker that dies before saying hello doesn't hang the launcher.
    let mut conns: Vec<Option<(BufReader<TcpStream>, TcpStream)>> = Vec::new();
    conns.resize_with(spec.shards, || None);
    let mut addrs: Vec<Option<String>> = vec![None; spec.shards];
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    while conns.iter().any(|c| c.is_none()) {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false).map_err(|e| e.to_string())?;
                let writer = stream.try_clone().map_err(|e| e.to_string())?;
                let mut reader = BufReader::new(stream);
                let mut line = String::new();
                reader.read_line(&mut line).map_err(|e| format!("worker hello: {e}"))?;
                let v: serde::Value = serde_json::from_str(line.trim())
                    .map_err(|e| format!("bad worker hello `{}`: {e}", line.trim()))?;
                let id = v
                    .get("hello")
                    .and_then(|h| h.as_u64())
                    .ok_or_else(|| format!("worker hello without id: {}", line.trim()))?
                    as usize;
                let addr = v
                    .get("addr")
                    .and_then(|a| a.as_str())
                    .ok_or_else(|| format!("worker hello without addr: {}", line.trim()))?;
                if id >= spec.shards || conns[id].is_some() {
                    return Err(format!("unexpected hello from shard {id}"));
                }
                addrs[id] = Some(addr.to_string());
                conns[id] = Some((reader, writer));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                for (i, c) in children.iter_mut().enumerate() {
                    if conns[i].is_none() {
                        if let Ok(Some(status)) = c.try_wait() {
                            return Err(format!(
                                "shard worker {i} exited ({status}) before joining the gang"
                            ));
                        }
                    }
                }
                if std::time::Instant::now() > deadline {
                    return Err("timed out waiting for shard workers to join".to_string());
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => return Err(format!("control accept: {e}")),
        }
    }

    let peer_line = {
        let list: Vec<serde::Value> = addrs
            .iter()
            .map(|a| serde::Value::Str(a.clone().expect("all addrs collected")))
            .collect();
        let v = serde::Value::Object(vec![("peers".to_string(), serde::Value::Array(list))]);
        serde_json::to_string(&v).expect("peers json")
    };
    for c in conns.iter_mut().flatten() {
        write_line(&mut c.1, &peer_line).map_err(|e| format!("sending peer list: {e}"))?;
    }

    // One blocking reader thread per worker: reports arrive in any order,
    // and a dead worker surfaces as EOF on its own connection.
    let results: Vec<Result<WorkerReport, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = conns
            .iter_mut()
            .enumerate()
            .map(|(i, c)| {
                let (reader, _) = c.as_mut().expect("all conns collected");
                scope.spawn(move || -> Result<WorkerReport, String> {
                    // Drain the stream: snapshot lines feed the gang
                    // aggregator, the first non-snapshot line is the
                    // worker's final report.
                    let mut line = String::new();
                    loop {
                        line.clear();
                        let n = reader
                            .read_line(&mut line)
                            .map_err(|e| format!("shard {i}: report read failed: {e}"))?;
                        if n == 0 {
                            return Err(format!("shard {i} died before reporting"));
                        }
                        if let Ok(snap) = serde_json::from_str::<SnapshotRecord>(line.trim()) {
                            if snap.record == "snapshot" {
                                if let Some(agg) = live {
                                    agg.ingest(i as u64, snap);
                                }
                                continue;
                            }
                        }
                        return serde_json::from_str::<WorkerReport>(line.trim())
                            .map_err(|e| format!("shard {i}: bad report: {e}"));
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("report reader panicked")).collect()
    });

    let mut reports = Vec::with_capacity(spec.shards);
    for r in results {
        let r = r?;
        if !r.ok {
            return Err(format!(
                "shard {} failed: {}",
                r.shard,
                r.error.as_deref().unwrap_or("unknown error")
            ));
        }
        reports.push(r);
    }
    reports.sort_by_key(|r| r.shard);
    Ok(reports)
}

// ---------------------------------------------------------------------------
// The PHOLD demonstration model (checkpointable)
// ---------------------------------------------------------------------------

/// PHOLD over explicit-state RNG so the LP is checkpointable
/// byte-for-byte (the workspace `SmallRng` shim keeps its state
/// private). The minimum event delay is [`PHOLD_MIN_DELAY_NS`]; any
/// shard lookahead up to that bound is causally safe.
pub const PHOLD_MIN_DELAY_NS: u64 = 50;

fn xorshift(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

#[derive(Clone)]
pub struct PholdLp {
    rng: u64,
    n_lps: u32,
    hits: u64,
    checksum: u64,
    horizon_ns: u64,
}

impl Lp for PholdLp {
    type Event = u64;
    fn handle(&mut self, ev: &Envelope<u64>, ctx: &mut Ctx<'_, u64>) {
        self.hits += 1;
        self.checksum = self
            .checksum
            .wrapping_mul(6364136223846793005)
            .wrapping_add(ev.payload ^ ev.recv_time.as_ns());
        if ctx.now().as_ns() < self.horizon_ns {
            let dst = (xorshift(&mut self.rng) % self.n_lps as u64) as u32;
            let delay = PHOLD_MIN_DELAY_NS + xorshift(&mut self.rng) % 451;
            ctx.send(dst, SimDuration::from_ns(delay), self.checksum);
        }
    }
}

/// Wire + snapshot codec for [`PholdLp`].
pub struct PholdCodec;

impl EventCodec<u64> for PholdCodec {
    fn encode(&self, ev: &u64, out: &mut Vec<u8>) {
        put_u64(out, *ev);
    }
    fn decode(&self, r: &mut ByteReader<'_>) -> Result<u64, ShardError> {
        r.u64()
    }
}

impl ShardCodec<PholdLp> for PholdCodec {
    fn save_lp(&self, lp: &PholdLp, out: &mut Vec<u8>) {
        put_u64(out, lp.rng);
        put_u64(out, lp.hits);
        put_u64(out, lp.checksum);
    }
    fn load_lp(&self, lp: &mut PholdLp, r: &mut ByteReader<'_>) -> Result<(), ShardError> {
        lp.rng = r.u64()?;
        lp.hits = r.u64()?;
        lp.checksum = r.u64()?;
        Ok(())
    }
}

/// Parameters of a PHOLD run; every shard builds the identical model
/// from these.
#[derive(Clone, Copy, Debug)]
pub struct PholdParams {
    pub lps: u32,
    pub horizon_ns: u64,
    pub seed: u64,
    pub queue: QueueKind,
}

pub fn build_phold(p: &PholdParams) -> Simulation<PholdLp> {
    let lps = (0..p.lps)
        .map(|i| PholdLp {
            rng: (p.seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(i as u64)) | 1,
            n_lps: p.lps,
            hits: 0,
            checksum: 0,
            horizon_ns: p.horizon_ns,
        })
        .collect();
    let mut sim = Simulation::with_queue(lps, SimDuration::from_ns(1), p.queue);
    for i in 0..p.lps {
        sim.schedule(i, SimTime::from_ns(i as u64 % 7), i as u64);
    }
    sim
}

/// Order-independent digest of the PHOLD LPs shard `me` of `n_shards`
/// owns (all of them for `n_shards == 1`): per-shard values sum to the
/// sequential fingerprint, exactly like [`codes::CodesSim::shard_fingerprint`].
pub fn phold_fingerprint(sim: &Simulation<PholdLp>, me: usize, n_shards: usize) -> u64 {
    let shard_of = shard_owner_map(None, sim.lps().len(), n_shards);
    sim.lps().iter().enumerate().filter(|(g, _)| shard_of[*g] == me as u32).fold(
        0u64,
        |acc, (g, lp)| {
            let mut buf = Vec::with_capacity(32);
            put_u64(&mut buf, g as u64);
            put_u64(&mut buf, lp.hits);
            put_u64(&mut buf, lp.checksum);
            acc.wrapping_add(fnv1a(&buf))
        },
    )
}

/// Run one PHOLD shard inside a worker process: form the TCP mesh, run,
/// fingerprint the owned slice.
#[allow(clippy::too_many_arguments)]
pub fn phold_worker_run(
    me: usize,
    n: usize,
    listener: TcpListener,
    peers: &[SocketAddr],
    params: &PholdParams,
    spec: &ShardSpec,
    checkpoint: Option<CheckpointSpec>,
    restore: Option<PathBuf>,
    until: SimTime,
    telemetry: Option<Arc<telemetry::Recorder>>,
    live: Option<Arc<telemetry::live::MetricsRegistry>>,
) -> Result<(u64, RunStats), ShardError> {
    let mut transport = TcpTransport::mesh(me, listener, peers, Arc::new(PholdCodec))?;
    let mut sim = build_phold(params);
    sim.set_telemetry(telemetry);
    sim.set_live(live);
    let fault = fault_kill_after_ckpt().filter(|&f| f == me);
    let die = |_gvt: u64| die_hard();
    let opts = ShardRun {
        threads: spec.threads,
        window: SimDuration::from_ns(spec.lookahead_ns),
        checkpoint,
        restore,
        codec: Some(&PholdCodec),
        on_checkpoint: if fault.is_some() { Some(&die) } else { None },
    };
    let stats = sim.run_sharded(&mut transport, opts, until)?;
    Ok((phold_fingerprint(&sim, me, n), stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_spec_parses_and_rejects() {
        assert_eq!(
            ShardSpec::parse("shard:2:4:500"),
            Some(Ok(ShardSpec { shards: 2, threads: 4, lookahead_ns: 500 }))
        );
        assert!(ShardSpec::parse("par:2:500").is_none());
        assert!(ShardSpec::parse("seq").is_none());
        for bad in ["shard:2:4", "shard:0:1:50", "shard:2:0:50", "shard:2:2:0", "shard:a:b:c"] {
            assert!(matches!(ShardSpec::parse(bad), Some(Err(_))), "{bad} accepted");
        }
    }

    #[test]
    fn worker_report_round_trips_through_json() {
        let r = WorkerReport {
            shard: 3,
            ok: true,
            error: None,
            fingerprint: u64::MAX - 7,
            committed: 123,
            cross_shard_events: 45,
            rounds: 6,
            telemetry: vec!["{\"type\":\"scheduler\"}".to_string()],
        };
        let json = serde_json::to_string(&r).unwrap();
        let back: WorkerReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.shard, 3);
        assert!(back.ok);
        assert_eq!(back.fingerprint, u64::MAX - 7);
        assert_eq!(back.telemetry.len(), 1);
    }

    #[test]
    fn phold_shard_fingerprints_sum_to_the_whole() {
        let p = PholdParams { lps: 16, horizon_ns: 0, seed: 9, queue: QueueKind::Ladder };
        let mut sim = build_phold(&p);
        sim.run_sequential(SimTime::MAX);
        let whole = phold_fingerprint(&sim, 0, 1);
        for n in [2usize, 3, 4] {
            let sum = (0..n).fold(0u64, |acc, s| acc.wrapping_add(phold_fingerprint(&sim, s, n)));
            assert_eq!(sum, whole, "{n} shards");
        }
    }
}
