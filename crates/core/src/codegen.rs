//! C-skeleton pretty-printer.
//!
//! Union's translator inherits coNCePTuaL's C backend and emits a C file
//! whose communication calls are rewritten to `UNION_MPI_X` (paper Fig 5).
//! Our bytecode *is* the skeleton, but for inspection, diffing, and
//! documentation parity we can render the equivalent C. This output is
//! illustrative — it is not compiled.

use crate::ir::{Instr, LeafOp, MsgMode, ReduceTarget, Sel, Skeleton};
use conceptual::{BinOp, Builtin, Cond, Expr, RelOp};
use std::fmt::Write;

/// Render a skeleton as a Fig-5-style C file.
pub fn render_c(skel: &Skeleton) -> String {
    let mut out = String::new();
    let name = sanitize(&skel.name);
    let _ = writeln!(out, "/* Union skeleton generated from {}.ncptl */", skel.name);
    let _ = writeln!(out, "#include \"union.h\"\n");
    let _ = writeln!(out, "static int {name}_main(int argc, char *argv[]) {{");
    let _ = writeln!(out, "  UNION_MPI_Init(&argc, &argv);");
    let _ = writeln!(out, "  int num_tasks = union_num_tasks();");
    let _ = writeln!(out, "  int self = union_rank();");
    for p in &skel.params {
        let _ = writeln!(
            out,
            "  long {} = union_arg(argc, argv, \"{}\", {}); /* {} */",
            p.name, p.long_flag, p.default, p.description
        );
    }
    // The translator emits exactly two jump shapes: `Branch{else_pc}` with
    // no else (close the brace at else_pc) and `Branch{else_pc}` whose
    // then-arm ends in `Jump{after}` (render `} else {` at the Jump and
    // close at `after`). Precompute both so braces always balance.
    let mut closes: Vec<usize> = vec![0; skel.code.len() + 1];
    let mut else_markers: Vec<bool> = vec![false; skel.code.len()];
    for instr in skel.code.iter() {
        if let Instr::Branch { else_pc, .. } = instr {
            if *else_pc > 0 {
                if let Some(Instr::Jump { pc: after }) = skel.code.get(*else_pc - 1) {
                    else_markers[else_pc - 1] = true;
                    closes[*after] += 1;
                    continue;
                }
            }
            closes[*else_pc] += 1;
        }
    }
    let mut depth = 1;
    let mut loop_ids = 0usize;
    for (pc, instr) in skel.code.iter().enumerate() {
        for _ in 0..closes[pc] {
            depth -= 1;
            let _ = writeln!(out, "{}}}", "  ".repeat(depth));
        }
        let pad = "  ".repeat(depth);
        match instr {
            Instr::Leaf(op) => {
                let _ = writeln!(out, "{pad}{}", leaf_c(op));
            }
            Instr::LoopStart { reps, var, first, .. } => {
                let i = match var {
                    Some(v) => v.clone(),
                    None => {
                        loop_ids += 1;
                        format!("_i{loop_ids}")
                    }
                };
                let _ = writeln!(
                    out,
                    "{pad}for (long {i} = {f}; {i} < {f} + ({r}); {i}++) {{",
                    f = expr_c(first),
                    r = expr_c(reps),
                );
                depth += 1;
            }
            Instr::LoopEnd { .. } => {
                depth -= 1;
                let _ = writeln!(out, "{}}}", "  ".repeat(depth));
            }
            Instr::Branch { cond, .. } => {
                let _ = writeln!(out, "{pad}if ({}) {{", cond_c(cond));
                depth += 1;
            }
            Instr::Jump { .. } => {
                if else_markers[pc] {
                    let _ = writeln!(out, "{}}} else {{", "  ".repeat(depth - 1));
                }
            }
            Instr::Bind { var, value } => {
                let _ = writeln!(out, "{pad}{{ long {var} = {};", expr_c(value));
                depth += 1;
            }
            Instr::Unbind { .. } => {
                depth -= 1;
                let _ = writeln!(out, "{}}}", "  ".repeat(depth));
            }
        }
    }
    for _ in 0..closes[skel.code.len()] {
        depth -= 1;
        let _ = writeln!(out, "{}}}", "  ".repeat(depth));
    }
    let _ = writeln!(out, "  UNION_MPI_Finalize();");
    let _ = writeln!(out, "  return 0;");
    let _ = writeln!(out, "}}\n");
    let _ = writeln!(out, "struct union_skeleton_model {name}_model = {{");
    let _ = writeln!(out, "  .program_name = \"{}\",", skel.name);
    let _ = writeln!(out, "  .conceptual_main = {name}_main,");
    let _ = writeln!(out, "}};");
    out
}

fn sanitize(name: &str) -> String {
    name.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect()
}

fn leaf_c(op: &LeafOp) -> String {
    match op {
        LeafOp::Message { src, dst, count, bytes, mode } => {
            let call = match mode {
                MsgMode::Async => "UNION_MPI_Isend",
                MsgMode::Sync | MsgMode::SendIrecv => "UNION_MPI_Send",
            };
            format!(
                "/* {src} -> {dst} */ if (union_sel_src()) {call}(NULL, {b}, {d}); \
                 if (union_sel_dst()) UNION_MPI_{r}(NULL, {b}, {s}); /* x{c} */",
                src = sel_c(src),
                dst = sel_c(dst),
                b = expr_c(bytes),
                d = sel_c(dst),
                s = sel_c(src),
                c = expr_c(count),
                r = match mode {
                    MsgMode::Async | MsgMode::SendIrecv => "Irecv",
                    MsgMode::Sync => "Recv",
                },
            )
        }
        LeafOp::Multicast { root, bytes } => {
            format!("UNION_MPI_Bcast(NULL, {}, {}, UNION_COMM_WORLD);", expr_c(bytes), expr_c(root))
        }
        LeafOp::Reduce { bytes, target } => match target {
            ReduceTarget::AllTasks => {
                format!("UNION_MPI_Allreduce(NULL, NULL, {}, UNION_COMM_WORLD);", expr_c(bytes))
            }
            ReduceTarget::Root(root) => format!(
                "UNION_MPI_Reduce(NULL, NULL, {}, {}, UNION_COMM_WORLD);",
                expr_c(bytes),
                expr_c(root)
            ),
        },
        LeafOp::Barrier => "UNION_MPI_Barrier(UNION_COMM_WORLD);".to_string(),
        LeafOp::Compute { ns, .. } => format!("UNION_Compute({});", expr_c(ns)),
        LeafOp::Sleep { ns, .. } => format!("UNION_Sleep({});", expr_c(ns)),
        LeafOp::Await { .. } => "UNION_MPI_Waitall();".to_string(),
        LeafOp::ResetCounters { .. } => "union_reset_counters();".to_string(),
        LeafOp::LogCounters { .. } => "union_log_counters();".to_string(),
        LeafOp::Aggregates { .. } => "union_compute_aggregates();".to_string(),
    }
}

fn sel_c(sel: &Sel) -> String {
    match sel {
        Sel::All(None) => "all".into(),
        Sel::All(Some(v)) => format!("all:{v}"),
        Sel::Single(e) => expr_c(e),
        Sel::SuchThat(v, c) => format!("{{{v} | {}}}", cond_c(c)),
        Sel::AllOthers => "others".into(),
        Sel::RandomOther => "random".into(),
    }
}

fn expr_c(e: &Expr) -> String {
    match e {
        Expr::Int(v) => v.to_string(),
        Expr::Var(v) => v.clone(),
        Expr::Neg(a) => format!("-({})", expr_c(a)),
        Expr::Bin(op, a, b) => {
            let o = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Mod => "%",
                BinOp::Shl => "<<",
                BinOp::Shr => ">>",
                BinOp::Pow => return format!("union_pow({}, {})", expr_c(a), expr_c(b)),
            };
            format!("({} {o} {})", expr_c(a), expr_c(b))
        }
        Expr::Call(f, args) => {
            let name = match f {
                Builtin::Abs => "labs",
                Builtin::Min => "union_min",
                Builtin::Max => "union_max",
                Builtin::Sqrt => "union_isqrt",
                Builtin::Cbrt => "union_icbrt",
                Builtin::Log2 => "union_ilog2",
                Builtin::MeshNeighbor => "ncptl_mesh_neighbor",
                Builtin::TorusNeighbor => "ncptl_torus_neighbor",
                Builtin::MeshCoord => "ncptl_mesh_coord",
                Builtin::TreeParent => "ncptl_tree_parent",
                Builtin::TreeChild => "ncptl_tree_child",
                Builtin::KnomialParent => "ncptl_knomial_parent",
                Builtin::KnomialChild => "ncptl_knomial_child",
                Builtin::KnomialChildren => "ncptl_knomial_children",
            };
            let args: Vec<String> = args.iter().map(expr_c).collect();
            format!("{name}({})", args.join(", "))
        }
        Expr::IfElse(c, a, b) => {
            format!("({} ? {} : {})", cond_c(c), expr_c(a), expr_c(b))
        }
    }
}

fn cond_c(c: &Cond) -> String {
    match c {
        Cond::True => "1".into(),
        Cond::Not(a) => format!("!({})", cond_c(a)),
        Cond::And(a, b) => format!("({} && {})", cond_c(a), cond_c(b)),
        Cond::Or(a, b) => format!("({} || {})", cond_c(a), cond_c(b)),
        Cond::Rel(op, a, b) => {
            let o = match op {
                RelOp::Eq => "==",
                RelOp::Ne => "!=",
                RelOp::Lt => "<",
                RelOp::Le => "<=",
                RelOp::Gt => ">",
                RelOp::Ge => ">=",
                RelOp::Divides => {
                    return format!("(({b}) % ({a}) == 0)", a = expr_c(a), b = expr_c(b))
                }
            };
            format!("({} {o} {})", expr_c(a), expr_c(b))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate::translate_source;

    #[test]
    fn renders_fig5_shape() {
        let skel = translate_source(
            "reps is \"r\" and comes from \"--reps\" with default 1000. \
             For reps repetitions { \
               task 0 resets its counters then \
               task 0 sends a 1024 byte message to task 1 then \
               task 1 sends a 1024 byte message to task 0 }.",
            "pingpong",
        )
        .unwrap();
        let c = render_c(&skel);
        assert!(c.contains("UNION_MPI_Init"), "{c}");
        assert!(c.contains("UNION_MPI_Send"), "{c}");
        assert!(c.contains("UNION_MPI_Finalize"), "{c}");
        assert!(c.contains("struct union_skeleton_model pingpong_model"), "{c}");
        assert!(c.contains(".program_name = \"pingpong\""), "{c}");
        assert!(c.contains(".conceptual_main = pingpong_main"), "{c}");
        assert!(c.contains("for (long"), "{c}");
        // Balanced braces.
        assert_eq!(c.matches('{').count(), c.matches('}').count(), "{c}");
    }

    #[test]
    fn renders_collectives() {
        let skel = translate_source(
            "all tasks reduce a 8 byte message to all tasks then \
             task 0 multicasts a 25 byte message to all other tasks.",
            "coll",
        )
        .unwrap();
        let c = render_c(&skel);
        assert!(c.contains("UNION_MPI_Allreduce"));
        assert!(c.contains("UNION_MPI_Bcast"));
    }

    #[test]
    fn if_else_braces_balance() {
        let skel = translate_source(
            "if num_tasks > 2 then all tasks synchronize otherwise task 0 computes \
             for 1 microseconds then if num_tasks > 4 then all tasks synchronize.",
            "ifs",
        )
        .unwrap();
        let c = render_c(&skel);
        assert_eq!(c.matches('{').count(), c.matches('}').count(), "{c}");
        assert!(c.contains("} else {"), "{c}");
    }

    #[test]
    fn renders_compute_as_union_compute() {
        let skel = translate_source("all tasks compute for 129 milliseconds.", "c").unwrap();
        let c = render_c(&skel);
        assert!(c.contains("UNION_Compute((129 * 1000000))"), "{c}");
    }
}
