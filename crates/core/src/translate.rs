//! The Union **translator**: coNCePTuaL AST → skeleton bytecode.
//!
//! This is the automatic-skeletonization step of the paper (§III-C):
//!
//! 1. *initialization* — a [`Skeleton`] object is created carrying the
//!    program name and the compiled entry point (here: bytecode instead of
//!    a C function pointer);
//! 2. *skeletonization* — communication buffers are dropped (the IR keeps
//!    only byte counts) and computation collapses to `Compute` delay ops;
//! 3. *interception* — every communication statement lowers to
//!    `UNION_MPI_X` operations executed by the event generator.

use crate::ir::{Instr, LeafOp, MsgMode, ReduceTarget, Sel, Skeleton};
use conceptual::ast::{Stmt, TaskSel};
use conceptual::{CompileError, Expr, Program};

/// Translate a compiled coNCePTuaL program into a Union skeleton.
pub fn translate(prog: &Program, name: &str) -> Result<Skeleton, CompileError> {
    let mut code = Vec::new();
    for s in &prog.stmts {
        lower_stmt(s, &mut code)?;
    }
    let skel = Skeleton { name: name.to_string(), params: prog.params.clone(), code };
    skel.validate().map_err(|e| CompileError::new(Default::default(), e))?;
    Ok(skel)
}

/// Parse, check, and translate source text in one step.
pub fn translate_source(src: &str, name: &str) -> Result<Skeleton, CompileError> {
    let prog = conceptual::compile(src)?;
    translate(&prog, name)
}

fn err<T>(msg: impl Into<String>) -> Result<T, CompileError> {
    Err(CompileError::new(Default::default(), msg))
}

fn sel_of(t: &TaskSel) -> Sel {
    match t {
        TaskSel::All(v) => Sel::All(v.clone()),
        TaskSel::Single(e) => Sel::Single(e.clone()),
        TaskSel::SuchThat(v, c) => Sel::SuchThat(v.clone(), c.clone()),
        TaskSel::AllOthers => Sel::AllOthers,
    }
}

fn require_all(t: &TaskSel, what: &str) -> Result<(), CompileError> {
    if matches!(t, TaskSel::All(_)) {
        Ok(())
    } else {
        err(format!(
            "{what} over task subsets requires sub-communicators, which Union \
             does not model; use `all tasks`"
        ))
    }
}

fn lower_stmt(stmt: &Stmt, code: &mut Vec<Instr>) -> Result<(), CompileError> {
    match stmt {
        Stmt::Seq(parts) => {
            for p in parts {
                lower_stmt(p, code)?;
            }
        }
        Stmt::For { reps, sync, body } => {
            let start = code.len();
            code.push(Instr::LoopStart {
                reps: reps.clone(),
                var: None,
                first: Expr::lit(0),
                end: usize::MAX,
            });
            lower_stmt(body, code)?;
            if *sync {
                code.push(Instr::Leaf(LeafOp::Barrier));
            }
            code.push(Instr::LoopEnd { start });
            let end = code.len() - 1;
            let Instr::LoopStart { end: e, .. } = &mut code[start] else { unreachable!() };
            *e = end;
        }
        Stmt::ForEach { var, from, to, body } => {
            let start = code.len();
            // reps = to - from + 1 (evaluated once at loop entry).
            let reps = to.clone().sub(from.clone()).add(Expr::lit(1));
            code.push(Instr::LoopStart {
                reps,
                var: Some(var.clone()),
                first: from.clone(),
                end: usize::MAX,
            });
            lower_stmt(body, code)?;
            code.push(Instr::LoopEnd { start });
            let end = code.len() - 1;
            let Instr::LoopStart { end: e, .. } = &mut code[start] else { unreachable!() };
            *e = end;
        }
        Stmt::If { cond, then, els } => {
            let branch_at = code.len();
            code.push(Instr::Branch { cond: cond.clone(), else_pc: usize::MAX });
            lower_stmt(then, code)?;
            match els {
                None => {
                    let else_pc = code.len();
                    let Instr::Branch { else_pc: e, .. } = &mut code[branch_at] else {
                        unreachable!()
                    };
                    *e = else_pc;
                }
                Some(els) => {
                    let jump_at = code.len();
                    code.push(Instr::Jump { pc: usize::MAX });
                    let else_pc = code.len();
                    lower_stmt(els, code)?;
                    let after = code.len();
                    let Instr::Branch { else_pc: e, .. } = &mut code[branch_at] else {
                        unreachable!()
                    };
                    *e = else_pc;
                    let Instr::Jump { pc } = &mut code[jump_at] else { unreachable!() };
                    *pc = after;
                }
            }
        }
        Stmt::Let { var, value, body } => {
            code.push(Instr::Bind { var: var.clone(), value: value.clone() });
            lower_stmt(body, code)?;
            code.push(Instr::Unbind { var: var.clone() });
        }
        Stmt::Send { src, count, size, dst, attrs } => {
            if matches!(src, TaskSel::AllOthers) {
                return err("`all other tasks` cannot send");
            }
            code.push(Instr::Leaf(LeafOp::Message {
                src: sel_of(src),
                dst: sel_of(dst),
                count: count.clone(),
                bytes: size.clone(),
                mode: if attrs.nonblocking { MsgMode::Async } else { MsgMode::Sync },
            }));
        }
        Stmt::Receive { .. } => {
            return err("explicit `receives` clauses are not needed: Union generates the \
                 matching receive for every send (implicit-receive semantics)");
        }
        Stmt::Multicast { src, size, dst } => {
            let TaskSel::Single(root) = src else {
                return err("multicast requires a single root task");
            };
            if !matches!(dst, TaskSel::All(_) | TaskSel::AllOthers) {
                return err("multicast target must be `all tasks` or `all other tasks`");
            }
            code.push(Instr::Leaf(LeafOp::Multicast { root: root.clone(), bytes: size.clone() }));
        }
        Stmt::Reduce { tasks, size, target } => {
            require_all(tasks, "reduction")?;
            let target = match target {
                TaskSel::All(_) => ReduceTarget::AllTasks,
                TaskSel::Single(e) => ReduceTarget::Root(e.clone()),
                _ => return err("reduce target must be `all tasks` or a single task"),
            };
            code.push(Instr::Leaf(LeafOp::Reduce { bytes: size.clone(), target }));
        }
        Stmt::Sync(tasks) => {
            require_all(tasks, "synchronization")?;
            code.push(Instr::Leaf(LeafOp::Barrier));
        }
        Stmt::Compute { tasks, amount, unit } => {
            code.push(Instr::Leaf(LeafOp::Compute {
                tasks: sel_of(tasks),
                ns: amount.clone().mul(Expr::lit(unit.ns())),
            }));
        }
        Stmt::Sleep { tasks, amount, unit } => {
            code.push(Instr::Leaf(LeafOp::Sleep {
                tasks: sel_of(tasks),
                ns: amount.clone().mul(Expr::lit(unit.ns())),
            }));
        }
        Stmt::AwaitCompletions(tasks) => {
            code.push(Instr::Leaf(LeafOp::Await { tasks: sel_of(tasks) }));
        }
        Stmt::Reset(tasks) => {
            code.push(Instr::Leaf(LeafOp::ResetCounters { tasks: sel_of(tasks) }));
        }
        Stmt::Log(tasks, _entries) => {
            // Skeletonization: the logged expressions are dropped; the event
            // is kept so control flow matches the application exactly.
            code.push(Instr::Leaf(LeafOp::LogCounters { tasks: sel_of(tasks) }));
        }
        Stmt::ComputeAggregates(tasks) => {
            code.push(Instr::Leaf(LeafOp::Aggregates { tasks: sel_of(tasks) }));
        }
        Stmt::Touch(tasks, _size) => {
            // Memory touching has no network effect; model as zero-cost
            // compute to preserve control flow.
            code.push(Instr::Leaf(LeafOp::Compute { tasks: sel_of(tasks), ns: Expr::lit(0) }));
        }
        Stmt::Empty => {}
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn translates_ping_pong_shape() {
        let src = r#"
            reps is "r" and comes from "--reps" with default 2.
            For reps repetitions {
              task 0 resets its counters then
              task 0 sends a 1024 byte message to task 1 then
              task 1 sends a 1024 byte message to task 0
            }
            then task 0 computes aggregates.
        "#;
        let skel = translate_source(src, "pingpong").unwrap();
        assert_eq!(skel.name, "pingpong");
        assert_eq!(skel.params.len(), 1);
        // LoopStart, Reset, Msg, Msg, LoopEnd, Aggregates
        assert_eq!(skel.code.len(), 6);
        assert!(matches!(skel.code[0], Instr::LoopStart { .. }));
        assert!(matches!(skel.code[4], Instr::LoopEnd { .. }));
        assert!(matches!(skel.code[5], Instr::Leaf(LeafOp::Aggregates { .. })));
    }

    #[test]
    fn sync_loop_adds_barrier() {
        let skel = translate_source(
            "for 3 repetitions plus a synchronization task 0 sends a 4 byte message to task 1.",
            "t",
        )
        .unwrap();
        assert!(matches!(skel.code[2], Instr::Leaf(LeafOp::Barrier)));
    }

    #[test]
    fn if_else_targets() {
        let skel = translate_source(
            "if num_tasks > 2 then all tasks synchronize otherwise task 0 computes for 1 microseconds.",
            "t",
        )
        .unwrap();
        let Instr::Branch { else_pc, .. } = &skel.code[0] else { panic!() };
        assert_eq!(*else_pc, 3);
        let Instr::Jump { pc } = &skel.code[2] else { panic!() };
        assert_eq!(*pc, 4);
    }

    #[test]
    fn rejects_subset_collectives() {
        assert!(translate_source("task 0 synchronizes.", "t").is_err());
        assert!(translate_source(
            "tasks t such that t < 4 reduce a 8 byte message to task 0.",
            "t"
        )
        .is_err());
    }

    #[test]
    fn rejects_explicit_receives() {
        assert!(translate_source("task 1 receives a 4 byte message from task 0.", "t").is_err());
    }

    #[test]
    fn multicast_requires_single_root() {
        assert!(
            translate_source("all tasks multicast a 4 byte message to all tasks.", "t").is_err()
        );
        assert!(translate_source("task 0 multicasts a 4 byte message to task 1.", "t").is_err());
    }

    #[test]
    fn compute_units_scale_to_ns() {
        let skel = translate_source("all tasks compute for 129 milliseconds.", "t").unwrap();
        let Instr::Leaf(LeafOp::Compute { ns, .. }) = &skel.code[0] else { panic!() };
        assert_eq!(ns, &Expr::lit(129).mul(Expr::lit(1_000_000)));
    }
}
