//! The skeleton registry — the Rust analogue of Union's global list of
//! `union_skeleton_model` objects (paper Fig 4). Workload crates register
//! their skeletons here; the simulation assembly looks them up by name and
//! instantiates them per job.

use crate::ir::Skeleton;
use crate::vm::{RankVm, SkeletonInstance};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A pre-instantiation check installed by the embedder (the harness
/// installs `union-lint`'s skeleton analysis). Returning `Err` rejects
/// the skeleton with the rendered findings; `union-core` stays free of a
/// dependency on the linter itself.
pub type LintHook = Arc<dyn Fn(&Skeleton, u32, &[&str]) -> Result<(), String> + Send + Sync>;

/// A registry of available skeleton programs.
#[derive(Default)]
pub struct SkeletonRegistry {
    models: BTreeMap<String, Skeleton>,
    linter: Option<LintHook>,
    allow_lint: bool,
}

impl SkeletonRegistry {
    pub fn new() -> SkeletonRegistry {
        SkeletonRegistry::default()
    }

    /// Install a lint hook: every `instantiate` (and thus `spawn_job`)
    /// runs it against the skeleton at the requested configuration and
    /// fails on Error-severity findings.
    pub fn set_linter(&mut self, hook: LintHook) {
        self.linter = Some(hook);
    }

    /// Downgrade lint rejections to pass-through (the `--allow-lint`
    /// escape hatch: the findings are still computed, but instantiation
    /// proceeds).
    pub fn set_allow_lint(&mut self, allow: bool) {
        self.allow_lint = allow;
    }

    /// Register a skeleton under its program name. Re-registering a name
    /// replaces the previous model (mirrors recompiling a skeleton).
    pub fn register(&mut self, skel: Skeleton) {
        self.models.insert(skel.name.clone(), skel);
    }

    /// Names of all registered skeletons, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.models.keys().map(|s| s.as_str()).collect()
    }

    pub fn get(&self, name: &str) -> Option<&Skeleton> {
        self.models.get(name)
    }

    /// Bind a registered skeleton to a job: `num_tasks` ranks with the
    /// given command-line overrides.
    pub fn instantiate(
        &self,
        name: &str,
        num_tasks: u32,
        args: &[&str],
    ) -> Result<Arc<SkeletonInstance>, String> {
        let skel = self
            .models
            .get(name)
            .ok_or_else(|| format!("unknown skeleton `{name}` (registered: {:?})", self.names()))?;
        if let Some(linter) = &self.linter {
            if let Err(findings) = linter(skel, num_tasks, args) {
                if !self.allow_lint {
                    return Err(format!(
                        "skeleton `{name}` rejected by lint (use --allow-lint to override):\n\
                         {findings}"
                    ));
                }
            }
        }
        SkeletonInstance::new(skel, num_tasks, args)
    }

    /// Instantiate and build all rank VMs for a job in one call.
    pub fn spawn_job(
        &self,
        name: &str,
        num_tasks: u32,
        args: &[&str],
        seed: u64,
    ) -> Result<Vec<RankVm>, String> {
        let inst = self.instantiate(name, num_tasks, args)?;
        Ok((0..num_tasks).map(|r| RankVm::new(inst.clone(), r, seed)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate::translate_source;

    #[test]
    fn register_lookup_instantiate() {
        let mut reg = SkeletonRegistry::new();
        reg.register(translate_source("task 0 sends a 4 byte message to task 1.", "a").unwrap());
        reg.register(translate_source("all tasks synchronize.", "b").unwrap());
        assert_eq!(reg.names(), vec!["a", "b"]);
        assert!(reg.get("a").is_some());
        assert!(reg.instantiate("a", 2, &[]).is_ok());
        assert!(reg.instantiate("nope", 2, &[]).is_err());
        let vms = reg.spawn_job("b", 3, &[], 1).unwrap();
        assert_eq!(vms.len(), 3);
    }

    #[test]
    fn lint_hook_rejects_and_allow_lint_overrides() {
        let mut reg = SkeletonRegistry::new();
        reg.register(translate_source("task 0 sends a 4 byte message to task 1.", "a").unwrap());
        // A hook that rejects everything instantiated with > 2 ranks.
        reg.set_linter(Arc::new(|_skel, n, _args| {
            if n > 2 {
                Err("error[fake]: too many ranks".into())
            } else {
                Ok(())
            }
        }));
        assert!(reg.instantiate("a", 2, &[]).is_ok());
        let err = reg.instantiate("a", 3, &[]).err().unwrap();
        assert!(err.contains("rejected by lint"), "{err}");
        assert!(err.contains("error[fake]"), "{err}");
        reg.set_allow_lint(true);
        assert!(reg.instantiate("a", 3, &[]).is_ok(), "--allow-lint must override");
    }

    #[test]
    fn reregistering_replaces() {
        let mut reg = SkeletonRegistry::new();
        reg.register(translate_source("all tasks synchronize.", "x").unwrap());
        let v1_len = reg.get("x").unwrap().code.len();
        reg.register(
            translate_source("all tasks synchronize then all tasks synchronize.", "x").unwrap(),
        );
        assert!(reg.get("x").unwrap().code.len() > v1_len);
    }
}
