//! The skeleton registry — the Rust analogue of Union's global list of
//! `union_skeleton_model` objects (paper Fig 4). Workload crates register
//! their skeletons here; the simulation assembly looks them up by name and
//! instantiates them per job.

use crate::ir::Skeleton;
use crate::vm::{RankVm, SkeletonInstance};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A registry of available skeleton programs.
#[derive(Default)]
pub struct SkeletonRegistry {
    models: BTreeMap<String, Skeleton>,
}

impl SkeletonRegistry {
    pub fn new() -> SkeletonRegistry {
        SkeletonRegistry::default()
    }

    /// Register a skeleton under its program name. Re-registering a name
    /// replaces the previous model (mirrors recompiling a skeleton).
    pub fn register(&mut self, skel: Skeleton) {
        self.models.insert(skel.name.clone(), skel);
    }

    /// Names of all registered skeletons, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.models.keys().map(|s| s.as_str()).collect()
    }

    pub fn get(&self, name: &str) -> Option<&Skeleton> {
        self.models.get(name)
    }

    /// Bind a registered skeleton to a job: `num_tasks` ranks with the
    /// given command-line overrides.
    pub fn instantiate(
        &self,
        name: &str,
        num_tasks: u32,
        args: &[&str],
    ) -> Result<Arc<SkeletonInstance>, String> {
        let skel = self
            .models
            .get(name)
            .ok_or_else(|| format!("unknown skeleton `{name}` (registered: {:?})", self.names()))?;
        SkeletonInstance::new(skel, num_tasks, args)
    }

    /// Instantiate and build all rank VMs for a job in one call.
    pub fn spawn_job(
        &self,
        name: &str,
        num_tasks: u32,
        args: &[&str],
        seed: u64,
    ) -> Result<Vec<RankVm>, String> {
        let inst = self.instantiate(name, num_tasks, args)?;
        Ok((0..num_tasks).map(|r| RankVm::new(inst.clone(), r, seed)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate::translate_source;

    #[test]
    fn register_lookup_instantiate() {
        let mut reg = SkeletonRegistry::new();
        reg.register(
            translate_source("task 0 sends a 4 byte message to task 1.", "a").unwrap(),
        );
        reg.register(
            translate_source("all tasks synchronize.", "b").unwrap(),
        );
        assert_eq!(reg.names(), vec!["a", "b"]);
        assert!(reg.get("a").is_some());
        assert!(reg.instantiate("a", 2, &[]).is_ok());
        assert!(reg.instantiate("nope", 2, &[]).is_err());
        let vms = reg.spawn_job("b", 3, &[], 1).unwrap();
        assert_eq!(vms.len(), 3);
    }

    #[test]
    fn reregistering_replaces() {
        let mut reg = SkeletonRegistry::new();
        reg.register(translate_source("all tasks synchronize.", "x").unwrap());
        let v1_len = reg.get("x").unwrap().code.len();
        reg.register(
            translate_source(
                "all tasks synchronize then all tasks synchronize.",
                "x",
            )
            .unwrap(),
        );
        assert!(reg.get("x").unwrap().code.len() > v1_len);
    }
}
