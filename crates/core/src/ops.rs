//! The Union message-passing interface (`UNION_MPI_X` in the paper).
//!
//! The event generator declares these operations; the simulator-side
//! workload module (crate `mpi-sim`) implements them, emitting simulation
//! events in CODES fashion. A validation executor (crate
//! `union-core::validate`) implements them as instantaneous bookkeeping.

use serde::{Deserialize, Serialize};

/// A single MPI-level operation emitted by a rank's skeleton.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum MpiOp {
    /// `UNION_MPI_Init` — emitted exactly once, before anything else.
    Init,
    /// Nonblocking send; completes at the matching semantics of the
    /// executor (eager or rendezvous). Tracked until the next `WaitAll`.
    Isend { dst: u32, bytes: u64, tag: u32 },
    /// Blocking send: the rank does not advance until the send completes.
    Send { dst: u32, bytes: u64, tag: u32 },
    /// Nonblocking receive.
    Irecv { src: u32, bytes: u64, tag: u32 },
    /// Blocking receive.
    Recv { src: u32, bytes: u64, tag: u32 },
    /// Wait for every outstanding nonblocking operation of this rank.
    WaitAll,
    /// Blocking allreduce over all ranks of the job.
    Allreduce { bytes: u64 },
    /// Blocking rooted reduce.
    Reduce { root: u32, bytes: u64 },
    /// Blocking broadcast.
    Bcast { root: u32, bytes: u64 },
    /// Barrier over all ranks of the job.
    Barrier,
    /// Local computation delay (`UNION_Compute`).
    Compute { ns: u64 },
    /// One-sided synthetic send: delivered without a matching receive
    /// (CODES synthetic-workload style; used by uniform-random traffic).
    SyntheticSend { dst: u32, bytes: u64 },
    /// Counter reset — instantaneous.
    ResetCounters,
    /// Counter log — instantaneous.
    LogCounters,
    /// Statistics aggregation — instantaneous.
    Aggregates,
    /// `UNION_MPI_Finalize` — emitted exactly once, last.
    Finalize,
}

impl MpiOp {
    /// The MPI function name this op corresponds to in a trace (Table IV
    /// grouping).
    pub fn fn_name(&self) -> &'static str {
        match self {
            MpiOp::Init => "MPI_Init",
            MpiOp::Isend { .. } => "MPI_Isend",
            MpiOp::Send { .. } => "MPI_Send",
            MpiOp::Irecv { .. } => "MPI_Irecv",
            MpiOp::Recv { .. } => "MPI_Recv",
            MpiOp::WaitAll => "MPI_Waitall",
            MpiOp::Allreduce { .. } => "MPI_Allreduce",
            MpiOp::Reduce { .. } => "MPI_Reduce",
            MpiOp::Bcast { .. } => "MPI_Bcast",
            MpiOp::Barrier => "MPI_Barrier",
            MpiOp::Compute { .. } => "compute",
            MpiOp::SyntheticSend { .. } => "synthetic_send",
            MpiOp::ResetCounters => "reset_counters",
            MpiOp::LogCounters => "log_counters",
            MpiOp::Aggregates => "aggregates",
            MpiOp::Finalize => "MPI_Finalize",
        }
    }

    /// Whether the rank blocks until this operation completes.
    pub fn is_blocking(&self) -> bool {
        matches!(
            self,
            MpiOp::Send { .. }
                | MpiOp::Recv { .. }
                | MpiOp::WaitAll
                | MpiOp::Allreduce { .. }
                | MpiOp::Reduce { .. }
                | MpiOp::Bcast { .. }
                | MpiOp::Barrier
                | MpiOp::Compute { .. }
        )
    }

    /// Whether this is a collective operation.
    pub fn is_collective(&self) -> bool {
        matches!(
            self,
            MpiOp::Allreduce { .. } | MpiOp::Reduce { .. } | MpiOp::Bcast { .. } | MpiOp::Barrier
        )
    }
}
