//! Skeleton validation (paper §V): run an op stream per rank through an
//! instantaneous executor and collect
//!
//! * **MPI event counts** grouped by function (Table IV),
//! * **bytes transmitted per rank** (Table V),
//! * the **control-flow sequence** of operations (Fig 6).
//!
//! Comparing the skeleton's summary against an independently written
//! reference generator demonstrates that skeletonization preserved control
//! flow and communication pattern.
//!
//! Byte accounting rules (documented in DESIGN.md — the paper does not
//! spell out its trace accounting):
//!
//! * point-to-point: the sender counts the payload;
//! * allreduce: every rank counts `2·P·(n−1)/n` (ring algorithm, what
//!   Horovod executes for large tensors);
//! * broadcast: non-root ranks count `P` (store-and-forward), the root
//!   counts nothing — this produces exactly the Table V shape where rank 0
//!   differs from everyone else by the broadcast total;
//! * rooted reduce: every non-root rank counts `P`.

use crate::ops::MpiOp;
use std::collections::BTreeMap;

/// Aggregated behaviour of one job, ready for comparison.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Validation {
    /// Ranks in the job.
    pub num_tasks: u32,
    /// Per-function event counts, Table IV style: point-to-point and
    /// Init/Finalize counted per rank; collectives counted once per
    /// operation instance.
    pub event_counts: BTreeMap<String, u64>,
    /// Bytes transmitted per rank (Table V).
    pub bytes_per_rank: Vec<u64>,
    /// Control-flow sequence of rank 0 (Fig 6): the ordered list of
    /// function names it executed.
    pub control_flow: Vec<&'static str>,
}

impl Validation {
    /// Collect validation data by draining each rank's op stream.
    pub fn collect<I, F>(num_tasks: u32, mut stream_of: F) -> Validation
    where
        I: Iterator<Item = MpiOp>,
        F: FnMut(u32) -> I,
    {
        let mut v = Validation {
            num_tasks,
            bytes_per_rank: vec![0; num_tasks as usize],
            ..Default::default()
        };
        let n = num_tasks as u64;
        for rank in 0..num_tasks {
            for op in stream_of(rank) {
                // Event counts: collectives once per instance (count them
                // only at rank 0 — every rank executes the same collective
                // sequence), everything else per rank.
                let count_it = !op.is_collective() || rank == 0;
                if count_it && !matches!(op, MpiOp::Compute { .. }) {
                    *v.event_counts.entry(op.fn_name().to_string()).or_insert(0) += 1;
                }
                if rank == 0 {
                    v.control_flow.push(op.fn_name());
                }
                let bytes = &mut v.bytes_per_rank[rank as usize];
                match op {
                    MpiOp::Isend { bytes: b, .. }
                    | MpiOp::Send { bytes: b, .. }
                    | MpiOp::SyntheticSend { bytes: b, .. } => *bytes += b,
                    MpiOp::Allreduce { bytes: b } if n > 1 => {
                        *bytes += 2 * b * (n - 1) / n;
                    }
                    MpiOp::Bcast { root, bytes: b } if rank != root => *bytes += b,
                    MpiOp::Reduce { root, bytes: b } if rank != root => *bytes += b,
                    _ => {}
                }
            }
        }
        v
    }

    /// Render the Table IV comparison rows for two runs (application
    /// reference vs Union skeleton).
    pub fn table4(app: &Validation, skel: &Validation) -> String {
        let mut out = String::from("| Function | Application | Union Skeleton |\n|---|---|---|\n");
        let mut keys: Vec<&String> =
            app.event_counts.keys().chain(skel.event_counts.keys()).collect();
        keys.sort();
        keys.dedup();
        for k in keys {
            let a = app.event_counts.get(k).copied().unwrap_or(0);
            let s = skel.event_counts.get(k).copied().unwrap_or(0);
            out.push_str(&format!("| {k} | {a} | {s} |\n"));
        }
        out
    }

    /// Render the Table V comparison rows, grouping ranks with identical
    /// byte totals.
    pub fn table5(app: &Validation, skel: &Validation) -> String {
        let mut out = String::from("| Rank | Application | Union Skeleton |\n|---|---|---|\n");
        let groups = group_ranks(&app.bytes_per_rank);
        for (label, idx) in groups {
            let a = app.bytes_per_rank[idx];
            let s = skel.bytes_per_rank.get(idx).copied().unwrap_or(0);
            out.push_str(&format!("| {label} | {a:.3e} | {s:.3e} |\n"));
        }
        out
    }

    /// True when both runs have identical counts, bytes, and control flow.
    pub fn matches(&self, other: &Validation) -> bool {
        self.event_counts == other.event_counts
            && self.bytes_per_rank == other.bytes_per_rank
            && self.control_flow == other.control_flow
    }
}

/// Group consecutive ranks with equal byte totals: `[(label, example_idx)]`.
fn group_ranks(bytes: &[u64]) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    let mut start = 0usize;
    for i in 1..=bytes.len() {
        if i == bytes.len() || bytes[i] != bytes[start] {
            let label =
                if i - start == 1 { format!("{start}") } else { format!("{start} to {}", i - 1) };
            out.push((label, start));
            start = i;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate::translate_source;
    use crate::vm::{RankVm, SkeletonInstance};

    fn validate_src(src: &str, n: u32) -> Validation {
        let skel = translate_source(src, "test").unwrap();
        let inst = SkeletonInstance::new(&skel, n, &[]).unwrap();
        Validation::collect(n, |r| RankVm::new(inst.clone(), r, 1))
    }

    #[test]
    fn counts_init_per_rank_and_collectives_once() {
        let v = validate_src(
            "all tasks reduce a 100 byte message to all tasks then \
             task 0 multicasts a 25 byte message to all other tasks.",
            4,
        );
        assert_eq!(v.event_counts["MPI_Init"], 4);
        assert_eq!(v.event_counts["MPI_Finalize"], 4);
        assert_eq!(v.event_counts["MPI_Allreduce"], 1);
        assert_eq!(v.event_counts["MPI_Bcast"], 1);
    }

    #[test]
    fn bytes_accounting_rules() {
        let v = validate_src(
            "all tasks reduce a 512 byte message to all tasks then \
             task 0 multicasts a 100 byte message to all other tasks.",
            4,
        );
        // Allreduce: 2*512*3/4 = 768 for everyone; bcast adds 100 to
        // non-roots only.
        assert_eq!(v.bytes_per_rank, vec![768, 868, 868, 868]);
    }

    #[test]
    fn p2p_bytes_counted_at_sender() {
        let v = validate_src("task 0 sends 3 1000 byte messages to task 1.", 2);
        assert_eq!(v.bytes_per_rank, vec![3000, 0]);
    }

    #[test]
    fn table_rendering_groups_ranks() {
        let v = validate_src("task 0 multicasts a 100 byte message to all other tasks.", 4);
        let t = Validation::table5(&v, &v);
        assert!(t.contains("| 0 |"), "{t}");
        assert!(t.contains("| 1 to 3 |"), "{t}");
    }

    #[test]
    fn control_flow_capture() {
        let v =
            validate_src("task 0 sends a 4 byte message to task 1 then all tasks synchronize.", 2);
        assert_eq!(v.control_flow, vec!["MPI_Init", "MPI_Send", "MPI_Barrier", "MPI_Finalize"]);
    }

    #[test]
    fn matches_is_exact() {
        let a = validate_src("all tasks synchronize.", 3);
        let b = validate_src("all tasks synchronize.", 3);
        assert!(a.matches(&b));
        let c = validate_src("all tasks synchronize then all tasks synchronize.", 3);
        assert!(!a.matches(&c));
    }
}
