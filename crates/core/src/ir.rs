//! The Union skeleton intermediate representation.
//!
//! A skeleton is the *communication spine* of an application: all buffers
//! are nulled out (we never carry payloads — only byte counts), expensive
//! computation is replaced by `Compute` delay ops, and control flow is
//! preserved exactly. The translator lowers a coNCePTuaL AST to this IR;
//! SWM-style workloads construct it directly with [`Builder`].
//!
//! The IR is a flat bytecode with structured-jump instructions so that the
//! per-rank interpreter ([`crate::vm::RankVm`]) is a small, cloneable
//! state machine — a requirement for optimistic (Time Warp) simulation,
//! where rank state must be snapshotted and rolled back.

use conceptual::{Cond, Expr, ParamDecl};
use serde::{Deserialize, Serialize};

/// Which ranks an operation applies to (and how destinations are chosen).
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum Sel {
    /// Every rank; optionally binding a variable to the rank id.
    All(Option<String>),
    /// The single rank the expression evaluates to.
    Single(Expr),
    /// Ranks `v` for which the condition holds.
    SuchThat(String, Cond),
    /// Everyone except the subject of the sentence (multicast targets).
    AllOthers,
    /// A uniformly random rank other than the sender, drawn from the
    /// interpreter's rollback-safe RNG (used by synthetic workloads; not
    /// reachable from the DSL).
    RandomOther,
}

/// How a `Message` leaf moves its data.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum MsgMode {
    /// `Irecv` + `Isend`; completion deferred to the next `Await`
    /// (coNCePTuaL `asynchronously sends`).
    Async,
    /// Blocking `Send` on the source, blocking `Recv` on the destination —
    /// one-directional patterns (ping-pong).
    Sync,
    /// `Irecv` posted first, then blocking `Send`, then wait — the
    /// deadlock-free exchange idiom (LAMMPS-style "blocking send and
    /// nonblocking receive").
    SendIrecv,
}

/// Where a reduction delivers its result.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum ReduceTarget {
    /// `… to all tasks` — an allreduce.
    AllTasks,
    /// `… to task <expr>` — a rooted reduce.
    Root(Expr),
}

/// A leaf operation: something that makes the rank *do* something.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum LeafOp {
    /// Point-to-point traffic: every source rank matching `src` sends
    /// `count` messages of `bytes` bytes to the rank(s) selected by `dst`
    /// (evaluated with the source's selector variable bound). Receivers
    /// post matching receives — coNCePTuaL's implicit-receive semantics.
    Message { src: Sel, dst: Sel, count: Expr, bytes: Expr, mode: MsgMode },
    /// One-to-many broadcast rooted at `root` over all ranks.
    Multicast { root: Expr, bytes: Expr },
    /// Reduction over all ranks.
    Reduce { bytes: Expr, target: ReduceTarget },
    /// Barrier over all ranks.
    Barrier,
    /// Spin-loop replaced by a delay model (`UNION_Compute`).
    Compute { tasks: Sel, ns: Expr },
    /// Sleep — identical simulation effect, distinct for control-flow
    /// fidelity.
    Sleep { tasks: Sel, ns: Expr },
    /// Wait for all outstanding nonblocking operations.
    Await { tasks: Sel },
    /// Counter bookkeeping (latency timers), a no-op for the network.
    ResetCounters { tasks: Sel },
    /// Log-file write, a no-op for the network.
    LogCounters { tasks: Sel },
    /// End-of-run statistics aggregation, a no-op for the network.
    Aggregates { tasks: Sel },
}

/// One bytecode instruction. Jump targets are absolute program counters.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum Instr {
    Leaf(LeafOp),
    /// Evaluate `reps`; if positive, enter the loop (binding `var` to
    /// `first + iteration` if present), else jump past `end`.
    LoopStart {
        reps: Expr,
        var: Option<String>,
        first: Expr,
        end: usize,
    },
    /// Loop back-edge: advance the counter and jump to `start + 1` while
    /// iterations remain.
    LoopEnd {
        start: usize,
    },
    /// If the condition is false, jump to `else_pc`.
    Branch {
        cond: Cond,
        else_pc: usize,
    },
    /// Unconditional jump.
    Jump {
        pc: usize,
    },
    /// Push a `let` binding.
    Bind {
        var: String,
        value: Expr,
    },
    /// Pop the innermost binding of `var`.
    Unbind {
        var: String,
    },
}

/// A compiled skeleton: name + parameter declarations + bytecode. This is
/// the Rust analogue of the paper's `union_skeleton_model` struct (Fig 4):
/// the `conceptual_main` function pointer is replaced by the bytecode the
/// interpreter executes.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Skeleton {
    pub name: String,
    pub params: Vec<ParamDecl>,
    pub code: Vec<Instr>,
}

impl Skeleton {
    /// Sanity-check jump targets. Called by the translator and builder;
    /// also useful after deserialization.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.code.len();
        for (pc, instr) in self.code.iter().enumerate() {
            let ok = match instr {
                Instr::LoopStart { end, .. } => *end < n,
                Instr::LoopEnd { start } => *start < pc,
                Instr::Branch { else_pc, .. } => *else_pc <= n,
                Instr::Jump { pc: t } => *t <= n,
                _ => true,
            };
            if !ok {
                return Err(format!("instruction {pc} has an out-of-range jump: {instr:?}"));
            }
        }
        Ok(())
    }
}

/// Structured builder for SWM-style skeletons written directly in Rust
/// (the paper's hand-written SWM workloads: MILC, Nekbone, LAMMPS, NN).
///
/// ```
/// use union_core::ir::Builder;
/// use conceptual::Expr;
///
/// let skel = Builder::new("ring")
///     .loop_n(Expr::lit(10), |b| {
///         b.send_nb(
///             Expr::var("t").add(Expr::lit(1)).rem(Expr::var("num_tasks")),
///             Expr::lit(4096),
///         )
///         .await_all()
///     })
///     .build()
///     .unwrap();
/// assert_eq!(skel.name, "ring");
/// ```
pub struct Builder {
    name: String,
    params: Vec<ParamDecl>,
    code: Vec<Instr>,
}

impl Builder {
    pub fn new(name: &str) -> Builder {
        Builder { name: name.to_string(), params: Vec::new(), code: Vec::new() }
    }

    /// Declare a tunable parameter with a default (overridable at
    /// instantiation like a command-line flag).
    pub fn param(mut self, name: &str, default: i64) -> Builder {
        self.params.push(ParamDecl {
            name: name.to_string(),
            description: String::new(),
            long_flag: format!("--{name}"),
            short_flag: None,
            default,
        });
        self
    }

    pub fn push(mut self, op: LeafOp) -> Builder {
        self.code.push(Instr::Leaf(op));
        self
    }

    /// All-ranks nonblocking send from rank variable `t`: every rank binds
    /// `t` to itself, evaluates `dst` and `bytes`, and posts the
    /// send/implicit receive pair. Destinations outside `0..num_tasks`
    /// (e.g. mesh edges) are skipped.
    pub fn send_nb(self, dst: Expr, bytes: Expr) -> Builder {
        self.push(LeafOp::Message {
            src: Sel::All(Some("t".into())),
            dst: Sel::Single(dst),
            count: Expr::lit(1),
            bytes,
            mode: MsgMode::Async,
        })
    }

    /// All-ranks exchange with `dst`: nonblocking receive posted first,
    /// blocking send, then wait (deadlock-free for any size).
    pub fn send_irecv(self, dst: Expr, bytes: Expr) -> Builder {
        self.push(LeafOp::Message {
            src: Sel::All(Some("t".into())),
            dst: Sel::Single(dst),
            count: Expr::lit(1),
            bytes,
            mode: MsgMode::SendIrecv,
        })
    }

    /// All-ranks blocking send to `dst` (with `t` bound to the sender).
    pub fn send_blocking(self, dst: Expr, bytes: Expr) -> Builder {
        self.push(LeafOp::Message {
            src: Sel::All(Some("t".into())),
            dst: Sel::Single(dst),
            count: Expr::lit(1),
            bytes,
            mode: MsgMode::Sync,
        })
    }

    /// Every rank sends one message to a uniformly random other rank.
    pub fn send_random(self, bytes: Expr, _nonblocking: bool) -> Builder {
        self.push(LeafOp::Message {
            src: Sel::All(Some("t".into())),
            dst: Sel::RandomOther,
            count: Expr::lit(1),
            bytes,
            mode: MsgMode::Async,
        })
    }

    pub fn allreduce(self, bytes: Expr) -> Builder {
        self.push(LeafOp::Reduce { bytes, target: ReduceTarget::AllTasks })
    }

    pub fn bcast(self, root: Expr, bytes: Expr) -> Builder {
        self.push(LeafOp::Multicast { root, bytes })
    }

    pub fn barrier(self) -> Builder {
        self.push(LeafOp::Barrier)
    }

    pub fn compute_ns(self, ns: Expr) -> Builder {
        self.push(LeafOp::Compute { tasks: Sel::All(None), ns })
    }

    pub fn await_all(self) -> Builder {
        self.push(LeafOp::Await { tasks: Sel::All(None) })
    }

    /// `for reps { body }` without an index variable.
    pub fn loop_n(self, reps: Expr, body: impl FnOnce(Builder) -> Builder) -> Builder {
        self.loop_var(reps, None, body)
    }

    /// `for i in 0..reps { body }` binding `var` to the iteration index.
    pub fn loop_idx(self, var: &str, reps: Expr, body: impl FnOnce(Builder) -> Builder) -> Builder {
        self.loop_var(reps, Some(var.to_string()), body)
    }

    fn loop_var(
        mut self,
        reps: Expr,
        var: Option<String>,
        body: impl FnOnce(Builder) -> Builder,
    ) -> Builder {
        let start = self.code.len();
        self.code.push(Instr::LoopStart { reps, var, first: Expr::lit(0), end: usize::MAX });
        let mut b = body(self);
        b.code.push(Instr::LoopEnd { start });
        let end = b.code.len() - 1;
        let Instr::LoopStart { end: e, .. } = &mut b.code[start] else { unreachable!() };
        *e = end;
        b
    }

    /// `let var = value in { body }`.
    pub fn bind(
        mut self,
        var: &str,
        value: Expr,
        body: impl FnOnce(Builder) -> Builder,
    ) -> Builder {
        self.code.push(Instr::Bind { var: var.to_string(), value });
        let mut b = body(self);
        b.code.push(Instr::Unbind { var: var.to_string() });
        b
    }

    pub fn build(self) -> Result<Skeleton, String> {
        let skel = Skeleton { name: self.name, params: self.params, code: self.code };
        skel.validate()?;
        Ok(skel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_fixes_loop_targets() {
        let skel = Builder::new("x")
            .loop_n(Expr::lit(3), |b| b.barrier().allreduce(Expr::lit(8)))
            .build()
            .unwrap();
        assert_eq!(skel.code.len(), 4);
        let Instr::LoopStart { end, .. } = &skel.code[0] else { panic!() };
        assert_eq!(*end, 3);
        let Instr::LoopEnd { start } = &skel.code[3] else { panic!() };
        assert_eq!(*start, 0);
    }

    #[test]
    fn nested_loops() {
        let skel = Builder::new("x")
            .loop_idx("i", Expr::lit(2), |b| b.loop_idx("j", Expr::lit(3), |b| b.barrier()))
            .build()
            .unwrap();
        let Instr::LoopStart { end, .. } = &skel.code[0] else { panic!() };
        assert_eq!(*end, 4);
        let Instr::LoopStart { end, .. } = &skel.code[1] else { panic!() };
        assert_eq!(*end, 3);
    }

    #[test]
    fn validate_catches_bad_jumps() {
        let skel =
            Skeleton { name: "bad".into(), params: vec![], code: vec![Instr::Jump { pc: 99 }] };
        assert!(skel.validate().is_err());
    }
}
