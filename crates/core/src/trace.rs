//! Trace-based workloads — the baseline Union replaces (paper Table I).
//!
//! CODES traditionally replays DUMPI traces: one record per MPI call per
//! rank, collected by running the real application. This module provides
//! the equivalent: a [`Trace`] is the full per-rank op stream, recordable
//! from any running source (here: a skeleton VM standing in for the real
//! application), serializable to a DUMPI-like JSON-lines file, and
//! replayable through the same simulator interface as a skeleton.
//!
//! Having both paths lets the repository measure Table I's qualitative
//! claims: trace files are large and fixed-size-per-event, skeletons are
//! tiny and generative; replaying a recorded trace must reproduce the
//! skeleton's simulation **exactly** (`union-exp table1` and the
//! `table1` bench quantify this).

use crate::ops::MpiOp;
use crate::vm::RankVm;
use serde::{Deserialize, Serialize};
use std::io::{BufRead, Write};
use std::sync::Arc;

/// One trace record: the op a rank issued. (DUMPI also timestamps each
/// record; our replay re-derives timing from the simulated network, which
/// is what CODES' trace replay does with its network model too.)
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct TraceRecord {
    pub rank: u32,
    pub op: MpiOp,
}

/// A complete multi-rank trace.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Trace {
    /// `ops[rank]` = that rank's full op stream.
    pub ops: Vec<Vec<MpiOp>>,
}

impl Trace {
    pub fn num_ranks(&self) -> u32 {
        self.ops.len() as u32
    }

    /// Total records across all ranks.
    pub fn len(&self) -> usize {
        self.ops.iter().map(|v| v.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Record a trace by draining every rank of a skeleton instance —
    /// the "run the application and collect its trace" step of
    /// trace-driven simulation.
    pub fn record(inst: &Arc<crate::vm::SkeletonInstance>, seed: u64) -> Trace {
        let n = inst.num_tasks;
        Trace { ops: (0..n).map(|r| RankVm::new(inst.clone(), r, seed).collect()).collect() }
    }

    /// Serialize as JSON lines (one record per line, DUMPI-style: flat,
    /// per-event, grep-able).
    pub fn write_jsonl<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        for (rank, ops) in self.ops.iter().enumerate() {
            for op in ops {
                let rec = TraceRecord { rank: rank as u32, op: *op };
                serde_json::to_writer(&mut w, &rec)?;
                w.write_all(b"\n")?;
            }
        }
        Ok(())
    }

    /// Parse a JSON-lines trace. Ranks may interleave arbitrarily; order
    /// within a rank is preserved.
    pub fn read_jsonl<R: BufRead>(r: R) -> std::io::Result<Trace> {
        let mut ops: Vec<Vec<MpiOp>> = Vec::new();
        for line in r.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let rec: TraceRecord = serde_json::from_str(&line)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
            if ops.len() <= rec.rank as usize {
                ops.resize_with(rec.rank as usize + 1, Vec::new);
            }
            ops[rec.rank as usize].push(rec.op);
        }
        Ok(Trace { ops })
    }

    /// The serialized size in bytes (what a trace costs on disk — the
    /// Table I "memory footprint / trace collection" axis).
    pub fn jsonl_size(&self) -> u64 {
        struct Counter(u64);
        impl Write for Counter {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0 += buf.len() as u64;
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut c = Counter(0);
        self.write_jsonl(&mut c).expect("counting writer cannot fail");
        c.0
    }

    /// A replay cursor for one rank.
    pub fn cursor(self: &Arc<Trace>, rank: u32) -> TraceCursor {
        assert!(rank < self.num_ranks(), "rank {rank} not in trace");
        TraceCursor { trace: self.clone(), rank, pos: 0 }
    }
}

/// Replays one rank's recorded op stream — the trace-replay counterpart
/// of [`RankVm`].
#[derive(Clone)]
pub struct TraceCursor {
    trace: Arc<Trace>,
    rank: u32,
    pos: usize,
}

impl TraceCursor {
    pub fn rank(&self) -> u32 {
        self.rank
    }

    pub fn num_tasks(&self) -> u32 {
        self.trace.num_ranks()
    }

    pub fn next_op(&mut self) -> Option<MpiOp> {
        let op = self.trace.ops[self.rank as usize].get(self.pos).copied();
        if op.is_some() {
            self.pos += 1;
        }
        op
    }
}

/// A rank's operation source: generative (Union skeleton VM) or recorded
/// (trace replay). This is the seam the paper's Table I compares across.
#[derive(Clone)]
pub enum OpSource {
    Skeleton(RankVm),
    Trace(TraceCursor),
}

// Both variants must remain `Send` so node LPs can migrate across the
// parallel schedulers' worker threads.
const _: () = {
    const fn require_send<T: Send>() {}
    require_send::<OpSource>();
};

impl OpSource {
    pub fn rank(&self) -> u32 {
        match self {
            OpSource::Skeleton(vm) => vm.rank(),
            OpSource::Trace(c) => c.rank(),
        }
    }

    pub fn num_tasks(&self) -> u32 {
        match self {
            OpSource::Skeleton(vm) => vm.num_tasks(),
            OpSource::Trace(c) => c.num_tasks(),
        }
    }

    pub fn next_op(&mut self) -> Option<MpiOp> {
        match self {
            OpSource::Skeleton(vm) => vm.next_op(),
            OpSource::Trace(c) => c.next_op(),
        }
    }
}

impl From<RankVm> for OpSource {
    fn from(vm: RankVm) -> OpSource {
        OpSource::Skeleton(vm)
    }
}

impl From<TraceCursor> for OpSource {
    fn from(c: TraceCursor) -> OpSource {
        OpSource::Trace(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate::translate_source;
    use crate::vm::SkeletonInstance;

    fn ring_inst(n: u32) -> Arc<SkeletonInstance> {
        let skel = translate_source(
            "for 3 repetitions { all tasks t asynchronously send a 4096 byte message \
             to task (t+1) mod num_tasks then all tasks await completions }.",
            "ring",
        )
        .unwrap();
        SkeletonInstance::new(&skel, n, &[]).unwrap()
    }

    #[test]
    fn record_and_replay_are_identical() {
        let inst = ring_inst(6);
        let trace = Arc::new(Trace::record(&inst, 1));
        for r in 0..6 {
            let from_vm: Vec<MpiOp> = RankVm::new(inst.clone(), r, 1).collect();
            let mut cur = trace.cursor(r);
            let mut from_trace = Vec::new();
            while let Some(op) = cur.next_op() {
                from_trace.push(op);
            }
            assert_eq!(from_vm, from_trace);
        }
    }

    #[test]
    fn jsonl_round_trip() {
        let inst = ring_inst(4);
        let trace = Trace::record(&inst, 1);
        let mut buf = Vec::new();
        trace.write_jsonl(&mut buf).unwrap();
        let back = Trace::read_jsonl(std::io::BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(trace, back);
        assert_eq!(trace.jsonl_size(), buf.len() as u64);
    }

    #[test]
    fn trace_is_much_larger_than_skeleton() {
        // Table I's "memory footprint" column, quantified: the skeleton is
        // O(program), the trace O(events).
        let skel = translate_source(
            "for 200 repetitions { all tasks t asynchronously send a 1024 byte message \
             to task (t+1) mod num_tasks then all tasks await completions }.",
            "ring",
        )
        .unwrap();
        let inst = SkeletonInstance::new(&skel, 16, &[]).unwrap();
        let trace = Trace::record(&inst, 1);
        let skeleton_size = serde_json::to_vec(&skel).unwrap().len() as u64;
        let trace_size = trace.jsonl_size();
        assert!(trace_size > 50 * skeleton_size, "trace {trace_size} vs skeleton {skeleton_size}");
    }

    #[test]
    fn op_source_dispatches_both_ways() {
        let inst = ring_inst(3);
        let trace = Arc::new(Trace::record(&inst, 1));
        let mut a: OpSource = RankVm::new(inst.clone(), 2, 1).into();
        let mut b: OpSource = trace.cursor(2).into();
        assert_eq!(a.rank(), b.rank());
        assert_eq!(a.num_tasks(), b.num_tasks());
        loop {
            let (x, y) = (a.next_op(), b.next_op());
            assert_eq!(x, y);
            if x.is_none() {
                break;
            }
        }
    }

    #[test]
    fn synthetic_randomness_is_captured_by_the_trace() {
        let skel = crate::ir::Builder::new("ur")
            .loop_n(conceptual::Expr::lit(5), |b| b.send_random(conceptual::Expr::lit(100), true))
            .build()
            .unwrap();
        let inst = SkeletonInstance::new(&skel, 8, &[]).unwrap();
        let t1 = Trace::record(&inst, 7);
        let t2 = Trace::record(&inst, 7);
        let t3 = Trace::record(&inst, 8);
        assert_eq!(t1, t2, "same seed, same trace");
        assert_ne!(t1, t3, "different seed, different destinations");
    }
}
