//! # union-core
//!
//! **Union: an automatic workload manager for accelerating network
//! simulation** (Wang, Mubarak, Kang, Ross, Lan — IPDPS 2020), reproduced
//! in Rust.
//!
//! Union couples application descriptions written in a coNCePTuaL-style
//! DSL (crate [`conceptual`]) with a CODES-style network simulation (crate
//! `codes`). It has two components:
//!
//! * the **translator** ([`translate`]) — automatically converts a
//!   coNCePTuaL program into a *skeleton*: buffers nulled, computation
//!   replaced with delay models, communication intercepted as
//!   `UNION_MPI_X` operations ([`ops::MpiOp`]);
//! * the **event generator** ([`vm::RankVm`]) — executes skeletons rank by
//!   rank as resumable state machines, yielding communication operations
//!   to the simulator in situ (the paper uses Argobots user-level threads;
//!   see DESIGN.md substitution #4).
//!
//! Supporting pieces: the skeleton [`ir`] and [`ir::Builder`] for
//! SWM-style hand-written workloads, the [`registry::SkeletonRegistry`]
//! (the paper's `union_skeleton_model` list, Fig 4), a Fig-5-style C
//! renderer ([`codegen::render_c`]), and the validation executor
//! ([`validate::Validation`]) behind the paper's Tables IV/V and Fig 6.
//!
//! ```
//! use union_core::{translate_source, vm::{RankVm, SkeletonInstance}, ops::MpiOp};
//!
//! let skel = translate_source(
//!     "task 0 sends a 1024 byte message to task 1.",
//!     "hello",
//! ).unwrap();
//! let inst = SkeletonInstance::new(&skel, 2, &[]).unwrap();
//! let ops: Vec<MpiOp> = RankVm::new(inst, 0, 0).collect();
//! assert_eq!(ops[1], MpiOp::Send { dst: 1, bytes: 1024, tag: 0 });
//! ```

pub mod codegen;
pub mod ir;
pub mod ops;
pub mod registry;
pub mod trace;
pub mod translate;
pub mod validate;
pub mod vm;

pub use ir::{Builder, Instr, LeafOp, ReduceTarget, Sel, Skeleton};
pub use ops::MpiOp;
pub use registry::{LintHook, SkeletonRegistry};
pub use trace::{OpSource, Trace, TraceCursor};
pub use translate::{translate, translate_source};
pub use validate::Validation;
pub use vm::{RankVm, SkeletonInstance};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Random (reps, size, tasks) ping-rings: the sum of bytes sent must
    /// equal reps × size × tasks, and every rank's stream must start with
    /// Init and end with Finalize.
    fn ring_skel(reps: i64, size: i64) -> Skeleton {
        translate_source(
            &format!(
                "for {reps} repetitions {{ all tasks t asynchronously send a {size} byte \
                 message to task (t+1) mod num_tasks then all tasks await completions }}."
            ),
            "ring",
        )
        .unwrap()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ring_conservation(reps in 1i64..5, size in 1i64..10_000, n in 2u32..12) {
            let inst = SkeletonInstance::new(&ring_skel(reps, size), n, &[]).unwrap();
            let v = Validation::collect(n, |r| RankVm::new(inst.clone(), r, 1));
            let total: u64 = v.bytes_per_rank.iter().sum();
            prop_assert_eq!(total, (reps * size) as u64 * n as u64);
            prop_assert_eq!(v.event_counts["MPI_Init"], n as u64);
            prop_assert_eq!(v.event_counts["MPI_Finalize"], n as u64);
            prop_assert_eq!(v.event_counts["MPI_Isend"], (reps as u64) * n as u64);
            prop_assert_eq!(v.event_counts["MPI_Irecv"], (reps as u64) * n as u64);
        }

        #[test]
        fn vm_streams_are_deterministic(n in 2u32..8, seed in 0u64..1000) {
            let inst = SkeletonInstance::new(&ring_skel(2, 64), n, &[]).unwrap();
            for r in 0..n {
                let a: Vec<MpiOp> = RankVm::new(inst.clone(), r, seed).collect();
                let b: Vec<MpiOp> = RankVm::new(inst.clone(), r, seed).collect();
                prop_assert_eq!(a, b);
            }
        }

        #[test]
        fn every_send_has_a_matching_recv(n in 2u32..10) {
            // all-to-all: sends and recvs must pair up by (src,dst,bytes).
            let skel = translate_source(
                "all tasks t asynchronously send a 128 byte message to all other tasks \
                 then all tasks await completions.",
                "a2a",
            ).unwrap();
            let inst = SkeletonInstance::new(&skel, n, &[]).unwrap();
            let mut sends = std::collections::HashMap::new();
            let mut recvs = std::collections::HashMap::new();
            for r in 0..n {
                for op in RankVm::new(inst.clone(), r, 1) {
                    match op {
                        MpiOp::Isend { dst, bytes, .. } => {
                            *sends.entry((r, dst, bytes)).or_insert(0u32) += 1;
                        }
                        MpiOp::Irecv { src, bytes, .. } => {
                            *recvs.entry((src, r, bytes)).or_insert(0u32) += 1;
                        }
                        _ => {}
                    }
                }
            }
            prop_assert_eq!(sends, recvs);
        }
    }
}
