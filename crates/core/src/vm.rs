//! The Union **event generator**: a resumable per-rank interpreter.
//!
//! The paper runs each skeleton rank as an Argobots user-level thread that
//! yields to CODES whenever it issues a communication call. Here each rank
//! is an explicit state machine — [`RankVm`] — that yields one [`MpiOp`]
//! at a time. The machine is `Clone`, so the optimistic (Time Warp)
//! scheduler can snapshot and roll it back; its RNG is part of that state.
//!
//! The executor contract: call [`RankVm::next_op`] to obtain the next
//! operation. For a blocking op, do not call `next_op` again until the op
//! completes in virtual time; nonblocking ops may be followed immediately.

use crate::ir::{Instr, LeafOp, MsgMode, ReduceTarget, Sel, Skeleton};
use crate::ops::MpiOp;
use conceptual::{eval, eval_cond, Cond, Env, Expr, ParamDecl};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashSet, VecDeque};
use std::sync::Arc;

/// One rank's share of a statically resolved `Message` leaf.
#[derive(Clone, Debug, Default)]
struct RankPlan {
    /// (dst, bytes, copies)
    sends: Vec<(u32, u64, u32)>,
    /// (src, bytes, copies)
    recvs: Vec<(u32, u64, u32)>,
}

/// A skeleton bound to a job size and parameter values, shared by all its
/// rank VMs. Message leaves whose selectors and expressions depend only on
/// parameters (not loop variables or RNG) are resolved once here, so the
/// per-iteration cost of a halo exchange is O(my neighbors), not O(ranks).
pub struct SkeletonInstance {
    pub name: String,
    pub num_tasks: u32,
    code: Vec<Instr>,
    base_env: Env,
    /// `resolved[pc]` = per-rank plans for a static Message leaf at `pc`.
    resolved: Vec<Option<Vec<RankPlan>>>,
}

impl SkeletonInstance {
    /// Bind a skeleton to `num_tasks` ranks, overriding parameters with
    /// `args` (flag/value pairs, e.g. `["--reps", "10"]`).
    pub fn new(
        skel: &Skeleton,
        num_tasks: u32,
        args: &[&str],
    ) -> Result<Arc<SkeletonInstance>, String> {
        if num_tasks == 0 {
            return Err("num_tasks must be positive".into());
        }
        let base_env = bind_params(&skel.params, num_tasks, args)?;
        let mut inst = SkeletonInstance {
            name: skel.name.clone(),
            num_tasks,
            code: skel.code.clone(),
            base_env,
            resolved: vec![None; skel.code.len()],
        };
        inst.resolve_static_messages()?;
        Ok(Arc::new(inst))
    }

    pub fn code(&self) -> &[Instr] {
        &self.code
    }

    pub fn base_env(&self) -> &Env {
        &self.base_env
    }

    /// Precompute send/recv plans for every Message leaf whose expressions
    /// are parameter-static.
    fn resolve_static_messages(&mut self) -> Result<(), String> {
        let n = self.num_tasks;
        for pc in 0..self.code.len() {
            let Instr::Leaf(LeafOp::Message { src, dst, count, bytes, .. }) = &self.code[pc] else {
                continue;
            };
            if !message_is_static(src, dst, count, bytes, &self.base_env) {
                continue;
            }
            let mut plans: Vec<RankPlan> = vec![RankPlan::default(); n as usize];
            let mut env = self.base_env.clone();
            enumerate_pairs(src, dst, count, bytes, n, &mut env, None, &mut |s, d, b, c| {
                plans[s as usize].sends.push((d, b, c));
                plans[d as usize].recvs.push((s, b, c));
            })
            .map_err(|e| format!("{}[pc {pc}]: {e}", self.name))?;
            self.resolved[pc] = Some(plans);
        }
        Ok(())
    }
}

/// Bind parameter declarations against argv-style overrides.
fn bind_params(params: &[ParamDecl], num_tasks: u32, args: &[&str]) -> Result<Env, String> {
    let mut env = Env::with_num_tasks(num_tasks);
    for p in params {
        env.bind(&p.name, p.default);
    }
    let mut i = 0;
    while i < args.len() {
        let flag = args[i];
        let p = params
            .iter()
            .find(|p| p.long_flag == flag || p.short_flag.as_deref() == Some(flag))
            .ok_or_else(|| format!("unknown argument `{flag}`"))?;
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("missing value for `{flag}`"))?
            .parse::<i64>()
            .map_err(|_| format!("bad value for `{flag}`"))?;
        env.bind(&p.name, value);
        i += 2;
    }
    Ok(env)
}

/// Can this message leaf be resolved once per instance? True when every
/// expression references only instance-level bindings plus the selector
/// variables, and the destination is not RNG-driven.
fn message_is_static(src: &Sel, dst: &Sel, count: &Expr, bytes: &Expr, env: &Env) -> bool {
    let mut bound: HashSet<String> = HashSet::new();
    match src {
        Sel::All(Some(v)) | Sel::SuchThat(v, _) => {
            bound.insert(v.clone());
        }
        _ => {}
    }
    if let Sel::SuchThat(v, _) = dst {
        bound.insert(v.clone());
    }
    let known = |name: &str| bound.contains(name) || env.get(name).is_some();

    let mut vars = HashSet::new();
    expr_vars(count, &mut vars);
    expr_vars(bytes, &mut vars);
    match src {
        Sel::Single(e) => expr_vars(e, &mut vars),
        Sel::SuchThat(_, c) => cond_vars(c, &mut vars),
        _ => {}
    }
    match dst {
        Sel::Single(e) => expr_vars(e, &mut vars),
        Sel::SuchThat(_, c) => cond_vars(c, &mut vars),
        Sel::RandomOther => return false,
        _ => {}
    }
    vars.iter().all(|v| known(v))
}

fn expr_vars(e: &Expr, out: &mut HashSet<String>) {
    match e {
        Expr::Int(_) => {}
        Expr::Var(v) => {
            out.insert(v.clone());
        }
        Expr::Neg(a) => expr_vars(a, out),
        Expr::Bin(_, a, b) => {
            expr_vars(a, out);
            expr_vars(b, out);
        }
        Expr::Call(_, args) => {
            for a in args {
                expr_vars(a, out);
            }
        }
        Expr::IfElse(c, a, b) => {
            cond_vars(c, out);
            expr_vars(a, out);
            expr_vars(b, out);
        }
    }
}

fn cond_vars(c: &Cond, out: &mut HashSet<String>) {
    match c {
        Cond::True => {}
        Cond::Not(a) => cond_vars(a, out),
        Cond::And(a, b) | Cond::Or(a, b) => {
            cond_vars(a, out);
            cond_vars(b, out);
        }
        Cond::Rel(_, a, b) => {
            expr_vars(a, out);
            expr_vars(b, out);
        }
    }
}

/// Enumerate (src, dst, bytes, copies) pairs of a Message leaf, calling
/// `emit` for each. `only_src` restricts enumeration to one source rank
/// (used on the dynamic path for the send side).
///
/// Public so `union-lint`'s symbolic expander shares the exact pair
/// semantics of the simulator — including the deliberate silent skip of
/// out-of-range `Single` destinations (mesh edges).
#[allow(clippy::too_many_arguments)]
pub fn enumerate_pairs(
    src: &Sel,
    dst: &Sel,
    count: &Expr,
    bytes: &Expr,
    n: u32,
    env: &mut Env,
    only_src: Option<u32>,
    emit: &mut dyn FnMut(u32, u32, u64, u32),
) -> Result<(), String> {
    let sources: Vec<u32> = match src {
        Sel::Single(e) => {
            let s = eval(e, env).map_err(|e| e.to_string())?;
            if s < 0 || s >= n as i64 {
                return Err(format!("source task {s} out of range 0..{n}"));
            }
            vec![s as u32]
        }
        Sel::All(_) | Sel::SuchThat(_, _) => match only_src {
            Some(s) => vec![s],
            None => (0..n).collect(),
        },
        Sel::AllOthers | Sel::RandomOther => {
            return Err("invalid source selector".into());
        }
    };
    let src_var = match src {
        Sel::All(Some(v)) => Some(v.as_str()),
        Sel::SuchThat(v, _) => Some(v.as_str()),
        _ => None,
    };
    for s in sources {
        if let Some(v) = src_var {
            env.bind(v, s as i64);
        }
        let included = match src {
            Sel::SuchThat(_, c) => eval_cond(c, env).map_err(|e| e.to_string())?,
            _ => true,
        };
        if included {
            let copies = eval(count, env).map_err(|e| e.to_string())?;
            let b = eval(bytes, env).map_err(|e| e.to_string())?;
            if copies > 0 {
                if b < 0 {
                    return Err(format!("negative message size {b}"));
                }
                let (b, copies) = (b as u64, copies as u32);
                match dst {
                    Sel::Single(e) => {
                        let d = eval(e, env).map_err(|e| e.to_string())?;
                        // Out-of-range destinations (e.g. mesh edges, where
                        // MESH_NEIGHBOR returns -1) are silently skipped.
                        if d >= 0 && d < n as i64 {
                            emit(s, d as u32, b, copies);
                        }
                    }
                    Sel::All(_) => {
                        for d in 0..n {
                            emit(s, d, b, copies);
                        }
                    }
                    Sel::AllOthers => {
                        for d in 0..n {
                            if d != s {
                                emit(s, d, b, copies);
                            }
                        }
                    }
                    Sel::SuchThat(v2, c2) => {
                        for d in 0..n {
                            env.bind(v2, d as i64);
                            let m = eval_cond(c2, env).map_err(|e| e.to_string())?;
                            env.unbind(v2);
                            if m {
                                emit(s, d, b, copies);
                            }
                        }
                    }
                    Sel::RandomOther => {
                        return Err("RandomOther must be handled by the VM".into());
                    }
                }
            }
        }
        if let Some(v) = src_var {
            env.unbind(v);
        }
    }
    Ok(())
}

#[derive(Clone, Debug)]
struct LoopFrame {
    start: usize,
    remaining: i64,
    var: Option<String>,
    next_value: i64,
}

#[derive(Clone, Copy, PartialEq, Debug)]
enum Stage {
    NotStarted,
    Running,
    Done,
}

/// A single rank's resumable interpreter.
#[derive(Clone)]
pub struct RankVm {
    inst: Arc<SkeletonInstance>,
    rank: u32,
    env: Env,
    pc: usize,
    loops: Vec<LoopFrame>,
    queue: VecDeque<MpiOp>,
    stage: Stage,
    rng: SmallRng,
}

// VMs live inside LP state and cross thread boundaries under the
// parallel schedulers — keep `RankVm` `Send`.
const _: () = {
    const fn require_send<T: Send>() {}
    require_send::<RankVm>();
};

impl RankVm {
    /// Create the VM for `rank`. `seed` feeds the rollback-safe RNG used
    /// by synthetic (random-destination) traffic.
    pub fn new(inst: Arc<SkeletonInstance>, rank: u32, seed: u64) -> RankVm {
        assert!(rank < inst.num_tasks, "rank {rank} out of range");
        let env = inst.base_env.clone();
        RankVm {
            inst,
            rank,
            env,
            pc: 0,
            loops: Vec::new(),
            queue: VecDeque::new(),
            stage: Stage::NotStarted,
            rng: SmallRng::seed_from_u64(seed ^ ((rank as u64) << 32)),
        }
    }

    pub fn rank(&self) -> u32 {
        self.rank
    }

    pub fn num_tasks(&self) -> u32 {
        self.inst.num_tasks
    }

    pub fn is_done(&self) -> bool {
        self.stage == Stage::Done
    }

    /// Advance to the next MPI operation; `None` once the program (and its
    /// final `Finalize`) has been fully emitted.
    ///
    /// Panics on runtime evaluation errors (division by zero, out-of-range
    /// explicit task ids) with rank/pc context; static errors are caught
    /// earlier by `conceptual::sema` and `SkeletonInstance::new`.
    pub fn next_op(&mut self) -> Option<MpiOp> {
        if self.stage == Stage::NotStarted {
            self.stage = Stage::Running;
            return Some(MpiOp::Init);
        }
        loop {
            if let Some(op) = self.queue.pop_front() {
                return Some(op);
            }
            if self.stage == Stage::Done {
                return None;
            }
            if self.pc >= self.inst.code.len() {
                self.stage = Stage::Done;
                return Some(MpiOp::Finalize);
            }
            let pc = self.pc;
            // Clone of one instruction per step keeps the borrow checker
            // happy; instructions are small (Expr trees are shared Boxes
            // only in the Arc'd program — this clones the Expr, which is
            // shallow for typical leaves).
            let instr = self.inst.code[pc].clone();
            match instr {
                Instr::Leaf(op) => {
                    self.pc += 1;
                    self.emit_leaf(pc, &op);
                }
                Instr::LoopStart { reps, var, first, end } => {
                    let reps = self.eval(&reps);
                    if reps <= 0 {
                        self.pc = end + 1;
                    } else {
                        let first = self.eval(&first);
                        if let Some(v) = &var {
                            self.env.bind(v, first);
                        }
                        self.loops.push(LoopFrame {
                            start: pc,
                            remaining: reps - 1,
                            var,
                            next_value: first + 1,
                        });
                        self.pc += 1;
                    }
                }
                Instr::LoopEnd { start } => {
                    let frame = self.loops.last_mut().expect("LoopEnd without matching LoopStart");
                    debug_assert_eq!(frame.start, start);
                    if frame.remaining > 0 {
                        frame.remaining -= 1;
                        let next = frame.next_value;
                        frame.next_value += 1;
                        if let Some(v) = frame.var.clone() {
                            self.env.unbind(&v);
                            self.env.bind(&v, next);
                        }
                        self.pc = start + 1;
                    } else {
                        if let Some(v) = self.loops.last().unwrap().var.clone() {
                            self.env.unbind(&v);
                        }
                        self.loops.pop();
                        self.pc += 1;
                    }
                }
                Instr::Branch { cond, else_pc } => {
                    if self.eval_cond(&cond) {
                        self.pc += 1;
                    } else {
                        self.pc = else_pc;
                    }
                }
                Instr::Jump { pc } => {
                    self.pc = pc;
                }
                Instr::Bind { var, value } => {
                    let v = self.eval(&value);
                    self.env.bind(&var, v);
                    self.pc += 1;
                }
                Instr::Unbind { var } => {
                    self.env.unbind(&var);
                    self.pc += 1;
                }
            }
        }
    }

    fn eval(&self, e: &Expr) -> i64 {
        eval(e, &self.env).unwrap_or_else(|err| {
            panic!("{}[rank {} pc {}]: {err}", self.inst.name, self.rank, self.pc)
        })
    }

    fn eval_cond(&self, c: &Cond) -> bool {
        eval_cond(c, &self.env).unwrap_or_else(|err| {
            panic!("{}[rank {} pc {}]: {err}", self.inst.name, self.rank, self.pc)
        })
    }

    /// Does `sel` include this rank? Binds the selector variable (caller
    /// must pass it to `with_binding` scopes via the returned name).
    fn sel_matches(&mut self, sel: &Sel) -> Option<Option<String>> {
        match sel {
            Sel::All(None) => Some(None),
            Sel::All(Some(v)) => {
                self.env.bind(v, self.rank as i64);
                Some(Some(v.clone()))
            }
            Sel::Single(e) => {
                if self.eval(e) == self.rank as i64 {
                    Some(None)
                } else {
                    None
                }
            }
            Sel::SuchThat(v, c) => {
                self.env.bind(v, self.rank as i64);
                if self.eval_cond(c) {
                    Some(Some(v.clone()))
                } else {
                    self.env.unbind(v);
                    None
                }
            }
            Sel::AllOthers | Sel::RandomOther => {
                panic!("invalid task selector for this operation")
            }
        }
    }

    fn unbind_sel(&mut self, binding: Option<String>) {
        if let Some(v) = binding {
            self.env.unbind(&v);
        }
    }

    fn emit_leaf(&mut self, pc: usize, op: &LeafOp) {
        match op {
            LeafOp::Message { src, dst, count, bytes, mode } => {
                self.emit_message(pc, src, dst, count, bytes, *mode);
            }
            LeafOp::Multicast { root, bytes } => {
                let root = self.eval(root);
                let bytes = self.eval(bytes).max(0) as u64;
                assert!(
                    root >= 0 && root < self.inst.num_tasks as i64,
                    "multicast root {root} out of range"
                );
                self.queue.push_back(MpiOp::Bcast { root: root as u32, bytes });
            }
            LeafOp::Reduce { bytes, target } => {
                let bytes = self.eval(bytes).max(0) as u64;
                match target {
                    ReduceTarget::AllTasks => {
                        self.queue.push_back(MpiOp::Allreduce { bytes });
                    }
                    ReduceTarget::Root(e) => {
                        let root = self.eval(e);
                        assert!(
                            root >= 0 && root < self.inst.num_tasks as i64,
                            "reduce root {root} out of range"
                        );
                        self.queue.push_back(MpiOp::Reduce { root: root as u32, bytes });
                    }
                }
            }
            LeafOp::Barrier => self.queue.push_back(MpiOp::Barrier),
            LeafOp::Compute { tasks, ns } | LeafOp::Sleep { tasks, ns } => {
                if let Some(binding) = self.sel_matches(&tasks.clone()) {
                    let ns = self.eval(ns).max(0) as u64;
                    self.unbind_sel(binding);
                    self.queue.push_back(MpiOp::Compute { ns });
                }
            }
            LeafOp::Await { tasks } => {
                if let Some(binding) = self.sel_matches(&tasks.clone()) {
                    self.unbind_sel(binding);
                    self.queue.push_back(MpiOp::WaitAll);
                }
            }
            LeafOp::ResetCounters { tasks } => {
                if let Some(binding) = self.sel_matches(&tasks.clone()) {
                    self.unbind_sel(binding);
                    self.queue.push_back(MpiOp::ResetCounters);
                }
            }
            LeafOp::LogCounters { tasks } => {
                if let Some(binding) = self.sel_matches(&tasks.clone()) {
                    self.unbind_sel(binding);
                    self.queue.push_back(MpiOp::LogCounters);
                }
            }
            LeafOp::Aggregates { tasks } => {
                if let Some(binding) = self.sel_matches(&tasks.clone()) {
                    self.unbind_sel(binding);
                    self.queue.push_back(MpiOp::Aggregates);
                }
            }
        }
    }

    fn emit_message(
        &mut self,
        pc: usize,
        src: &Sel,
        dst: &Sel,
        count: &Expr,
        bytes: &Expr,
        mode: MsgMode,
    ) {
        let tag = pc as u32;
        let n = self.inst.num_tasks;
        let rank = self.rank;

        // Synthetic random-destination traffic: one-sided, send only.
        if matches!(dst, Sel::RandomOther) {
            let binding = match self.sel_matches(&src.clone()) {
                Some(b) => b,
                None => return,
            };
            let copies = self.eval(count).max(0) as u32;
            let b = self.eval(bytes).max(0) as u64;
            self.unbind_sel(binding);
            for _ in 0..copies {
                let mut d = self.rng.gen_range(0..n.max(2) - 1);
                if d >= rank {
                    d += 1; // uniform over everyone but me
                }
                if d < n {
                    self.queue.push_back(MpiOp::SyntheticSend { dst: d, bytes: b });
                }
            }
            return;
        }

        let mut sends: Vec<(u32, u64, u32)> = Vec::new();
        let mut recvs: Vec<(u32, u64, u32)> = Vec::new();
        if let Some(plans) = &self.inst.resolved[pc] {
            let plan = &plans[rank as usize];
            sends.extend_from_slice(&plan.sends);
            recvs.extend_from_slice(&plan.recvs);
        } else {
            // Dynamic path: my sends cost O(my destinations); my receives
            // require scanning all potential sources.
            let mut env = self.env.clone();
            let rank_u = rank;
            enumerate_pairs(
                src,
                dst,
                count,
                bytes,
                n,
                &mut env,
                Some(rank_u),
                &mut |s, d, b, c| {
                    if s == rank_u {
                        sends.push((d, b, c));
                    }
                },
            )
            .unwrap_or_else(|e| panic!("{}[rank {rank} pc {pc}]: {e}", self.inst.name));
            // Receive side: enumerate every source unless src is Single.
            let mut env = self.env.clone();
            enumerate_pairs(src, dst, count, bytes, n, &mut env, None, &mut |s, d, b, c| {
                if d == rank_u {
                    recvs.push((s, b, c));
                }
            })
            .unwrap_or_else(|e| panic!("{}[rank {rank} pc {pc}]: {e}", self.inst.name));
        }

        // Emission order per mode (coNCePTuaL's generated-code convention
        // posts receives first for nonblocking traffic):
        match mode {
            MsgMode::Async => {
                for &(s, b, c) in &recvs {
                    for _ in 0..c {
                        self.queue.push_back(MpiOp::Irecv { src: s, bytes: b, tag });
                    }
                }
                for &(d, b, c) in &sends {
                    for _ in 0..c {
                        self.queue.push_back(MpiOp::Isend { dst: d, bytes: b, tag });
                    }
                }
            }
            MsgMode::Sync => {
                // Blocking send first, blocking receive after: the
                // one-directional (ping-pong) idiom.
                for &(d, b, c) in &sends {
                    for _ in 0..c {
                        self.queue.push_back(MpiOp::Send { dst: d, bytes: b, tag });
                    }
                }
                for &(s, b, c) in &recvs {
                    for _ in 0..c {
                        self.queue.push_back(MpiOp::Recv { src: s, bytes: b, tag });
                    }
                }
            }
            MsgMode::SendIrecv => {
                // Deadlock-free exchange: post all receives, then blocking
                // sends, then drain.
                for &(s, b, c) in &recvs {
                    for _ in 0..c {
                        self.queue.push_back(MpiOp::Irecv { src: s, bytes: b, tag });
                    }
                }
                for &(d, b, c) in &sends {
                    for _ in 0..c {
                        self.queue.push_back(MpiOp::Send { dst: d, bytes: b, tag });
                    }
                }
                if !recvs.is_empty() {
                    self.queue.push_back(MpiOp::WaitAll);
                }
            }
        }
    }
}

/// Iterator over the op stream assuming instantaneous completion — the
/// contract needed by the validation executors (no data-dependent control
/// flow exists in skeletons).
impl Iterator for RankVm {
    type Item = MpiOp;
    fn next(&mut self) -> Option<MpiOp> {
        self.next_op()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Builder;
    use crate::translate::translate_source;

    fn ops(vm: RankVm) -> Vec<MpiOp> {
        vm.collect()
    }

    #[test]
    fn ping_pong_op_streams() {
        let skel = translate_source(
            "reps is \"r\" and comes from \"--reps\" with default 2. \
             For reps repetitions { \
               task 0 sends a 1024 byte message to task 1 then \
               task 1 sends a 1024 byte message to task 0 }.",
            "pingpong",
        )
        .unwrap();
        let inst = SkeletonInstance::new(&skel, 2, &[]).unwrap();
        let r0 = ops(RankVm::new(inst.clone(), 0, 1));
        let r1 = ops(RankVm::new(inst.clone(), 1, 1));
        assert_eq!(
            r0,
            vec![
                MpiOp::Init,
                MpiOp::Send { dst: 1, bytes: 1024, tag: 1 },
                MpiOp::Recv { src: 1, bytes: 1024, tag: 2 },
                MpiOp::Send { dst: 1, bytes: 1024, tag: 1 },
                MpiOp::Recv { src: 1, bytes: 1024, tag: 2 },
                MpiOp::Finalize,
            ]
        );
        assert_eq!(
            r1,
            vec![
                MpiOp::Init,
                MpiOp::Recv { src: 0, bytes: 1024, tag: 1 },
                MpiOp::Send { dst: 0, bytes: 1024, tag: 2 },
                MpiOp::Recv { src: 0, bytes: 1024, tag: 1 },
                MpiOp::Send { dst: 0, bytes: 1024, tag: 2 },
                MpiOp::Finalize,
            ]
        );
    }

    #[test]
    fn args_override_defaults() {
        let skel = translate_source(
            "reps is \"r\" and comes from \"--reps\" with default 2. \
             For reps repetitions task 0 sends a 8 byte message to task 1.",
            "t",
        )
        .unwrap();
        let inst = SkeletonInstance::new(&skel, 2, &["--reps", "5"]).unwrap();
        let sends =
            ops(RankVm::new(inst, 0, 1)).iter().filter(|o| matches!(o, MpiOp::Send { .. })).count();
        assert_eq!(sends, 5);
    }

    #[test]
    fn ring_is_statically_resolved() {
        let skel = translate_source(
            "all tasks t asynchronously send a 64 byte message to task (t+1) mod num_tasks \
             then all tasks await completions.",
            "ring",
        )
        .unwrap();
        let inst = SkeletonInstance::new(&skel, 4, &[]).unwrap();
        assert!(inst.resolved.iter().any(|r| r.is_some()));
        let r2 = ops(RankVm::new(inst, 2, 1));
        assert_eq!(
            r2,
            vec![
                MpiOp::Init,
                MpiOp::Irecv { src: 1, bytes: 64, tag: 0 },
                MpiOp::Isend { dst: 3, bytes: 64, tag: 0 },
                MpiOp::WaitAll,
                MpiOp::Finalize,
            ]
        );
    }

    #[test]
    fn loop_variable_advances() {
        let skel = translate_source(
            "for each i in {1, ..., 3} task 0 sends a i byte message to task 1.",
            "t",
        )
        .unwrap();
        let inst = SkeletonInstance::new(&skel, 2, &[]).unwrap();
        let sizes: Vec<u64> = ops(RankVm::new(inst, 0, 1))
            .iter()
            .filter_map(|o| match o {
                MpiOp::Send { bytes, .. } => Some(*bytes),
                _ => None,
            })
            .collect();
        assert_eq!(sizes, vec![1, 2, 3]);
    }

    #[test]
    fn mesh_edges_are_skipped() {
        // 2x2x1 mesh: task 3 = (1,1,0); +x neighbor does not exist.
        let skel = Builder::new("mesh")
            .send_nb(
                conceptual::parser::parse_expr("MESH_NEIGHBOR(2,2,1, t, 1,0,0)").unwrap(),
                Expr::lit(8),
            )
            .build()
            .unwrap();
        let skel = Skeleton { name: skel.name, params: skel.params, code: skel.code };
        let inst = SkeletonInstance::new(&skel, 4, &[]).unwrap();
        let r3 = ops(RankVm::new(inst.clone(), 3, 1));
        // Rank 3 sends nothing (edge) but receives from rank 2.
        assert_eq!(
            r3,
            vec![MpiOp::Init, MpiOp::Irecv { src: 2, bytes: 8, tag: 0 }, MpiOp::Finalize]
        );
    }

    #[test]
    fn collectives_reach_all_ranks() {
        let skel = translate_source(
            "all tasks reduce a 1024 byte message to all tasks then \
             task 0 multicasts a 25 byte message to all other tasks then \
             all tasks synchronize.",
            "coll",
        )
        .unwrap();
        let inst = SkeletonInstance::new(&skel, 3, &[]).unwrap();
        for r in 0..3 {
            let o = ops(RankVm::new(inst.clone(), r, 1));
            assert_eq!(
                o,
                vec![
                    MpiOp::Init,
                    MpiOp::Allreduce { bytes: 1024 },
                    MpiOp::Bcast { root: 0, bytes: 25 },
                    MpiOp::Barrier,
                    MpiOp::Finalize,
                ]
            );
        }
    }

    #[test]
    fn random_traffic_is_one_sided_and_seed_stable() {
        let skel = Builder::new("ur")
            .loop_n(Expr::lit(10), |b| b.send_random(Expr::lit(10240), true))
            .build()
            .unwrap();
        let inst = SkeletonInstance::new(&skel, 8, &[]).unwrap();
        let a = ops(RankVm::new(inst.clone(), 3, 42));
        let b = ops(RankVm::new(inst.clone(), 3, 42));
        assert_eq!(a, b, "same seed, same stream");
        for o in &a {
            if let MpiOp::SyntheticSend { dst, .. } = o {
                assert_ne!(*dst, 3, "never sends to self");
                assert!(*dst < 8);
            }
        }
        assert_eq!(a.iter().filter(|o| matches!(o, MpiOp::SyntheticSend { .. })).count(), 10);
    }

    #[test]
    fn vm_clone_resumes_identically() {
        let skel = translate_source(
            "for 4 repetitions { all tasks t asynchronously send a 16 byte message \
             to task (t+1) mod num_tasks then all tasks await completions }.",
            "t",
        )
        .unwrap();
        let inst = SkeletonInstance::new(&skel, 4, &[]).unwrap();
        let mut vm = RankVm::new(inst, 1, 7);
        let mut prefix = Vec::new();
        for _ in 0..5 {
            prefix.push(vm.next_op().unwrap());
        }
        let fork = vm.clone();
        let rest_a: Vec<_> = vm.collect();
        let rest_b: Vec<_> = fork.collect();
        assert_eq!(rest_a, rest_b, "clone mid-stream must resume identically");
    }

    #[test]
    fn such_that_selectors() {
        let skel =
            translate_source("tasks t such that t is even send a 4 byte message to task t+1.", "t")
                .unwrap();
        let inst = SkeletonInstance::new(&skel, 4, &[]).unwrap();
        let r0 = ops(RankVm::new(inst.clone(), 0, 1));
        assert!(r0.contains(&MpiOp::Send { dst: 1, bytes: 4, tag: 0 }));
        let r1 = ops(RankVm::new(inst.clone(), 1, 1));
        assert!(r1.contains(&MpiOp::Recv { src: 0, bytes: 4, tag: 0 }));
        assert!(!r1.iter().any(|o| matches!(o, MpiOp::Send { .. })));
    }
}
