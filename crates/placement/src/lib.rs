//! # placement
//!
//! Job placement policies for dragonfly systems (paper §IV-C):
//!
//! * **Random Nodes (RN)** — each job gets a completely random set of
//!   compute nodes; nodes under one router tend to serve different jobs;
//! * **Random Routers (RR)** — each job gets a random set of routers and
//!   the nodes under each router consecutively, preventing intra-router
//!   contention between jobs;
//! * **Random Groups (RG)** — each job gets a random set of groups and
//!   the nodes inside consecutively, confining most traffic within the
//!   assigned groups.
//!
//! A [`Layout`] maps every job's MPI ranks to global node ids and provides
//! the reverse map used by the simulator and the per-app router-set
//! grouping used by the Fig 8 analysis.

use dragonfly::Topology;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Placement policy.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Placement {
    RandomNodes,
    RandomRouters,
    RandomGroups,
}

impl Placement {
    pub fn label(self) -> &'static str {
        match self {
            Placement::RandomNodes => "RN",
            Placement::RandomRouters => "RR",
            Placement::RandomGroups => "RG",
        }
    }

    /// All three policies, in the paper's order.
    pub fn all() -> [Placement; 3] {
        [Placement::RandomNodes, Placement::RandomRouters, Placement::RandomGroups]
    }
}

/// A job to place: name + number of ranks.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct JobRequest {
    pub name: String,
    pub ranks: u32,
}

impl JobRequest {
    pub fn new(name: &str, ranks: u32) -> JobRequest {
        JobRequest { name: name.to_string(), ranks }
    }
}

/// The result of placing a set of jobs on a system.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Layout {
    /// `rank_to_node[job][rank]` = global node id.
    pub rank_to_node: Vec<Vec<u32>>,
    /// `node_owner[node]` = Some((job, rank)).
    pub node_owner: Vec<Option<(u32, u32)>>,
}

impl Layout {
    /// Place `jobs` on the system with the given policy. Allocation is
    /// deterministic in `seed`. Errors if the system is too small.
    pub fn place(
        topo: &Topology,
        jobs: &[JobRequest],
        policy: Placement,
        seed: u64,
    ) -> Result<Layout, String> {
        let total_nodes = topo.cfg.total_nodes();
        let needed: u64 = jobs.iter().map(|j| j.ranks as u64).sum();
        if needed > total_nodes as u64 {
            return Err(format!("jobs need {needed} nodes, system has {total_nodes}"));
        }
        let mut rng = SmallRng::seed_from_u64(seed);

        // Build the node allocation order according to the policy, then
        // carve it into consecutive job slices.
        let order: Vec<u32> = match policy {
            Placement::RandomNodes => {
                let mut nodes: Vec<u32> = (0..total_nodes).collect();
                nodes.shuffle(&mut rng);
                nodes
            }
            Placement::RandomRouters => {
                let mut routers: Vec<u32> = (0..topo.cfg.total_routers()).collect();
                routers.shuffle(&mut rng);
                routers
                    .into_iter()
                    .flat_map(|r| {
                        (0..topo.cfg.nodes_per_router)
                            .map(move |t| r * topo.cfg.nodes_per_router + t)
                    })
                    .collect()
            }
            Placement::RandomGroups => {
                let mut groups: Vec<u32> = (0..topo.cfg.groups).collect();
                groups.shuffle(&mut rng);
                let npg = topo.cfg.nodes_per_group();
                groups.into_iter().flat_map(|g| (0..npg).map(move |i| g * npg + i)).collect()
            }
        };

        let mut layout = Layout {
            rank_to_node: Vec::with_capacity(jobs.len()),
            node_owner: vec![None; total_nodes as usize],
        };
        let mut next = 0usize;
        for (ji, job) in jobs.iter().enumerate() {
            let slice = &order[next..next + job.ranks as usize];
            next += job.ranks as usize;
            for (rank, &node) in slice.iter().enumerate() {
                layout.node_owner[node as usize] = Some((ji as u32, rank as u32));
            }
            layout.rank_to_node.push(slice.to_vec());
        }
        Ok(layout)
    }

    /// Node of a (job, rank).
    #[inline]
    pub fn node_of(&self, job: u32, rank: u32) -> u32 {
        self.rank_to_node[job as usize][rank as usize]
    }

    /// The set of routers serving a job (sorted, deduplicated) — the
    /// router clusters used by the Fig 8 analysis.
    pub fn routers_of_job(&self, topo: &Topology, job: u32) -> Vec<u32> {
        let mut v: Vec<u32> =
            self.rank_to_node[job as usize].iter().map(|&n| topo.node_router(n)).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// The set of groups serving a job.
    pub fn groups_of_job(&self, topo: &Topology, job: u32) -> Vec<u32> {
        let mut v: Vec<u32> =
            self.rank_to_node[job as usize].iter().map(|&n| topo.node_group(n)).collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dragonfly::DragonflyConfig;

    fn topo() -> Topology {
        Topology::build(DragonflyConfig::tiny_1d()) // 72 nodes, 2/router, 8/group
    }

    fn jobs() -> Vec<JobRequest> {
        vec![JobRequest::new("a", 10), JobRequest::new("b", 16)]
    }

    #[test]
    fn no_node_shared_between_jobs() {
        let topo = topo();
        for policy in Placement::all() {
            let l = Layout::place(&topo, &jobs(), policy, 42).unwrap();
            let mut seen = std::collections::HashSet::new();
            for job in &l.rank_to_node {
                for &n in job {
                    assert!(seen.insert(n), "{policy:?}: node {n} double-allocated");
                }
            }
            assert_eq!(seen.len(), 26);
            // Reverse map agrees.
            for (ji, job) in l.rank_to_node.iter().enumerate() {
                for (r, &n) in job.iter().enumerate() {
                    assert_eq!(l.node_owner[n as usize], Some((ji as u32, r as u32)));
                }
            }
        }
    }

    #[test]
    fn random_routers_fills_routers_consecutively() {
        let topo = topo();
        let l =
            Layout::place(&topo, &[JobRequest::new("a", 8)], Placement::RandomRouters, 7).unwrap();
        // 8 ranks over 2-node routers = exactly 4 routers, fully used.
        let routers = l.routers_of_job(&topo, 0);
        assert_eq!(routers.len(), 4);
    }

    #[test]
    fn random_groups_confines_job_to_few_groups() {
        let topo = topo(); // 8 nodes per group
        let l =
            Layout::place(&topo, &[JobRequest::new("a", 16)], Placement::RandomGroups, 7).unwrap();
        assert_eq!(l.groups_of_job(&topo, 0).len(), 2);
        // Random nodes would scatter much wider with high probability.
        let l =
            Layout::place(&topo, &[JobRequest::new("a", 16)], Placement::RandomNodes, 7).unwrap();
        assert!(l.groups_of_job(&topo, 0).len() > 2);
    }

    #[test]
    fn deterministic_in_seed() {
        let topo = topo();
        let a = Layout::place(&topo, &jobs(), Placement::RandomNodes, 1).unwrap();
        let b = Layout::place(&topo, &jobs(), Placement::RandomNodes, 1).unwrap();
        assert_eq!(a.rank_to_node, b.rank_to_node);
        let c = Layout::place(&topo, &jobs(), Placement::RandomNodes, 2).unwrap();
        assert_ne!(a.rank_to_node, c.rank_to_node);
    }

    #[test]
    fn rejects_oversubscription() {
        let topo = topo();
        assert!(Layout::place(&topo, &[JobRequest::new("big", 100)], Placement::RandomNodes, 1)
            .is_err());
    }
}
