//! Credit-based virtual-channel flow control — the higher-fidelity router
//! mode matching CODES' flit-level dragonfly model more closely than the
//! default busy-until queues (DESIGN.md substitution #2 names this as the
//! fidelity gap; this module closes most of it).
//!
//! Every router-to-router link carries `vcs` virtual channels; the
//! downstream input buffer holds `buffer_pkts` packets per VC, guarded by
//! credits held upstream. A packet occupies one downstream slot from the
//! moment it is transmitted until the downstream router accepts it for
//! its own transmission, at which point a credit flows back upstream.
//! Deadlock freedom comes from VC escalation: a packet uses
//! `min(hops, vcs − 1)` as its VC, so channel dependencies strictly
//! increase along any path and cannot cycle (the standard dragonfly
//! argument; `vcs = MAX_HOPS` makes the increase strict on every hop).
//!
//! Terminal (node) links are not credited: NIC buffers are modeled as
//! unbounded in both modes.

use crate::config::LinkClass;
use crate::packet::Packet;
use crate::router::{Forward, RouterState, Routing};
use crate::topology::{Port, RouterId, Topology};
use rand::rngs::SmallRng;
use ross::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Flow-control mode for the network.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum FlowControl {
    /// Per-output-port busy-until clocks, unbounded buffers (fast).
    #[default]
    BusyUntil,
    /// Credit-guarded finite buffers with VC escalation (high fidelity).
    CreditVc {
        /// Virtual channels per link. Use `Packet::MAX_HOPS` for strict
        /// escalation (deadlock-free by construction).
        vcs: u8,
        /// Downstream buffer slots per VC (in packets).
        buffer_pkts: u8,
    },
}

impl FlowControl {
    /// A reasonable high-fidelity default: strict VC escalation, 8-packet
    /// buffers per VC.
    pub fn credit_default() -> FlowControl {
        FlowControl::CreditVc { vcs: Packet::MAX_HOPS, buffer_pkts: 8 }
    }
}

/// What the event layer must do after a credit-mode router step.
#[derive(Clone, Debug, PartialEq)]
pub enum VcAction {
    /// Schedule the packet's arrival at its next hop / node.
    Deliver { fwd: Forward, pkt: Packet },
    /// Schedule a credit arrival at the upstream router.
    Credit { router: RouterId, port: Port, vc: u8, at: SimTime },
}

/// Per-router credit bookkeeping, used when the simulation runs in
/// [`FlowControl::CreditVc`] mode.
#[derive(Clone, Debug)]
pub struct CreditState {
    vcs: u8,
    /// `credits[port][vc]` — free downstream slots.
    credits: Vec<Vec<u8>>,
    /// `waiting[port][vc]` — packets that chose `port` but lack credit.
    /// Their upstream credit is withheld until they transmit (the input
    /// slot they sit in is still occupied).
    waiting: Vec<Vec<VecDeque<Packet>>>,
    /// Total packets currently queued for credit (diagnostics).
    pub queued_now: u32,
    /// Peak of `queued_now` (diagnostics).
    pub peak_queued: u32,
    /// Cumulative count of packets that had to wait for a credit
    /// (telemetry: each stall is one packet parked in `waiting`).
    pub stalls: u64,
}

impl CreditState {
    pub fn new(n_ports: usize, vcs: u8, buffer_pkts: u8) -> CreditState {
        CreditState {
            vcs,
            credits: vec![vec![buffer_pkts; vcs as usize]; n_ports],
            waiting: vec![vec![VecDeque::new(); vcs as usize]; n_ports],
            queued_now: 0,
            peak_queued: 0,
            stalls: 0,
        }
    }

    /// VC a packet uses on its *next* hop: escalates with hop count.
    #[inline]
    fn next_vc(&self, pkt: &Packet) -> u8 {
        pkt.hops.min(self.vcs - 1)
    }
}

/// The credit-mode router step: route `pkt`, transmit if a downstream
/// slot is free, otherwise queue it. `state` is the ordinary router state
/// (port clocks, counters); `credit` the credit bookkeeping.
#[allow(clippy::too_many_arguments)]
pub fn forward_vc(
    state: &mut RouterState,
    credit: &mut CreditState,
    now: SimTime,
    mut pkt: Packet,
    topo: &Topology,
    routing: Routing,
    rng: &mut SmallRng,
    out: &mut Vec<VcAction>,
) {
    state.windows.record(now, pkt.app, pkt.bytes as u64);
    let port = state.decide_port(now, &mut pkt, topo, routing, rng);
    try_transmit(state, credit, now, pkt, port, topo, out);
}

/// A credit returned to this router for (port, vc): release a waiting
/// packet if one exists, else bank the credit.
pub fn credit_arrived(
    state: &mut RouterState,
    credit: &mut CreditState,
    now: SimTime,
    port: Port,
    vc: u8,
    topo: &Topology,
    out: &mut Vec<VcAction>,
) {
    if let Some(pkt) = credit.waiting[port as usize][vc as usize].pop_front() {
        credit.queued_now -= 1;
        // The freed slot is immediately consumed by this packet.
        transmit_now(state, credit, now, pkt, port, topo, out);
    } else {
        credit.credits[port as usize][vc as usize] += 1;
    }
}

fn try_transmit(
    state: &mut RouterState,
    credit: &mut CreditState,
    now: SimTime,
    pkt: Packet,
    port: Port,
    topo: &Topology,
    out: &mut Vec<VcAction>,
) {
    let info = topo.ports(state.id)[port as usize];
    // Terminal links are uncredited.
    let needs_credit = info.class != LinkClass::Terminal;
    if needs_credit {
        let vc = credit.next_vc(&pkt) as usize;
        if credit.credits[port as usize][vc] == 0 {
            // The packet holds its upstream input slot while it waits.
            credit.waiting[port as usize][vc].push_back(pkt);
            credit.queued_now += 1;
            credit.peak_queued = credit.peak_queued.max(credit.queued_now);
            credit.stalls += 1;
            return;
        }
        credit.credits[port as usize][vc] -= 1;
    }
    transmit_now(state, credit, now, pkt, port, topo, out);
}

/// Unconditionally transmit (credit already consumed or not needed):
/// occupy the port, emit the delivery, and release this packet's upstream
/// credit (its input slot is now free).
fn transmit_now(
    state: &mut RouterState,
    credit: &mut CreditState,
    now: SimTime,
    mut pkt: Packet,
    port: Port,
    topo: &Topology,
    out: &mut Vec<VcAction>,
) {
    // Upstream credit: released when the packet leaves the input stage.
    // `pkt.vc` still holds the VC used on the inbound link.
    if pkt.up_router != u32::MAX {
        let up_class = topo.ports(pkt.up_router)[pkt.up_port as usize].class;
        // The credit travels back over the same link.
        let at = now + SimDuration::from_ns(topo.cfg.latency_ns(up_class));
        out.push(VcAction::Credit { router: pkt.up_router, port: pkt.up_port, vc: pkt.vc, at });
    }
    // Stamp the coordinates of *this* hop before handing the packet on.
    pkt.vc = credit.next_vc(&pkt);
    pkt.up_router = state.id;
    pkt.up_port = port;
    let fwd = state.transmit(now, &mut pkt, port, topo);
    out.push(VcAction::Deliver { fwd, pkt });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DragonflyConfig;
    use rand::SeedableRng;

    fn setup() -> (Topology, Vec<RouterState>, Vec<CreditState>, SmallRng) {
        let topo = Topology::build(DragonflyConfig::tiny_1d());
        let routers: Vec<RouterState> = (0..topo.cfg.total_routers())
            .map(|r| RouterState::new(r, topo.ports(r).len(), 0, 8))
            .collect();
        let credits: Vec<CreditState> = (0..topo.cfg.total_routers())
            .map(|r| CreditState::new(topo.ports(r).len(), Packet::MAX_HOPS, 2))
            .collect();
        (topo, routers, credits, SmallRng::seed_from_u64(5))
    }

    fn mk_pkt(src: u32, dst: u32, id: u64) -> Packet {
        Packet {
            app: 0,
            kind: 0,
            tag: 0,
            aux: 0,
            src_node: src,
            dst_node: dst,
            bytes: 1024,
            msg_id: id,
            msg_bytes: 1024,
            created: SimTime::ZERO,
            intermediate: None,
            gateway: None,
            routed: false,
            hops: 0,
            up_router: u32::MAX,
            up_port: 0,
            vc: 0,
        }
    }

    /// Drive a set of injected packets through the credit network until
    /// quiescent; returns delivered packet count.
    fn drain(
        topo: &Topology,
        routers: &mut [RouterState],
        credits: &mut [CreditState],
        rng: &mut SmallRng,
        inject: Vec<(u32, Packet)>,
    ) -> usize {
        // (time, router, event) — a tiny local event loop.
        enum Ev {
            Pkt(Packet),
            Credit { port: Port, vc: u8 },
        }
        let mut q: std::collections::BinaryHeap<(std::cmp::Reverse<u64>, u64, u32, usize)> =
            Default::default();
        let mut evs: Vec<Option<Ev>> = Vec::new();
        let mut seq = 0u64;
        let mut push = |q: &mut std::collections::BinaryHeap<_>,
                        evs: &mut Vec<Option<Ev>>,
                        t: SimTime,
                        r: u32,
                        e: Ev| {
            evs.push(Some(e));
            q.push((std::cmp::Reverse(t.as_ns()), seq, r, evs.len() - 1));
            seq += 1;
        };
        for (r, p) in inject {
            push(&mut q, &mut evs, SimTime::ZERO, r, Ev::Pkt(p));
        }
        let mut delivered = 0usize;
        let mut actions = Vec::new();
        while let Some((std::cmp::Reverse(t), _, r, ei)) = q.pop() {
            let now = SimTime::from_ns(t);
            actions.clear();
            match evs[ei].take().unwrap() {
                Ev::Pkt(pkt) => forward_vc(
                    &mut routers[r as usize],
                    &mut credits[r as usize],
                    now,
                    pkt,
                    topo,
                    Routing::Minimal,
                    rng,
                    &mut actions,
                ),
                Ev::Credit { port, vc } => credit_arrived(
                    &mut routers[r as usize],
                    &mut credits[r as usize],
                    now,
                    port,
                    vc,
                    topo,
                    &mut actions,
                ),
            }
            for a in actions.drain(..) {
                match a {
                    VcAction::Deliver { fwd, pkt } => match fwd {
                        Forward::ToNode { .. } => delivered += 1,
                        Forward::ToRouter { router, arrive } => {
                            push(&mut q, &mut evs, arrive, router, Ev::Pkt(pkt));
                        }
                    },
                    VcAction::Credit { router, port, vc, at } => {
                        push(&mut q, &mut evs, at, router, Ev::Credit { port, vc });
                    }
                }
            }
        }
        delivered
    }

    #[test]
    fn every_packet_delivered_under_credits() {
        let (topo, mut routers, mut credits, mut rng) = setup();
        let n = topo.cfg.total_nodes();
        let inject: Vec<(u32, Packet)> = (0..n)
            .map(|s| {
                let dst = (s + n / 2) % n;
                (topo.node_router(s), mk_pkt(s, dst, s as u64))
            })
            .collect();
        let total = inject.len();
        let delivered = drain(&topo, &mut routers, &mut credits, &mut rng, inject);
        assert_eq!(delivered, total);
    }

    #[test]
    fn burst_through_one_gateway_queues_then_drains() {
        let (topo, mut routers, mut credits, mut rng) = setup();
        // Many packets from group 0 to group 1: with 2-slot buffers, some
        // must queue awaiting credit, yet all deliver.
        let npg = topo.cfg.nodes_per_group();
        let inject: Vec<(u32, Packet)> = (0..npg * 4)
            .map(|i| {
                let s = i % npg;
                let d = npg + (i % npg);
                (topo.node_router(s), mk_pkt(s, d, i as u64))
            })
            .collect();
        let total = inject.len();
        let delivered = drain(&topo, &mut routers, &mut credits, &mut rng, inject);
        assert_eq!(delivered, total);
        let peak: u32 = credits.iter().map(|c| c.peak_queued).max().unwrap();
        assert!(peak > 0, "bursty traffic should exercise the credit queues");
        for c in &credits {
            assert_eq!(c.queued_now, 0, "all queues must drain");
        }
    }

    #[test]
    fn credits_are_conserved() {
        let (topo, mut routers, mut credits, mut rng) = setup();
        let inject: Vec<(u32, Packet)> = (0..72u32)
            .map(|s| (topo.node_router(s), mk_pkt(s, (s * 7 + 3) % 72, s as u64)))
            .collect();
        drain(&topo, &mut routers, &mut credits, &mut rng, inject);
        // After quiescence every credit is back to its initial value.
        for (r, c) in credits.iter().enumerate() {
            for (p, per_vc) in c.credits.iter().enumerate() {
                let class = topo.ports(r as u32)[p].class;
                if class != LinkClass::Terminal {
                    for (vc, &v) in per_vc.iter().enumerate() {
                        assert_eq!(v, 2, "router {r} port {p} vc {vc}");
                    }
                }
            }
        }
    }
}
