//! System configurations (paper Table II).
//!
//! | Topology | Radix | Groups | Routers/Group | Nodes/Router | Nodes/Group | Global/Router | System |
//! |----------|-------|--------|---------------|--------------|-------------|---------------|--------|
//! | 1D       | 48    | 33     | 32            | 8            | 256         | 4             | 8448   |
//! | 2D       | 48    | 22     | 96 (6×16)     | 4            | 384         | 7             | 8448   |
//!
//! Link bandwidths (§IV-A): terminal 16 GiB/s, local 4.69 GiB/s, global
//! 5.25 GiB/s.

use crate::credit::FlowControl;
use serde::{Deserialize, Serialize};

/// Which dragonfly variant.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Flavor {
    /// Routers within a group are all-to-all connected (Kim et al., the
    /// topology planned for exascale systems).
    OneD,
    /// Routers within a group form a row/column grid with all-to-all
    /// connections along each row and each column (Cray Cascade — Cori,
    /// Theta).
    TwoD,
}

/// Link classes, used for bandwidth/latency selection and load accounting
/// (Table VI).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum LinkClass {
    Terminal,
    Local,
    Global,
}

/// Full parameterization of a dragonfly system.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DragonflyConfig {
    pub flavor: Flavor,
    pub groups: u32,
    /// Router grid within a group: `rows × cols` (1D uses `1 × routers`).
    pub rows: u32,
    pub cols: u32,
    pub nodes_per_router: u32,
    pub global_per_router: u32,
    /// Terminal (node-router) link bandwidth, GiB/s.
    pub terminal_gib_s: f64,
    /// Local (intra-group) link bandwidth, GiB/s.
    pub local_gib_s: f64,
    /// Global (inter-group) link bandwidth, GiB/s.
    pub global_gib_s: f64,
    /// Per-link propagation latencies, ns.
    pub terminal_latency_ns: u64,
    pub local_latency_ns: u64,
    pub global_latency_ns: u64,
    /// Fixed per-hop router traversal delay, ns.
    pub router_delay_ns: u64,
    /// Maximum transfer unit: messages are segmented into packets of at
    /// most this many bytes.
    pub packet_bytes: u32,
    /// Router flow-control model (busy-until queues or credit/VC).
    pub flow: FlowControl,
}

impl DragonflyConfig {
    /// The paper's 1D dragonfly (Table II, row 1): 33 groups × 32 routers
    /// × 8 nodes = 8,448 nodes.
    pub fn dragonfly_1d() -> DragonflyConfig {
        DragonflyConfig {
            flavor: Flavor::OneD,
            groups: 33,
            rows: 1,
            cols: 32,
            nodes_per_router: 8,
            global_per_router: 4,
            ..DragonflyConfig::base()
        }
    }

    /// The paper's 2D dragonfly (Table II, row 2): 22 groups × 96 routers
    /// (6×16) × 4 nodes = 8,448 nodes.
    pub fn dragonfly_2d() -> DragonflyConfig {
        DragonflyConfig {
            flavor: Flavor::TwoD,
            groups: 22,
            rows: 6,
            cols: 16,
            nodes_per_router: 4,
            global_per_router: 7,
            ..DragonflyConfig::base()
        }
    }

    /// A ×16-scale 1D system for the Quick experiment profile: 17 groups ×
    /// 8 routers × 4 nodes = 544 nodes, 2 parallel global links per group
    /// pair — the same structural ratios as the paper system.
    pub fn small_1d() -> DragonflyConfig {
        DragonflyConfig {
            flavor: Flavor::OneD,
            groups: 17,
            rows: 1,
            cols: 8,
            nodes_per_router: 4,
            global_per_router: 2,
            ..DragonflyConfig::base()
        }
    }

    /// A ×16-scale 2D system: 17 groups × (2×8) routers × 2 nodes = 544
    /// nodes. Like the paper's 2D system it has more routers per group
    /// (fewer nodes each) and substantially more local and global links
    /// than its 1D sibling (2176 vs 952 local, 816 vs 272 global,
    /// directed).
    pub fn small_2d() -> DragonflyConfig {
        DragonflyConfig {
            flavor: Flavor::TwoD,
            groups: 17,
            rows: 2,
            cols: 8,
            nodes_per_router: 2,
            global_per_router: 3,
            ..DragonflyConfig::base()
        }
    }

    /// A small 1D instance (9 groups × 4 routers × 2 nodes = 72 nodes) for
    /// tests and examples.
    pub fn tiny_1d() -> DragonflyConfig {
        DragonflyConfig {
            flavor: Flavor::OneD,
            groups: 9,
            rows: 1,
            cols: 4,
            nodes_per_router: 2,
            global_per_router: 2,
            ..DragonflyConfig::base()
        }
    }

    /// A small 2D instance (7 groups × 2×3 routers × 2 nodes = 84 nodes).
    pub fn tiny_2d() -> DragonflyConfig {
        DragonflyConfig {
            flavor: Flavor::TwoD,
            groups: 7,
            rows: 2,
            cols: 3,
            nodes_per_router: 2,
            global_per_router: 1,
            ..DragonflyConfig::base()
        }
    }

    fn base() -> DragonflyConfig {
        DragonflyConfig {
            flavor: Flavor::OneD,
            groups: 0,
            rows: 0,
            cols: 0,
            nodes_per_router: 0,
            global_per_router: 0,
            terminal_gib_s: 16.0,
            local_gib_s: 4.69,
            global_gib_s: 5.25,
            terminal_latency_ns: 100,
            local_latency_ns: 100,
            global_latency_ns: 500,
            router_delay_ns: 50,
            packet_bytes: 4096,
            flow: FlowControl::BusyUntil,
        }
    }

    pub fn routers_per_group(&self) -> u32 {
        self.rows * self.cols
    }

    pub fn total_routers(&self) -> u32 {
        self.groups * self.routers_per_group()
    }

    pub fn nodes_per_group(&self) -> u32 {
        self.routers_per_group() * self.nodes_per_router
    }

    pub fn total_nodes(&self) -> u32 {
        self.groups * self.nodes_per_group()
    }

    /// Local (intra-group) ports per router.
    pub fn local_ports(&self) -> u32 {
        match self.flavor {
            Flavor::OneD => self.routers_per_group() - 1,
            Flavor::TwoD => (self.rows - 1) + (self.cols - 1),
        }
    }

    /// Router radix implied by the configuration.
    pub fn radix(&self) -> u32 {
        self.nodes_per_router + self.local_ports() + self.global_per_router
    }

    /// Parallel global links between every pair of groups. The wiring
    /// requires `routers_per_group × global_per_router` to be divisible by
    /// `groups − 1`.
    pub fn links_per_group_pair(&self) -> u32 {
        let total = self.routers_per_group() * self.global_per_router;
        total / (self.groups - 1)
    }

    /// Validate structural invariants; returns a description of the system.
    pub fn check(&self) -> Result<(), String> {
        if self.groups < 2 {
            return Err("need at least 2 groups".into());
        }
        if self.rows == 0 || self.cols == 0 || self.nodes_per_router == 0 {
            return Err("empty group geometry".into());
        }
        if self.flavor == Flavor::OneD && self.rows != 1 {
            return Err("1D dragonfly must have rows == 1".into());
        }
        let total = self.routers_per_group() * self.global_per_router;
        if !total.is_multiple_of(self.groups - 1) {
            return Err(format!(
                "global channels per group ({total}) not divisible by peer groups ({})",
                self.groups - 1
            ));
        }
        if self.packet_bytes == 0 {
            return Err("packet_bytes must be positive".into());
        }
        Ok(())
    }

    /// Bandwidth of a link class, GiB/s.
    pub fn bandwidth(&self, class: LinkClass) -> f64 {
        match class {
            LinkClass::Terminal => self.terminal_gib_s,
            LinkClass::Local => self.local_gib_s,
            LinkClass::Global => self.global_gib_s,
        }
    }

    /// Propagation latency of a link class, ns.
    pub fn latency_ns(&self, class: LinkClass) -> u64 {
        match class {
            LinkClass::Terminal => self.terminal_latency_ns,
            LinkClass::Local => self.local_latency_ns,
            LinkClass::Global => self.global_latency_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_1d() {
        let c = DragonflyConfig::dragonfly_1d();
        c.check().unwrap();
        assert_eq!(c.total_nodes(), 8448);
        assert_eq!(c.routers_per_group(), 32);
        assert_eq!(c.nodes_per_group(), 256);
        assert_eq!(c.total_routers(), 1056);
        assert_eq!(c.radix(), 8 + 31 + 4);
        assert!(c.radix() <= 48);
        assert_eq!(c.links_per_group_pair(), 4);
    }

    #[test]
    fn table2_2d() {
        let c = DragonflyConfig::dragonfly_2d();
        c.check().unwrap();
        assert_eq!(c.total_nodes(), 8448);
        assert_eq!(c.routers_per_group(), 96);
        assert_eq!(c.nodes_per_group(), 384);
        assert_eq!(c.total_routers(), 2112);
        assert_eq!(c.radix(), 4 + 20 + 7);
        assert!(c.radix() <= 48);
        assert_eq!(c.links_per_group_pair(), 32);
    }

    #[test]
    fn tiny_configs_are_valid() {
        DragonflyConfig::tiny_1d().check().unwrap();
        DragonflyConfig::tiny_2d().check().unwrap();
    }

    #[test]
    fn small_configs_match_quick_profile() {
        let c1 = DragonflyConfig::small_1d();
        c1.check().unwrap();
        assert_eq!(c1.total_nodes(), 544);
        assert_eq!(c1.links_per_group_pair(), 1);
        let c2 = DragonflyConfig::small_2d();
        c2.check().unwrap();
        assert_eq!(c2.total_nodes(), 544);
        assert_eq!(c2.links_per_group_pair(), 3);
        assert!(c2.radix() <= 48);
        // The 2D system is link-richer, as in the paper (Table VI logic).
        let locals = |c: &DragonflyConfig| c.total_routers() * c.local_ports();
        let globals = |c: &DragonflyConfig| c.total_routers() * c.global_per_router;
        assert!(locals(&c2) > locals(&c1));
        assert!(globals(&c2) > globals(&c1));
    }

    #[test]
    fn check_rejects_bad_geometry() {
        let mut c = DragonflyConfig::dragonfly_1d();
        c.groups = 1;
        assert!(c.check().is_err());
        let mut c = DragonflyConfig::dragonfly_1d();
        c.rows = 2;
        assert!(c.check().is_err());
        let mut c = DragonflyConfig::dragonfly_1d();
        c.groups = 34; // 128 channels not divisible by 33 peer groups
        assert!(c.check().is_err());
    }
}
