//! The unit of network traffic.

use ross::SimTime;

/// A packet in flight. Messages are segmented into packets of at most
/// `cfg.packet_bytes`; the receiver reassembles them by `msg_id`.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Packet {
    /// Application (job) index — drives per-app router counters (Fig 8).
    pub app: u8,
    /// Upper-layer message kind (data / rendezvous control / synthetic…).
    /// Opaque to the network.
    pub kind: u8,
    /// Upper-layer message tag. Opaque to the network.
    pub tag: u32,
    /// Upper-layer auxiliary word (e.g. rendezvous payload size). Opaque
    /// to the network.
    pub aux: u64,
    pub src_node: u32,
    pub dst_node: u32,
    /// Payload bytes in this packet.
    pub bytes: u32,
    /// Unique message id (assigned by the sending node).
    pub msg_id: u64,
    /// Total bytes of the whole message (for reassembly).
    pub msg_bytes: u64,
    /// When the message entered the NIC send queue (latency metric origin).
    pub created: SimTime,
    /// Valiant intermediate group, when adaptive routing chose a
    /// non-minimal path. Cleared on arrival in that group.
    pub intermediate: Option<u32>,
    /// Gateway router chosen for the current group traversal; pinning it
    /// keeps the path minimal while local hops approach the gateway.
    /// Cleared on every group change.
    pub gateway: Option<u32>,
    /// Set once the injection router has made its UGAL decision, so the
    /// packet is never re-diverted.
    pub routed: bool,
    /// Router-to-router hops taken so far.
    pub hops: u8,
    /// Credit-mode bookkeeping: the router and port that transmitted this
    /// packet on its most recent hop (`u32::MAX` = injected by a NIC).
    pub up_router: u32,
    pub up_port: u16,
    /// Credit-mode bookkeeping: the virtual channel used on the most
    /// recent hop.
    pub vc: u8,
}

impl Packet {
    /// Per-hop safety valve: a packet bouncing more than this many hops
    /// indicates a routing bug.
    pub const MAX_HOPS: u8 = 12;
}
