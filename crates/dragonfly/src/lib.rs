//! # dragonfly
//!
//! CODES-style dragonfly network models for the Union reproduction:
//!
//! * [`config::DragonflyConfig`] — the paper's Table II systems (1D: 33
//!   groups of 32 all-to-all routers; 2D: 22 groups of 6×16 row/column
//!   routers) plus small test instances;
//! * [`topology::Topology`] — deterministic wiring with parallel global
//!   links between every group pair;
//! * [`router::RouterState`] — a packet-level router with per-port FIFO
//!   backlog clocks, minimal and UGAL-adaptive routing, per-app windowed
//!   counters (Fig 8), and per-port byte totals (Table VI).
//!
//! The router is a pure state machine: the `codes` crate embeds it in a
//! ROSS logical process and turns [`router::Forward`] decisions into
//! events.

pub mod config;
pub mod credit;
pub mod packet;
pub mod router;
pub mod topology;

pub use config::{DragonflyConfig, Flavor, LinkClass};
pub use credit::{credit_arrived, forward_vc, CreditState, FlowControl, VcAction};
pub use packet::Packet;
pub use router::{Forward, RouterState, Routing, WindowCounters};
pub use topology::{GroupId, NodeId, Peer, Port, PortInfo, RouterId, Topology};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use ross::SimTime;

    fn deliverable(cfg: DragonflyConfig, routing: Routing, src: u32, dst: u32, seed: u64) {
        let topo = Topology::build(cfg);
        let mut routers: Vec<RouterState> = (0..topo.cfg.total_routers())
            .map(|r| RouterState::new(r, topo.ports(r).len(), 0, 8))
            .collect();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut pkt = Packet {
            app: 0,
            kind: 0,
            tag: 0,
            aux: 0,
            src_node: src,
            dst_node: dst,
            bytes: 512,
            msg_id: 0,
            msg_bytes: 512,
            created: SimTime::ZERO,
            intermediate: None,
            gateway: None,
            routed: false,
            hops: 0,
            up_router: u32::MAX,
            up_port: 0,
            vc: 0,
        };
        let mut at = topo.node_router(src);
        let mut now = SimTime::ZERO;
        loop {
            match routers[at as usize].forward(now, &mut pkt, &topo, routing, &mut rng) {
                Forward::ToNode { node, .. } => {
                    assert_eq!(node, dst);
                    return;
                }
                Forward::ToRouter { router, arrive } => {
                    at = router;
                    now = arrive;
                    assert!(pkt.hops < Packet::MAX_HOPS, "loop: {pkt:?}");
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn any_pair_delivers_tiny_1d(src in 0u32..72, dst in 0u32..72, seed in 0u64..100,
                                     adaptive in proptest::bool::ANY) {
            let routing = if adaptive { Routing::Adaptive } else { Routing::Minimal };
            deliverable(DragonflyConfig::tiny_1d(), routing, src, dst, seed);
        }

        #[test]
        fn any_pair_delivers_tiny_2d(src in 0u32..84, dst in 0u32..84, seed in 0u64..100,
                                     adaptive in proptest::bool::ANY) {
            let routing = if adaptive { Routing::Adaptive } else { Routing::Minimal };
            deliverable(DragonflyConfig::tiny_2d(), routing, src, dst, seed);
        }
    }
}
