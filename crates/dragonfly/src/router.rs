//! The router model: per-output-port FIFO queueing with congestion-aware
//! (UGAL-style) adaptive routing.
//!
//! CODES models flit-level virtual-channel credit flow control; we model
//! packets against per-port `busy_until` clocks (see DESIGN.md
//! substitution #2). A port's *queue depth* — how far its clock is ahead
//! of now — is the congestion signal used by adaptive routing, standing in
//! for CODES' VC-occupancy signal. Buffers are unbounded.

use crate::packet::Packet;
use crate::topology::{Peer, Port, RouterId, Topology};
use rand::rngs::SmallRng;
use rand::Rng;
use ross::{SimDuration, SimTime};

/// Routing algorithm (paper §IV-C).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Routing {
    /// Always the minimal path.
    Minimal,
    /// UGAL-L: at the injection router, compare the minimal path against a
    /// Valiant detour through a random intermediate group using local
    /// queue depths scaled by hop counts.
    Adaptive,
}

impl Routing {
    pub fn label(self) -> &'static str {
        match self {
            Routing::Minimal => "MIN",
            Routing::Adaptive => "ADP",
        }
    }
}

/// Windowed per-application byte counters (paper Fig 8 instrumentation:
/// "a packet counter for each application in the router module").
#[derive(Clone, Debug, Default)]
pub struct WindowCounters {
    /// Window length; 0 disables collection.
    pub window_ns: u64,
    /// `counts[window][app]` = bytes received.
    pub counts: Vec<Vec<u64>>,
    pub max_apps: usize,
}

impl WindowCounters {
    pub fn new(window_ns: u64, max_apps: usize) -> WindowCounters {
        WindowCounters { window_ns, counts: Vec::new(), max_apps }
    }

    #[inline]
    pub fn record(&mut self, now: SimTime, app: u8, bytes: u64) {
        if self.window_ns == 0 {
            return;
        }
        let w = (now.as_ns() / self.window_ns) as usize;
        if self.counts.len() <= w {
            self.counts.resize_with(w + 1, || vec![0; self.max_apps]);
        }
        if (app as usize) < self.max_apps {
            self.counts[w][app as usize] += bytes;
        }
    }
}

/// What the router decided to do with a packet.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Forward {
    /// Send to a peer router: schedule arrival there at `arrive`.
    ToRouter { router: RouterId, arrive: SimTime },
    /// Deliver to a terminal node at `arrive`.
    ToNode { node: u32, arrive: SimTime },
}

/// Mutable per-router simulation state. Embedded in a router LP; `Clone`
/// for Time Warp state saving.
#[derive(Clone, Debug)]
pub struct RouterState {
    pub id: RouterId,
    /// Earliest time each output port is free.
    busy_until: Vec<SimTime>,
    /// Total bytes forwarded per port (Table VI link loads).
    pub port_bytes: Vec<u64>,
    /// Per-app windowed receive counters (Fig 8).
    pub windows: WindowCounters,
}

impl RouterState {
    pub fn new(id: RouterId, n_ports: usize, window_ns: u64, max_apps: usize) -> RouterState {
        RouterState {
            id,
            busy_until: vec![SimTime::ZERO; n_ports],
            port_bytes: vec![0; n_ports],
            windows: WindowCounters::new(window_ns, max_apps),
        }
    }

    /// Queue depth (ns of backlog) of an output port.
    #[inline]
    fn queue_ns(&self, now: SimTime, port: Port) -> u64 {
        self.busy_until[port as usize].saturating_since(now).as_ns()
    }

    /// Process a packet arriving at this router at `now`: count it, make
    /// the routing decision, occupy the chosen output port, and return
    /// where and when the packet lands next.
    pub fn forward(
        &mut self,
        now: SimTime,
        pkt: &mut Packet,
        topo: &Topology,
        routing: Routing,
        rng: &mut SmallRng,
    ) -> Forward {
        self.windows.record(now, pkt.app, pkt.bytes as u64);
        let port = self.decide_port(now, pkt, topo, routing, rng);
        self.transmit(now, pkt, port, topo)
    }

    /// Occupy `port` for `pkt` and compute the peer arrival.
    pub(crate) fn transmit(
        &mut self,
        now: SimTime,
        pkt: &mut Packet,
        port: Port,
        topo: &Topology,
    ) -> Forward {
        let info = topo.ports(self.id)[port as usize];
        let arrive = self.occupy(now, port, pkt.bytes, topo);
        match info.peer {
            Peer::Node(node) => Forward::ToNode { node, arrive },
            Peer::Router { router, .. } => {
                pkt.hops += 1;
                Forward::ToRouter { router, arrive }
            }
        }
    }

    /// The routing decision only: pick the output port for `pkt`,
    /// updating its routing state (UGAL choice, pinned gateway, Valiant
    /// phase) but not the port clocks.
    pub fn decide_port(
        &mut self,
        now: SimTime,
        pkt: &mut Packet,
        topo: &Topology,
        routing: Routing,
        rng: &mut SmallRng,
    ) -> Port {
        debug_assert!(pkt.hops < Packet::MAX_HOPS, "packet looping: {pkt:?}");
        let dst_router = topo.node_router(pkt.dst_node);
        // Terminal delivery.
        if dst_router == self.id {
            return topo.node_terminal_port(pkt.dst_node);
        }

        // UGAL decision, once, at the injection router.
        if !pkt.routed {
            pkt.routed = true;
            if routing == Routing::Adaptive {
                self.ugal_decide(now, pkt, topo, rng);
            }
        }

        let my_group = topo.router_group(self.id);
        // Valiant phase ends on arrival in the intermediate group.
        if pkt.intermediate == Some(my_group) {
            pkt.intermediate = None;
        }
        let target_group = pkt.intermediate.unwrap_or_else(|| topo.router_group(dst_router));

        let port = if my_group == target_group {
            // Intra-group: head straight for the destination router (the
            // Valiant phase is over once we are in the target group).
            pkt.intermediate = None;
            pkt.gateway = None;
            self.intra_group_port(now, dst_router, topo, routing, rng)
        } else {
            // Inter-group: pick a gateway owning a link to the target
            // group, pin it in the packet (so subsequent local hops keep
            // approaching the same exit), then head for it.
            let gws = topo.gateways(my_group, target_group);
            debug_assert!(!gws.is_empty(), "no gateways {my_group}->{target_group}");
            let valid = |gw: u32| gws.iter().any(|&(r, _)| r == gw);
            let gw = match pkt.gateway {
                Some(gw) if topo.router_group(gw) == my_group && valid(gw) => gw,
                _ => {
                    let (gw, _) = match routing {
                        Routing::Minimal => gws[rng.gen_range(0..gws.len())],
                        Routing::Adaptive => {
                            // Least-backlogged first hop among candidates.
                            *gws.iter()
                                .min_by_key(|&&(r, _)| {
                                    if r == self.id {
                                        0
                                    } else {
                                        let p = self.first_hop_port(r, topo, rng);
                                        self.queue_ns(now, p)
                                    }
                                })
                                .unwrap()
                        }
                    };
                    pkt.gateway = Some(gw);
                    gw
                }
            };
            if gw == self.id {
                let (_, p) = *gws.iter().find(|&&(r, _)| r == self.id).unwrap();
                pkt.gateway = None; // leaving the group
                p
            } else {
                self.first_hop_port(gw, topo, rng)
            }
        };
        port
    }

    /// Occupy `port` for the packet's serialization time; returns the
    /// arrival time at the peer (serialization + propagation + peer router
    /// delay).
    pub(crate) fn occupy(
        &mut self,
        now: SimTime,
        port: Port,
        bytes: u32,
        topo: &Topology,
    ) -> SimTime {
        let info = topo.ports(self.id)[port as usize];
        let ser = SimDuration::transfer_time(bytes as u64, topo.cfg.bandwidth(info.class));
        let start = self.busy_until[port as usize].max(now);
        let done = start + ser;
        self.busy_until[port as usize] = done;
        self.port_bytes[port as usize] += bytes as u64;
        done + SimDuration::from_ns(topo.cfg.latency_ns(info.class))
            + SimDuration::from_ns(topo.cfg.router_delay_ns)
    }

    /// The output port for the first hop from this router toward `target`
    /// in the same group (direct if connected; otherwise via a corner in
    /// 2D).
    fn first_hop_port(&self, target: RouterId, topo: &Topology, rng: &mut SmallRng) -> Port {
        if let Some(p) = topo.local_port_to(self.id, target) {
            return p;
        }
        let corners = topo.corners(self.id, target);
        debug_assert!(!corners.is_empty(), "unreachable local target {target}");
        let c = corners[rng.gen_range(0..corners.len())];
        topo.local_port_to(self.id, c).expect("corner must be adjacent")
    }

    /// Intra-group routing toward `dst_router`: direct link if present;
    /// in 2D pick a corner (less-backlogged under adaptive routing,
    /// row-first under minimal).
    fn intra_group_port(
        &self,
        now: SimTime,
        dst_router: RouterId,
        topo: &Topology,
        routing: Routing,
        rng: &mut SmallRng,
    ) -> Port {
        if let Some(p) = topo.local_port_to(self.id, dst_router) {
            return p;
        }
        let corners = topo.corners(self.id, dst_router);
        debug_assert!(!corners.is_empty());
        let chosen = match routing {
            // Row-first: corners[0] is (my_row, dst_col).
            Routing::Minimal => corners[0],
            Routing::Adaptive => *corners
                .iter()
                .min_by_key(|&&c| {
                    let p = topo.local_port_to(self.id, c).unwrap();
                    self.queue_ns(now, p)
                })
                .unwrap(),
        };
        let _ = rng;
        topo.local_port_to(self.id, chosen).unwrap()
    }

    /// UGAL-L: choose minimal vs Valiant using local queue depths scaled
    /// by path-length estimates.
    fn ugal_decide(&self, now: SimTime, pkt: &mut Packet, topo: &Topology, rng: &mut SmallRng) {
        let dst_router = topo.node_router(pkt.dst_node);
        let my_group = topo.router_group(self.id);
        let dst_group = topo.router_group(dst_router);
        if my_group == dst_group || topo.cfg.groups < 3 {
            return; // intra-group adaptivity is handled per hop
        }
        // Minimal candidate: cheapest first hop toward any gateway.
        let gws = topo.gateways(my_group, dst_group);
        let q_min = gws
            .iter()
            .map(|&(r, p)| {
                if r == self.id {
                    self.queue_ns(now, p)
                } else {
                    let mut rng2 = rng.clone();
                    self.queue_ns(now, self.first_hop_port(r, topo, &mut rng2))
                }
            })
            .min()
            .unwrap_or(0);
        // Valiant candidate: a random intermediate group.
        let mut gi = rng.gen_range(0..topo.cfg.groups);
        while gi == my_group || gi == dst_group {
            gi = rng.gen_range(0..topo.cfg.groups);
        }
        let gws_v = topo.gateways(my_group, gi);
        let q_val = gws_v
            .iter()
            .map(|&(r, p)| {
                if r == self.id {
                    self.queue_ns(now, p)
                } else {
                    let mut rng2 = rng.clone();
                    self.queue_ns(now, self.first_hop_port(r, topo, &mut rng2))
                }
            })
            .min()
            .unwrap_or(0);

        let h_min = topo.min_hops_estimate(self.id, dst_router) as u64;
        // Valiant path ≈ hops to the intermediate group plus hops onward.
        let h_val = 2 * h_min;
        // Small bias toward minimal avoids detours on an idle network.
        if q_val * h_val + 100 < q_min * h_min {
            pkt.intermediate = Some(gi);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DragonflyConfig;
    use rand::SeedableRng;

    fn setup(cfg: DragonflyConfig) -> (Topology, Vec<RouterState>, SmallRng) {
        let topo = Topology::build(cfg);
        let routers: Vec<RouterState> = (0..topo.cfg.total_routers())
            .map(|r| RouterState::new(r, topo.ports(r).len(), 0, 8))
            .collect();
        (topo, routers, SmallRng::seed_from_u64(7))
    }

    fn mk_packet(src: u32, dst: u32) -> Packet {
        Packet {
            app: 0,
            kind: 0,
            tag: 0,
            aux: 0,
            src_node: src,
            dst_node: dst,
            bytes: 1024,
            msg_id: 1,
            msg_bytes: 1024,
            created: SimTime::ZERO,
            intermediate: None,
            gateway: None,
            routed: false,
            hops: 0,
            up_router: u32::MAX,
            up_port: 0,
            vc: 0,
        }
    }

    /// Walk a packet from src to dst through the router states; returns
    /// hop count.
    fn walk(
        topo: &Topology,
        routers: &mut [RouterState],
        rng: &mut SmallRng,
        routing: Routing,
        src: u32,
        dst: u32,
    ) -> u8 {
        let mut pkt = mk_packet(src, dst);
        let mut at = topo.node_router(src);
        let mut now = SimTime::ZERO;
        loop {
            match routers[at as usize].forward(now, &mut pkt, topo, routing, rng) {
                Forward::ToNode { node, arrive } => {
                    assert_eq!(node, dst);
                    assert!(arrive > now);
                    return pkt.hops;
                }
                Forward::ToRouter { router, arrive } => {
                    at = router;
                    now = arrive;
                    assert!(pkt.hops < Packet::MAX_HOPS);
                }
            }
        }
    }

    #[test]
    fn minimal_routing_delivers_everywhere_1d() {
        let (topo, mut routers, mut rng) = setup(DragonflyConfig::tiny_1d());
        let n = topo.cfg.total_nodes();
        for dst in 0..n {
            let hops = walk(&topo, &mut routers, &mut rng, Routing::Minimal, 0, dst);
            // 1D minimal: ≤ 3 router-router hops.
            assert!(hops <= 3, "0->{dst} took {hops} hops");
        }
    }

    #[test]
    fn minimal_routing_delivers_everywhere_2d() {
        let (topo, mut routers, mut rng) = setup(DragonflyConfig::tiny_2d());
        let n = topo.cfg.total_nodes();
        for src in [0u32, 13, 47] {
            for dst in 0..n {
                let hops = walk(&topo, &mut routers, &mut rng, Routing::Minimal, src, dst);
                // 2D minimal: ≤ 5 router-router hops.
                assert!(hops <= 5, "{src}->{dst} took {hops} hops");
            }
        }
    }

    #[test]
    fn adaptive_routing_delivers_everywhere() {
        for cfg in [DragonflyConfig::tiny_1d(), DragonflyConfig::tiny_2d()] {
            let (topo, mut routers, mut rng) = setup(cfg);
            let n = topo.cfg.total_nodes();
            for src in [0u32, 9] {
                for dst in 0..n {
                    let hops = walk(&topo, &mut routers, &mut rng, Routing::Adaptive, src, dst);
                    assert!(hops <= 2 * 5 + 1, "{src}->{dst} took {hops} hops");
                }
            }
        }
    }

    #[test]
    fn full_scale_minimal_hop_bounds() {
        for (cfg, bound) in
            [(DragonflyConfig::dragonfly_1d(), 3), (DragonflyConfig::dragonfly_2d(), 5)]
        {
            let (topo, mut routers, mut rng) = setup(cfg);
            let n = topo.cfg.total_nodes();
            // Spot-check a spread of pairs.
            for i in 0..200u32 {
                let src = (i * 97) % n;
                let dst = (i * 8191 + 13) % n;
                if src == dst {
                    continue;
                }
                let hops = walk(&topo, &mut routers, &mut rng, Routing::Minimal, src, dst);
                assert!(hops <= bound, "{src}->{dst}: {hops} > {bound}");
            }
        }
    }

    #[test]
    fn congestion_grows_queue_and_latency() {
        let (topo, mut routers, mut rng) = setup(DragonflyConfig::tiny_1d());
        // Hammer one terminal port; deliveries must be serialized.
        let dst = 1u32; // same router as node 0
        let r = topo.node_router(dst) as usize;
        let mut last = SimTime::ZERO;
        for i in 0..10 {
            let mut pkt = mk_packet(4, dst);
            pkt.msg_id = i;
            let Forward::ToNode { arrive, .. } =
                routers[r].forward(SimTime::ZERO, &mut pkt, &topo, Routing::Minimal, &mut rng)
            else {
                panic!()
            };
            assert!(arrive > last, "deliveries must be strictly ordered");
            last = arrive;
        }
    }

    #[test]
    fn window_counters_bucket_by_time() {
        let mut w = WindowCounters::new(500_000, 4);
        w.record(SimTime::from_ns(10), 0, 100);
        w.record(SimTime::from_ns(499_999), 1, 50);
        w.record(SimTime::from_ns(500_000), 0, 7);
        assert_eq!(w.counts.len(), 2);
        assert_eq!(w.counts[0][0], 100);
        assert_eq!(w.counts[0][1], 50);
        assert_eq!(w.counts[1][0], 7);
        // Out-of-range apps are dropped, not panicking.
        w.record(SimTime::from_ns(1), 200, 5);
    }

    #[test]
    fn valiant_detour_used_under_congestion() {
        let (topo, mut routers, mut rng) = setup(DragonflyConfig::tiny_1d());
        // Jam every gateway of group 0 toward group 1 far into the future.
        let now = SimTime::from_us(10);
        let mut jam: Vec<(u32, Port)> = topo.gateways(0, 1).to_vec();
        // Also jam the local ports leading to those gateways from router 0.
        for r in 0..topo.cfg.routers_per_group() {
            for &(gw, p) in jam.clone().iter() {
                if gw == r {
                    routers[r as usize].busy_until[p as usize] = SimTime::from_ms(100);
                }
                if r != gw {
                    if let Some(lp) = topo.local_port_to(r, gw) {
                        routers[r as usize].busy_until[lp as usize] = SimTime::from_ms(100);
                    }
                }
            }
        }
        jam.clear();
        // With adaptive routing from group 0 to group 1, at least some
        // packets should take a Valiant detour (hops > 3).
        let mut detoured = false;
        for i in 0..50 {
            let src = i % topo.cfg.nodes_per_group();
            let dst = topo.cfg.nodes_per_group() + (i % topo.cfg.nodes_per_group());
            let mut pkt = mk_packet(src, dst);
            let mut at = topo.node_router(src);
            let mut t = now;
            loop {
                match routers[at as usize].forward(t, &mut pkt, &topo, Routing::Adaptive, &mut rng)
                {
                    Forward::ToNode { .. } => break,
                    Forward::ToRouter { router, arrive } => {
                        at = router;
                        t = arrive;
                    }
                }
            }
            if pkt.hops > 3 {
                detoured = true;
                break;
            }
        }
        assert!(detoured, "adaptive routing never took a Valiant path under congestion");
    }
}
