//! Topology construction: ids, port tables, and global-link wiring.
//!
//! Identifiers are dense and group-major:
//!
//! * node `n` attaches to router `n / nodes_per_router` at terminal port
//!   `n % nodes_per_router`;
//! * router `r` belongs to group `r / routers_per_group`; its local index
//!   within the group is `r % routers_per_group = row·cols + col`.
//!
//! Global wiring uses the standard *consecutive* arrangement: router local
//! index `rl`'s global channel `j` is global port `gp = rl·h + j`; it
//! connects to group offset `gp mod (G−1)` (i.e. group `(g + offset + 1)
//! mod G`) as parallel link `gp / (G−1)`. The peer group reaches back with
//! offset `G−2−offset` and the same parallel-link index, making the wiring
//! an involution.

use crate::config::{DragonflyConfig, Flavor, LinkClass};
use serde::{Deserialize, Serialize};

pub type NodeId = u32;
pub type RouterId = u32;
pub type GroupId = u32;
/// Port index within a router: `[terminals][locals][globals]`.
pub type Port = u16;

/// What a router port connects to.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Peer {
    Node(NodeId),
    Router { router: RouterId, port: Port },
}

/// Static description of one router port.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PortInfo {
    pub class: LinkClass,
    pub peer: Peer,
}

/// A fully wired dragonfly.
pub struct Topology {
    pub cfg: DragonflyConfig,
    /// `ports[router][port]` — static wiring.
    ports: Vec<Vec<PortInfo>>,
    /// `gateways[src_group * groups + dst_group]` — every (router, global
    /// port) in `src_group` with a direct link to `dst_group`.
    gateways: Vec<Vec<(RouterId, Port)>>,
}

impl Topology {
    /// Build and wire the topology. Panics on invalid configurations (use
    /// [`DragonflyConfig::check`] to validate first).
    pub fn build(cfg: DragonflyConfig) -> Topology {
        cfg.check().unwrap_or_else(|e| panic!("invalid dragonfly config: {e}"));
        let g = cfg.groups;
        let rpg = cfg.routers_per_group();
        let npr = cfg.nodes_per_router;
        let h = cfg.global_per_router;
        let n_routers = cfg.total_routers();

        let mut ports: Vec<Vec<PortInfo>> = Vec::with_capacity(n_routers as usize);
        for r in 0..n_routers {
            let group = r / rpg;
            let rl = r % rpg;
            let mut v: Vec<PortInfo> = Vec::with_capacity(cfg.radix() as usize);
            // Terminal ports.
            for t in 0..npr {
                v.push(PortInfo { class: LinkClass::Terminal, peer: Peer::Node(r * npr + t) });
            }
            // Local ports.
            match cfg.flavor {
                Flavor::OneD => {
                    for peer_l in 0..rpg {
                        if peer_l != rl {
                            let peer = group * rpg + peer_l;
                            let peer_port =
                                npr as u16 + if rl < peer_l { rl } else { rl - 1 } as u16;
                            v.push(PortInfo {
                                class: LinkClass::Local,
                                peer: Peer::Router { router: peer, port: peer_port },
                            });
                        }
                    }
                }
                Flavor::TwoD => {
                    let (row, col) = (rl / cfg.cols, rl % cfg.cols);
                    // Row peers (same row, different column).
                    for c in 0..cfg.cols {
                        if c != col {
                            let peer = group * rpg + row * cfg.cols + c;
                            let peer_port = npr as u16 + if col < c { col } else { col - 1 } as u16;
                            v.push(PortInfo {
                                class: LinkClass::Local,
                                peer: Peer::Router { router: peer, port: peer_port },
                            });
                        }
                    }
                    // Column peers (same column, different row).
                    for rr in 0..cfg.rows {
                        if rr != row {
                            let peer = group * rpg + rr * cfg.cols + col;
                            let peer_port = npr as u16
                                + (cfg.cols - 1) as u16
                                + if row < rr { row } else { row - 1 } as u16;
                            v.push(PortInfo {
                                class: LinkClass::Local,
                                peer: Peer::Router { router: peer, port: peer_port },
                            });
                        }
                    }
                }
            }
            // Global ports.
            for j in 0..h {
                let gp = rl * h + j;
                let offset = gp % (g - 1);
                let k = gp / (g - 1);
                let peer_group = (group + offset + 1) % g;
                let peer_offset = g - 2 - offset;
                let peer_gp = peer_offset + k * (g - 1);
                let peer_rl = peer_gp / h;
                let peer_j = peer_gp % h;
                let peer = peer_group * rpg + peer_rl;
                let peer_port = (npr + cfg.local_ports() + peer_j) as u16;
                v.push(PortInfo {
                    class: LinkClass::Global,
                    peer: Peer::Router { router: peer, port: peer_port },
                });
            }
            ports.push(v);
        }

        // Gateway tables.
        let mut gateways = vec![Vec::new(); (g * g) as usize];
        for (r, pv) in ports.iter().enumerate() {
            let group = r as u32 / rpg;
            for (p, info) in pv.iter().enumerate() {
                if info.class == LinkClass::Global {
                    let Peer::Router { router: peer, .. } = info.peer else { unreachable!() };
                    let peer_group = peer / rpg;
                    gateways[(group * g + peer_group) as usize].push((r as u32, p as Port));
                }
            }
        }

        Topology { cfg, ports, gateways }
    }

    #[inline]
    pub fn node_router(&self, n: NodeId) -> RouterId {
        n / self.cfg.nodes_per_router
    }

    #[inline]
    pub fn node_terminal_port(&self, n: NodeId) -> Port {
        (n % self.cfg.nodes_per_router) as Port
    }

    #[inline]
    pub fn router_group(&self, r: RouterId) -> GroupId {
        r / self.cfg.routers_per_group()
    }

    #[inline]
    pub fn node_group(&self, n: NodeId) -> GroupId {
        self.router_group(self.node_router(n))
    }

    /// Static port table of a router.
    #[inline]
    pub fn ports(&self, r: RouterId) -> &[PortInfo] {
        &self.ports[r as usize]
    }

    /// All (router, port) pairs in `src_group` with a global link to
    /// `dst_group`.
    #[inline]
    pub fn gateways(&self, src_group: GroupId, dst_group: GroupId) -> &[(RouterId, Port)] {
        &self.gateways[(src_group * self.cfg.groups + dst_group) as usize]
    }

    /// The local port on `from` that reaches `to` directly (same group;
    /// 2D requires same row or column). `None` if not directly connected.
    pub fn local_port_to(&self, from: RouterId, to: RouterId) -> Option<Port> {
        let rpg = self.cfg.routers_per_group();
        if from / rpg != to / rpg || from == to {
            return None;
        }
        let (fl, tl) = (from % rpg, to % rpg);
        let npr = self.cfg.nodes_per_router as u16;
        match self.cfg.flavor {
            Flavor::OneD => Some(npr + if tl < fl { tl } else { tl - 1 } as u16),
            Flavor::TwoD => {
                let (fr, fc) = (fl / self.cfg.cols, fl % self.cfg.cols);
                let (tr, tc) = (tl / self.cfg.cols, tl % self.cfg.cols);
                if fr == tr {
                    Some(npr + if tc < fc { tc } else { tc - 1 } as u16)
                } else if fc == tc {
                    Some(
                        npr + (self.cfg.cols - 1) as u16 + if tr < fr { tr } else { tr - 1 } as u16,
                    )
                } else {
                    None
                }
            }
        }
    }

    /// Routers adjacent to both `from` and `to` within a 2D group (the
    /// two grid corners). Empty for directly connected or 1D routers.
    pub fn corners(&self, from: RouterId, to: RouterId) -> Vec<RouterId> {
        if self.cfg.flavor != Flavor::TwoD {
            return Vec::new();
        }
        let rpg = self.cfg.routers_per_group();
        if from / rpg != to / rpg || self.local_port_to(from, to).is_some() || from == to {
            return Vec::new();
        }
        let group_base = (from / rpg) * rpg;
        let (fl, tl) = (from % rpg, to % rpg);
        let (fr, fc) = (fl / self.cfg.cols, fl % self.cfg.cols);
        let (tr, tc) = (tl / self.cfg.cols, tl % self.cfg.cols);
        vec![group_base + fr * self.cfg.cols + tc, group_base + tr * self.cfg.cols + fc]
    }

    /// Minimal intra-group hop count between two routers of the same group.
    pub fn intra_hops(&self, a: RouterId, b: RouterId) -> u32 {
        if a == b {
            0
        } else if self.local_port_to(a, b).is_some() {
            1
        } else {
            2
        }
    }

    /// Router-to-router minimal hop estimate (used to bias UGAL decisions).
    pub fn min_hops_estimate(&self, a: RouterId, b: RouterId) -> u32 {
        if self.router_group(a) == self.router_group(b) {
            self.intra_hops(a, b)
        } else {
            match self.cfg.flavor {
                Flavor::OneD => 3,
                Flavor::TwoD => 5,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_configs() -> Vec<DragonflyConfig> {
        vec![
            DragonflyConfig::tiny_1d(),
            DragonflyConfig::tiny_2d(),
            DragonflyConfig::dragonfly_1d(),
            DragonflyConfig::dragonfly_2d(),
        ]
    }

    #[test]
    fn wiring_is_an_involution() {
        for cfg in all_configs() {
            let topo = Topology::build(cfg);
            for r in 0..topo.cfg.total_routers() {
                for (p, info) in topo.ports(r).iter().enumerate() {
                    if let Peer::Router { router, port } = info.peer {
                        let back = topo.ports(router)[port as usize];
                        let Peer::Router { router: r2, port: p2 } = back.peer else {
                            panic!("router port pointing at a node")
                        };
                        assert_eq!((r2, p2 as usize), (r, p), "asymmetric wiring at {r}:{p}");
                        assert_eq!(back.class, info.class);
                    }
                }
            }
        }
    }

    #[test]
    fn radix_matches_config() {
        for cfg in all_configs() {
            let radix = cfg.radix() as usize;
            let topo = Topology::build(cfg);
            for r in 0..topo.cfg.total_routers() {
                assert_eq!(topo.ports(r).len(), radix);
            }
        }
    }

    #[test]
    fn every_group_pair_has_expected_links() {
        for cfg in all_configs() {
            let expect = cfg.links_per_group_pair() as usize;
            let topo = Topology::build(cfg);
            for a in 0..topo.cfg.groups {
                for b in 0..topo.cfg.groups {
                    let n = topo.gateways(a, b).len();
                    if a == b {
                        assert_eq!(n, 0);
                    } else {
                        assert_eq!(n, expect, "groups {a}->{b}");
                    }
                }
            }
        }
    }

    #[test]
    fn terminal_ports_round_trip() {
        let topo = Topology::build(DragonflyConfig::tiny_2d());
        for n in 0..topo.cfg.total_nodes() {
            let r = topo.node_router(n);
            let p = topo.node_terminal_port(n);
            let info = topo.ports(r)[p as usize];
            assert_eq!(info.peer, Peer::Node(n));
            assert_eq!(info.class, LinkClass::Terminal);
        }
    }

    #[test]
    fn local_connectivity_1d_is_all_to_all() {
        let topo = Topology::build(DragonflyConfig::tiny_1d());
        let rpg = topo.cfg.routers_per_group();
        for a in 0..rpg {
            for b in 0..rpg {
                if a != b {
                    let p = topo.local_port_to(a, b).unwrap();
                    let Peer::Router { router, .. } = topo.ports(a)[p as usize].peer else {
                        panic!()
                    };
                    assert_eq!(router, b);
                }
            }
        }
    }

    #[test]
    fn local_connectivity_2d_rows_and_columns() {
        let topo = Topology::build(DragonflyConfig::dragonfly_2d());
        // Router 0 = (row 0, col 0): direct to (0, 5) [same row] and
        // (3, 0) = local idx 48 [same column]; not to (1, 1) = idx 17.
        assert!(topo.local_port_to(0, 5).is_some());
        assert!(topo.local_port_to(0, 3 * 16).is_some());
        assert!(topo.local_port_to(0, 17).is_none());
        assert_eq!(topo.intra_hops(0, 17), 2);
        let corners = topo.corners(0, 17);
        assert_eq!(corners.len(), 2);
        // Corners are (row 0, col 1) = 1 and (row 1, col 0) = 16.
        assert!(corners.contains(&1) && corners.contains(&16));
    }

    #[test]
    fn gateway_ports_actually_reach_target_group() {
        for cfg in all_configs() {
            let topo = Topology::build(cfg);
            for a in 0..topo.cfg.groups {
                for b in 0..topo.cfg.groups {
                    for &(r, p) in topo.gateways(a, b) {
                        assert_eq!(topo.router_group(r), a);
                        let Peer::Router { router, .. } = topo.ports(r)[p as usize].peer else {
                            panic!()
                        };
                        assert_eq!(topo.router_group(router), b);
                    }
                }
            }
        }
    }
}
