//! The simulation assembly: builder, the composed LP, and result harvest.

use crate::event::{Event, LpMap};
use crate::node::{NodeLp, Proc};
use crate::router_lp::RouterLp;
use crate::shared::Shared;
use dragonfly::{DragonflyConfig, FlowControl, LinkClass, Peer, Routing, Topology};
use metrics::{CommTimer, LatencyRecorder, LinkLoad, TimeSeries};
use mpi_sim::MpiRank;
use placement::{JobRequest, Layout, Placement};
use ross::{
    Ctx, Envelope, Lp, Partition, QueueKind, RunStats, Scheduler, SimDuration, SimTime, Simulation,
};
use std::sync::Arc;
use union_core::{OpSource, RankVm};

/// The composed logical process: either a node or a router.
#[allow(clippy::large_enum_variant)] // one LP per entity; size is fine
#[derive(Clone)]
pub enum CodesLp {
    Node(NodeLp),
    Router(RouterLp),
}

impl Lp for CodesLp {
    type Event = Event;
    fn handle(&mut self, ev: &Envelope<Event>, ctx: &mut Ctx<'_, Event>) {
        match self {
            CodesLp::Node(n) => n.handle_event(ev.recv_time, &ev.payload, ctx),
            CodesLp::Router(r) => r.handle_event(ev.recv_time, &ev.payload, ctx),
        }
    }

    fn trace_kind(&self, ev: &Envelope<Event>) -> u16 {
        match self {
            CodesLp::Node(n) => n.trace_kind(&ev.payload),
            CodesLp::Router(_) => 0,
        }
    }
}

// Compile-time proof that the composed LP (and everything it drags
// along: VMs, trace cursors, router state, `Arc<Shared>`) can be moved
// onto the parallel schedulers' worker threads.
const _: () = {
    const fn require_send<T: Send>() {}
    require_send::<CodesLp>();
};

/// A job to simulate: a name and one op source per MPI rank (skeleton
/// VMs for Union in-situ workloads, trace cursors for trace replay).
pub struct JobSpec {
    pub name: String,
    pub sources: Vec<OpSource>,
}

/// Builder for a hybrid-workload simulation.
pub struct SimulationBuilder {
    cfg: DragonflyConfig,
    routing: Routing,
    placement: Placement,
    seed: u64,
    eager_max: u64,
    window_ns: u64,
    queue: QueueKind,
    jobs: Vec<JobSpec>,
    telemetry: Option<Arc<telemetry::Recorder>>,
    tracer: Option<Arc<ross::Tracer>>,
    live: Option<Arc<telemetry::live::MetricsRegistry>>,
}

impl SimulationBuilder {
    pub fn new(cfg: DragonflyConfig) -> SimulationBuilder {
        SimulationBuilder {
            cfg,
            routing: Routing::Adaptive,
            placement: Placement::RandomGroups,
            seed: 1,
            eager_max: 16 * 1024,
            window_ns: 0,
            queue: QueueKind::default(),
            jobs: Vec::new(),
            telemetry: None,
            tracer: None,
            live: None,
        }
    }

    /// Attach a telemetry recorder: schedulers append per-run records and
    /// the harvest appends one `network` record per run.
    pub fn telemetry(mut self, recorder: Arc<telemetry::Recorder>) -> Self {
        self.telemetry = Some(recorder);
        self
    }

    /// Attach a causal tracer: schedulers record every executed event,
    /// the builder stages kind names (per-app comm/compute) and per-LP
    /// track names (app + MPI rank), and the harvest refreshes the track
    /// names with each rank's final state.
    pub fn tracer(mut self, tracer: Arc<ross::Tracer>) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Attach a live metrics registry: schedulers stream engine metrics
    /// at their sync cadence and the harvest publishes per-app progress
    /// gauges (`app_ops{app="..."}` and friends).
    pub fn live(mut self, reg: Arc<telemetry::live::MetricsRegistry>) -> Self {
        self.live = Some(reg);
        self
    }

    pub fn routing(mut self, r: Routing) -> Self {
        self.routing = r;
        self
    }

    pub fn placement(mut self, p: Placement) -> Self {
        self.placement = p;
        self
    }

    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    pub fn eager_max(mut self, bytes: u64) -> Self {
        self.eager_max = bytes;
        self
    }

    /// Enable per-app windowed router counters (the paper uses 0.5 ms).
    pub fn window_ns(mut self, ns: u64) -> Self {
        self.window_ns = ns;
        self
    }

    /// Select the engine's pending-event queue (default: ladder). Never
    /// changes results, only throughput.
    pub fn queue(mut self, q: QueueKind) -> Self {
        self.queue = q;
        self
    }

    /// Add a Union in-situ job (application). App ids are assigned in
    /// insertion order.
    pub fn job(self, name: &str, vms: Vec<RankVm>) -> Self {
        self.job_sources(name, vms.into_iter().map(OpSource::from).collect())
    }

    /// Add a trace-replay job (one cursor per rank) — the baseline
    /// workload mechanism Union replaces (paper Table I).
    pub fn job_trace(self, name: &str, trace: &std::sync::Arc<union_core::Trace>) -> Self {
        let sources = (0..trace.num_ranks()).map(|r| trace.cursor(r).into()).collect();
        self.job_sources(name, sources)
    }

    /// Add a job from explicit op sources.
    pub fn job_sources(mut self, name: &str, sources: Vec<OpSource>) -> Self {
        self.jobs.push(JobSpec { name: name.to_string(), sources });
        self
    }

    /// Place the jobs and wire up all LPs.
    pub fn build(self) -> Result<CodesSim, String> {
        self.cfg.check()?;
        if self.jobs.is_empty() {
            return Err("no jobs".into());
        }
        let topo = Topology::build(self.cfg);
        let requests: Vec<JobRequest> =
            self.jobs.iter().map(|j| JobRequest::new(&j.name, j.sources.len() as u32)).collect();
        let layout = Layout::place(&topo, &requests, self.placement, self.seed)?;
        let n_nodes = topo.cfg.total_nodes();
        let n_routers = topo.cfg.total_routers();
        let shared = Arc::new(Shared {
            topo,
            layout,
            routing: self.routing,
            eager_max: self.eager_max,
            window_ns: self.window_ns,
            max_apps: self.jobs.len().max(1),
            lpmap: LpMap { n_nodes },
            lookahead: SimDuration::from_ns(1),
            job_names: self.jobs.iter().map(|j| j.name.clone()).collect(),
        });

        // Attach rank processes to their placed nodes.
        let mut procs: Vec<Option<Proc>> = (0..n_nodes).map(|_| None).collect();
        for (app, job) in self.jobs.into_iter().enumerate() {
            for (rank, src) in job.sources.into_iter().enumerate() {
                let node = shared.layout.node_of(app as u32, rank as u32);
                debug_assert_eq!(src.rank(), rank as u32, "source rank order mismatch");
                procs[node as usize] =
                    Some(Proc { app: app as u32, mpi: MpiRank::new(src, shared.eager_max) });
            }
        }

        let mut lps: Vec<CodesLp> = Vec::with_capacity((n_nodes + n_routers) as usize);
        let mut start_lps = Vec::new();
        for (node, proc) in procs.into_iter().enumerate() {
            if proc.is_some() {
                start_lps.push(node as u32);
            }
            lps.push(CodesLp::Node(NodeLp::new(node as u32, shared.clone(), proc)));
        }
        for router in 0..n_routers {
            lps.push(CodesLp::Router(RouterLp::new(router, shared.clone(), self.seed)));
        }

        let mut sim = Simulation::with_queue(lps, shared.lookahead, self.queue);
        sim.set_partition(Partition::from_blocks(partition_blocks(&shared.topo)));
        sim.set_telemetry(self.telemetry.clone());
        sim.set_tracer(self.tracer.clone());
        sim.set_live(self.live.clone());
        for lp in start_lps {
            sim.schedule(lp, SimTime::ZERO, Event::Start);
        }
        let codes = CodesSim {
            sim,
            shared,
            telemetry: self.telemetry,
            tracer: self.tracer,
            live: self.live,
        };
        codes.stage_trace_names();
        Ok(codes)
    }
}

/// Kind-tag names matching [`NodeLp::trace_kind`] / `CodesLp::trace_kind`:
/// index 0 is network plumbing, then a comm/compute pair per application.
pub fn trace_kind_names(job_names: &[String]) -> Vec<String> {
    let mut names = Vec::with_capacity(1 + 2 * job_names.len());
    names.push("net".to_string());
    for j in job_names {
        names.push(format!("{j} comm"));
        names.push(format!("{j} compute"));
    }
    names
}

/// Scheduler block assignment for a topology — the topology-aware
/// partition used by `SimulationBuilder::build()` for the
/// conservative-parallel scheduler: each router forms one block together
/// with its attached nodes, so terminal-link traffic (node↔router) stays
/// on one worker thread and only router↔router events cross partitions.
///
/// Exported so `union-lint` can validate a `par:T:L` lookahead window
/// against the exact partition the run would use.
pub fn partition_blocks(topo: &Topology) -> Vec<u32> {
    let n_nodes = topo.cfg.total_nodes();
    let n_routers = topo.cfg.total_routers();
    let mut blocks: Vec<u32> = Vec::with_capacity((n_nodes + n_routers) as usize);
    for node in 0..n_nodes {
        blocks.push(topo.node_router(node));
    }
    blocks.extend(0..n_routers);
    blocks
}

/// One static LP-to-LP scheduling edge of the assembled model: `src_lp`
/// may schedule an event on `dst_lp` no sooner than `delay_ns` after the
/// current time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LpDelayEdge {
    pub src_lp: u32,
    pub dst_lp: u32,
    pub delay_ns: u64,
    /// `"terminal"`, `"packet"`, or `"credit"`.
    pub kind: &'static str,
}

/// Every static cross-LP delay edge of the model built from `topo`,
/// using the same delay composition as the runtime paths:
///
/// * node↔router packets add the link propagation latency plus the
///   router traversal delay (serialization only increases the delay, so
///   the edge records the guaranteed minimum);
/// * router→router packets add link latency plus router delay
///   (`Router::occupy`);
/// * router→router credits (credit/VC flow control only) are sent after
///   exactly the upstream link latency (`credit_arrived`) — typically
///   the binding constraint for conservative lookahead.
pub fn lp_delay_edges(topo: &Topology) -> Vec<LpDelayEdge> {
    let cfg = &topo.cfg;
    let lpmap = LpMap { n_nodes: cfg.total_nodes() };
    let credits = matches!(cfg.flow, FlowControl::CreditVc { .. });
    let mut edges = Vec::new();
    for r in 0..cfg.total_routers() {
        let r_lp = lpmap.router_lp(r);
        for info in topo.ports(r) {
            let latency = cfg.latency_ns(info.class);
            match info.peer {
                Peer::Node(node) => {
                    let n_lp = lpmap.node_lp(node);
                    let delay = latency + cfg.router_delay_ns;
                    edges.push(LpDelayEdge {
                        src_lp: n_lp,
                        dst_lp: r_lp,
                        delay_ns: delay,
                        kind: "terminal",
                    });
                    edges.push(LpDelayEdge {
                        src_lp: r_lp,
                        dst_lp: n_lp,
                        delay_ns: delay,
                        kind: "terminal",
                    });
                }
                Peer::Router { router, .. } => {
                    edges.push(LpDelayEdge {
                        src_lp: r_lp,
                        dst_lp: lpmap.router_lp(router),
                        delay_ns: latency + cfg.router_delay_ns,
                        kind: "packet",
                    });
                    if credits {
                        // Credits flow upstream: the peer acknowledges
                        // packets it received from us over this link.
                        edges.push(LpDelayEdge {
                            src_lp: lpmap.router_lp(router),
                            dst_lp: r_lp,
                            delay_ns: latency,
                            kind: "credit",
                        });
                    }
                }
            }
        }
    }
    edges
}

/// Human-readable LP names for diagnostics, indexed by LP id.
pub fn lp_names(topo: &Topology) -> Vec<String> {
    let n_nodes = topo.cfg.total_nodes();
    let n_routers = topo.cfg.total_routers();
    let mut names = Vec::with_capacity((n_nodes + n_routers) as usize);
    for n in 0..n_nodes {
        names.push(format!("node {n}"));
    }
    for r in 0..n_routers {
        names.push(format!("router {r}"));
    }
    names
}

/// A runnable hybrid-workload simulation.
pub struct CodesSim {
    sim: Simulation<CodesLp>,
    shared: Arc<Shared>,
    telemetry: Option<Arc<telemetry::Recorder>>,
    tracer: Option<Arc<ross::Tracer>>,
    live: Option<Arc<telemetry::live::MetricsRegistry>>,
}

/// Per-application outcome.
#[derive(Clone, Debug)]
pub struct AppResult {
    pub name: String,
    /// Per-rank message-latency records.
    pub latency: Vec<LatencyRecorder>,
    /// Per-rank communication time (ns spent blocked in MPI).
    pub comm: Vec<CommTimer>,
    /// Per-rank completion time (None = did not finish before the bound).
    pub finished_at_ns: Vec<Option<u64>>,
    pub bytes_sent: u64,
    pub ops_executed: u64,
    /// Wire-protocol violations that stopped ranks of this app (one
    /// entry per failed rank). A rank that fails never finishes, so a
    /// non-empty list also means `all_done()` is false — but the error
    /// text distinguishes "failed" from "hung" or "out of time".
    pub errors: Vec<String>,
}

impl AppResult {
    pub fn all_done(&self) -> bool {
        self.finished_at_ns.iter().all(|f| f.is_some())
    }

    /// True when any rank stopped on a protocol violation.
    pub fn failed(&self) -> bool {
        !self.errors.is_empty()
    }

    /// Job makespan (max rank completion), ns.
    pub fn makespan_ns(&self) -> Option<u64> {
        self.finished_at_ns.iter().copied().collect::<Option<Vec<u64>>>()?.into_iter().max()
    }
}

/// Everything the experiments harvest from one run.
#[derive(Clone, Debug)]
pub struct SimResults {
    pub apps: Vec<AppResult>,
    pub link_load: LinkLoad,
    /// Per-router windowed per-app byte counters (only routers with
    /// traffic; empty when windowing is disabled).
    pub router_windows: Vec<(u32, Vec<Vec<u64>>)>,
    pub stats: RunStats,
}

impl SimResults {
    /// Sum the windowed series over a set of routers (Fig 8: all routers
    /// serving one application).
    pub fn series_over(&self, routers: &[u32], window_ns: u64) -> TimeSeries {
        let mut ts = TimeSeries::default();
        for (r, counts) in &self.router_windows {
            if routers.binary_search(r).is_ok() {
                // Every router in one run is binned at the same window
                // size, so a mismatch here is a harvest bug, not input.
                ts.accumulate(window_ns, counts).expect("routers share one window size");
            }
        }
        ts
    }
}

impl CodesSim {
    /// Run to completion (or `until`) with the chosen scheduler and
    /// harvest results.
    pub fn run(&mut self, sched: Scheduler, until: SimTime) -> SimResults {
        let stats = sched.run(&mut self.sim, until);
        self.harvest(stats)
    }

    /// Run this process's shard of the simulation (see
    /// [`ross::Simulation::run_sharded`]). Every shard must build an
    /// identical simulation — the `union-exp` launcher guarantees this
    /// by re-exec'ing the same argv. Returns engine stats only: after a
    /// sharded run only the owned LPs hold meaningful state, so results
    /// are merged across processes via [`CodesSim::shard_fingerprint`],
    /// not harvested per-shard.
    pub fn run_sharded(
        &mut self,
        transport: &mut dyn ross::shard::ShardTransport<Event>,
        threads: usize,
        window: SimDuration,
        until: SimTime,
    ) -> Result<RunStats, ross::shard::ShardError> {
        self.sim.run_sharded(transport, ross::shard::ShardRun::new(threads, window), until)
    }

    /// Order-independent digest of the LPs shard `me` of `n_shards`
    /// owns, folding every observable the harvest reads (NIC counters,
    /// per-rank MPI results, router port bytes, windowed counters).
    /// Per-shard values sum (`wrapping_add`) to the whole-model value,
    /// and a 1-shard "slice" equals a sequential run's fingerprint — the
    /// launcher's cross-process equivalence check relies on both.
    pub fn shard_fingerprint(&self, me: usize, n_shards: usize) -> u64 {
        let partition = Partition::from_blocks(partition_blocks(&self.shared.topo));
        let shard_of =
            ross::shard::shard_owner_map(Some(&partition), self.sim.lps().len(), n_shards);
        self.sim
            .lps()
            .iter()
            .enumerate()
            .filter(|(g, _)| shard_of[*g] == me as u32)
            .fold(0u64, |acc, (g, lp)| acc.wrapping_add(Self::lp_digest_impl(g as u32, lp)))
    }

    /// Whole-model fingerprint: what the shard fingerprints of a run
    /// must sum to (the sequential verification value).
    pub fn state_fingerprint(&self) -> u64 {
        self.shard_fingerprint(0, 1)
    }

    pub fn shared(&self) -> &Shared {
        &self.shared
    }

    /// Total LP count of the built model (routers + NICs + ranks).
    pub fn n_lps(&self) -> u32 {
        self.sim.n_lps() as u32
    }

    /// Attach (or detach) a telemetry recorder after construction.
    pub fn set_telemetry(&mut self, recorder: Option<Arc<telemetry::Recorder>>) {
        self.sim.set_telemetry(recorder.clone());
        self.telemetry = recorder;
    }

    /// Attach (or detach) a causal tracer after construction.
    pub fn set_tracer(&mut self, tracer: Option<Arc<ross::Tracer>>) {
        self.sim.set_tracer(tracer.clone());
        self.tracer = tracer;
        self.stage_trace_names();
    }

    /// Attach (or detach) a live metrics registry after construction.
    pub fn set_live(&mut self, live: Option<Arc<telemetry::live::MetricsRegistry>>) {
        self.sim.set_live(live.clone());
        self.live = live;
    }

    /// Stage kind names and app/rank-aware LP track names for the next
    /// trace run.
    fn stage_trace_names(&self) {
        if let Some(tr) = &self.tracer {
            tr.stage_kind_names(trace_kind_names(&self.shared.job_names));
            tr.stage_lp_names(self.trace_lp_names());
        }
    }

    /// Per-LP trace track names: nodes hosting a rank carry app name,
    /// rank and current MPI state; other LPs fall back to topology names.
    fn trace_lp_names(&self) -> Vec<String> {
        self.sim
            .lps()
            .iter()
            .map(|lp| match lp {
                CodesLp::Node(n) => match &n.proc {
                    Some(p) => format!(
                        "node {} · {} {}",
                        n.node,
                        self.shared.job_names[p.app as usize],
                        p.mpi.describe()
                    ),
                    None => format!("node {}", n.node),
                },
                CodesLp::Router(r) => format!("router {}", r.state.id),
            })
            .collect()
    }

    /// Pending event count (nonzero after a bounded run that stopped
    /// early).
    pub fn pending_events(&self) -> usize {
        self.sim.pending_events()
    }

    /// Digest of one LP's observable end-of-run state (everything
    /// [`CodesSim::harvest`] reads from it), keyed by its global id.
    fn lp_digest_impl(gid: u32, lp: &CodesLp) -> u64 {
        use ross::shard::wire::{fnv1a, put_u64};
        let mut buf = Vec::with_capacity(256);
        put_u64(&mut buf, gid as u64);
        match lp {
            CodesLp::Node(n) => {
                put_u64(&mut buf, 0);
                put_u64(&mut buf, n.injected_packets());
                put_u64(&mut buf, n.injected_bytes());
                put_u64(&mut buf, n.delivered_packets);
                if let Some(p) = &n.proc {
                    put_u64(&mut buf, 1 + p.app as u64);
                    put_u64(&mut buf, p.mpi.rank() as u64);
                    put_u64(&mut buf, p.mpi.bytes_sent);
                    put_u64(&mut buf, p.mpi.ops_executed);
                    put_u64(&mut buf, p.mpi.finished_at_ns.unwrap_or(u64::MAX));
                    put_u64(&mut buf, p.mpi.latency.min_ns);
                    put_u64(&mut buf, p.mpi.latency.max_ns);
                    put_u64(&mut buf, p.mpi.latency.sum_ns);
                    put_u64(&mut buf, p.mpi.latency.count);
                    put_u64(&mut buf, p.mpi.comm.total_ns);
                    put_u64(&mut buf, p.mpi.protocol_error().is_some() as u64);
                }
            }
            CodesLp::Router(r) => {
                put_u64(&mut buf, 2);
                for &b in &r.state.port_bytes {
                    put_u64(&mut buf, b);
                }
                if let Some(c) = &r.credit {
                    put_u64(&mut buf, c.stalls);
                }
                for w in &r.state.windows.counts {
                    for &v in w {
                        put_u64(&mut buf, v);
                    }
                }
            }
        }
        fnv1a(&buf)
    }

    fn harvest(&self, stats: RunStats) -> SimResults {
        if let Some(tr) = &self.tracer {
            // Re-label trace tracks with the final rank states so the
            // exported names reflect how each rank ended the run.
            tr.refresh_lp_names(self.trace_lp_names());
        }
        let napps = self.shared.job_names.len();
        let mut apps: Vec<AppResult> = self
            .shared
            .job_names
            .iter()
            .enumerate()
            .map(|(a, name)| {
                let ranks = self.shared.layout.rank_to_node[a].len();
                AppResult {
                    name: name.clone(),
                    latency: vec![LatencyRecorder::default(); ranks],
                    comm: vec![CommTimer::default(); ranks],
                    finished_at_ns: vec![None; ranks],
                    bytes_sent: 0,
                    ops_executed: 0,
                    errors: Vec::new(),
                }
            })
            .collect();
        let mut link_load = LinkLoad::default();
        let mut router_windows = Vec::new();
        let mut net = telemetry::NetworkRecord::new();

        for lp in self.sim.lps() {
            match lp {
                CodesLp::Node(n) => {
                    net.packets_injected += n.injected_packets();
                    net.packets_delivered += n.delivered_packets;
                    net.bytes_injected += n.injected_bytes();
                    if let Some(p) = &n.proc {
                        let a = &mut apps[p.app as usize];
                        let r = p.mpi.rank() as usize;
                        a.latency[r] = p.mpi.latency.clone();
                        a.comm[r] = p.mpi.comm;
                        a.finished_at_ns[r] = p.mpi.finished_at_ns;
                        a.bytes_sent += p.mpi.bytes_sent;
                        a.ops_executed += p.mpi.ops_executed;
                        if let Some(e) = p.mpi.protocol_error() {
                            a.errors.push(e.to_string());
                        }
                    }
                }
                CodesLp::Router(r) => {
                    if let Some(c) = &r.credit {
                        net.credit_stalls += c.stalls;
                    }
                    for (port, info) in self.shared.topo.ports(r.state.id).iter().enumerate() {
                        let bytes = r.state.port_bytes[port];
                        match info.class {
                            LinkClass::Terminal => {
                                link_load.terminal_bytes += bytes;
                            }
                            LinkClass::Local => {
                                link_load.local_bytes += bytes;
                                link_load.n_local_links += 1;
                            }
                            LinkClass::Global => {
                                link_load.global_bytes += bytes;
                                link_load.n_global_links += 1;
                            }
                        }
                    }
                    if !r.state.windows.counts.is_empty() {
                        router_windows.push((r.state.id, r.state.windows.counts.clone()));
                    }
                }
            }
        }
        let _ = napps;
        if let Some(reg) = &self.live {
            // Per-app progress for the live endpoint. Gauges, not
            // counters: the harvest publishes final per-run values (and
            // multi-run experiments overwrite, which is the live-view
            // semantic we want — "where is this app now").
            for a in &apps {
                let label = |m: &str| format!("{m}{{app=\"{}\"}}", a.name);
                reg.gauge(&label("app_ops")).set(a.ops_executed);
                reg.gauge(&label("app_bytes_sent")).set(a.bytes_sent);
                reg.gauge(&label("app_ranks")).set(a.finished_at_ns.len() as u64);
                reg.gauge(&label("app_ranks_finished"))
                    .set(a.finished_at_ns.iter().filter(|f| f.is_some()).count() as u64);
                reg.gauge(&label("app_makespan_ns")).set(a.makespan_ns().unwrap_or(0));
            }
        }
        if let Some(rec) = &self.telemetry {
            net.apps = apps
                .iter()
                .map(|a| telemetry::AppProgressRecord {
                    app: a.name.clone(),
                    ranks: a.finished_at_ns.len() as u64,
                    ranks_finished: a.finished_at_ns.iter().filter(|f| f.is_some()).count() as u64,
                    bytes_sent: a.bytes_sent,
                    ops_executed: a.ops_executed,
                    makespan_ns: a.makespan_ns(),
                })
                .collect();
            rec.emit(&net);
        }
        SimResults { apps, link_load, router_windows, stats }
    }
}
