//! The node logical process: NIC + (optionally) a Union rank process.
//!
//! The NIC is self-clocking: it serializes one packet at a time at
//! terminal-link bandwidth, waking itself with `NicPulse` events. This
//! keeps the event population proportional to active nodes rather than to
//! outstanding packets, which matters when a rank pushes a 20 MiB
//! allreduce round into the network.

use crate::event::Event;
use crate::shared::Shared;
use dragonfly::Packet;
use mpi_sim::{Action, MpiMsg, MpiRank, MsgKind};
use ross::{Ctx, SimDuration, SimTime};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Encode/decode the message kind into the packet's opaque byte.
fn kind_code(k: MsgKind) -> u8 {
    match k {
        MsgKind::Eager => 0,
        MsgKind::Rts => 1,
        MsgKind::Cts => 2,
        MsgKind::Data => 3,
        MsgKind::Synthetic => 4,
    }
}

fn code_kind(c: u8) -> MsgKind {
    match c {
        0 => MsgKind::Eager,
        1 => MsgKind::Rts,
        2 => MsgKind::Cts,
        3 => MsgKind::Data,
        4 => MsgKind::Synthetic,
        other => panic!("bad message kind code {other}"),
    }
}

/// A rank process bound to this node.
#[derive(Clone)]
pub struct Proc {
    /// Application (job) id.
    pub app: u32,
    pub mpi: MpiRank,
}

/// One message queued at the NIC.
#[derive(Clone, Debug)]
struct NicMsg {
    template: Packet,
    wire: u64,
    emitted: u64,
    mpi_seq: u64,
}

/// Self-clocking NIC.
#[derive(Clone, Debug, Default)]
struct Nic {
    queue: VecDeque<NicMsg>,
    sending: Option<NicMsg>,
    /// A pulse event is in flight.
    pulsing: bool,
    pub injected_bytes: u64,
    pub injected_packets: u64,
}

/// The node LP.
#[derive(Clone)]
pub struct NodeLp {
    pub node: u32,
    shared: Arc<Shared>,
    nic: Nic,
    pub proc: Option<Proc>,
    /// Partial message reassembly: (src_node, msg_id) → bytes received.
    assembly: HashMap<(u32, u64), u64>,
    /// Packets fully received at this node (telemetry).
    pub delivered_packets: u64,
}

impl NodeLp {
    pub fn new(node: u32, shared: Arc<Shared>, proc: Option<Proc>) -> NodeLp {
        NodeLp {
            node,
            shared,
            nic: Nic::default(),
            proc,
            assembly: HashMap::new(),
            delivered_packets: 0,
        }
    }

    /// Bytes this node's NIC pushed into the network.
    pub fn injected_bytes(&self) -> u64 {
        self.nic.injected_bytes
    }

    /// Packets this node's NIC pushed into the network.
    pub fn injected_packets(&self) -> u64 {
        self.nic.injected_packets
    }

    /// Causal-trace kind tag: 0 = network plumbing, then one comm/compute
    /// pair per application (`1 + 2*app` = comm, `2 + 2*app` = compute).
    /// Must match `codes::trace_kind_names`.
    pub fn trace_kind(&self, ev: &Event) -> u16 {
        let Some(p) = &self.proc else { return 0 };
        let app = p.app as u16;
        match ev {
            Event::ComputeDone => 2 + 2 * app,
            Event::Start | Event::NodePkt(_) | Event::LocalMsg(_) => 1 + 2 * app,
            Event::NicPulse | Event::RouterPkt(_) | Event::Credit { .. } => 0,
        }
    }

    pub fn handle_event(&mut self, now: SimTime, ev: &Event, ctx: &mut Ctx<'_, Event>) {
        match ev {
            Event::Start => {
                let mut actions = Vec::new();
                if let Some(p) = &mut self.proc {
                    p.mpi.start(now.as_ns(), &mut actions);
                }
                self.apply(now, ctx, actions);
            }
            Event::ComputeDone => {
                let mut actions = Vec::new();
                if let Some(p) = &mut self.proc {
                    p.mpi.on_compute_done(now.as_ns(), &mut actions);
                }
                self.apply(now, ctx, actions);
            }
            Event::NicPulse => self.pulse(now, ctx),
            Event::NodePkt(pkt) => self.receive_packet(now, ctx, pkt),
            Event::RouterPkt(_) | Event::Credit { .. } => {
                unreachable!("router event at node LP")
            }
            Event::LocalMsg(pkt) => self.receive_packet(now, ctx, pkt),
        }
    }

    /// Process the actions a rank produced.
    fn apply(&mut self, now: SimTime, ctx: &mut Ctx<'_, Event>, actions: Vec<Action>) {
        for a in actions {
            match a {
                Action::Compute { ns } => {
                    ctx.send_self(SimDuration::from_ns(ns.max(1)), Event::ComputeDone);
                }
                Action::Send(msg) => self.enqueue_send(now, ctx, msg),
            }
        }
    }

    fn enqueue_send(&mut self, now: SimTime, ctx: &mut Ctx<'_, Event>, msg: MpiMsg) {
        let p = self.proc.as_ref().expect("send from node without a rank");
        let dst_node = self.shared.layout.node_of(p.app, msg.dst);
        debug_assert_ne!(dst_node, self.node, "self-sends are local to MpiRank");
        let wire = msg.wire.max(1);
        let template = Packet {
            app: p.app as u8,
            kind: kind_code(msg.kind),
            tag: msg.tag,
            aux: msg.payload,
            src_node: self.node,
            dst_node,
            bytes: 0,
            msg_id: msg.seq,
            msg_bytes: wire,
            created: SimTime::from_ns(msg.created_ns),
            intermediate: None,
            gateway: None,
            routed: false,
            hops: 0,
            up_router: u32::MAX,
            up_port: 0,
            vc: 0,
        };
        self.nic.queue.push_back(NicMsg { template, wire, emitted: 0, mpi_seq: msg.seq });
        if !self.nic.pulsing {
            // NIC idle: start emitting now.
            self.emit_next(now, ctx);
        }
    }

    /// Emit one packet of the current (or next queued) message; schedules
    /// the next pulse at the packet's serialization finish.
    fn emit_next(&mut self, now: SimTime, ctx: &mut Ctx<'_, Event>) {
        if self.nic.sending.is_none() {
            self.nic.sending = self.nic.queue.pop_front();
        }
        let cfg = &self.shared.topo.cfg;
        let Some(cur) = &mut self.nic.sending else {
            self.nic.pulsing = false;
            return;
        };
        let chunk = (cur.wire - cur.emitted).min(cfg.packet_bytes as u64) as u32;
        debug_assert!(chunk > 0, "emitting an already-finished message");
        let mut pkt = cur.template;
        pkt.bytes = chunk;
        cur.emitted += chunk as u64;
        self.nic.injected_bytes += chunk as u64;
        self.nic.injected_packets += 1;
        let ser = SimDuration::transfer_time(chunk as u64, cfg.terminal_gib_s);
        let router = self.shared.topo.node_router(self.node);
        ctx.send(
            self.shared.lpmap.router_lp(router),
            ser + SimDuration::from_ns(cfg.terminal_latency_ns)
                + SimDuration::from_ns(cfg.router_delay_ns),
            Event::RouterPkt(pkt),
        );
        // Wake up when this packet has left the NIC.
        ctx.send_self(ser, Event::NicPulse);
        self.nic.pulsing = true;
        let _ = now;
    }

    fn pulse(&mut self, now: SimTime, ctx: &mut Ctx<'_, Event>) {
        self.nic.pulsing = false;
        // Did the in-flight message just finish serializing?
        if let Some(cur) = &self.nic.sending {
            if cur.emitted >= cur.wire {
                let seq = cur.mpi_seq;
                self.nic.sending = None;
                let mut actions = Vec::new();
                if let Some(p) = &mut self.proc {
                    p.mpi.on_injected(now.as_ns(), seq, &mut actions);
                }
                self.apply(now, ctx, actions);
            }
        }
        // `apply` may already have restarted the NIC (a resumed rank
        // queueing a new send); only emit if it did not.
        if !self.nic.pulsing && (self.nic.sending.is_some() || !self.nic.queue.is_empty()) {
            self.emit_next(now, ctx);
        }
    }

    fn receive_packet(&mut self, now: SimTime, ctx: &mut Ctx<'_, Event>, pkt: &Packet) {
        self.delivered_packets += 1;
        let key = (pkt.src_node, pkt.msg_id);
        let acc = self.assembly.entry(key).or_insert(0);
        *acc += pkt.bytes as u64;
        if *acc < pkt.msg_bytes {
            return;
        }
        self.assembly.remove(&key);
        // Whole message arrived: hand it to the rank process.
        let Some((src_app, src_rank)) = self.shared.owner(pkt.src_node) else {
            panic!("message from unowned node {}", pkt.src_node)
        };
        let p = self.proc.as_mut().expect("message delivered to empty node");
        debug_assert_eq!(src_app, p.app, "cross-application message");
        let kind = code_kind(pkt.kind);
        let msg = MpiMsg {
            src: src_rank,
            dst: p.mpi.rank(),
            tag: pkt.tag,
            seq: pkt.msg_id,
            kind,
            payload: pkt.aux,
            wire: pkt.msg_bytes,
            created_ns: pkt.created.as_ns(),
        };
        let mut actions = Vec::new();
        p.mpi.on_delivery(now.as_ns(), &msg, &mut actions);
        self.apply(now, ctx, actions);
    }
}
