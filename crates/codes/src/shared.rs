//! Immutable configuration shared (via `Arc`) by every logical process.

use crate::event::LpMap;
use dragonfly::{Routing, Topology};
use placement::Layout;
use ross::SimDuration;

/// Read-only simulation-wide state. Cheap to clone (behind `Arc` in each
/// LP), safe under Time Warp because it never mutates.
pub struct Shared {
    pub topo: Topology,
    pub layout: Layout,
    pub routing: Routing,
    /// Eager/rendezvous threshold handed to each `MpiRank`.
    pub eager_max: u64,
    /// Router per-app counter window (0 disables; the paper uses 0.5 ms).
    pub window_ns: u64,
    /// Maximum number of concurrently placed applications tracked by
    /// router counters.
    pub max_apps: usize,
    pub lpmap: LpMap,
    pub lookahead: SimDuration,
    /// Job names, indexed by app id.
    pub job_names: Vec<String>,
}

impl Shared {
    /// (app, rank) owning a node, if any.
    #[inline]
    pub fn owner(&self, node: u32) -> Option<(u32, u32)> {
        self.layout.node_owner[node as usize]
    }
}

// Compile-time proof that `Shared` may be referenced concurrently from
// every worker thread of the parallel schedulers (each LP holds an
// `Arc<Shared>`; immutability makes it `Sync` for free — keep it so).
const _: () = {
    const fn require_send_sync<T: Send + Sync>() {}
    require_send_sync::<Shared>();
};
