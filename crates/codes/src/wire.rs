//! Wire codec for the composed CODES [`Event`]: lets a sharded run move
//! events between OS processes through a [`ross::shard`] transport.
//!
//! The encoding is a fixed-layout little-endian format (tag byte, then
//! the variant's fields in declaration order), so every shard of a run —
//! always the same binary, re-exec'd by the launcher — agrees on it.
//! It is a transport format, not an archive format: checkpointing a
//! CODES model would also need rank-VM state and is not supported.

use crate::event::Event;
use dragonfly::Packet;
use ross::shard::wire::{put_u32, put_u64, put_u8, ByteReader};
use ross::shard::{EventCodec, ShardError};
use ross::SimTime;

const TAG_START: u8 = 0;
const TAG_ROUTER_PKT: u8 = 1;
const TAG_NODE_PKT: u8 = 2;
const TAG_NIC_PULSE: u8 = 3;
const TAG_COMPUTE_DONE: u8 = 4;
const TAG_LOCAL_MSG: u8 = 5;
const TAG_CREDIT: u8 = 6;

/// `Option<u32>` on the wire: a presence byte, then the value (packet
/// fields like `up_router` legitimately use `u32::MAX`, so a sentinel
/// encoding is not available).
fn put_opt_u32(out: &mut Vec<u8>, v: Option<u32>) {
    match v {
        Some(x) => {
            put_u8(out, 1);
            put_u32(out, x);
        }
        None => put_u8(out, 0),
    }
}

fn read_opt_u32(r: &mut ByteReader<'_>) -> Result<Option<u32>, ShardError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.u32()?)),
        b => Err(ShardError::Format(format!("bad Option<u32> presence byte {b}"))),
    }
}

fn put_packet(out: &mut Vec<u8>, p: &Packet) {
    put_u8(out, p.app);
    put_u8(out, p.kind);
    put_u32(out, p.tag);
    put_u64(out, p.aux);
    put_u32(out, p.src_node);
    put_u32(out, p.dst_node);
    put_u32(out, p.bytes);
    put_u64(out, p.msg_id);
    put_u64(out, p.msg_bytes);
    put_u64(out, p.created.as_ns());
    put_opt_u32(out, p.intermediate);
    put_opt_u32(out, p.gateway);
    put_u8(out, p.routed as u8);
    put_u8(out, p.hops);
    put_u32(out, p.up_router);
    put_u32(out, p.up_port as u32);
    put_u8(out, p.vc);
}

fn read_packet(r: &mut ByteReader<'_>) -> Result<Packet, ShardError> {
    Ok(Packet {
        app: r.u8()?,
        kind: r.u8()?,
        tag: r.u32()?,
        aux: r.u64()?,
        src_node: r.u32()?,
        dst_node: r.u32()?,
        bytes: r.u32()?,
        msg_id: r.u64()?,
        msg_bytes: r.u64()?,
        created: SimTime::from_ns(r.u64()?),
        intermediate: read_opt_u32(r)?,
        gateway: read_opt_u32(r)?,
        routed: r.u8()? != 0,
        hops: r.u8()?,
        up_router: r.u32()?,
        up_port: {
            let v = r.u32()?;
            u16::try_from(v)
                .map_err(|_| ShardError::Format(format!("port {v} does not fit in u16")))?
        },
        vc: r.u8()?,
    })
}

/// The codec itself; stateless, shared by every transport thread.
pub struct CodesEventCodec;

impl EventCodec<Event> for CodesEventCodec {
    fn encode(&self, ev: &Event, out: &mut Vec<u8>) {
        match ev {
            Event::Start => put_u8(out, TAG_START),
            Event::RouterPkt(p) => {
                put_u8(out, TAG_ROUTER_PKT);
                put_packet(out, p);
            }
            Event::NodePkt(p) => {
                put_u8(out, TAG_NODE_PKT);
                put_packet(out, p);
            }
            Event::NicPulse => put_u8(out, TAG_NIC_PULSE),
            Event::ComputeDone => put_u8(out, TAG_COMPUTE_DONE),
            Event::LocalMsg(p) => {
                put_u8(out, TAG_LOCAL_MSG);
                put_packet(out, p);
            }
            Event::Credit { port, vc } => {
                put_u8(out, TAG_CREDIT);
                put_u32(out, *port as u32);
                put_u8(out, *vc);
            }
        }
    }

    fn decode(&self, r: &mut ByteReader<'_>) -> Result<Event, ShardError> {
        Ok(match r.u8()? {
            TAG_START => Event::Start,
            TAG_ROUTER_PKT => Event::RouterPkt(read_packet(r)?),
            TAG_NODE_PKT => Event::NodePkt(read_packet(r)?),
            TAG_NIC_PULSE => Event::NicPulse,
            TAG_COMPUTE_DONE => Event::ComputeDone,
            TAG_LOCAL_MSG => Event::LocalMsg(read_packet(r)?),
            TAG_CREDIT => {
                let port = r.u32()?;
                let port = u16::try_from(port)
                    .map_err(|_| ShardError::Format(format!("port {port} does not fit in u16")))?;
                Event::Credit { port, vc: r.u8()? }
            }
            t => return Err(ShardError::Format(format!("unknown CODES event tag {t}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(ev: &Event) -> Event {
        let codec = CodesEventCodec;
        let mut buf = Vec::new();
        codec.encode(ev, &mut buf);
        let mut r = ByteReader::new(&buf);
        let out = codec.decode(&mut r).expect("decode");
        assert_eq!(r.remaining(), 0, "trailing bytes after {ev:?}");
        out
    }

    fn sample_packet() -> Packet {
        Packet {
            app: 2,
            kind: 1,
            tag: 0xDEAD_BEEF,
            aux: u64::MAX - 1,
            src_node: 7,
            dst_node: 40,
            bytes: 4096,
            msg_id: 123_456_789,
            msg_bytes: 1 << 33,
            created: SimTime::from_ns(987_654_321),
            intermediate: Some(u32::MAX),
            gateway: None,
            routed: true,
            hops: 3,
            up_router: u32::MAX,
            up_port: 65_535,
            vc: 2,
        }
    }

    #[test]
    fn every_variant_round_trips() {
        let events = [
            Event::Start,
            Event::RouterPkt(sample_packet()),
            Event::NodePkt(sample_packet()),
            Event::NicPulse,
            Event::ComputeDone,
            Event::LocalMsg(sample_packet()),
            Event::Credit { port: 65_535, vc: 255 },
        ];
        for ev in &events {
            let back = roundtrip(ev);
            // Event has no PartialEq; compare via debug formatting, which
            // prints every field.
            assert_eq!(format!("{ev:?}"), format!("{back:?}"));
        }
    }

    #[test]
    fn truncated_packet_is_an_error_not_a_panic() {
        let codec = CodesEventCodec;
        let mut buf = Vec::new();
        codec.encode(&Event::RouterPkt(sample_packet()), &mut buf);
        for cut in 0..buf.len() {
            let mut r = ByteReader::new(&buf[..cut]);
            assert!(codec.decode(&mut r).is_err(), "cut at {cut} decoded");
        }
    }
}
