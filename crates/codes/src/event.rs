//! Simulation events and logical-process id mapping.

use dragonfly::Packet;

/// Every event in the composed CODES simulation.
#[derive(Clone, Debug)]
pub enum Event {
    /// Kick a node's rank process off at simulation start.
    Start,
    /// A packet arrives at a router.
    RouterPkt(Packet),
    /// A packet arrives at a node NIC (final hop).
    NodePkt(Packet),
    /// The node NIC finished serializing one packet; emit the next.
    NicPulse,
    /// A rank's compute delay elapsed.
    ComputeDone,
    /// Local delivery of a message between ranks on the same node pair
    /// (degenerate case kept off the network).
    LocalMsg(Packet),
    /// Credit-mode flow control: a downstream buffer slot freed up for
    /// (port, vc) on this router.
    Credit { port: u16, vc: u8 },
}

/// LP id layout: nodes first, then routers.
#[derive(Clone, Copy, Debug)]
pub struct LpMap {
    pub n_nodes: u32,
}

impl LpMap {
    #[inline]
    pub fn node_lp(&self, node: u32) -> u32 {
        node
    }

    #[inline]
    pub fn router_lp(&self, router: u32) -> u32 {
        self.n_nodes + router
    }

    #[inline]
    pub fn is_node(&self, lp: u32) -> bool {
        lp < self.n_nodes
    }
}
