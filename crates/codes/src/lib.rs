//! # codes
//!
//! The composed CODES-style simulation (paper Fig 2/3): Union rank
//! processes execute skeletons in situ; their `UNION_MPI_X` operations
//! flow through the `mpi-sim` matching/transfer layer; messages are
//! packetized by self-clocking NICs and forwarded by congestion-sensing
//! dragonfly routers; everything runs on the `ross-pdes` engine under any
//! of its three schedulers.
//!
//! ```
//! use codes::SimulationBuilder;
//! use dragonfly::{DragonflyConfig, Routing};
//! use placement::Placement;
//! use ross::{Scheduler, SimTime};
//! use union_core::{translate_source, RankVm, SkeletonInstance};
//!
//! let skel = translate_source(
//!     "for 2 repetitions { task 0 sends a 4096 byte message to task 1 then \
//!      task 1 sends a 4096 byte message to task 0 }.",
//!     "pingpong",
//! ).unwrap();
//! let inst = SkeletonInstance::new(&skel, 2, &[]).unwrap();
//! let vms: Vec<RankVm> = (0..2).map(|r| RankVm::new(inst.clone(), r, 1)).collect();
//!
//! let mut sim = SimulationBuilder::new(DragonflyConfig::tiny_1d())
//!     .routing(Routing::Minimal)
//!     .placement(Placement::RandomGroups)
//!     .job("pingpong", vms)
//!     .build()
//!     .unwrap();
//! let results = sim.run(Scheduler::Sequential, SimTime::MAX);
//! assert!(results.apps[0].all_done());
//! ```

pub mod event;
pub mod node;
pub mod router_lp;
pub mod shared;
pub mod sim;
pub mod wire;

pub use event::Event;
pub use sim::{
    lp_delay_edges, lp_names, partition_blocks, AppResult, CodesSim, JobSpec, LpDelayEdge,
    SimResults, SimulationBuilder,
};
pub use wire::CodesEventCodec;

#[cfg(test)]
mod tests {
    use super::*;
    use dragonfly::{DragonflyConfig, Routing};
    use placement::Placement;
    use ross::{Scheduler, SimTime};
    use union_core::{translate_source, RankVm, SkeletonInstance};

    fn vms(src: &str, n: u32) -> Vec<RankVm> {
        let skel = translate_source(src, "app").unwrap();
        let inst = SkeletonInstance::new(&skel, n, &[]).unwrap();
        (0..n).map(|r| RankVm::new(inst.clone(), r, 1)).collect()
    }

    fn run_one(src: &str, n: u32, routing: Routing, placement: Placement) -> SimResults {
        let mut sim = SimulationBuilder::new(DragonflyConfig::tiny_1d())
            .routing(routing)
            .placement(placement)
            .job("app", vms(src, n))
            .build()
            .unwrap();
        sim.run(Scheduler::Sequential, SimTime::MAX)
    }

    #[test]
    fn ping_pong_latency_is_plausible() {
        let r = run_one(
            "for 10 repetitions { task 0 sends a 1024 byte message to task 1 then \
             task 1 sends a 1024 byte message to task 0 }.",
            2,
            Routing::Minimal,
            Placement::RandomGroups,
        );
        let app = &r.apps[0];
        assert!(app.all_done());
        assert_eq!(app.latency[0].count, 10);
        assert_eq!(app.latency[1].count, 10);
        // One-hop-ish latency: at least link latencies (~300ns), below 1ms.
        assert!(app.latency[1].min_ns > 200, "{:?}", app.latency[1]);
        assert!(app.latency[1].max_ns < 1_000_000);
        // Makespan covers 20 message trips.
        assert!(app.makespan_ns().unwrap() > 10 * app.latency[1].min_ns);
    }

    #[test]
    fn all_schedulers_agree_bit_exactly() {
        let src = "for 3 repetitions { all tasks t asynchronously send a 60000 byte \
                   message to task (t+1) mod num_tasks then all tasks await completions } \
                   then all tasks reduce a 100000 byte message to all tasks.";
        let mut fingerprints = Vec::new();
        for sched in [Scheduler::Sequential, Scheduler::Conservative(4), Scheduler::Optimistic(4)] {
            let mut sim = SimulationBuilder::new(DragonflyConfig::tiny_1d())
                .routing(Routing::Adaptive)
                .placement(Placement::RandomNodes)
                .job("app", vms(src, 12))
                .build()
                .unwrap();
            let r = sim.run(sched, SimTime::MAX);
            let app = &r.apps[0];
            assert!(app.all_done(), "{sched:?}");
            let fp: Vec<(u64, u64, u64)> = app
                .latency
                .iter()
                .zip(&app.finished_at_ns)
                .map(|(l, f)| (l.count, l.sum_ns, f.unwrap()))
                .collect();
            fingerprints.push((fp, r.link_load));
        }
        assert_eq!(fingerprints[0], fingerprints[1], "conservative != sequential");
        assert_eq!(fingerprints[0], fingerprints[2], "optimistic != sequential");
    }

    #[test]
    fn rendezvous_messages_cross_the_network() {
        // 1 MiB >> eager threshold: RTS/CTS/Data must still deliver.
        let r = run_one(
            "task 0 sends a 1048576 byte message to task 8.",
            9,
            Routing::Minimal,
            Placement::RandomNodes,
        );
        assert!(r.apps[0].all_done());
        assert_eq!(r.apps[0].latency.iter().map(|l| l.count).sum::<u64>(), 1);
        // Latency of a 1 MiB transfer at 16 GiB/s is at least ~61 us.
        let lat = r.apps[0].latency.iter().find(|l| l.count > 0).unwrap();
        assert!(lat.max_ns > 60_000, "{lat:?}");
    }

    #[test]
    fn collectives_finish_on_the_network() {
        for n in [5u32, 8, 13] {
            let r = run_one(
                "all tasks reduce a 200000 byte message to all tasks then \
                 task 0 multicasts a 64 byte message to all other tasks then \
                 all tasks synchronize.",
                n,
                Routing::Adaptive,
                Placement::RandomRouters,
            );
            assert!(r.apps[0].all_done(), "n={n}");
        }
    }

    #[test]
    fn two_jobs_interfere_but_complete() {
        let a = vms(
            "for 5 repetitions { all tasks t asynchronously send a 100000 byte message \
             to task (t+1) mod num_tasks then all tasks await completions }.",
            8,
        );
        let b = vms("all tasks reduce a 500000 byte message to all tasks.", 8);
        let mut sim = SimulationBuilder::new(DragonflyConfig::tiny_1d())
            .routing(Routing::Adaptive)
            .placement(Placement::RandomNodes)
            .job("ring", a)
            .job("allreduce", b)
            .build()
            .unwrap();
        let r = sim.run(Scheduler::Sequential, SimTime::MAX);
        assert_eq!(r.apps.len(), 2);
        assert!(r.apps[0].all_done() && r.apps[1].all_done());
        assert!(r.link_load.local_bytes > 0);
    }

    #[test]
    fn link_load_accounting_sums_all_classes() {
        let r = run_one(
            "all tasks t asynchronously send a 50000 byte message to \
             task (t + num_tasks/2) mod num_tasks then all tasks await completions.",
            16,
            Routing::Minimal,
            Placement::RandomNodes,
        );
        // Messages crossed groups, so both local and global links were hit.
        assert!(r.link_load.global_bytes > 0);
        assert!(r.link_load.terminal_bytes > 0);
        let topo_links = r.link_load.n_global_links;
        // tiny_1d: 9 groups * 4 routers * 2 global ports = 72 directed.
        assert_eq!(topo_links, 72);
        assert_eq!(r.link_load.n_local_links, 9 * 4 * 3);
    }

    #[test]
    fn window_counters_produce_series() {
        let a = vms(
            "for 20 repetitions { all tasks t asynchronously send a 60000 byte message \
             to task (t+3) mod num_tasks then all tasks await completions }.",
            12,
        );
        let mut sim = SimulationBuilder::new(DragonflyConfig::tiny_1d())
            .routing(Routing::Adaptive)
            .placement(Placement::RandomGroups)
            .window_ns(500_000)
            .job("app", a)
            .build()
            .unwrap();
        let r = sim.run(Scheduler::Sequential, SimTime::MAX);
        assert!(!r.router_windows.is_empty());
        let mut routers: Vec<u32> = r.router_windows.iter().map(|(r, _)| *r).collect();
        routers.sort_unstable();
        let ts = r.series_over(&routers, 500_000);
        assert!(ts.total(0) > 0);
    }

    #[test]
    fn credit_vc_mode_completes_and_differs() {
        use dragonfly::FlowControl;
        let src = "for 6 repetitions { all tasks t asynchronously send a 120000 byte \
                   message to task (t + num_tasks/2) mod num_tasks \
                   then all tasks await completions }.";
        let run = |flow: FlowControl| {
            let mut cfg = DragonflyConfig::tiny_1d();
            cfg.flow = flow;
            let mut sim = SimulationBuilder::new(cfg)
                .routing(Routing::Minimal)
                .placement(Placement::RandomNodes)
                .seed(8)
                .job("app", vms(src, 24))
                .build()
                .unwrap();
            sim.run(Scheduler::Sequential, SimTime::MAX)
        };
        let bu = run(FlowControl::BusyUntil);
        let vc = run(FlowControl::credit_default());
        assert!(bu.apps[0].all_done());
        assert!(vc.apps[0].all_done(), "credit mode must not deadlock");
        // Same traffic crossed the network in both modes.
        assert_eq!(bu.apps[0].bytes_sent, vc.apps[0].bytes_sent);
        // Backpressure slows (or at least never speeds up) the congested
        // exchange relative to unbounded buffers.
        let m_bu = bu.apps[0].makespan_ns().unwrap();
        let m_vc = vc.apps[0].makespan_ns().unwrap();
        assert!(m_vc >= m_bu, "credit {m_vc} vs busy-until {m_bu}");
    }

    #[test]
    fn credit_vc_schedulers_agree() {
        use dragonfly::FlowControl;
        let src = "for 3 repetitions { all tasks t asynchronously send a 60000 byte \
                   message to task (t+1) mod num_tasks then all tasks await completions }.";
        let fp = |sched: Scheduler| {
            let mut cfg = DragonflyConfig::tiny_1d();
            cfg.flow = FlowControl::credit_default();
            let mut sim = SimulationBuilder::new(cfg)
                .routing(Routing::Adaptive)
                .placement(Placement::RandomNodes)
                .seed(4)
                .job("app", vms(src, 12))
                .build()
                .unwrap();
            let r = sim.run(sched, SimTime::MAX);
            assert!(r.apps[0].all_done(), "{sched:?}");
            let lat: Vec<(u64, u64)> =
                r.apps[0].latency.iter().map(|l| (l.count, l.sum_ns)).collect();
            (lat, r.link_load)
        };
        let seq = fp(Scheduler::Sequential);
        assert_eq!(seq, fp(Scheduler::Conservative(4)));
        assert_eq!(seq, fp(Scheduler::Optimistic(4)));
    }

    #[test]
    fn symmetric_rendezvous_exchange_completes() {
        // Regression: both partners Isend large payloads to each other at
        // the same time, so their message sequence numbers coincide. The
        // CTS each sends back must not collide with the peer's own
        // in-flight messages in packet reassembly (it once reused the RTS
        // seq as its wire id and deadlocked Rabenseifner rounds).
        let r = run_one(
            "for 8 repetitions { all tasks t asynchronously send a 300000 byte message \
             to task (t + num_tasks/2) mod num_tasks then all tasks await completions }.",
            16,
            Routing::Minimal,
            Placement::RandomNodes,
        );
        assert!(r.apps[0].all_done());
        assert_eq!(r.apps[0].latency.iter().map(|l| l.count).sum::<u64>(), 16 * 8);
    }

    #[test]
    fn trace_replay_reproduces_skeleton_run_exactly() {
        // Table I: a trace recorded from the application must drive the
        // simulator to the identical result as the in-situ skeleton.
        use std::sync::Arc;
        use union_core::{SkeletonInstance, Trace};
        let skel = translate_source(
            "for 4 repetitions { all tasks t asynchronously send a 80000 byte message \
             to task (t+3) mod num_tasks then all tasks await completions } \
             then all tasks reduce a 150000 byte message to all tasks.",
            "app",
        )
        .unwrap();
        let inst = SkeletonInstance::new(&skel, 10, &[]).unwrap();
        let trace = Arc::new(Trace::record(&inst, 1));

        let fingerprint = |r: &SimResults| {
            let a = &r.apps[0];
            let lat: Vec<(u64, u64)> = a.latency.iter().map(|l| (l.count, l.sum_ns)).collect();
            (lat, a.finished_at_ns.clone(), r.link_load)
        };
        let mut s1 = SimulationBuilder::new(DragonflyConfig::tiny_1d())
            .seed(6)
            .job("app", (0..10).map(|r| RankVm::new(inst.clone(), r, 1)).collect())
            .build()
            .unwrap();
        let r1 = s1.run(Scheduler::Sequential, SimTime::MAX);
        let mut s2 = SimulationBuilder::new(DragonflyConfig::tiny_1d())
            .seed(6)
            .job_trace("app", &trace)
            .build()
            .unwrap();
        let r2 = s2.run(Scheduler::Sequential, SimTime::MAX);
        assert_eq!(fingerprint(&r1), fingerprint(&r2));
    }

    #[test]
    fn until_bound_stops_early() {
        let a = vms(
            "for 1000 repetitions { task 0 sends a 100000 byte message to task 1 then \
             task 1 sends a 100000 byte message to task 0 }.",
            2,
        );
        let mut sim =
            SimulationBuilder::new(DragonflyConfig::tiny_1d()).job("app", a).build().unwrap();
        let r = sim.run(Scheduler::Sequential, SimTime::from_us(200));
        assert!(!r.apps[0].all_done());
        assert!(sim.pending_events() > 0);
    }

    #[test]
    fn partition_blocks_group_nodes_with_their_router() {
        let topo = dragonfly::Topology::build(DragonflyConfig::tiny_1d());
        let blocks = partition_blocks(&topo);
        let n_nodes = topo.cfg.total_nodes();
        assert_eq!(blocks.len(), (n_nodes + topo.cfg.total_routers()) as usize);
        for n in 0..n_nodes {
            // A node shares its block with its attached router.
            assert_eq!(blocks[n as usize], topo.node_router(n));
            assert_eq!(blocks[n as usize], blocks[(n_nodes + topo.node_router(n)) as usize]);
        }
    }

    #[test]
    fn delay_edges_match_runtime_delay_composition() {
        use dragonfly::{FlowControl, Topology};
        let topo = Topology::build(DragonflyConfig::tiny_1d());
        let cfg = &topo.cfg;
        let blocks = partition_blocks(&topo);
        let min_cross = |edges: &[LpDelayEdge]| {
            edges
                .iter()
                .filter(|e| blocks[e.src_lp as usize] != blocks[e.dst_lp as usize])
                .map(|e| e.delay_ns)
                .min()
                .unwrap()
        };
        // BusyUntil: only packets cross routers, each paying link latency
        // plus the router traversal delay (local links are the cheapest).
        let edges = lp_delay_edges(&topo);
        assert!(edges.iter().all(|e| e.kind != "credit"));
        assert_eq!(min_cross(&edges), cfg.local_latency_ns + cfg.router_delay_ns);
        // Terminal edges never cross partitions.
        assert!(edges
            .iter()
            .filter(|e| e.kind == "terminal")
            .all(|e| blocks[e.src_lp as usize] == blocks[e.dst_lp as usize]));

        // Credit/VC: upstream credits pay exactly the link latency — the
        // tighter constraint (matches `credit_arrived`'s `at = now + latency`).
        let mut cfg2 = DragonflyConfig::tiny_1d();
        cfg2.flow = FlowControl::credit_default();
        let topo2 = Topology::build(cfg2);
        let edges2 = lp_delay_edges(&topo2);
        assert!(edges2.iter().any(|e| e.kind == "credit"));
        assert_eq!(min_cross(&edges2), topo2.cfg.local_latency_ns);
    }

    #[test]
    fn lp_names_cover_every_lp() {
        let topo = dragonfly::Topology::build(DragonflyConfig::tiny_1d());
        let names = lp_names(&topo);
        let n_nodes = topo.cfg.total_nodes();
        assert_eq!(names.len(), (n_nodes + topo.cfg.total_routers()) as usize);
        assert_eq!(names[0], "node 0");
        assert_eq!(names[n_nodes as usize], "router 0");
    }

    #[test]
    fn adaptive_is_competitive_under_adversarial_traffic() {
        // Every node sends to the diametrically opposite rank: minimal
        // routing squeezes through few direct links; adaptive spreads.
        let src = "for 4 repetitions { all tasks t asynchronously send a 200000 byte \
                   message to task (t + num_tasks/2) mod num_tasks \
                   then all tasks await completions }.";
        let mk = |routing| {
            let mut sim = SimulationBuilder::new(DragonflyConfig::tiny_1d())
                .routing(routing)
                .placement(Placement::RandomGroups)
                .seed(3)
                .job("app", vms(src, 8))
                .build()
                .unwrap();
            let r = sim.run(Scheduler::Sequential, SimTime::MAX);
            r.apps[0].makespan_ns().unwrap()
        };
        let min = mk(Routing::Minimal);
        let adp = mk(Routing::Adaptive);
        // Adaptive should not be dramatically worse; usually better.
        assert!(adp as f64 <= min as f64 * 1.25, "ADP {adp} vs MIN {min}");
    }
}
