//! The router logical process: a thin event wrapper around
//! [`dragonfly::RouterState`].

use crate::event::Event;
use crate::shared::Shared;
use dragonfly::{
    credit_arrived, forward_vc, CreditState, FlowControl, Forward, RouterState, VcAction,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use ross::{Ctx, SimTime};
use std::sync::Arc;

/// Router LP: congestion state plus a rollback-safe RNG for routing
/// decisions (gateway selection, Valiant intermediate groups). In
/// credit-VC mode it additionally tracks downstream buffer credits and
/// queued packets.
#[derive(Clone)]
pub struct RouterLp {
    pub state: RouterState,
    pub credit: Option<CreditState>,
    shared: Arc<Shared>,
    rng: SmallRng,
}

impl RouterLp {
    pub fn new(router: u32, shared: Arc<Shared>, seed: u64) -> RouterLp {
        let n_ports = shared.topo.ports(router).len();
        let state = RouterState::new(router, n_ports, shared.window_ns, shared.max_apps);
        let credit = match shared.topo.cfg.flow {
            FlowControl::BusyUntil => None,
            FlowControl::CreditVc { vcs, buffer_pkts } => {
                Some(CreditState::new(n_ports, vcs, buffer_pkts))
            }
        };
        RouterLp {
            state,
            credit,
            shared,
            rng: SmallRng::seed_from_u64(seed ^ ((router as u64) << 24)),
        }
    }

    pub fn handle_event(&mut self, now: SimTime, ev: &Event, ctx: &mut Ctx<'_, Event>) {
        match (ev, &mut self.credit) {
            (Event::RouterPkt(pkt), None) => {
                let mut pkt = *pkt;
                let fwd = self.state.forward(
                    now,
                    &mut pkt,
                    &self.shared.topo,
                    self.shared.routing,
                    &mut self.rng,
                );
                self.emit_forward(now, ctx, fwd, pkt);
            }
            (Event::RouterPkt(pkt), Some(credit)) => {
                let mut actions = Vec::new();
                forward_vc(
                    &mut self.state,
                    credit,
                    now,
                    *pkt,
                    &self.shared.topo,
                    self.shared.routing,
                    &mut self.rng,
                    &mut actions,
                );
                self.emit_actions(now, ctx, actions);
            }
            (Event::Credit { port, vc }, Some(_)) => {
                let mut actions = Vec::new();
                let credit = self.credit.as_mut().unwrap();
                credit_arrived(
                    &mut self.state,
                    credit,
                    now,
                    *port,
                    *vc,
                    &self.shared.topo,
                    &mut actions,
                );
                self.emit_actions(now, ctx, actions);
            }
            (ev, _) => unreachable!("unexpected event at router LP: {ev:?}"),
        }
    }

    fn emit_actions(&self, now: SimTime, ctx: &mut Ctx<'_, Event>, actions: Vec<VcAction>) {
        for a in actions {
            match a {
                VcAction::Deliver { fwd, pkt } => self.emit_forward(now, ctx, fwd, pkt),
                VcAction::Credit { router, port, vc, at } => {
                    ctx.send(
                        self.shared.lpmap.router_lp(router),
                        at - now,
                        Event::Credit { port, vc },
                    );
                }
            }
        }
    }

    fn emit_forward(
        &self,
        now: SimTime,
        ctx: &mut Ctx<'_, Event>,
        fwd: Forward,
        pkt: dragonfly::Packet,
    ) {
        match fwd {
            Forward::ToRouter { router, arrive } => {
                ctx.send(self.shared.lpmap.router_lp(router), arrive - now, Event::RouterPkt(pkt));
            }
            Forward::ToNode { node, arrive } => {
                ctx.send(self.shared.lpmap.node_lp(node), arrive - now, Event::NodePkt(pkt));
            }
        }
    }
}
