//! One benchmark per paper artifact: each runs a micro version of the
//! code path that regenerates that table or figure. Absolute numbers are
//! documented in EXPERIMENTS.md from `union-exp` runs; these benches keep
//! every experiment's machinery exercised and timed under `cargo bench`.

use codes::SimulationBuilder;
use criterion::{criterion_group, criterion_main, Criterion};
use dragonfly::{DragonflyConfig, Routing, Topology};
use harness::sweep::{run_one, Net, RunKey, SweepConfig, Workload};
use placement::Placement;
use ross::{Scheduler, SimDuration, SimTime};
use union_core::{RankVm, SkeletonInstance, Validation};
use workloads::{app, AppKind, Profile};

/// A micro mix on the 72-node tiny system (fast enough for criterion).
fn micro_mix(routing: Routing, placement: Placement, window_ns: u64) -> codes::SimResults {
    let mut b = SimulationBuilder::new(DragonflyConfig::tiny_1d())
        .routing(routing)
        .placement(placement)
        .seed(3)
        .window_ns(window_ns);
    for (kind, ranks) in
        [(AppKind::Cosmoflow, 16u32), (AppKind::UniformRandom, 16), (AppKind::NearestNeighbor, 27)]
    {
        let mut cfg = app(kind, Profile::Quick, 1, 256);
        cfg.ranks = ranks;
        if kind == AppKind::NearestNeighbor {
            cfg.args.extend(["--nx", "3", "--ny", "3", "--nz", "3"].iter().map(|s| s.to_string()));
        }
        b = b.job(cfg.name(), cfg.vms(1).unwrap());
    }
    b.build().unwrap().run(Scheduler::Sequential, SimTime::MAX)
}

/// Table II: topology construction of both full-scale systems.
fn bench_table2(c: &mut Criterion) {
    c.bench_function("table2/build-8448-node-topologies", |b| {
        b.iter(|| {
            let t1 = Topology::build(DragonflyConfig::dragonfly_1d());
            let t2 = Topology::build(DragonflyConfig::dragonfly_2d());
            (t1.cfg.total_nodes(), t2.cfg.total_nodes())
        })
    });
}

/// Tables IV/V + Fig 6: the AlexNet validation at a reduced rank count.
fn bench_validation(c: &mut Criterion) {
    let mut g = c.benchmark_group("table4-5-fig6");
    g.sample_size(10);
    g.bench_function("alexnet-validation-64", |b| {
        let skel = workloads::alexnet();
        let inst = SkeletonInstance::new(&skel, 64, &[]).unwrap();
        b.iter(|| {
            let s = Validation::collect(64, |r| RankVm::new(inst.clone(), r, 1));
            let a =
                Validation::collect(64, |r| workloads::alexnet_reference::ops(r, 64).into_iter());
            assert!(s.matches(&a));
        })
    });
    g.finish();
}

/// Fig 7 + Fig 9: a micro interference run producing latency and
/// communication-time distributions.
fn bench_fig7_fig9(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7-fig9");
    g.sample_size(10);
    for placement in Placement::all() {
        g.bench_function(placement.label(), |b| {
            b.iter(|| {
                let r = micro_mix(Routing::Adaptive, placement, 0);
                let lat: u64 = r.apps.iter().flat_map(|a| a.latency.iter().map(|l| l.count)).sum();
                lat
            })
        });
    }
    g.finish();
}

/// Fig 8: the windowed-router-counter path (0.5 ms windows) plus series
/// aggregation over one job's routers.
fn bench_fig8(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    g.bench_function("windowed-run+series", |b| {
        b.iter(|| {
            let r = micro_mix(Routing::Adaptive, Placement::RandomGroups, 500_000);
            let routers: Vec<u32> = r.router_windows.iter().map(|(id, _)| *id).collect();
            let ts = r.series_over(&routers, 500_000);
            ts.total(0)
        })
    });
    g.finish();
}

/// Table VI: link-load accounting on both network flavors.
fn bench_table6(c: &mut Criterion) {
    let mut g = c.benchmark_group("table6");
    g.sample_size(10);
    for routing in [Routing::Minimal, Routing::Adaptive] {
        g.bench_function(routing.label(), |b| {
            b.iter(|| {
                let r = micro_mix(routing, Placement::RandomGroups, 0);
                (r.link_load.global_bytes, r.link_load.local_bytes)
            })
        });
    }
    g.finish();
}

/// Flow-control ablation (DESIGN.md substitution #2): busy-until queues
/// vs credit/VC backpressure on the same congested exchange.
fn bench_flow_control(c: &mut Criterion) {
    use dragonfly::FlowControl;
    let mut g = c.benchmark_group("flow-control");
    g.sample_size(10);
    for (label, flow) in
        [("busy-until", FlowControl::BusyUntil), ("credit-vc", FlowControl::credit_default())]
    {
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut cfg = DragonflyConfig::tiny_1d();
                cfg.flow = flow;
                let mut builder = SimulationBuilder::new(cfg)
                    .routing(Routing::Minimal)
                    .placement(Placement::RandomNodes)
                    .seed(8);
                let mut app_cfg = app(AppKind::NearestNeighbor, Profile::Quick, 2, 64);
                app_cfg.ranks = 27;
                app_cfg
                    .args
                    .extend(["--nx", "3", "--ny", "3", "--nz", "3"].iter().map(|s| s.to_string()));
                builder = builder.job(app_cfg.name(), app_cfg.vms(1).unwrap());
                builder.build().unwrap().run(Scheduler::Sequential, SimTime::MAX).stats.committed
            })
        });
    }
    g.finish();
}

/// Table I: trace recording + replay vs in-situ skeleton execution.
fn bench_table1(c: &mut Criterion) {
    use std::sync::Arc;
    use union_core::Trace;
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    let skel = workloads::nearest_neighbor();
    let inst =
        SkeletonInstance::new(&skel, 27, &["--nx", "3", "--ny", "3", "--nz", "3", "--iters", "3"])
            .unwrap();
    g.bench_function("record-trace", |b| b.iter(|| Trace::record(&inst, 1).len()));
    let trace = Arc::new(Trace::record(&inst, 1));
    g.bench_function("simulate-trace-replay", |b| {
        b.iter(|| {
            let mut sim = SimulationBuilder::new(DragonflyConfig::tiny_1d())
                .seed(2)
                .job_trace("nn", &trace)
                .build()
                .unwrap();
            sim.run(Scheduler::Sequential, SimTime::MAX).stats.committed
        })
    });
    g.bench_function("simulate-skeleton", |b| {
        b.iter(|| {
            let mut sim = SimulationBuilder::new(DragonflyConfig::tiny_1d())
                .seed(2)
                .job("nn", (0..27).map(|r| RankVm::new(inst.clone(), r, 1)).collect())
                .build()
                .unwrap();
            sim.run(Scheduler::Sequential, SimTime::MAX).stats.committed
        })
    });
    g.finish();
}

/// The harness sweep runner itself at smoke scale (the machinery behind
/// `union-exp all`).
fn bench_sweep_smoke(c: &mut Criterion) {
    let mut g = c.benchmark_group("sweep");
    g.sample_size(10);
    g.bench_function("run-one-smoke", |b| {
        let mut cfg = SweepConfig::smoke();
        cfg.scale = 256;
        let key = RunKey {
            net: Net::OneD,
            workload: Workload::Mix(3),
            placement: Placement::RandomGroups,
            routing: Routing::Adaptive,
        };
        b.iter(|| run_one(&cfg, key).unwrap().stats.committed)
    });
    g.finish();
}

/// Scheduler comparison on the union-exp sweep path: the same smoke-scale
/// sweep cell under every scheduler, with the threaded ones at multiple
/// worker counts. The 100 ns parallel lookahead window is the minimum
/// cross-partition delay of the default dragonfly config (local link
/// latency; node↔own-router traffic never crosses partitions).
fn bench_scheduler_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("sweep/schedulers");
    g.sample_size(10);
    let key = RunKey {
        net: Net::OneD,
        workload: Workload::Mix(3),
        placement: Placement::RandomGroups,
        routing: Routing::Adaptive,
    };
    let mut scheds = vec![("seq".to_string(), Scheduler::Sequential)];
    for threads in [2usize, 4] {
        scheds.push((format!("cons:{threads}"), Scheduler::Conservative(threads)));
        scheds.push((format!("opt:{threads}"), Scheduler::Optimistic(threads)));
        scheds.push((
            format!("par:{threads}:100"),
            Scheduler::ConservativeParallel { threads, lookahead: SimDuration::from_ns(100) },
        ));
    }
    for (label, sched) in scheds {
        g.bench_function(label.as_str(), |b| {
            let mut cfg = SweepConfig::smoke();
            cfg.scale = 256;
            cfg.sched = sched;
            b.iter(|| run_one(&cfg, key).unwrap().stats.committed)
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_table2,
    bench_validation,
    bench_fig7_fig9,
    bench_fig8,
    bench_table6,
    bench_flow_control,
    bench_table1,
    bench_sweep_smoke,
    bench_scheduler_sweep
);
criterion_main!(benches);
