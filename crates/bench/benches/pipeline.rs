//! Union toolchain benchmarks: DSL compilation, translation,
//! instantiation (static message resolution), skeleton execution, and the
//! Table IV/V validation collectors.

use criterion::{criterion_group, criterion_main, Criterion};
use union_core::{translate, translate_source, RankVm, SkeletonInstance, Validation};

fn bench_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    g.bench_function("conceptual-compile-alexnet", |b| {
        b.iter(|| conceptual::compile(workloads::ALEXNET_NCPTL).unwrap())
    });
    g.bench_function("translate-alexnet", |b| {
        let prog = conceptual::compile(workloads::ALEXNET_NCPTL).unwrap();
        b.iter(|| translate(&prog, "alexnet").unwrap())
    });
    g.bench_function("instantiate-milc-4096", |b| {
        let skel = workloads::milc();
        b.iter(|| SkeletonInstance::new(&skel, 4096, &["--iters", "2"]).unwrap())
    });
    g.bench_function("vm-stream-nekbone-rank0", |b| {
        let skel = workloads::nekbone();
        let inst = SkeletonInstance::new(&skel, 2197, &["--iters", "5"]).unwrap();
        b.iter(|| RankVm::new(inst.clone(), 0, 1).count())
    });
    g.finish();
}

/// Table IV/V generation: the validation collectors over the full
/// 512-rank AlexNet skeleton and its reference.
fn bench_validation(c: &mut Criterion) {
    let mut g = c.benchmark_group("validation");
    g.sample_size(10);
    let skel = workloads::alexnet();
    let inst = SkeletonInstance::new(&skel, 512, &[]).unwrap();
    g.bench_function("table4-5-fig6-skeleton-512", |b| {
        b.iter(|| Validation::collect(512, |r| RankVm::new(inst.clone(), r, 1)))
    });
    g.bench_function("table4-5-fig6-reference-512", |b| {
        b.iter(|| {
            Validation::collect(512, |r| workloads::alexnet_reference::ops(r, 512).into_iter())
        })
    });
    g.finish();
}

/// Skeletonization speedup microcosm: executing the skeleton op stream vs
/// a trace-like expansion of every packet-level byte (what trace replay
/// would enumerate). Demonstrates why in-situ skeletons beat traces.
fn bench_skeleton_vs_trace_expansion(c: &mut Criterion) {
    let mut g = c.benchmark_group("skeleton-vs-trace");
    let src = "for 50 repetitions { all tasks t asynchronously send a 1048576 byte \
               message to task (t+1) mod num_tasks then all tasks await completions }.";
    let skel = translate_source(src, "ring").unwrap();
    let inst = SkeletonInstance::new(&skel, 64, &[]).unwrap();
    g.bench_function("skeleton-ops", |b| {
        b.iter(|| (0..64u32).map(|r| RankVm::new(inst.clone(), r, 1).count()).sum::<usize>())
    });
    g.bench_function("trace-expansion-4KiB-records", |b| {
        // A trace would store one record per packet: count them all.
        b.iter(|| {
            let mut records = 0u64;
            for _rank in 0..64u64 {
                for _rep in 0..50u64 {
                    records += 1048576u64.div_ceil(4096);
                }
            }
            records
        })
    });
    g.finish();
}

criterion_group!(benches, bench_compile, bench_validation, bench_skeleton_vs_trace_expansion);
criterion_main!(benches);
