//! PDES engine ablation: the same PHOLD workload under the sequential,
//! conservative, optimistic, and conservative-parallel schedulers — the
//! scheduler trade-off the ROSS substrate exposes (the paper runs CODES
//! in optimistic mode).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ross::{Ctx, Envelope, Lp, OptimisticConfig, SimDuration, SimTime, Simulation};

#[derive(Clone)]
struct Phold {
    rng: SmallRng,
    n_lps: u32,
    horizon: SimTime,
    hits: u64,
}

impl Lp for Phold {
    type Event = u32;
    fn handle(&mut self, _ev: &Envelope<u32>, ctx: &mut Ctx<'_, u32>) {
        self.hits += 1;
        if ctx.now() < self.horizon {
            let dst = self.rng.gen_range(0..self.n_lps);
            let delay = SimDuration::from_ns(self.rng.gen_range(100..1000));
            ctx.send(dst, delay, 0);
        }
    }
}

fn phold(n_lps: u32) -> Simulation<Phold> {
    let lps = (0..n_lps)
        .map(|i| Phold {
            rng: SmallRng::seed_from_u64(i as u64),
            n_lps,
            horizon: SimTime::from_us(500),
            hits: 0,
        })
        .collect();
    let mut sim = Simulation::new(lps, SimDuration::from_ns(100));
    for i in 0..n_lps {
        sim.schedule(i, SimTime::from_ns(i as u64), 0);
    }
    sim
}

fn bench_schedulers(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine/phold-64lp");
    g.sample_size(10);
    g.bench_function(BenchmarkId::from_parameter("sequential"), |b| {
        b.iter(|| {
            let mut sim = phold(64);
            sim.run_sequential(SimTime::MAX).committed
        })
    });
    for threads in [2usize, 4] {
        g.bench_function(BenchmarkId::new("conservative", threads), |b| {
            b.iter(|| {
                let mut sim = phold(64);
                sim.run_conservative(threads, SimTime::MAX).committed
            })
        });
        g.bench_function(BenchmarkId::new("optimistic", threads), |b| {
            b.iter(|| {
                let mut sim = phold(64);
                sim.run_optimistic(threads, OptimisticConfig::default(), SimTime::MAX).committed
            })
        });
        // PHOLD's minimum send delay is 100 ns, so 100 ns windows are the
        // widest the conservative-parallel scheduler can safely use here.
        g.bench_function(BenchmarkId::new("conservative-parallel", threads), |b| {
            b.iter(|| {
                let mut sim = phold(64);
                sim.run_conservative_parallel(threads, SimDuration::from_ns(100), SimTime::MAX)
                    .committed
            })
        });
    }
    g.finish();
}

fn bench_snapshot_interval(c: &mut Criterion) {
    // Time Warp state-saving ablation: snapshot every event vs sparser
    // checkpoints with coast-forward.
    let mut g = c.benchmark_group("engine/snapshot-interval");
    g.sample_size(10);
    for interval in [1u64, 4, 16] {
        g.bench_function(BenchmarkId::from_parameter(interval), |b| {
            b.iter(|| {
                let mut sim = phold(32);
                sim.run_optimistic(
                    4,
                    OptimisticConfig { batch: 256, snapshot_interval: interval },
                    SimTime::MAX,
                )
                .committed
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_schedulers, bench_snapshot_interval);
criterion_main!(benches);
