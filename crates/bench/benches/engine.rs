//! PDES engine ablation: the same PHOLD workload under the sequential,
//! conservative, optimistic, and conservative-parallel schedulers — the
//! scheduler trade-off the ROSS substrate exposes (the paper runs CODES
//! in optimistic mode).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ross::{OptimisticConfig, QueueKind, SimDuration, SimTime};
use std::sync::Arc;
use union_bench::{phold, phold_sized};

fn bench_schedulers(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine/phold-64lp");
    g.sample_size(10);
    g.bench_function(BenchmarkId::from_parameter("sequential"), |b| {
        b.iter(|| {
            let mut sim = phold(64);
            sim.run_sequential(SimTime::MAX).committed
        })
    });
    for threads in [2usize, 4] {
        g.bench_function(BenchmarkId::new("conservative", threads), |b| {
            b.iter(|| {
                let mut sim = phold(64);
                sim.run_conservative(threads, SimTime::MAX).committed
            })
        });
        g.bench_function(BenchmarkId::new("optimistic", threads), |b| {
            b.iter(|| {
                let mut sim = phold(64);
                sim.run_optimistic(threads, OptimisticConfig::default(), SimTime::MAX).committed
            })
        });
        // PHOLD's minimum send delay is 100 ns, so 100 ns windows are the
        // widest the conservative-parallel scheduler can safely use here.
        g.bench_function(BenchmarkId::new("conservative-parallel", threads), |b| {
            b.iter(|| {
                let mut sim = phold(64);
                sim.run_conservative_parallel(threads, SimDuration::from_ns(100), SimTime::MAX)
                    .committed
            })
        });
    }
    g.finish();
}

fn bench_snapshot_interval(c: &mut Criterion) {
    // Time Warp state-saving ablation: snapshot every event vs sparser
    // checkpoints with coast-forward.
    let mut g = c.benchmark_group("engine/snapshot-interval");
    g.sample_size(10);
    for interval in [1u64, 4, 16] {
        g.bench_function(BenchmarkId::from_parameter(interval), |b| {
            b.iter(|| {
                let mut sim = phold(32);
                sim.run_optimistic(
                    4,
                    OptimisticConfig { batch: 256, snapshot_interval: interval },
                    SimTime::MAX,
                )
                .committed
            })
        });
    }
    g.finish();
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    // The telemetry layer's cost contract: attaching a recorder must be
    // nearly free (counters are plain u64s, timing scopes only fire when a
    // recorder is present). Compare these series — "on" must stay within
    // ~2% of "off"; the ignored `telemetry_overhead_under_two_percent`
    // test in the crate enforces that bound.
    let mut g = c.benchmark_group("engine/telemetry-overhead");
    g.sample_size(10);
    for (label, telemetry) in [("off", false), ("on", true)] {
        g.bench_function(BenchmarkId::new("sequential", label), |b| {
            b.iter(|| {
                let mut sim = phold(64);
                if telemetry {
                    sim.set_telemetry(Some(Arc::new(telemetry::Recorder::new())));
                }
                sim.run_sequential(SimTime::MAX).committed
            })
        });
    }
    for (label, telemetry) in [("off", false), ("on", true)] {
        g.bench_function(BenchmarkId::new("conservative-2t", label), |b| {
            b.iter(|| {
                let mut sim = phold(64);
                if telemetry {
                    sim.set_telemetry(Some(Arc::new(telemetry::Recorder::new())));
                }
                sim.run_conservative(2, SimTime::MAX).committed
            })
        });
    }
    g.finish();
}

fn bench_queues(c: &mut Criterion) {
    // Pending-event queue ablation: binary heap (O(log n) per op) vs
    // ladder (O(1) amortized). The gap only shows once the pending set
    // is large, so this group sweeps the PHOLD population; the committed
    // baseline lives in BENCH_queue.json (see the `queue-bench` bin).
    let mut g = c.benchmark_group("engine/queue");
    g.sample_size(10);
    for n_lps in [64u32, 4096] {
        for queue in [QueueKind::Heap, QueueKind::Ladder] {
            g.bench_function(BenchmarkId::new(queue.label(), n_lps), |b| {
                b.iter(|| {
                    let mut sim = phold_sized(n_lps, SimTime::from_us(50), queue);
                    sim.run_sequential(SimTime::MAX).committed
                })
            });
        }
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_schedulers,
    bench_snapshot_interval,
    bench_telemetry_overhead,
    bench_queues
);
criterion_main!(benches);
