//! `engine-bench` — steady-state scheduler throughput on the PHOLD stress
//! model, the baseline the event-pooling work (DESIGN.md §14) is gated on.
//! Writes the machine-readable `BENCH_engine.json` at the repo root:
//!
//! * a sequential ladder-queue row (best wall time of `--iters` fresh
//!   runs — minima are the cleanest estimate on a shared host) with the
//!   envelope-pool counters and the speedup against the committed
//!   pre-pooling baseline (`--baseline`, events/s);
//! * a conservative-parallel `par:T:L` row with its measured speedup over
//!   the sequential row and the critical-path speedup bound extracted
//!   from a traced run (`harness::trace_analysis`), i.e. how much of the
//!   theoretically available parallelism the engine realizes;
//! * a barrier-free `async:T:L` row (same shape as the par row) so the
//!   two conservative runtimes are directly comparable. Both rows carry
//!   `stall_ns_per_event` — wall nanoseconds a worker spent blocked (at
//!   the window barrier for par, parked on peer horizons for async) per
//!   committed event; the async scheduler's whole reason to exist is
//!   driving that number down.
//!
//! ```text
//! cargo run --release -p union-bench --bin engine-bench [-- opts]
//!   --n-lps N        PHOLD population (default 65536)
//!   --horizon-us U   PHOLD virtual-time horizon (default 10)
//!   --iters K        timing repetitions per row (default 7)
//!   --threads T      parallel worker count (default 2)
//!   --baseline E     pre-pooling sequential events/s to compare against
//!   --out FILE       output path (default <repo>/BENCH_engine.json)
//! ```
//!
//! Exits 1 when the sequential run commits under 1M events, so CI cannot
//! silently shrink the baseline. The parallel row is informational on
//! hosts without real parallelism (`host_cores` is recorded so gates can
//! tell): on a 1-core box two workers timeshare and the measured speedup
//! necessarily sits below 1.
//!
//! The pre-pooling baseline default (5,032,795 events/s) is the committed
//! `phold-seq`/ladder row of `BENCH_queue.json` at the last pre-pooling
//! commit — same model, same parameters (65536 LPs, 10 us horizon), same
//! single-committed-run protocol this file uses. Shared-host wall-clock
//! noise is large (±30% run to run); comparing committed artifacts keeps
//! the trajectory consistent, and `--iters` minima keep each artifact
//! honest.

use harness::trace_analysis;
use ross::{QueueKind, SimTime};
use std::sync::Arc;

#[derive(serde::Serialize)]
struct SeqRow {
    queue: &'static str,
    n_lps: u32,
    events: u64,
    wall_seconds: f64,
    events_per_sec: f64,
    /// Envelope-pool population high-water mark (slab slots).
    pool_high_water: u64,
    /// Pool slots served from the free list (recycled envelopes).
    pool_recycled: u64,
    speedup_vs_baseline: f64,
}

#[derive(serde::Serialize)]
struct ParRow {
    sched: String,
    threads: usize,
    window_ns: u64,
    events: u64,
    wall_seconds: f64,
    events_per_sec: f64,
    speedup_vs_sequential: f64,
    /// Max speedup the event dependency graph admits (critical-path
    /// analysis of a traced run).
    critical_path_speedup_bound: f64,
    /// `speedup_vs_sequential / critical_path_speedup_bound` — the
    /// fraction of available parallelism the engine realizes.
    bound_fraction: f64,
    /// Worker-blocked wall ns (barrier waits for par, horizon parks for
    /// async) per committed event, from the best-stall timing run.
    stall_ns_per_event: f64,
}

#[derive(serde::Serialize)]
struct Report {
    schema: &'static str,
    host_cores: usize,
    baseline_events_per_sec: f64,
    sequential: SeqRow,
    parallel: ParRow,
    asynchronous: ParRow,
}

fn opt<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Best (minimum) wall time over `iters` fresh runs; the committed event
/// count must agree across runs (the engine is deterministic).
fn best_of(iters: usize, mut run: impl FnMut() -> (f64, u64)) -> (f64, u64) {
    let (mut best, mut events) = (f64::MAX, 0u64);
    for i in 0..iters {
        let (wall, committed) = run();
        if i == 0 {
            events = committed;
        } else {
            assert_eq!(events, committed, "nondeterministic event count across timing runs");
        }
        best = best.min(wall);
    }
    (best, events)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n_lps: u32 = opt(&args, "--n-lps", 65_536);
    let horizon = SimTime::from_us(opt(&args, "--horizon-us", 10));
    let iters: usize = opt(&args, "--iters", 7);
    let threads: usize = opt(&args, "--threads", 2);
    let baseline: f64 = opt(&args, "--baseline", 5_032_795.0);
    let default_out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json").to_string();
    let out: String = opt(&args, "--out", default_out);
    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    // Sequential row. The pool counters come off the queue itself after
    // the final run — identical runs, so any iteration's counters serve.
    eprintln!("sequential phold n_lps={n_lps} iters={iters}…");
    let mut pool = ross::PoolStats::default();
    let (seq_wall, seq_events) = best_of(iters, || {
        let mut sim = union_bench::phold_sized(n_lps, horizon, QueueKind::Ladder);
        let stats = sim.run_sequential(SimTime::MAX);
        pool = sim.pending_pool_stats();
        (stats.wall_seconds, stats.committed)
    });
    let seq_rate = seq_events as f64 / seq_wall;
    let sequential = SeqRow {
        queue: QueueKind::Ladder.label(),
        n_lps,
        events: seq_events,
        wall_seconds: seq_wall,
        events_per_sec: seq_rate,
        pool_high_water: pool.high_water,
        pool_recycled: pool.recycled,
        speedup_vs_baseline: seq_rate / baseline,
    };

    // Parallel row: par:T:L where L is the model lookahead (100 ns).
    // Stall totals are timing-noisy like wall time, so keep the minimum
    // across iterations for the same reason best_of keeps minimum wall.
    let window = ross::SimDuration::from_ns(100);
    eprintln!("parallel phold threads={threads} window=100ns iters={iters}…");
    let mut par_stall = u64::MAX;
    let (par_wall, par_events) = best_of(iters, || {
        let mut sim = union_bench::phold_sized(n_lps, horizon, QueueKind::Ladder);
        let stats = sim.run_conservative_parallel(threads, window, SimTime::MAX);
        par_stall = par_stall.min(stats.horizon_stall_ns);
        (stats.wall_seconds, stats.committed)
    });
    assert_eq!(par_events, seq_events, "parallel run diverged from sequential");
    let par_rate = par_events as f64 / par_wall;

    // Async row: async:T:L, same threads and lookahead as the par row so
    // the two conservative runtimes differ only in sync protocol.
    eprintln!("async phold threads={threads} lookahead=100ns iters={iters}…");
    let mut async_stall = u64::MAX;
    let (async_wall, async_events) = best_of(iters, || {
        let mut sim = union_bench::phold_sized(n_lps, horizon, QueueKind::Ladder);
        let stats = sim.run_conservative_async(threads, window, SimTime::MAX);
        async_stall = async_stall.min(stats.horizon_stall_ns);
        (stats.wall_seconds, stats.committed)
    });
    assert_eq!(async_events, seq_events, "async run diverged from sequential");
    let async_rate = async_events as f64 / async_wall;

    // Critical-path bound from a fully-sampled traced sequential run.
    eprintln!("tracing critical path…");
    let tracer = Arc::new(ross::Tracer::new(1));
    let mut sim = union_bench::phold_sized(n_lps, horizon, QueueKind::Ladder);
    sim.set_tracer(Some(tracer.clone()));
    sim.run_sequential(SimTime::MAX);
    let runs = trace_analysis::parse_chrome(&tracer.to_chrome_json()).expect("parse own trace");
    let analysis = trace_analysis::analyze(runs.first().expect("traced run present"));
    let bound = analysis.speedup_bound;

    let parallel = ParRow {
        sched: format!("par:{threads}:100"),
        threads,
        window_ns: 100,
        events: par_events,
        wall_seconds: par_wall,
        events_per_sec: par_rate,
        speedup_vs_sequential: par_rate / seq_rate,
        critical_path_speedup_bound: bound,
        bound_fraction: (par_rate / seq_rate) / bound,
        stall_ns_per_event: par_stall as f64 / par_events as f64,
    };
    let asynchronous = ParRow {
        sched: format!("async:{threads}:100"),
        threads,
        window_ns: 100,
        events: async_events,
        wall_seconds: async_wall,
        events_per_sec: async_rate,
        speedup_vs_sequential: async_rate / seq_rate,
        critical_path_speedup_bound: bound,
        bound_fraction: (async_rate / seq_rate) / bound,
        stall_ns_per_event: async_stall as f64 / async_events as f64,
    };

    let report = Report {
        schema: "engine-bench/v2",
        host_cores,
        baseline_events_per_sec: baseline,
        sequential,
        parallel,
        asynchronous,
    };
    println!("| row | events | wall s | events/s | speedup | stall ns/ev |");
    println!("|---|---|---|---|---|---|");
    println!(
        "| seq ladder | {} | {:.3} | {:.0} | {:.2}x vs baseline | — |",
        seq_events, seq_wall, seq_rate, report.sequential.speedup_vs_baseline
    );
    for row in [&report.parallel, &report.asynchronous] {
        println!(
            "| {} | {} | {:.3} | {:.0} | {:.2}x vs seq (bound {:.2}x) | {:.0} |",
            row.sched,
            row.events,
            row.wall_seconds,
            row.events_per_sec,
            row.speedup_vs_sequential,
            bound,
            row.stall_ns_per_event
        );
    }
    std::fs::write(&out, serde_json::to_string_pretty(&report).unwrap()).unwrap();
    eprintln!("wrote {out}");
    if seq_events < 1_000_000 {
        eprintln!("engine-bench: PHOLD committed under 1M events; raise --n-lps/--horizon-us");
        std::process::exit(1);
    }
}
