//! `queue-bench` — committed-event throughput of the two pending-event
//! queues (binary heap vs ladder) on (a) a large sequential PHOLD run
//! whose queue population makes the asymptotics visible and (b) the
//! `union-exp` smoke sweep, the harness's real workload. Writes the
//! machine-readable baseline `BENCH_queue.json` at the repo root.
//!
//! ```text
//! cargo run --release -p union-bench --bin queue-bench [-- opts]
//!   --n-lps N        PHOLD population (default 65536)
//!   --horizon-us U   PHOLD virtual-time horizon (default 10)
//!   --out FILE       output path (default <repo>/BENCH_queue.json)
//! ```
//!
//! Exits 1 when the PHOLD run commits under 1M events (the baseline
//! would be too small to be meaningful) so CI can't silently shrink it.

use harness::sweep::{self, SweepConfig};
use ross::{QueueKind, Scheduler, SimTime};

#[derive(serde::Serialize)]
struct Row {
    bench: &'static str,
    queue: &'static str,
    n_lps: u32,
    events: u64,
    wall_seconds: f64,
    events_per_sec: f64,
}

fn phold_row(n_lps: u32, horizon: SimTime, queue: QueueKind) -> Row {
    // One warm-up then the timed run; a fresh simulation each time so the
    // two queues see identical initial conditions.
    let mut best = f64::MAX;
    let mut events = 0;
    for _ in 0..2 {
        let mut sim = union_bench::phold_sized(n_lps, horizon, queue);
        let stats = sim.run_sequential(SimTime::MAX);
        best = best.min(stats.wall_seconds);
        events = stats.committed;
    }
    Row {
        bench: "phold-seq",
        queue: queue.label(),
        n_lps,
        events,
        wall_seconds: best,
        events_per_sec: events as f64 / best,
    }
}

fn sweep_row(queue: QueueKind) -> Row {
    let mut cfg = SweepConfig::smoke();
    cfg.queue = queue;
    cfg.sched = Scheduler::Sequential;
    let t0 = std::time::Instant::now();
    let records = sweep::run_sweep(&cfg, |_| {});
    let wall = t0.elapsed().as_secs_f64();
    let events: u64 = records.iter().map(|r| r.stats.committed).sum();
    // The smoke sweep's single configuration builds one model; report its
    // real LP count (was hardcoded 0, which read as "no LPs simulated").
    let n_lps = records.iter().map(|r| r.n_lps).max().unwrap_or(0);
    Row {
        bench: "union-exp-smoke",
        queue: queue.label(),
        n_lps,
        events,
        wall_seconds: wall,
        events_per_sec: events as f64 / wall,
    }
}

fn opt<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n_lps: u32 = opt(&args, "--n-lps", 65_536);
    let horizon = SimTime::from_us(opt(&args, "--horizon-us", 10));
    let default_out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_queue.json").to_string();
    let out: String = opt(&args, "--out", default_out);

    let mut rows = Vec::new();
    for queue in [QueueKind::Heap, QueueKind::Ladder] {
        eprintln!("phold-seq n_lps={n_lps} queue={}…", queue.label());
        rows.push(phold_row(n_lps, horizon, queue));
        eprintln!("union-exp smoke sweep queue={}…", queue.label());
        rows.push(sweep_row(queue));
    }

    let phold: Vec<&Row> = rows.iter().filter(|r| r.bench == "phold-seq").collect();
    let (heap, ladder) = (phold[0], phold[1]);
    println!("| bench | queue | events | wall s | events/s |");
    println!("|---|---|---|---|---|");
    for r in &rows {
        println!(
            "| {} | {} | {} | {:.3} | {:.0} |",
            r.bench, r.queue, r.events, r.wall_seconds, r.events_per_sec
        );
    }
    println!(
        "phold ladder/heap speedup: {:.2}x over {} events",
        ladder.events_per_sec / heap.events_per_sec,
        ladder.events
    );
    std::fs::write(&out, serde_json::to_string_pretty(&rows).unwrap()).unwrap();
    eprintln!("wrote {out}");
    if ladder.events < 1_000_000 {
        eprintln!("queue-bench: PHOLD run committed under 1M events; raise --n-lps/--horizon-us");
        std::process::exit(1);
    }
}
