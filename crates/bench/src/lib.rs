//! Criterion benchmark crate; see `benches/`.
//!
//! The PHOLD model lives here so the engine benches and the telemetry
//! overhead guard test share one definition.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ross::{Ctx, Envelope, Lp, QueueKind, SimDuration, SimTime, Simulation};

/// The classic PHOLD stress model: every event reschedules one event to a
/// uniformly random LP after a random delay, until a virtual-time horizon.
#[derive(Clone)]
pub struct Phold {
    rng: SmallRng,
    n_lps: u32,
    horizon: SimTime,
    pub hits: u64,
}

impl Lp for Phold {
    type Event = u32;
    fn handle(&mut self, _ev: &Envelope<u32>, ctx: &mut Ctx<'_, u32>) {
        self.hits += 1;
        if ctx.now() < self.horizon {
            let dst = self.rng.gen_range(0..self.n_lps);
            let delay = SimDuration::from_ns(self.rng.gen_range(100..1000));
            ctx.send(dst, delay, 0);
        }
    }
}

/// A fresh PHOLD simulation with one initial event per LP and a 500 us
/// horizon (the configuration the engine benches use).
pub fn phold(n_lps: u32) -> Simulation<Phold> {
    phold_sized(n_lps, SimTime::from_us(500), QueueKind::default())
}

/// PHOLD with explicit population, horizon, and pending-event queue —
/// the queue benches use large `n_lps` so the pending set is big enough
/// for queue asymptotics to dominate (one event circulates per LP, so
/// the queue holds ~`n_lps` events throughout).
pub fn phold_sized(n_lps: u32, horizon: SimTime, queue: QueueKind) -> Simulation<Phold> {
    let lps = (0..n_lps)
        .map(|i| Phold { rng: SmallRng::seed_from_u64(i as u64), n_lps, horizon, hits: 0 })
        .collect();
    let mut sim = Simulation::with_queue(lps, SimDuration::from_ns(100), queue);
    for i in 0..n_lps {
        // Spread starts over at most 1 us so every ball circulates even
        // when `n_lps` is much larger than the horizon in ns.
        sim.schedule(i, SimTime::from_ns(i as u64 % 1000), 0);
    }
    sim
}

#[cfg(test)]
mod tests {
    use super::phold;
    use ross::SimTime;
    use std::sync::Arc;
    use std::time::Instant;

    /// The telemetry acceptance guard: counters and timing scopes must cost
    /// under 2% of PHOLD wall time when a recorder is attached. Ignored by
    /// default because it needs quiet, repeated timing runs; CI and local
    /// checks run it explicitly with
    /// `cargo test -p union-bench --release -- --ignored telemetry_overhead`.
    #[test]
    #[ignore = "timing-sensitive; run explicitly in release"]
    fn telemetry_overhead_under_two_percent() {
        let time_one = |telemetry: bool| {
            let mut sim = phold(64);
            if telemetry {
                sim.set_telemetry(Some(Arc::new(telemetry::Recorder::new())));
            }
            let t0 = Instant::now();
            let stats = sim.run_sequential(SimTime::MAX);
            let dt = t0.elapsed();
            (dt, stats.committed)
        };
        // Warm up, then interleave paired runs and compare the *minimum*
        // times: scheduler noise only ever adds time, so the minima are
        // the cleanest estimate of each configuration's true cost.
        time_one(false);
        time_one(true);
        let (mut off, mut on) = (std::time::Duration::MAX, std::time::Duration::MAX);
        for _ in 0..20 {
            let (d_off, c_off) = time_one(false);
            let (d_on, c_on) = time_one(true);
            assert_eq!(c_off, c_on, "telemetry changed the event count");
            off = off.min(d_off);
            on = on.min(d_on);
        }
        let ratio = on.as_secs_f64() / off.as_secs_f64();
        assert!(
            ratio < 1.02,
            "telemetry overhead {:.2}% exceeds 2% (on={on:?}, off={off:?})",
            (ratio - 1.0) * 100.0
        );
    }

    /// The tracing acceptance guard: with tracing disabled the scheduler
    /// hot path must stay within 2% of baseline. The disabled path is a
    /// single `Option` test per event, which cannot be A/B-measured
    /// inside one binary, so this compares against a tracer attached
    /// with a zero event budget: that path (kind lookup, dry check,
    /// drop counter) is a strict superset of the disabled path, making
    /// the measured ratio a conservative upper bound. Run explicitly
    /// with `cargo test -p union-bench --release -- --ignored overhead`.
    #[test]
    #[ignore = "timing-sensitive; run explicitly in release"]
    fn tracing_overhead_when_disabled_under_two_percent() {
        let time_one = |traced: bool| {
            let mut sim = phold(64);
            if traced {
                sim.set_tracer(Some(Arc::new(ross::Tracer::with_caps(1, 0, 0))));
            }
            let t0 = Instant::now();
            let stats = sim.run_sequential(SimTime::MAX);
            (t0.elapsed(), stats.committed)
        };
        time_one(false);
        time_one(true);
        let (mut off, mut on) = (std::time::Duration::MAX, std::time::Duration::MAX);
        for _ in 0..20 {
            let (d_off, c_off) = time_one(false);
            let (d_on, c_on) = time_one(true);
            assert_eq!(c_off, c_on, "tracing changed the event count");
            off = off.min(d_off);
            on = on.min(d_on);
        }
        let ratio = on.as_secs_f64() / off.as_secs_f64();
        assert!(
            ratio < 1.02,
            "tracing-disabled overhead bound {:.2}% exceeds 2% (on={on:?}, off={off:?})",
            (ratio - 1.0) * 100.0
        );
    }

    /// The live metrics acceptance guard: the scheduler hot path pays a
    /// single `Option` branch when no registry is attached, and batched
    /// sharded-handle flushes every 8192 commits when one is. The
    /// attached configuration is a strict superset of the detached one,
    /// so bounding attached-vs-baseline under 2% bounds the detached
    /// branch too. Run explicitly with
    /// `cargo test -p union-bench --release -- --ignored overhead`.
    #[test]
    #[ignore = "timing-sensitive; run explicitly in release"]
    fn live_metrics_overhead_under_two_percent() {
        let time_one = |live: bool| {
            let mut sim = phold(64);
            if live {
                sim.set_live(Some(Arc::new(telemetry::live::MetricsRegistry::new())));
            }
            let t0 = Instant::now();
            let stats = sim.run_sequential(SimTime::MAX);
            (t0.elapsed(), stats.committed)
        };
        time_one(false);
        time_one(true);
        let (mut off, mut on) = (std::time::Duration::MAX, std::time::Duration::MAX);
        for _ in 0..20 {
            let (d_off, c_off) = time_one(false);
            let (d_on, c_on) = time_one(true);
            assert_eq!(c_off, c_on, "live metrics changed the event count");
            off = off.min(d_off);
            on = on.min(d_on);
        }
        let ratio = on.as_secs_f64() / off.as_secs_f64();
        assert!(
            ratio < 1.02,
            "live metrics overhead {:.2}% exceeds 2% (on={on:?}, off={off:?})",
            (ratio - 1.0) * 100.0
        );
    }
}
