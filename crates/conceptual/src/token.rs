//! Token definitions for the coNCePTuaL-style language.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Source position (1-based line and column) for diagnostics.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct Pos {
    pub line: u32,
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A lexical token.
#[derive(Clone, PartialEq, Debug)]
pub enum Tok {
    /// Keyword or identifier — the language is keyword-heavy English, so the
    /// lexer does not distinguish; the parser matches words
    /// case-insensitively.
    Word(String),
    /// Integer literal, already scaled by any size suffix (K/M/G = binary
    /// multipliers, as in coNCePTuaL message sizes).
    Int(i64),
    /// Double-quoted string literal.
    Str(String),
    /// `.` — sentence terminator.
    Period,
    Comma,
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    /// `...` inside range expressions `{1, ..., n}`.
    Ellipsis,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    /// `**` — exponentiation.
    StarStar,
    /// `>>` and `<<` — shifts.
    Shr,
    Shl,
    Eq, // =
    Ne, // <>
    Lt,
    Le,
    Gt,
    Ge,
    /// `/\` logical and, `\/` logical or (coNCePTuaL spelling); the words
    /// `and`/`or` are also accepted by the parser as Words.
    AndOp,
    OrOp,
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Word(w) => write!(f, "`{w}`"),
            Tok::Int(n) => write!(f, "{n}"),
            Tok::Str(s) => write!(f, "\"{s}\""),
            Tok::Period => write!(f, "`.`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::LBracket => write!(f, "`[`"),
            Tok::RBracket => write!(f, "`]`"),
            Tok::Ellipsis => write!(f, "`...`"),
            Tok::Plus => write!(f, "`+`"),
            Tok::Minus => write!(f, "`-`"),
            Tok::Star => write!(f, "`*`"),
            Tok::Slash => write!(f, "`/`"),
            Tok::Percent => write!(f, "`%`"),
            Tok::StarStar => write!(f, "`**`"),
            Tok::Shr => write!(f, "`>>`"),
            Tok::Shl => write!(f, "`<<`"),
            Tok::Eq => write!(f, "`=`"),
            Tok::Ne => write!(f, "`<>`"),
            Tok::Lt => write!(f, "`<`"),
            Tok::Le => write!(f, "`<=`"),
            Tok::Gt => write!(f, "`>`"),
            Tok::Ge => write!(f, "`>=`"),
            Tok::AndOp => write!(f, "`/\\`"),
            Tok::OrOp => write!(f, "`\\/`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A token plus its source position.
#[derive(Clone, PartialEq, Debug)]
pub struct Spanned {
    pub tok: Tok,
    pub pos: Pos,
}
