//! Hand-written lexer: coNCePTuaL source text → token list.
//!
//! Notable behaviours, all inherited from coNCePTuaL:
//!
//! * `#` starts a comment that runs to end of line;
//! * integer literals accept binary size suffixes `K`, `M`, `G`
//!   (×2¹⁰/2²⁰/2³⁰) and the decimal exponent form `1E6`;
//! * words are lexed as-is; the parser matches keywords
//!   case-insensitively so `For`/`for` are interchangeable;
//! * `/\` and `\/` are the logical-and / logical-or operators.

use crate::error::CompileError;
use crate::token::{Pos, Spanned, Tok};

/// Tokenize `src`. Errors carry line:column positions.
pub fn lex(src: &str) -> Result<Vec<Spanned>, CompileError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! bump {
        () => {{
            if bytes[i] == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < bytes.len() {
        let pos = Pos { line, col };
        let c = bytes[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => bump!(),
            b'#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    bump!();
                }
            }
            b'"' => {
                bump!();
                let start = i;
                while i < bytes.len() && bytes[i] != b'"' {
                    if bytes[i] == b'\n' {
                        return Err(CompileError::new(pos, "unterminated string literal"));
                    }
                    bump!();
                }
                if i >= bytes.len() {
                    return Err(CompileError::new(pos, "unterminated string literal"));
                }
                let s = std::str::from_utf8(&bytes[start..i]).unwrap().to_string();
                bump!(); // closing quote
                out.push(Spanned { tok: Tok::Str(s), pos });
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    bump!();
                }
                let digits = std::str::from_utf8(&bytes[start..i]).unwrap();
                let mut value: i64 = digits
                    .parse()
                    .map_err(|_| CompileError::new(pos, format!("integer overflow: {digits}")))?;
                // Optional suffix: K/M/G binary multipliers or E exponent.
                if i < bytes.len() {
                    match bytes[i] {
                        b'K' | b'k' => {
                            value <<= 10;
                            bump!();
                        }
                        b'M' | b'm'
                            if !(i + 1 < bytes.len() && bytes[i + 1].is_ascii_alphabetic()) =>
                        {
                            value <<= 20;
                            bump!();
                        }
                        b'G' | b'g' => {
                            value <<= 30;
                            bump!();
                        }
                        b'E' | b'e' if i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit() => {
                            bump!();
                            let estart = i;
                            while i < bytes.len() && bytes[i].is_ascii_digit() {
                                bump!();
                            }
                            let exp: u32 = std::str::from_utf8(&bytes[estart..i])
                                .unwrap()
                                .parse()
                                .map_err(|_| CompileError::new(pos, "bad exponent"))?;
                            value =
                                value
                                    .checked_mul(10i64.checked_pow(exp).ok_or_else(|| {
                                        CompileError::new(pos, "exponent overflow")
                                    })?)
                                    .ok_or_else(|| CompileError::new(pos, "integer overflow"))?;
                        }
                        _ => {}
                    }
                }
                out.push(Spanned { tok: Tok::Int(value), pos });
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    bump!();
                }
                let w = std::str::from_utf8(&bytes[start..i]).unwrap().to_string();
                out.push(Spanned { tok: Tok::Word(w), pos });
            }
            b'.' => {
                if i + 2 < bytes.len() && bytes[i + 1] == b'.' && bytes[i + 2] == b'.' {
                    bump!();
                    bump!();
                    bump!();
                    out.push(Spanned { tok: Tok::Ellipsis, pos });
                } else {
                    bump!();
                    out.push(Spanned { tok: Tok::Period, pos });
                }
            }
            b',' => {
                bump!();
                out.push(Spanned { tok: Tok::Comma, pos });
            }
            b'(' => {
                bump!();
                out.push(Spanned { tok: Tok::LParen, pos });
            }
            b')' => {
                bump!();
                out.push(Spanned { tok: Tok::RParen, pos });
            }
            b'{' => {
                bump!();
                out.push(Spanned { tok: Tok::LBrace, pos });
            }
            b'}' => {
                bump!();
                out.push(Spanned { tok: Tok::RBrace, pos });
            }
            b'[' => {
                bump!();
                out.push(Spanned { tok: Tok::LBracket, pos });
            }
            b']' => {
                bump!();
                out.push(Spanned { tok: Tok::RBracket, pos });
            }
            b'+' => {
                bump!();
                out.push(Spanned { tok: Tok::Plus, pos });
            }
            b'-' => {
                bump!();
                out.push(Spanned { tok: Tok::Minus, pos });
            }
            b'*' => {
                bump!();
                if i < bytes.len() && bytes[i] == b'*' {
                    bump!();
                    out.push(Spanned { tok: Tok::StarStar, pos });
                } else {
                    out.push(Spanned { tok: Tok::Star, pos });
                }
            }
            b'/' => {
                bump!();
                if i < bytes.len() && bytes[i] == b'\\' {
                    bump!();
                    out.push(Spanned { tok: Tok::AndOp, pos });
                } else {
                    out.push(Spanned { tok: Tok::Slash, pos });
                }
            }
            b'\\' => {
                bump!();
                if i < bytes.len() && bytes[i] == b'/' {
                    bump!();
                    out.push(Spanned { tok: Tok::OrOp, pos });
                } else {
                    return Err(CompileError::new(pos, "stray `\\`"));
                }
            }
            b'%' => {
                bump!();
                out.push(Spanned { tok: Tok::Percent, pos });
            }
            b'=' => {
                bump!();
                out.push(Spanned { tok: Tok::Eq, pos });
            }
            b'<' => {
                bump!();
                if i < bytes.len() && bytes[i] == b'>' {
                    bump!();
                    out.push(Spanned { tok: Tok::Ne, pos });
                } else if i < bytes.len() && bytes[i] == b'=' {
                    bump!();
                    out.push(Spanned { tok: Tok::Le, pos });
                } else if i < bytes.len() && bytes[i] == b'<' {
                    bump!();
                    out.push(Spanned { tok: Tok::Shl, pos });
                } else {
                    out.push(Spanned { tok: Tok::Lt, pos });
                }
            }
            b'>' => {
                bump!();
                if i < bytes.len() && bytes[i] == b'=' {
                    bump!();
                    out.push(Spanned { tok: Tok::Ge, pos });
                } else if i < bytes.len() && bytes[i] == b'>' {
                    bump!();
                    out.push(Spanned { tok: Tok::Shr, pos });
                } else {
                    out.push(Spanned { tok: Tok::Gt, pos });
                }
            }
            other => {
                return Err(CompileError::new(
                    pos,
                    format!("unexpected character `{}`", other as char),
                ));
            }
        }
    }
    out.push(Spanned { tok: Tok::Eof, pos: Pos { line, col } });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn words_and_ints() {
        assert_eq!(
            toks("task 0 sends"),
            vec![Tok::Word("task".into()), Tok::Int(0), Tok::Word("sends".into()), Tok::Eof]
        );
    }

    #[test]
    fn size_suffixes() {
        assert_eq!(toks("4K")[0], Tok::Int(4096));
        assert_eq!(toks("2M")[0], Tok::Int(2 << 20));
        assert_eq!(toks("1G")[0], Tok::Int(1 << 30));
        assert_eq!(toks("3E4")[0], Tok::Int(30_000));
    }

    #[test]
    fn m_suffix_does_not_eat_words() {
        // `128 Mb` style: suffix only applies when not starting a word.
        assert_eq!(toks("10 ms"), vec![Tok::Int(10), Tok::Word("ms".into()), Tok::Eof]);
    }

    #[test]
    fn comments_and_strings() {
        assert_eq!(
            toks("# hi there\n\"abc\" ."),
            vec![Tok::Str("abc".into()), Tok::Period, Tok::Eof]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("a+b*c**2 <> d /\\ e \\/ f"),
            vec![
                Tok::Word("a".into()),
                Tok::Plus,
                Tok::Word("b".into()),
                Tok::Star,
                Tok::Word("c".into()),
                Tok::StarStar,
                Tok::Int(2),
                Tok::Ne,
                Tok::Word("d".into()),
                Tok::AndOp,
                Tok::Word("e".into()),
                Tok::OrOp,
                Tok::Word("f".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn ellipsis_vs_period() {
        assert_eq!(
            toks("{1, ..., n}."),
            vec![
                Tok::LBrace,
                Tok::Int(1),
                Tok::Comma,
                Tok::Ellipsis,
                Tok::Comma,
                Tok::Word("n".into()),
                Tok::RBrace,
                Tok::Period,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("\"oops").is_err());
        assert!(lex("\"new\nline\"").is_err());
    }

    #[test]
    fn positions_track_lines() {
        let ts = lex("a\n  b").unwrap();
        assert_eq!(ts[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(ts[1].pos, Pos { line: 2, col: 3 });
    }
}
