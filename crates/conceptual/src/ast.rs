//! Abstract syntax tree for the coNCePTuaL-style language.

use crate::token::Pos;
use serde::{Deserialize, Serialize};

/// Integer expression. All coNCePTuaL arithmetic is integer arithmetic.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Variable reference: a command-line parameter, a `let`/loop binding,
    /// or one of the predeclared variables (`num_tasks`, and within a task
    /// selector the bound task variable).
    Var(String),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary negation.
    Neg(Box<Expr>),
    /// Builtin function call (`MESH_NEIGHBOR`, `TREE_PARENT`, …).
    Call(Builtin, Vec<Expr>),
    /// Conditional expression: `if cond then a otherwise b`.
    IfElse(Box<Cond>, Box<Expr>, Box<Expr>),
}

#[allow(clippy::should_implement_trait)] // builder sugar, deliberately method-form
impl Expr {
    /// Literal constructor (convenience for IR builders).
    pub fn lit(v: i64) -> Expr {
        Expr::Int(v)
    }

    /// Variable constructor.
    pub fn var(name: &str) -> Expr {
        Expr::Var(name.to_string())
    }

    /// `self + v` helper.
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Add, Box::new(self), Box::new(rhs))
    }

    /// `self - v` helper.
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Sub, Box::new(self), Box::new(rhs))
    }

    /// `self * v` helper.
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Mul, Box::new(self), Box::new(rhs))
    }

    /// `self mod v` helper.
    pub fn rem(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Mod, Box::new(self), Box::new(rhs))
    }
}

/// Binary integer operators in precedence order (lowest first).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Shl,
    Shr,
    Pow,
}

/// Builtin functions. The virtual-topology family mirrors coNCePTuaL's
/// salient feature: n-ary trees, meshes, tori, and k-nomial trees.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Builtin {
    Abs,
    Min,
    Max,
    Sqrt,
    Cbrt,
    Log2,
    /// `MESH_NEIGHBOR(w,h,d, task, dx,dy,dz)` → neighbor rank or −1.
    MeshNeighbor,
    /// `TORUS_NEIGHBOR(w,h,d, task, dx,dy,dz)` → wrap-around neighbor.
    TorusNeighbor,
    /// `MESH_COORD(w,h,d, task, axis)` → coordinate of `task` on `axis`.
    MeshCoord,
    /// `TREE_PARENT(task [, arity])` → parent in an n-ary tree (default 2),
    /// −1 for the root.
    TreeParent,
    /// `TREE_CHILD(task, k [, arity])` → k-th child or −1.
    TreeChild,
    /// `KNOMIAL_PARENT(task [, k [, num_tasks]])` → parent in k-nomial tree.
    KnomialParent,
    /// `KNOMIAL_CHILD(task, i [, k [, num_tasks]])` → i-th k-nomial child
    /// or −1.
    KnomialChild,
    /// `KNOMIAL_CHILDREN(task [, k [, num_tasks]])` → child count.
    KnomialChildren,
}

impl Builtin {
    /// Parse a builtin name (case-insensitive).
    pub fn from_name(name: &str) -> Option<Builtin> {
        Some(match name.to_ascii_uppercase().as_str() {
            "ABS" => Builtin::Abs,
            "MIN" => Builtin::Min,
            "MAX" => Builtin::Max,
            "SQRT" | "ROOT" => Builtin::Sqrt,
            "CBRT" => Builtin::Cbrt,
            "LOG2" => Builtin::Log2,
            "MESH_NEIGHBOR" => Builtin::MeshNeighbor,
            "TORUS_NEIGHBOR" => Builtin::TorusNeighbor,
            "MESH_COORD" => Builtin::MeshCoord,
            "TREE_PARENT" => Builtin::TreeParent,
            "TREE_CHILD" => Builtin::TreeChild,
            "KNOMIAL_PARENT" => Builtin::KnomialParent,
            "KNOMIAL_CHILD" => Builtin::KnomialChild,
            "KNOMIAL_CHILDREN" => Builtin::KnomialChildren,
            _ => return None,
        })
    }
}

/// Relational / boolean condition.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Cond {
    Rel(RelOp, Expr, Expr),
    And(Box<Cond>, Box<Cond>),
    Or(Box<Cond>, Box<Cond>),
    Not(Box<Cond>),
    /// `task is even` / divisibility sugar is expressed via Rel on `%`.
    True,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum RelOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// `divides`: `a divides b` ⇔ `b mod a = 0`.
    Divides,
}

/// Which tasks a clause applies to.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum TaskSel {
    /// `all tasks` (optionally binding a variable: `all tasks t`).
    All(Option<String>),
    /// `task <expr>` — expression may reference enclosing bindings.
    Single(Expr),
    /// `tasks v such that <cond>` — binds `v` in the condition and body.
    SuchThat(String, Cond),
    /// `all other tasks` — everyone except the task(s) the sentence's
    /// subject refers to (used for multicast targets).
    AllOthers,
}

/// Time units accepted by `computes for` / `sleeps for`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum TimeUnit {
    Nanoseconds,
    Microseconds,
    Milliseconds,
    Seconds,
}

impl TimeUnit {
    /// Nanoseconds per unit.
    pub fn ns(self) -> i64 {
        match self {
            TimeUnit::Nanoseconds => 1,
            TimeUnit::Microseconds => 1_000,
            TimeUnit::Milliseconds => 1_000_000,
            TimeUnit::Seconds => 1_000_000_000,
        }
    }
}

/// Message-attribute flags on sends/receives.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct MsgAttrs {
    /// `asynchronously sends` → nonblocking.
    pub nonblocking: bool,
}

/// Aggregate functions in log statements.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Aggregate {
    Mean,
    Median,
    Minimum,
    Maximum,
    Sum,
    Final,
    None,
}

/// One column logged by a `logs` statement.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct LogEntry {
    pub aggregate: Aggregate,
    /// Source expression; `elapsed_usecs` is the predeclared timer variable.
    pub value: Expr,
    pub label: String,
}

/// A statement.
#[derive(Clone, PartialEq, Debug, Default, Serialize, Deserialize)]
pub enum Stmt {
    /// `A then B then C` — sequential composition.
    Seq(Vec<Stmt>),
    /// `for <expr> repetitions [plus a synchronization] <stmt>`.
    For { reps: Expr, sync: bool, body: Box<Stmt> },
    /// `for each <var> in {a, ..., b} <stmt>`.
    ForEach { var: String, from: Expr, to: Expr, body: Box<Stmt> },
    /// `if <cond> then <stmt> [otherwise <stmt>]`.
    If { cond: Cond, then: Box<Stmt>, els: Option<Box<Stmt>> },
    /// `let <var> be <expr> while <stmt>`.
    Let { var: String, value: Expr, body: Box<Stmt> },
    /// `<src> [asynchronously] sends <count> <size>-byte message(s) to <dst>`.
    /// coNCePTuaL semantics: the destination implicitly posts matching
    /// receives.
    Send { src: TaskSel, count: Expr, size: Expr, dst: TaskSel, attrs: MsgAttrs },
    /// Explicit `receives` clause (for one-sided phrasing).
    Receive { dst: TaskSel, count: Expr, size: Expr, src: TaskSel, attrs: MsgAttrs },
    /// `<src> multicasts a <size> byte message to <dst>` — one-to-many.
    Multicast { src: TaskSel, size: Expr, dst: TaskSel },
    /// `<tasks> reduce a <size> byte message to <target>`; when `target`
    /// is `all tasks` this is an allreduce.
    Reduce { tasks: TaskSel, size: Expr, target: TaskSel },
    /// `<tasks> synchronize` — barrier over the selected tasks.
    Sync(TaskSel),
    /// `<tasks> compute(s) for <expr> <unit>`.
    Compute { tasks: TaskSel, amount: Expr, unit: TimeUnit },
    /// `<tasks> sleep(s) for <expr> <unit>` — same simulation effect as
    /// compute, kept distinct for control-flow fidelity.
    Sleep { tasks: TaskSel, amount: Expr, unit: TimeUnit },
    /// `<tasks> await(s) completion(s)` — waits on outstanding
    /// nonblocking operations.
    AwaitCompletions(TaskSel),
    /// `<tasks> reset(s) its counters`.
    Reset(TaskSel),
    /// `<task> logs <entries>`.
    Log(TaskSel, Vec<LogEntry>),
    /// `<tasks> compute(s) aggregates`.
    ComputeAggregates(TaskSel),
    /// `<tasks> touches <size> byte memory region` — memory-bound busy
    /// work; simulated as zero-cost (documented deviation).
    Touch(TaskSel, Expr),
    /// No-op (empty sentence).
    #[default]
    Empty,
}

/// A command-line parameter declaration:
/// `reps is "Number of repetitions" and comes from "--reps" or "-r" with
/// default 1000.`
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct ParamDecl {
    pub name: String,
    pub description: String,
    pub long_flag: String,
    pub short_flag: Option<String>,
    pub default: i64,
}

/// `Assert that "<msg>" with <cond>.`
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct AssertDecl {
    pub message: String,
    pub cond: Cond,
}

/// A complete program.
#[derive(Clone, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct Program {
    /// `Require language version "<v>".`
    pub version: Option<String>,
    pub params: Vec<ParamDecl>,
    pub asserts: Vec<AssertDecl>,
    /// Top-level sentences, executed in order.
    pub stmts: Vec<Stmt>,
    /// Source position of each parameter declaration (parallel to
    /// `params`; may be empty for hand-built programs, in which case
    /// diagnostics fall back to `Pos::default()`).
    pub param_pos: Vec<Pos>,
    /// Source position of each assertion (parallel to `asserts`).
    pub assert_pos: Vec<Pos>,
    /// Source position of each top-level sentence (parallel to `stmts`).
    pub stmt_pos: Vec<Pos>,
}

impl Program {
    /// Position of parameter `i`, `Pos::default()` when unrecorded.
    pub fn pos_of_param(&self, i: usize) -> Pos {
        self.param_pos.get(i).copied().unwrap_or_default()
    }

    /// Position of assertion `i`, `Pos::default()` when unrecorded.
    pub fn pos_of_assert(&self, i: usize) -> Pos {
        self.assert_pos.get(i).copied().unwrap_or_default()
    }

    /// Position of top-level sentence `i`, `Pos::default()` when
    /// unrecorded.
    pub fn pos_of_stmt(&self, i: usize) -> Pos {
        self.stmt_pos.get(i).copied().unwrap_or_default()
    }
}
