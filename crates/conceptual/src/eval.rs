//! Expression and condition evaluation.
//!
//! coNCePTuaL arithmetic is integer arithmetic. The evaluator resolves
//! variables against an [`Env`] holding command-line parameters, loop and
//! `let` bindings, and the predeclared variables `num_tasks` and (inside a
//! task clause) the bound task variable.

use crate::ast::{BinOp, Builtin, Cond, Expr, RelOp};
use crate::error::EvalError;

/// Variable environment. Deliberately a small sorted vec: programs bind a
/// handful of variables and lookups walk from the innermost binding.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Env {
    bindings: Vec<(String, i64)>,
}

impl Env {
    pub fn new() -> Env {
        Env::default()
    }

    /// An environment preloaded with `num_tasks`.
    pub fn with_num_tasks(num_tasks: u32) -> Env {
        let mut env = Env::new();
        env.bind("num_tasks", num_tasks as i64);
        env
    }

    /// Push a binding, shadowing any previous one with the same name.
    pub fn bind(&mut self, name: &str, value: i64) {
        self.bindings.push((name.to_string(), value));
    }

    /// Remove the most recent binding of `name`.
    pub fn unbind(&mut self, name: &str) {
        if let Some(idx) = self.bindings.iter().rposition(|(n, _)| n == name) {
            self.bindings.remove(idx);
        }
    }

    /// Innermost binding of `name`.
    pub fn get(&self, name: &str) -> Option<i64> {
        self.bindings.iter().rev().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// All current bindings (outermost first).
    pub fn bindings(&self) -> &[(String, i64)] {
        &self.bindings
    }
}

/// Evaluate an integer expression.
pub fn eval(expr: &Expr, env: &Env) -> Result<i64, EvalError> {
    match expr {
        Expr::Int(v) => Ok(*v),
        Expr::Var(name) => {
            env.get(name).ok_or_else(|| EvalError(format!("unbound variable `{name}`")))
        }
        Expr::Neg(e) => Ok(-eval(e, env)?),
        Expr::Bin(op, a, b) => {
            let a = eval(a, env)?;
            let b = eval(b, env)?;
            match op {
                BinOp::Add => Ok(a.wrapping_add(b)),
                BinOp::Sub => Ok(a.wrapping_sub(b)),
                BinOp::Mul => Ok(a.wrapping_mul(b)),
                BinOp::Div => {
                    if b == 0 {
                        Err(EvalError("division by zero".into()))
                    } else {
                        Ok(a.div_euclid(b))
                    }
                }
                BinOp::Mod => {
                    if b == 0 {
                        Err(EvalError("modulo by zero".into()))
                    } else {
                        Ok(a.rem_euclid(b))
                    }
                }
                BinOp::Shl => Ok(a.wrapping_shl(b as u32)),
                BinOp::Shr => Ok(a.wrapping_shr(b as u32)),
                BinOp::Pow => {
                    if b < 0 {
                        Err(EvalError("negative exponent".into()))
                    } else {
                        Ok(a.wrapping_pow(b.min(u32::MAX as i64) as u32))
                    }
                }
            }
        }
        Expr::Call(builtin, args) => {
            let vals: Result<Vec<i64>, EvalError> = args.iter().map(|a| eval(a, env)).collect();
            call_builtin(*builtin, &vals?, env)
        }
        Expr::IfElse(cond, a, b) => {
            if eval_cond(cond, env)? {
                eval(a, env)
            } else {
                eval(b, env)
            }
        }
    }
}

/// Evaluate a boolean condition.
pub fn eval_cond(cond: &Cond, env: &Env) -> Result<bool, EvalError> {
    match cond {
        Cond::True => Ok(true),
        Cond::Not(c) => Ok(!eval_cond(c, env)?),
        Cond::And(a, b) => Ok(eval_cond(a, env)? && eval_cond(b, env)?),
        Cond::Or(a, b) => Ok(eval_cond(a, env)? || eval_cond(b, env)?),
        Cond::Rel(op, a, b) => {
            let a = eval(a, env)?;
            let b = eval(b, env)?;
            Ok(match op {
                RelOp::Eq => a == b,
                RelOp::Ne => a != b,
                RelOp::Lt => a < b,
                RelOp::Le => a <= b,
                RelOp::Gt => a > b,
                RelOp::Ge => a >= b,
                RelOp::Divides => a != 0 && b.rem_euclid(a) == 0,
            })
        }
    }
}

fn arity(name: &str, args: &[i64], lo: usize, hi: usize) -> Result<(), EvalError> {
    if args.len() < lo || args.len() > hi {
        Err(EvalError(format!("{name} expects {lo}..={hi} arguments, got {}", args.len())))
    } else {
        Ok(())
    }
}

fn call_builtin(b: Builtin, args: &[i64], env: &Env) -> Result<i64, EvalError> {
    match b {
        Builtin::Abs => {
            arity("ABS", args, 1, 1)?;
            Ok(args[0].abs())
        }
        Builtin::Min => {
            arity("MIN", args, 1, usize::MAX)?;
            Ok(*args.iter().min().unwrap())
        }
        Builtin::Max => {
            arity("MAX", args, 1, usize::MAX)?;
            Ok(*args.iter().max().unwrap())
        }
        Builtin::Sqrt => {
            arity("SQRT", args, 1, 1)?;
            if args[0] < 0 {
                return Err(EvalError("SQRT of negative number".into()));
            }
            Ok(isqrt(args[0] as u64) as i64)
        }
        Builtin::Cbrt => {
            arity("CBRT", args, 1, 1)?;
            Ok(icbrt(args[0]))
        }
        Builtin::Log2 => {
            arity("LOG2", args, 1, 1)?;
            if args[0] <= 0 {
                return Err(EvalError("LOG2 of non-positive number".into()));
            }
            Ok(63 - args[0].leading_zeros() as i64)
        }
        Builtin::MeshNeighbor => {
            arity("MESH_NEIGHBOR", args, 7, 7)?;
            Ok(mesh_neighbor(args, false))
        }
        Builtin::TorusNeighbor => {
            arity("TORUS_NEIGHBOR", args, 7, 7)?;
            Ok(mesh_neighbor(args, true))
        }
        Builtin::MeshCoord => {
            arity("MESH_COORD", args, 5, 5)?;
            let (w, h, d, task, axis) = (args[0], args[1], args[2], args[3], args[4]);
            if w <= 0 || h <= 0 || d <= 0 || task < 0 || task >= w * h * d {
                return Ok(-1);
            }
            Ok(match axis {
                0 => task % w,
                1 => (task / w) % h,
                2 => task / (w * h),
                _ => -1,
            })
        }
        Builtin::TreeParent => {
            arity("TREE_PARENT", args, 1, 2)?;
            let task = args[0];
            let k = args.get(1).copied().unwrap_or(2);
            if task <= 0 || k < 1 {
                Ok(-1)
            } else {
                Ok((task - 1).div_euclid(k))
            }
        }
        Builtin::TreeChild => {
            arity("TREE_CHILD", args, 2, 3)?;
            let (task, i) = (args[0], args[1]);
            let k = args.get(2).copied().unwrap_or(2);
            if task < 0 || i < 0 || i >= k {
                Ok(-1)
            } else {
                Ok(task * k + 1 + i)
            }
        }
        Builtin::KnomialParent => {
            arity("KNOMIAL_PARENT", args, 1, 3)?;
            let task = args[0];
            let k = args.get(1).copied().unwrap_or(2).max(2);
            let n = args.get(2).copied().or_else(|| env.get("num_tasks")).unwrap_or(i64::MAX);
            Ok(knomial_parent(task, k, n))
        }
        Builtin::KnomialChild => {
            arity("KNOMIAL_CHILD", args, 2, 4)?;
            let (task, i) = (args[0], args[1]);
            let k = args.get(2).copied().unwrap_or(2).max(2);
            let n = args.get(3).copied().or_else(|| env.get("num_tasks")).unwrap_or(i64::MAX);
            let kids = knomial_children(task, k, n);
            Ok(kids.get(i.max(0) as usize).copied().unwrap_or(-1))
        }
        Builtin::KnomialChildren => {
            arity("KNOMIAL_CHILDREN", args, 1, 3)?;
            let task = args[0];
            let k = args.get(1).copied().unwrap_or(2).max(2);
            let n = args.get(2).copied().or_else(|| env.get("num_tasks")).unwrap_or(i64::MAX);
            Ok(knomial_children(task, k, n).len() as i64)
        }
    }
}

/// Integer square root.
fn isqrt(v: u64) -> u64 {
    if v == 0 {
        return 0;
    }
    let mut x = (v as f64).sqrt() as u64;
    while x.saturating_mul(x) > v {
        x -= 1;
    }
    while (x + 1).saturating_mul(x + 1) <= v {
        x += 1;
    }
    x
}

/// Integer cube root (for 3-D process grids).
fn icbrt(v: i64) -> i64 {
    if v < 0 {
        return -icbrt(-v);
    }
    let mut x = (v as f64).cbrt().round() as i64;
    while x > 0 && x * x * x > v {
        x -= 1;
    }
    while (x + 1) * (x + 1) * (x + 1) <= v {
        x += 1;
    }
    x
}

/// `args = [w, h, d, task, dx, dy, dz]`; returns neighbor rank or −1.
fn mesh_neighbor(args: &[i64], torus: bool) -> i64 {
    let (w, h, d, task) = (args[0], args[1], args[2], args[3]);
    let (dx, dy, dz) = (args[4], args[5], args[6]);
    if w <= 0 || h <= 0 || d <= 0 || task < 0 || task >= w * h * d {
        return -1;
    }
    let x = task % w;
    let y = (task / w) % h;
    let z = task / (w * h);
    let (nx, ny, nz) = if torus {
        ((x + dx).rem_euclid(w), (y + dy).rem_euclid(h), (z + dz).rem_euclid(d))
    } else {
        let (nx, ny, nz) = (x + dx, y + dy, z + dz);
        if nx < 0 || nx >= w || ny < 0 || ny >= h || nz < 0 || nz >= d {
            return -1;
        }
        (nx, ny, nz)
    };
    nz * w * h + ny * w + nx
}

/// Parent of `task` in a k-nomial tree over `0..n` rooted at 0 (the tree
/// used by binomial/k-nomial broadcast algorithms).
fn knomial_parent(task: i64, k: i64, n: i64) -> i64 {
    if task <= 0 || task >= n || k < 2 {
        return -1;
    }
    // Write task in base k; clearing the lowest nonzero digit yields the
    // parent.
    let mut d = 1;
    while task / d % k == 0 {
        d *= k;
    }
    task - (task / d % k) * d
}

/// Children of `task` in the same k-nomial tree: `task + m·kʲ` for every
/// digit position `j` strictly below `task`'s lowest nonzero base-k digit
/// (all positions for the root), each `m ∈ 1..k`, bounded by `n`.
fn knomial_children(task: i64, k: i64, n: i64) -> Vec<i64> {
    if task < 0 || task >= n || k < 2 {
        return Vec::new();
    }
    let mut kids = Vec::new();
    let mut d = 1i64;
    loop {
        if task != 0 && task / d % k != 0 {
            break; // reached task's lowest nonzero digit
        }
        for m in 1..k {
            let c = task + m * d;
            if c < n {
                kids.push(c);
            }
        }
        match d.checked_mul(k) {
            Some(nd) if nd < n => d = nd,
            _ => break,
        }
    }
    kids.sort_unstable();
    kids
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;

    fn ev(src: &str, env: &Env) -> i64 {
        eval(&parse_expr(src).unwrap(), env).unwrap()
    }

    #[test]
    fn arithmetic() {
        let env = Env::new();
        assert_eq!(ev("2+3*4", &env), 14);
        assert_eq!(ev("(2+3)*4", &env), 20);
        assert_eq!(ev("2**10", &env), 1024);
        assert_eq!(ev("7 mod 3", &env), 1);
        assert_eq!(ev("-5 % 3", &env), 1, "rem_euclid semantics");
        assert_eq!(ev("1<<20", &env), 1 << 20);
    }

    #[test]
    fn variables_shadow() {
        let mut env = Env::with_num_tasks(8);
        assert_eq!(ev("num_tasks", &env), 8);
        env.bind("t", 3);
        env.bind("t", 5);
        assert_eq!(ev("t", &env), 5);
        env.unbind("t");
        assert_eq!(ev("t", &env), 3);
        assert!(eval(&Expr::var("nope"), &env).is_err());
    }

    #[test]
    fn division_errors() {
        let env = Env::new();
        assert!(eval(&parse_expr("1/0").unwrap(), &env).is_err());
        assert!(eval(&parse_expr("1%0").unwrap(), &env).is_err());
    }

    #[test]
    fn sqrt_cbrt_log() {
        let env = Env::new();
        assert_eq!(ev("SQRT(144)", &env), 12);
        assert_eq!(ev("SQRT(145)", &env), 12);
        assert_eq!(ev("CBRT(512)", &env), 8);
        assert_eq!(ev("CBRT(511)", &env), 7);
        assert_eq!(ev("LOG2(1024)", &env), 10);
        assert_eq!(ev("MIN(3, 1, 2)", &env), 1);
        assert_eq!(ev("MAX(3, 1, 2)", &env), 3);
        assert_eq!(ev("ABS(0-9)", &env), 9);
    }

    #[test]
    fn mesh_neighbors() {
        let env = Env::new();
        // 4x4x4 grid; task 0 at corner.
        assert_eq!(ev("MESH_NEIGHBOR(4,4,4, 0, 1,0,0)", &env), 1);
        assert_eq!(ev("MESH_NEIGHBOR(4,4,4, 0, 0,1,0)", &env), 4);
        assert_eq!(ev("MESH_NEIGHBOR(4,4,4, 0, 0,0,1)", &env), 16);
        assert_eq!(ev("MESH_NEIGHBOR(4,4,4, 0, -1,0,0)", &env), -1);
        // Torus wraps.
        assert_eq!(ev("TORUS_NEIGHBOR(4,4,4, 0, -1,0,0)", &env), 3);
        assert_eq!(ev("TORUS_NEIGHBOR(4,4,4, 63, 1,1,1)", &env), 0);
        // Coordinates.
        assert_eq!(ev("MESH_COORD(4,4,4, 21, 0)", &env), 1);
        assert_eq!(ev("MESH_COORD(4,4,4, 21, 1)", &env), 1);
        assert_eq!(ev("MESH_COORD(4,4,4, 21, 2)", &env), 1);
    }

    #[test]
    fn tree_functions() {
        let env = Env::new();
        assert_eq!(ev("TREE_PARENT(0)", &env), -1);
        assert_eq!(ev("TREE_PARENT(1)", &env), 0);
        assert_eq!(ev("TREE_PARENT(2)", &env), 0);
        assert_eq!(ev("TREE_PARENT(5)", &env), 2);
        assert_eq!(ev("TREE_CHILD(0, 0)", &env), 1);
        assert_eq!(ev("TREE_CHILD(0, 1)", &env), 2);
        assert_eq!(ev("TREE_CHILD(2, 1)", &env), 6);
        assert_eq!(ev("TREE_CHILD(2, 5)", &env), -1);
    }

    #[test]
    fn knomial_tree_is_consistent() {
        // Every non-root's parent lists it as a child; binomial over n=13.
        let env = Env::with_num_tasks(13);
        for task in 1..13i64 {
            let p = call_builtin(Builtin::KnomialParent, &[task], &env).unwrap();
            assert!((0..13).contains(&p), "parent of {task} = {p}");
            let kids = knomial_children(p, 2, 13);
            assert!(kids.contains(&task), "children({p}) = {kids:?} missing {task}");
        }
        // Root has no parent.
        assert_eq!(call_builtin(Builtin::KnomialParent, &[0], &env).unwrap(), -1);
        // All nodes reachable from root exactly once.
        let mut seen = [false; 13];
        let mut stack = vec![0i64];
        while let Some(t) = stack.pop() {
            assert!(!seen[t as usize], "node {t} visited twice");
            seen[t as usize] = true;
            stack.extend(knomial_children(t, 2, 13));
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn conditions() {
        let mut env = Env::new();
        env.bind("t", 4);
        let c =
            crate::parser::parse("tasks t such that t is even /\\ t < 10 synchronize.").unwrap();
        let crate::ast::Stmt::Sync(crate::ast::TaskSel::SuchThat(_, cond)) = &c.stmts[0] else {
            panic!()
        };
        assert!(eval_cond(cond, &env).unwrap());
        env.bind("t", 5);
        assert!(!eval_cond(cond, &env).unwrap());
    }

    #[test]
    fn divides_semantics() {
        let env = Env::new();
        let c = Cond::Rel(RelOp::Divides, Expr::Int(3), Expr::Int(12));
        assert!(eval_cond(&c, &env).unwrap());
        let c = Cond::Rel(RelOp::Divides, Expr::Int(5), Expr::Int(12));
        assert!(!eval_cond(&c, &env).unwrap());
        let c = Cond::Rel(RelOp::Divides, Expr::Int(0), Expr::Int(12));
        assert!(!eval_cond(&c, &env).unwrap(), "0 divides nothing");
    }
}
