//! Semantic analysis: scope checking and structural validation.
//!
//! Catches, at compile time rather than mid-simulation:
//! * references to unbound variables (outside declared parameters,
//!   predeclared variables, and enclosing `let`/loop/selector bindings);
//! * duplicate parameter declarations or flags;
//! * `all other tasks` used anywhere except as a multicast/send target.
//!
//! Every error carries the source position of the sentence (or parameter
//! or assertion) it was found in, recorded by the parser in
//! [`Program::pos_of_stmt`] and friends.

use crate::ast::*;
use crate::diag::Report;
use crate::error::CompileError;
use crate::token::Pos;
use std::collections::HashSet;

/// Variables every program may reference without declaring.
pub const PREDECLARED: &[&str] = &["num_tasks", "elapsed_usecs", "bytes_sent", "bytes_received"];

/// Validate a parsed program. Returns the set of parameter names on
/// success (useful for argument parsing).
pub fn check(prog: &Program) -> Result<HashSet<String>, CompileError> {
    let mut params: HashSet<String> = HashSet::new();
    let mut flags: HashSet<String> = HashSet::new();
    for (i, p) in prog.params.iter().enumerate() {
        let pos = prog.pos_of_param(i);
        if !params.insert(p.name.clone()) {
            return Err(err(pos, format!("duplicate parameter `{}`", p.name)));
        }
        if !flags.insert(p.long_flag.clone()) {
            return Err(err(pos, format!("duplicate flag `{}`", p.long_flag)));
        }
        if let Some(s) = &p.short_flag {
            if !flags.insert(s.clone()) {
                return Err(err(pos, format!("duplicate flag `{s}`")));
            }
        }
        if PREDECLARED.contains(&p.name.as_str()) {
            return Err(err(pos, format!("parameter `{}` shadows a predeclared variable", p.name)));
        }
    }

    let mut scope: Vec<String> = params.iter().cloned().collect();
    scope.extend(PREDECLARED.iter().map(|s| s.to_string()));

    for (i, a) in prog.asserts.iter().enumerate() {
        check_cond(&a.cond, &scope, prog.pos_of_assert(i))?;
    }
    for (i, s) in prog.stmts.iter().enumerate() {
        check_stmt(s, &mut scope, prog.pos_of_stmt(i))?;
    }
    Ok(params)
}

/// Run the same checks, reporting through the shared diagnostic type used
/// by `union-lint` — so front-end errors and whole-program lint findings
/// render identically.
pub fn check_report(prog: &Program) -> Report {
    match check(prog) {
        Ok(_) => Report::new(),
        Err(e) => Report::from(crate::diag::Diagnostic::from(e)),
    }
}

fn err(pos: Pos, msg: String) -> CompileError {
    CompileError::new(pos, msg)
}

fn check_stmt(stmt: &Stmt, scope: &mut Vec<String>, pos: Pos) -> Result<(), CompileError> {
    match stmt {
        Stmt::Seq(parts) => {
            for p in parts {
                check_stmt(p, scope, pos)?;
            }
            Ok(())
        }
        Stmt::For { reps, body, .. } => {
            check_expr(reps, scope, pos)?;
            check_stmt(body, scope, pos)
        }
        Stmt::ForEach { var, from, to, body } => {
            check_expr(from, scope, pos)?;
            check_expr(to, scope, pos)?;
            scope.push(var.clone());
            let r = check_stmt(body, scope, pos);
            scope.pop();
            r
        }
        Stmt::If { cond, then, els } => {
            check_cond(cond, scope, pos)?;
            check_stmt(then, scope, pos)?;
            if let Some(e) = els {
                check_stmt(e, scope, pos)?;
            }
            Ok(())
        }
        Stmt::Let { var, value, body } => {
            check_expr(value, scope, pos)?;
            scope.push(var.clone());
            let r = check_stmt(body, scope, pos);
            scope.pop();
            r
        }
        Stmt::Send { src, count, size, dst, .. }
        | Stmt::Receive { dst: src, count, size, src: dst, .. } => {
            let popped = check_sel(src, scope, false, pos)?;
            check_expr(count, scope, pos)?;
            check_expr(size, scope, pos)?;
            if check_sel(dst, scope, true, pos)? {
                scope.pop();
            }
            if popped {
                scope.pop();
            }
            Ok(())
        }
        Stmt::Multicast { src, size, dst } => {
            let popped = check_sel(src, scope, false, pos)?;
            check_expr(size, scope, pos)?;
            if check_sel(dst, scope, true, pos)? {
                scope.pop();
            }
            if popped {
                scope.pop();
            }
            Ok(())
        }
        Stmt::Reduce { tasks, size, target } => {
            let popped = check_sel(tasks, scope, false, pos)?;
            check_expr(size, scope, pos)?;
            if check_sel(target, scope, false, pos)? {
                scope.pop();
            }
            if popped {
                scope.pop();
            }
            Ok(())
        }
        Stmt::Sync(sel)
        | Stmt::AwaitCompletions(sel)
        | Stmt::Reset(sel)
        | Stmt::ComputeAggregates(sel) => {
            if check_sel(sel, scope, false, pos)? {
                scope.pop();
            }
            Ok(())
        }
        Stmt::Compute { tasks, amount, .. } | Stmt::Sleep { tasks, amount, .. } => {
            let popped = check_sel(tasks, scope, false, pos)?;
            check_expr(amount, scope, pos)?;
            if popped {
                scope.pop();
            }
            Ok(())
        }
        Stmt::Touch(sel, size) => {
            let popped = check_sel(sel, scope, false, pos)?;
            check_expr(size, scope, pos)?;
            if popped {
                scope.pop();
            }
            Ok(())
        }
        Stmt::Log(sel, entries) => {
            let popped = check_sel(sel, scope, false, pos)?;
            for e in entries {
                check_expr(&e.value, scope, pos)?;
            }
            if popped {
                scope.pop();
            }
            Ok(())
        }
        Stmt::Empty => Ok(()),
    }
}

/// Check a task selector; pushes its binding (if any) onto the scope and
/// returns whether a binding was pushed. `target_pos` allows `AllOthers`.
fn check_sel(
    sel: &TaskSel,
    scope: &mut Vec<String>,
    target_pos: bool,
    pos: Pos,
) -> Result<bool, CompileError> {
    match sel {
        TaskSel::All(None) => Ok(false),
        TaskSel::All(Some(v)) => {
            scope.push(v.clone());
            Ok(true)
        }
        TaskSel::Single(e) => {
            check_expr(e, scope, pos)?;
            Ok(false)
        }
        TaskSel::SuchThat(v, cond) => {
            scope.push(v.clone());
            check_cond(cond, scope, pos)?;
            Ok(true)
        }
        TaskSel::AllOthers => {
            if target_pos {
                Ok(false)
            } else {
                Err(err(pos, "`all other tasks` is only valid as a message target".into()))
            }
        }
    }
}

fn check_expr(expr: &Expr, scope: &[String], pos: Pos) -> Result<(), CompileError> {
    match expr {
        Expr::Int(_) => Ok(()),
        Expr::Var(v) => {
            if scope.iter().any(|s| s == v) {
                Ok(())
            } else {
                Err(err(pos, format!("unbound variable `{v}`")))
            }
        }
        Expr::Neg(e) => check_expr(e, scope, pos),
        Expr::Bin(_, a, b) => {
            check_expr(a, scope, pos)?;
            check_expr(b, scope, pos)
        }
        Expr::Call(_, args) => {
            for a in args {
                check_expr(a, scope, pos)?;
            }
            Ok(())
        }
        Expr::IfElse(c, a, b) => {
            check_cond(c, scope, pos)?;
            check_expr(a, scope, pos)?;
            check_expr(b, scope, pos)
        }
    }
}

fn check_cond(cond: &Cond, scope: &[String], pos: Pos) -> Result<(), CompileError> {
    match cond {
        Cond::True => Ok(()),
        Cond::Not(c) => check_cond(c, scope, pos),
        Cond::And(a, b) | Cond::Or(a, b) => {
            check_cond(a, scope, pos)?;
            check_cond(b, scope, pos)
        }
        Cond::Rel(_, a, b) => {
            check_expr(a, scope, pos)?;
            check_expr(b, scope, pos)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn accepts_valid_program() {
        let p = parse(
            "n is \"count\" and comes from \"--n\" with default 4. \
             for n repetitions all tasks t send a 8 byte message to task (t+1) mod num_tasks.",
        )
        .unwrap();
        let params = check(&p).unwrap();
        assert!(params.contains("n"));
    }

    #[test]
    fn rejects_unbound_variable() {
        let p = parse("task 0 sends a mystery byte message to task 1.").unwrap();
        let e = check(&p).unwrap_err();
        assert!(e.message.contains("mystery"));
    }

    #[test]
    fn errors_carry_sentence_positions() {
        // The bad sentence starts on line 2 — the error must point there,
        // not at the 0:0 placeholder.
        let p = parse(
            "all tasks synchronize.\n\
             task 0 sends a mystery byte message to task 1.",
        )
        .unwrap();
        let e = check(&p).unwrap_err();
        assert_eq!(e.pos.line, 2, "got {}", e);
        assert!(e.to_string().starts_with("2:"), "got {}", e);
    }

    #[test]
    fn param_errors_carry_positions() {
        let p = parse(
            "n is \"a\" and comes from \"--n\" with default 1.\n\
             n is \"b\" and comes from \"--m\" with default 2.",
        )
        .unwrap();
        let e = check(&p).unwrap_err();
        assert_eq!(e.pos.line, 2, "got {}", e);
    }

    #[test]
    fn assert_errors_carry_positions() {
        let p = parse(
            "all tasks synchronize.\n\
             Assert that \"x\" with nope > 0.",
        )
        .unwrap();
        let e = check(&p).unwrap_err();
        assert_eq!(e.pos.line, 2, "got {}", e);
    }

    #[test]
    fn check_report_shares_diagnostic_format() {
        let p = parse("task 0 sends a mystery byte message to task 1.").unwrap();
        let r = check_report(&p);
        assert!(r.has_errors());
        let line = r.render();
        assert!(line.starts_with("error[compile] 1:"), "got {line}");
        assert!(check_report(&parse("all tasks synchronize.").unwrap()).is_empty());
    }

    #[test]
    fn rejects_duplicate_params() {
        let p = parse(
            "n is \"a\" and comes from \"--n\" with default 1. \
             n is \"b\" and comes from \"--m\" with default 2.",
        )
        .unwrap();
        assert!(check(&p).unwrap_err().message.contains("duplicate parameter"));
    }

    #[test]
    fn rejects_duplicate_flags() {
        let p = parse(
            "n is \"a\" and comes from \"--x\" with default 1. \
             m is \"b\" and comes from \"--x\" with default 2.",
        )
        .unwrap();
        assert!(check(&p).unwrap_err().message.contains("duplicate flag"));
    }

    #[test]
    fn rejects_shadowing_predeclared() {
        let p = parse("num_tasks is \"a\" and comes from \"--n\" with default 1.").unwrap();
        assert!(check(&p).unwrap_err().message.contains("predeclared"));
    }

    #[test]
    fn rejects_all_others_as_source() {
        let p = parse("all other tasks send a 4 byte message to task 0.").unwrap();
        assert!(check(&p).unwrap_err().message.contains("target"));
    }

    #[test]
    fn selector_bindings_scope_correctly() {
        // `t` bound by the selector is visible in size and dst expressions…
        let p = parse("all tasks t send a t byte message to task t+1.").unwrap();
        check(&p).unwrap();
        // …but not after the sentence.
        let p =
            parse("all tasks t synchronize then task t sends a 4 byte message to task 0.").unwrap();
        assert!(check(&p).is_err());
    }

    #[test]
    fn let_and_loop_bindings() {
        let p = parse(
            "let w be 4 while for each i in {0, ..., w} task i sends a w byte message to task 0.",
        )
        .unwrap();
        check(&p).unwrap();
    }
}
