//! Semantic analysis: scope checking and structural validation.
//!
//! Catches, at compile time rather than mid-simulation:
//! * references to unbound variables (outside declared parameters,
//!   predeclared variables, and enclosing `let`/loop/selector bindings);
//! * duplicate parameter declarations or flags;
//! * `all other tasks` used anywhere except as a multicast/send target.

use crate::ast::*;
use crate::error::CompileError;
use crate::token::Pos;
use std::collections::HashSet;

/// Variables every program may reference without declaring.
pub const PREDECLARED: &[&str] = &["num_tasks", "elapsed_usecs", "bytes_sent", "bytes_received"];

/// Validate a parsed program. Returns the set of parameter names on
/// success (useful for argument parsing).
pub fn check(prog: &Program) -> Result<HashSet<String>, CompileError> {
    let mut params: HashSet<String> = HashSet::new();
    let mut flags: HashSet<String> = HashSet::new();
    for p in &prog.params {
        if !params.insert(p.name.clone()) {
            return Err(err(format!("duplicate parameter `{}`", p.name)));
        }
        if !flags.insert(p.long_flag.clone()) {
            return Err(err(format!("duplicate flag `{}`", p.long_flag)));
        }
        if let Some(s) = &p.short_flag {
            if !flags.insert(s.clone()) {
                return Err(err(format!("duplicate flag `{s}`")));
            }
        }
        if PREDECLARED.contains(&p.name.as_str()) {
            return Err(err(format!("parameter `{}` shadows a predeclared variable", p.name)));
        }
    }

    let mut scope: Vec<String> = params.iter().cloned().collect();
    scope.extend(PREDECLARED.iter().map(|s| s.to_string()));

    for a in &prog.asserts {
        check_cond(&a.cond, &scope)?;
    }
    for s in &prog.stmts {
        check_stmt(s, &mut scope)?;
    }
    Ok(params)
}

fn err(msg: String) -> CompileError {
    CompileError::new(Pos::default(), msg)
}

fn check_stmt(stmt: &Stmt, scope: &mut Vec<String>) -> Result<(), CompileError> {
    match stmt {
        Stmt::Seq(parts) => {
            for p in parts {
                check_stmt(p, scope)?;
            }
            Ok(())
        }
        Stmt::For { reps, body, .. } => {
            check_expr(reps, scope)?;
            check_stmt(body, scope)
        }
        Stmt::ForEach { var, from, to, body } => {
            check_expr(from, scope)?;
            check_expr(to, scope)?;
            scope.push(var.clone());
            let r = check_stmt(body, scope);
            scope.pop();
            r
        }
        Stmt::If { cond, then, els } => {
            check_cond(cond, scope)?;
            check_stmt(then, scope)?;
            if let Some(e) = els {
                check_stmt(e, scope)?;
            }
            Ok(())
        }
        Stmt::Let { var, value, body } => {
            check_expr(value, scope)?;
            scope.push(var.clone());
            let r = check_stmt(body, scope);
            scope.pop();
            r
        }
        Stmt::Send { src, count, size, dst, .. }
        | Stmt::Receive { dst: src, count, size, src: dst, .. } => {
            let popped = check_sel(src, scope, false)?;
            check_expr(count, scope)?;
            check_expr(size, scope)?;
            check_sel(dst, scope, true)?.then(|| scope.pop());
            if popped {
                scope.pop();
            }
            Ok(())
        }
        Stmt::Multicast { src, size, dst } => {
            let popped = check_sel(src, scope, false)?;
            check_expr(size, scope)?;
            check_sel(dst, scope, true)?.then(|| scope.pop());
            if popped {
                scope.pop();
            }
            Ok(())
        }
        Stmt::Reduce { tasks, size, target } => {
            let popped = check_sel(tasks, scope, false)?;
            check_expr(size, scope)?;
            check_sel(target, scope, false)?.then(|| scope.pop());
            if popped {
                scope.pop();
            }
            Ok(())
        }
        Stmt::Sync(sel) | Stmt::AwaitCompletions(sel) | Stmt::Reset(sel)
        | Stmt::ComputeAggregates(sel) => {
            if check_sel(sel, scope, false)? {
                scope.pop();
            }
            Ok(())
        }
        Stmt::Compute { tasks, amount, .. } | Stmt::Sleep { tasks, amount, .. } => {
            let popped = check_sel(tasks, scope, false)?;
            check_expr(amount, scope)?;
            if popped {
                scope.pop();
            }
            Ok(())
        }
        Stmt::Touch(sel, size) => {
            let popped = check_sel(sel, scope, false)?;
            check_expr(size, scope)?;
            if popped {
                scope.pop();
            }
            Ok(())
        }
        Stmt::Log(sel, entries) => {
            let popped = check_sel(sel, scope, false)?;
            for e in entries {
                check_expr(&e.value, scope)?;
            }
            if popped {
                scope.pop();
            }
            Ok(())
        }
        Stmt::Empty => Ok(()),
    }
}

/// Check a task selector; pushes its binding (if any) onto the scope and
/// returns whether a binding was pushed. `target_pos` allows `AllOthers`.
fn check_sel(
    sel: &TaskSel,
    scope: &mut Vec<String>,
    target_pos: bool,
) -> Result<bool, CompileError> {
    match sel {
        TaskSel::All(None) => Ok(false),
        TaskSel::All(Some(v)) => {
            scope.push(v.clone());
            Ok(true)
        }
        TaskSel::Single(e) => {
            check_expr(e, scope)?;
            Ok(false)
        }
        TaskSel::SuchThat(v, cond) => {
            scope.push(v.clone());
            check_cond(cond, scope)?;
            Ok(true)
        }
        TaskSel::AllOthers => {
            if target_pos {
                Ok(false)
            } else {
                Err(err("`all other tasks` is only valid as a message target".into()))
            }
        }
    }
}

fn check_expr(expr: &Expr, scope: &[String]) -> Result<(), CompileError> {
    match expr {
        Expr::Int(_) => Ok(()),
        Expr::Var(v) => {
            if scope.iter().any(|s| s == v) {
                Ok(())
            } else {
                Err(err(format!("unbound variable `{v}`")))
            }
        }
        Expr::Neg(e) => check_expr(e, scope),
        Expr::Bin(_, a, b) => {
            check_expr(a, scope)?;
            check_expr(b, scope)
        }
        Expr::Call(_, args) => {
            for a in args {
                check_expr(a, scope)?;
            }
            Ok(())
        }
        Expr::IfElse(c, a, b) => {
            check_cond(c, scope)?;
            check_expr(a, scope)?;
            check_expr(b, scope)
        }
    }
}

fn check_cond(cond: &Cond, scope: &[String]) -> Result<(), CompileError> {
    match cond {
        Cond::True => Ok(()),
        Cond::Not(c) => check_cond(c, scope),
        Cond::And(a, b) | Cond::Or(a, b) => {
            check_cond(a, scope)?;
            check_cond(b, scope)
        }
        Cond::Rel(_, a, b) => {
            check_expr(a, scope)?;
            check_expr(b, scope)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn accepts_valid_program() {
        let p = parse(
            "n is \"count\" and comes from \"--n\" with default 4. \
             for n repetitions all tasks t send a 8 byte message to task (t+1) mod num_tasks.",
        )
        .unwrap();
        let params = check(&p).unwrap();
        assert!(params.contains("n"));
    }

    #[test]
    fn rejects_unbound_variable() {
        let p = parse("task 0 sends a mystery byte message to task 1.").unwrap();
        let e = check(&p).unwrap_err();
        assert!(e.message.contains("mystery"));
    }

    #[test]
    fn rejects_duplicate_params() {
        let p = parse(
            "n is \"a\" and comes from \"--n\" with default 1. \
             n is \"b\" and comes from \"--m\" with default 2.",
        )
        .unwrap();
        assert!(check(&p).unwrap_err().message.contains("duplicate parameter"));
    }

    #[test]
    fn rejects_duplicate_flags() {
        let p = parse(
            "n is \"a\" and comes from \"--x\" with default 1. \
             m is \"b\" and comes from \"--x\" with default 2.",
        )
        .unwrap();
        assert!(check(&p).unwrap_err().message.contains("duplicate flag"));
    }

    #[test]
    fn rejects_shadowing_predeclared() {
        let p = parse("num_tasks is \"a\" and comes from \"--n\" with default 1.").unwrap();
        assert!(check(&p).unwrap_err().message.contains("predeclared"));
    }

    #[test]
    fn rejects_all_others_as_source() {
        let p = parse("all other tasks send a 4 byte message to task 0.").unwrap();
        assert!(check(&p).unwrap_err().message.contains("target"));
    }

    #[test]
    fn selector_bindings_scope_correctly() {
        // `t` bound by the selector is visible in size and dst expressions…
        let p = parse("all tasks t send a t byte message to task t+1.").unwrap();
        check(&p).unwrap();
        // …but not after the sentence.
        let p = parse(
            "all tasks t synchronize then task t sends a 4 byte message to task 0.",
        )
        .unwrap();
        assert!(check(&p).is_err());
    }

    #[test]
    fn let_and_loop_bindings() {
        let p = parse(
            "let w be 4 while for each i in {0, ..., w} task i sends a w byte message to task 0.",
        )
        .unwrap();
        check(&p).unwrap();
    }
}
