//! Recursive-descent parser: tokens → [`Program`].
//!
//! The grammar is a faithful, documented subset of coNCePTuaL's
//! English-like surface syntax:
//!
//! ```text
//! program    := sentence*
//! sentence   := require | paramdecl | assert | stmt '.'
//! require    := "Require language version" STRING '.'
//! paramdecl  := IDENT "is" STRING "and comes from" STRING ("or" STRING)?
//!               "with default" expr '.'
//! assert     := "Assert that" STRING "with" cond '.'
//! stmt       := simple ("then" simple)*
//! simple     := '{' stmt '}'
//!             | "for" expr "repetition(s)" ("plus a synchronization")? simple
//!             | "for each" IDENT "in" '{' expr ',' '...' ',' expr '}' simple
//!             | "if" cond "then" simple ("otherwise" simple)?
//!             | "let" IDENT "be" expr "while" simple
//!             | tasksel verbclause
//! tasksel    := "all tasks" IDENT? | "all other tasks" | "task" primary
//!             | "tasks" IDENT "such that" cond
//! verbclause := ("asynchronously")? "send(s)" msgspec "to" tasksel
//!             | ("asynchronously")? "receive(s)" msgspec "from" tasksel
//!             | "multicast(s)" msgspec "to" tasksel
//!             | "reduce(s)" msgspec "to" tasksel
//!             | "synchronize(s)"
//!             | "compute(s)" ("for" expr timeunit | "aggregates")
//!             | "sleep(s) for" expr timeunit
//!             | "await(s) completion(s)"
//!             | "reset(s) its/their counters"
//!             | "log(s)" logentry ("and" logentry)*
//!             | "touch(es) a"? expr sizeunit "memory region"
//! msgspec    := ("a"|"an") expr sizeunit ("message"|"messages")?
//!             | expr expr sizeunit "messages"
//!             | expr sizeunit ("message"|"messages")?
//! sizeunit   := "byte(s)" | "kilobyte(s)" | "megabyte(s)" | "gigabyte(s)"
//!             | "doubleword(s)"
//! logentry   := "the" (aggword "of")? expr "as" STRING
//! cond       := orcond; orcond := andcond (("\/"|"or") andcond)*
//! andcond    := rel (("/\"|"and") rel)*
//! rel        := expr relop expr | expr "is" ("even"|"odd")
//!             | expr "divides" expr | '(' cond ')'
//! expr       := additive over shifts over mul ('*','/','%',"mod") over
//!               pow ('**', right-assoc) over primary
//! primary    := INT | IDENT | BUILTIN '(' expr,* ')' | '(' expr ')'
//!             | '-' primary
//! ```

use crate::ast::*;
use crate::error::CompileError;
use crate::lexer::lex;
use crate::token::{Pos, Spanned, Tok};

/// Words that end a task-selector binding (so `all tasks send …` does not
/// bind `send` as a variable).
const VERBS: &[&str] = &[
    "send",
    "sends",
    "receive",
    "receives",
    "multicast",
    "multicasts",
    "reduce",
    "reduces",
    "synchronize",
    "synchronizes",
    "compute",
    "computes",
    "sleep",
    "sleeps",
    "await",
    "awaits",
    "reset",
    "resets",
    "log",
    "logs",
    "touch",
    "touches",
    "asynchronously",
    "are",
    "is",
    // structural words that may follow a selector in target position
    "then",
    "to",
    "from",
    "otherwise",
    "while",
];

/// Parse a complete program from source text.
pub fn parse(src: &str) -> Result<Program, CompileError> {
    let toks = lex(src)?;
    Parser { toks, pos: 0 }.program()
}

/// Parse a standalone expression (used by tests and tooling).
pub fn parse_expr(src: &str) -> Result<Expr, CompileError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let e = p.expr()?;
    p.expect(&Tok::Eof)?;
    Ok(e)
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn here(&self) -> Pos {
        self.toks[self.pos].pos
    }

    fn next(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, CompileError> {
        Err(CompileError::new(self.here(), msg))
    }

    fn expect(&mut self, tok: &Tok) -> Result<(), CompileError> {
        if self.peek() == tok {
            self.next();
            Ok(())
        } else {
            self.err(format!("expected {tok}, found {}", self.peek()))
        }
    }

    /// Is the current token the given word (case-insensitive)?
    fn at_word(&self, w: &str) -> bool {
        matches!(self.peek(), Tok::Word(s) if s.eq_ignore_ascii_case(w))
    }

    fn at_any_word(&self, ws: &[&str]) -> bool {
        ws.iter().any(|w| self.at_word(w))
    }

    /// Consume the given word if present.
    fn eat_word(&mut self, w: &str) -> bool {
        if self.at_word(w) {
            self.next();
            true
        } else {
            false
        }
    }

    fn expect_word(&mut self, w: &str) -> Result<(), CompileError> {
        if self.eat_word(w) {
            Ok(())
        } else {
            self.err(format!("expected `{w}`, found {}", self.peek()))
        }
    }

    fn expect_str(&mut self) -> Result<String, CompileError> {
        match self.peek().clone() {
            Tok::Str(s) => {
                self.next();
                Ok(s)
            }
            other => self.err(format!("expected string literal, found {other}")),
        }
    }

    fn expect_ident(&mut self) -> Result<String, CompileError> {
        match self.peek().clone() {
            Tok::Word(s) => {
                self.next();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    // ---------------- program structure ----------------

    fn program(&mut self) -> Result<Program, CompileError> {
        let mut prog = Program::default();
        while self.peek() != &Tok::Eof {
            let pos = self.here();
            if self.at_word("require") {
                self.next();
                self.expect_word("language")?;
                self.expect_word("version")?;
                prog.version = Some(self.expect_str()?);
                self.expect(&Tok::Period)?;
            } else if self.at_word("assert") {
                self.next();
                self.expect_word("that")?;
                let message = self.expect_str()?;
                self.expect_word("with")?;
                let cond = self.cond()?;
                self.expect(&Tok::Period)?;
                prog.asserts.push(AssertDecl { message, cond });
                prog.assert_pos.push(pos);
            } else if matches!(self.peek(), Tok::Word(_)) && self.is_param_decl() {
                prog.params.push(self.param_decl()?);
                prog.param_pos.push(pos);
            } else {
                let s = self.stmt()?;
                self.expect(&Tok::Period)?;
                prog.stmts.push(s);
                prog.stmt_pos.push(pos);
            }
        }
        Ok(prog)
    }

    /// Lookahead: `IDENT is "<string>"` begins a parameter declaration.
    fn is_param_decl(&self) -> bool {
        matches!(self.peek(), Tok::Word(_))
            && matches!(self.peek2(), Tok::Word(w) if w.eq_ignore_ascii_case("is"))
            && matches!(self.toks.get(self.pos + 2).map(|s| &s.tok), Some(Tok::Str(_)))
    }

    fn param_decl(&mut self) -> Result<ParamDecl, CompileError> {
        let name = self.expect_ident()?;
        self.expect_word("is")?;
        let description = self.expect_str()?;
        self.expect_word("and")?;
        self.expect_word("comes")?;
        self.expect_word("from")?;
        let long_flag = self.expect_str()?;
        let short_flag = if self.eat_word("or") { Some(self.expect_str()?) } else { None };
        self.expect_word("with")?;
        self.expect_word("default")?;
        let default = match self.expr()? {
            Expr::Int(v) => v,
            Expr::Neg(b) => match *b {
                Expr::Int(v) => -v,
                _ => return self.err("parameter default must be a constant"),
            },
            _ => return self.err("parameter default must be a constant"),
        };
        self.expect(&Tok::Period)?;
        Ok(ParamDecl { name, description, long_flag, short_flag, default })
    }

    // ---------------- statements ----------------

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        let mut parts = vec![self.simple()?];
        while self.eat_word("then") {
            parts.push(self.simple()?);
        }
        if parts.len() == 1 {
            Ok(parts.pop().unwrap())
        } else {
            Ok(Stmt::Seq(parts))
        }
    }

    fn simple(&mut self) -> Result<Stmt, CompileError> {
        if self.peek() == &Tok::LBrace {
            self.next();
            let s = self.stmt()?;
            self.expect(&Tok::RBrace)?;
            return Ok(s);
        }
        if self.at_word("for") {
            return self.for_stmt();
        }
        if self.at_word("if") {
            self.next();
            let cond = self.cond()?;
            self.expect_word("then")?;
            let then = Box::new(self.simple()?);
            let els =
                if self.eat_word("otherwise") { Some(Box::new(self.simple()?)) } else { None };
            return Ok(Stmt::If { cond, then, els });
        }
        if self.at_word("let") {
            self.next();
            let var = self.expect_ident()?;
            self.expect_word("be")?;
            let value = self.expr()?;
            self.expect_word("while")?;
            let body = Box::new(self.simple()?);
            return Ok(Stmt::Let { var, value, body });
        }
        // Action sentence: task selector + verb clause.
        let sel = self.task_sel()?;
        self.verb_clause(sel)
    }

    fn for_stmt(&mut self) -> Result<Stmt, CompileError> {
        self.expect_word("for")?;
        if self.eat_word("each") {
            let var = self.expect_ident()?;
            self.expect_word("in")?;
            self.expect(&Tok::LBrace)?;
            let from = self.expr()?;
            self.expect(&Tok::Comma)?;
            self.expect(&Tok::Ellipsis)?;
            self.expect(&Tok::Comma)?;
            let to = self.expr()?;
            self.expect(&Tok::RBrace)?;
            let body = Box::new(self.simple()?);
            return Ok(Stmt::ForEach { var, from, to, body });
        }
        let reps = self.expr()?;
        if !(self.eat_word("repetitions") || self.eat_word("repetition")) {
            return self.err("expected `repetitions`");
        }
        let sync = if self.eat_word("plus") {
            self.expect_word("a")?;
            self.expect_word("synchronization")?;
            true
        } else {
            false
        };
        let body = Box::new(self.simple()?);
        Ok(Stmt::For { reps, sync, body })
    }

    fn task_sel(&mut self) -> Result<TaskSel, CompileError> {
        if self.eat_word("all") {
            if self.eat_word("other") {
                self.expect_word("tasks")?;
                return Ok(TaskSel::AllOthers);
            }
            self.expect_word("tasks")?;
            // Optional binding variable, unless the next word is a verb.
            if let Tok::Word(w) = self.peek() {
                let lower = w.to_ascii_lowercase();
                if !VERBS.contains(&lower.as_str()) {
                    let var = self.expect_ident()?;
                    return Ok(TaskSel::All(Some(var)));
                }
            }
            return Ok(TaskSel::All(None));
        }
        if self.at_word("task") {
            self.next();
            let e = self.expr()?;
            return Ok(TaskSel::Single(e));
        }
        if self.at_word("tasks") {
            self.next();
            let var = self.expect_ident()?;
            self.expect_word("such")?;
            self.expect_word("that")?;
            let cond = self.cond()?;
            return Ok(TaskSel::SuchThat(var, cond));
        }
        self.err(format!("expected a task selector, found {}", self.peek()))
    }

    fn verb_clause(&mut self, sel: TaskSel) -> Result<Stmt, CompileError> {
        let nonblocking = self.eat_word("asynchronously");
        let attrs = MsgAttrs { nonblocking };

        if self.eat_word("sends") || self.eat_word("send") {
            let (count, size) = self.msg_spec()?;
            self.expect_word("to")?;
            let dst = self.task_sel()?;
            return Ok(Stmt::Send { src: sel, count, size, dst, attrs });
        }
        if self.eat_word("receives") || self.eat_word("receive") {
            let (count, size) = self.msg_spec()?;
            self.expect_word("from")?;
            let src = self.task_sel()?;
            return Ok(Stmt::Receive { dst: sel, count, size, src, attrs });
        }
        if nonblocking {
            return self.err("`asynchronously` applies only to sends and receives");
        }
        if self.eat_word("multicasts") || self.eat_word("multicast") {
            let (count, size) = self.msg_spec()?;
            if count != Expr::Int(1) {
                return self.err("multicast takes a single message");
            }
            self.expect_word("to")?;
            let dst = self.task_sel()?;
            return Ok(Stmt::Multicast { src: sel, size, dst });
        }
        if self.eat_word("reduces") || self.eat_word("reduce") {
            let (count, size) = self.msg_spec()?;
            if count != Expr::Int(1) {
                return self.err("reduce takes a single message");
            }
            self.expect_word("to")?;
            let target = self.task_sel()?;
            return Ok(Stmt::Reduce { tasks: sel, size, target });
        }
        if self.eat_word("synchronizes") || self.eat_word("synchronize") {
            return Ok(Stmt::Sync(sel));
        }
        if self.eat_word("computes") || self.eat_word("compute") {
            if self.eat_word("aggregates") {
                return Ok(Stmt::ComputeAggregates(sel));
            }
            self.expect_word("for")?;
            let amount = self.expr()?;
            let unit = self.time_unit()?;
            return Ok(Stmt::Compute { tasks: sel, amount, unit });
        }
        if self.eat_word("sleeps") || self.eat_word("sleep") {
            self.expect_word("for")?;
            let amount = self.expr()?;
            let unit = self.time_unit()?;
            return Ok(Stmt::Sleep { tasks: sel, amount, unit });
        }
        if self.eat_word("awaits") || self.eat_word("await") {
            if !(self.eat_word("completions") || self.eat_word("completion")) {
                return self.err("expected `completions`");
            }
            return Ok(Stmt::AwaitCompletions(sel));
        }
        if self.eat_word("resets") || self.eat_word("reset") {
            if !(self.eat_word("its") || self.eat_word("their")) {
                return self.err("expected `its` or `their`");
            }
            self.expect_word("counters")?;
            return Ok(Stmt::Reset(sel));
        }
        if self.eat_word("logs") || self.eat_word("log") {
            let mut entries = vec![self.log_entry()?];
            while self.eat_word("and") {
                entries.push(self.log_entry()?);
            }
            return Ok(Stmt::Log(sel, entries));
        }
        if self.eat_word("touches") || self.eat_word("touch") {
            let _ = self.eat_word("a") || self.eat_word("an");
            let size = self.expr()?;
            let scale = self.size_unit()?;
            self.expect_word("memory")?;
            self.expect_word("region")?;
            let size = if scale == 1 { size } else { size.mul(Expr::Int(scale)) };
            return Ok(Stmt::Touch(sel, size));
        }
        self.err(format!("expected a verb, found {}", self.peek()))
    }

    /// Parse a message count/size spec: `a 1024 byte message`,
    /// `10 msgsize kilobyte messages`, `msgsize byte messages`, …
    fn msg_spec(&mut self) -> Result<(Expr, Expr), CompileError> {
        if self.eat_word("a") || self.eat_word("an") {
            let size = self.expr()?;
            let scale = self.size_unit()?;
            let _ = self.eat_word("message") || self.eat_word("messages");
            let size = if scale == 1 { size } else { size.mul(Expr::Int(scale)) };
            return Ok((Expr::Int(1), size));
        }
        let first = self.expr()?;
        if self.at_size_unit() {
            let scale = self.size_unit()?;
            let _ = self.eat_word("message") || self.eat_word("messages");
            let size = if scale == 1 { first } else { first.mul(Expr::Int(scale)) };
            return Ok((Expr::Int(1), size));
        }
        let size = self.expr()?;
        let scale = self.size_unit()?;
        let _ = self.eat_word("messages") || self.eat_word("message");
        let size = if scale == 1 { size } else { size.mul(Expr::Int(scale)) };
        Ok((first, size))
    }

    fn at_size_unit(&self) -> bool {
        self.at_any_word(&[
            "byte",
            "bytes",
            "kilobyte",
            "kilobytes",
            "megabyte",
            "megabytes",
            "gigabyte",
            "gigabytes",
            "doubleword",
            "doublewords",
        ])
    }

    fn size_unit(&mut self) -> Result<i64, CompileError> {
        for (names, scale) in [
            (&["byte", "bytes"][..], 1i64),
            (&["kilobyte", "kilobytes"][..], 1 << 10),
            (&["megabyte", "megabytes"][..], 1 << 20),
            (&["gigabyte", "gigabytes"][..], 1 << 30),
            (&["doubleword", "doublewords"][..], 8),
        ] {
            for n in names {
                if self.eat_word(n) {
                    return Ok(scale);
                }
            }
        }
        self.err(format!("expected a size unit, found {}", self.peek()))
    }

    fn time_unit(&mut self) -> Result<TimeUnit, CompileError> {
        for (names, unit) in [
            (&["nanosecond", "nanoseconds"][..], TimeUnit::Nanoseconds),
            (&["microsecond", "microseconds", "usecs"][..], TimeUnit::Microseconds),
            (&["millisecond", "milliseconds", "msecs"][..], TimeUnit::Milliseconds),
            (&["second", "seconds", "secs"][..], TimeUnit::Seconds),
        ] {
            for n in names {
                if self.eat_word(n) {
                    return Ok(unit);
                }
            }
        }
        self.err(format!("expected a time unit, found {}", self.peek()))
    }

    fn log_entry(&mut self) -> Result<LogEntry, CompileError> {
        self.expect_word("the")?;
        let aggregate = if self.eat_word("mean") {
            Aggregate::Mean
        } else if self.eat_word("median") {
            Aggregate::Median
        } else if self.eat_word("minimum") {
            Aggregate::Minimum
        } else if self.eat_word("maximum") {
            Aggregate::Maximum
        } else if self.eat_word("sum") {
            Aggregate::Sum
        } else if self.eat_word("final") {
            Aggregate::Final
        } else {
            Aggregate::None
        };
        if aggregate != Aggregate::None {
            self.expect_word("of")?;
        }
        let value = self.expr()?;
        self.expect_word("as")?;
        let label = self.expect_str()?;
        Ok(LogEntry { aggregate, value, label })
    }

    // ---------------- conditions ----------------

    fn cond(&mut self) -> Result<Cond, CompileError> {
        let mut left = self.and_cond()?;
        loop {
            if self.peek() == &Tok::OrOp || self.at_word("or") {
                self.next();
                let right = self.and_cond()?;
                left = Cond::Or(Box::new(left), Box::new(right));
            } else {
                return Ok(left);
            }
        }
    }

    fn and_cond(&mut self) -> Result<Cond, CompileError> {
        let mut left = self.rel()?;
        loop {
            if self.peek() == &Tok::AndOp || self.at_word("and") {
                self.next();
                let right = self.rel()?;
                left = Cond::And(Box::new(left), Box::new(right));
            } else {
                return Ok(left);
            }
        }
    }

    fn rel(&mut self) -> Result<Cond, CompileError> {
        let left = self.expr()?;
        if self.eat_word("is") {
            if self.eat_word("even") {
                return Ok(Cond::Rel(RelOp::Eq, left.rem(Expr::Int(2)), Expr::Int(0)));
            }
            if self.eat_word("odd") {
                return Ok(Cond::Rel(RelOp::Ne, left.rem(Expr::Int(2)), Expr::Int(0)));
            }
            return self.err("expected `even` or `odd` after `is`");
        }
        if self.eat_word("divides") {
            let right = self.expr()?;
            return Ok(Cond::Rel(RelOp::Divides, left, right));
        }
        let op = match self.peek() {
            Tok::Eq => RelOp::Eq,
            Tok::Ne => RelOp::Ne,
            Tok::Lt => RelOp::Lt,
            Tok::Le => RelOp::Le,
            Tok::Gt => RelOp::Gt,
            Tok::Ge => RelOp::Ge,
            other => return self.err(format!("expected a relational operator, found {other}")),
        };
        self.next();
        let right = self.expr()?;
        Ok(Cond::Rel(op, left, right))
    }

    // ---------------- expressions ----------------

    fn expr(&mut self) -> Result<Expr, CompileError> {
        let mut left = self.shift_expr()?;
        loop {
            match self.peek() {
                Tok::Plus => {
                    self.next();
                    left = left.add(self.shift_expr()?);
                }
                Tok::Minus => {
                    self.next();
                    left = left.sub(self.shift_expr()?);
                }
                _ => return Ok(left),
            }
        }
    }

    fn shift_expr(&mut self) -> Result<Expr, CompileError> {
        let mut left = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Shl => BinOp::Shl,
                Tok::Shr => BinOp::Shr,
                _ => return Ok(left),
            };
            self.next();
            let right = self.mul_expr()?;
            left = Expr::Bin(op, Box::new(left), Box::new(right));
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, CompileError> {
        let mut left = self.pow_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Mod,
                Tok::Word(w) if w.eq_ignore_ascii_case("mod") => BinOp::Mod,
                _ => return Ok(left),
            };
            self.next();
            let right = self.pow_expr()?;
            left = Expr::Bin(op, Box::new(left), Box::new(right));
        }
    }

    fn pow_expr(&mut self) -> Result<Expr, CompileError> {
        let base = self.primary()?;
        if self.peek() == &Tok::StarStar {
            self.next();
            // Right-associative.
            let exp = self.pow_expr()?;
            return Ok(Expr::Bin(BinOp::Pow, Box::new(base), Box::new(exp)));
        }
        Ok(base)
    }

    fn primary(&mut self) -> Result<Expr, CompileError> {
        match self.peek().clone() {
            Tok::Int(v) => {
                self.next();
                Ok(Expr::Int(v))
            }
            Tok::Minus => {
                self.next();
                Ok(Expr::Neg(Box::new(self.primary()?)))
            }
            Tok::LParen => {
                self.next();
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Tok::Word(w) => {
                self.next();
                if self.peek() == &Tok::LParen {
                    let Some(builtin) = Builtin::from_name(&w) else {
                        return self.err(format!("unknown function `{w}`"));
                    };
                    self.next();
                    let mut args = Vec::new();
                    if self.peek() != &Tok::RParen {
                        args.push(self.expr()?);
                        while self.peek() == &Tok::Comma {
                            self.next();
                            args.push(self.expr()?);
                        }
                    }
                    self.expect(&Tok::RParen)?;
                    Ok(Expr::Call(builtin, args))
                } else {
                    Ok(Expr::Var(w))
                }
            }
            other => self.err(format!("expected an expression, found {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 1 ping-pong program (with braces around the loop
    /// body — see module docs).
    const PING_PONG: &str = r#"
# A ping-pong latency test written in coNCePTuaL
Require language version "1.5".

# Parse command line.
reps is "Number of repetitions" and comes from "--reps" or "-r" with default 1000.
msgsize is "Message size of bytes to transmit" and comes from "--msgsize" or "-m" with default 1024.

Assert that "the latency test requires at least two tasks" with num_tasks >= 2.

# Perform the test.
For reps repetitions {
  task 0 resets its counters then
  task 0 sends a msgsize byte message to task 1 then
  task 1 sends a msgsize byte message to task 0 then
  task 0 logs the msgsize as "Bytes" and the median of elapsed_usecs/2 as "1/2 RTT (usecs)"
}
then task 0 computes aggregates.
"#;

    #[test]
    fn parses_ping_pong() {
        let prog = parse(PING_PONG).unwrap();
        assert_eq!(prog.version.as_deref(), Some("1.5"));
        assert_eq!(prog.params.len(), 2);
        assert_eq!(prog.params[0].name, "reps");
        assert_eq!(prog.params[0].default, 1000);
        assert_eq!(prog.params[1].short_flag.as_deref(), Some("-m"));
        assert_eq!(prog.asserts.len(), 1);
        assert_eq!(prog.stmts.len(), 1);
        // Outer statement: For-loop then computes-aggregates.
        let Stmt::Seq(parts) = &prog.stmts[0] else {
            panic!("expected Seq, got {:?}", prog.stmts[0])
        };
        assert_eq!(parts.len(), 2);
        let Stmt::For { reps, sync, body } = &parts[0] else { panic!() };
        assert_eq!(reps, &Expr::var("reps"));
        assert!(!sync);
        let Stmt::Seq(inner) = body.as_ref() else { panic!() };
        assert_eq!(inner.len(), 4);
        assert!(matches!(inner[0], Stmt::Reset(_)));
        assert!(matches!(inner[1], Stmt::Send { .. }));
        assert!(matches!(inner[3], Stmt::Log(_, _)));
        assert!(matches!(parts[1], Stmt::ComputeAggregates(_)));
    }

    #[test]
    fn parses_async_sends_and_awaits() {
        let prog = parse(
            "all tasks t asynchronously send a 128 kilobyte message to task (t+1) mod num_tasks \
             then all tasks await completions.",
        )
        .unwrap();
        let Stmt::Seq(parts) = &prog.stmts[0] else { panic!() };
        let Stmt::Send { src, size, attrs, .. } = &parts[0] else { panic!() };
        assert_eq!(src, &TaskSel::All(Some("t".into())));
        assert!(attrs.nonblocking);
        assert_eq!(size, &Expr::Int(128).mul(Expr::Int(1024)));
        assert!(matches!(parts[1], Stmt::AwaitCompletions(_)));
    }

    #[test]
    fn parses_reduce_to_all_tasks() {
        let prog = parse("all tasks reduce a 28 megabyte message to all tasks.").unwrap();
        let Stmt::Reduce { tasks, target, size } = &prog.stmts[0] else { panic!() };
        assert_eq!(tasks, &TaskSel::All(None));
        assert_eq!(target, &TaskSel::All(None));
        assert_eq!(size, &Expr::Int(28).mul(Expr::Int(1 << 20)));
    }

    #[test]
    fn parses_multicast_to_all_others() {
        let prog = parse("task 0 multicasts a 25 byte message to all other tasks.").unwrap();
        let Stmt::Multicast { src, dst, .. } = &prog.stmts[0] else { panic!() };
        assert_eq!(src, &TaskSel::Single(Expr::Int(0)));
        assert_eq!(dst, &TaskSel::AllOthers);
    }

    #[test]
    fn parses_compute_and_sleep() {
        let prog =
            parse("all tasks compute for 129 milliseconds then task 0 sleeps for 5 microseconds.")
                .unwrap();
        let Stmt::Seq(parts) = &prog.stmts[0] else { panic!() };
        let Stmt::Compute { unit, .. } = &parts[0] else { panic!() };
        assert_eq!(*unit, TimeUnit::Milliseconds);
        let Stmt::Sleep { unit, .. } = &parts[1] else { panic!() };
        assert_eq!(*unit, TimeUnit::Microseconds);
    }

    #[test]
    fn parses_such_that_and_conditions() {
        let prog =
            parse("tasks t such that t is even /\\ t < 10 send a 8 byte message to task t+1.")
                .unwrap();
        let Stmt::Send { src, .. } = &prog.stmts[0] else { panic!() };
        let TaskSel::SuchThat(v, cond) = src else { panic!() };
        assert_eq!(v, "t");
        assert!(matches!(cond, Cond::And(_, _)));
    }

    #[test]
    fn parses_for_each_and_if() {
        let prog = parse(
            "for each i in {1, ..., 10} if i is odd then task i sends a i byte message to task 0.",
        )
        .unwrap();
        let Stmt::ForEach { var, body, .. } = &prog.stmts[0] else { panic!() };
        assert_eq!(var, "i");
        assert!(matches!(body.as_ref(), Stmt::If { .. }));
    }

    #[test]
    fn parses_multi_message_counts() {
        let prog = parse("task 0 sends 10 1024 byte messages to task 1.").unwrap();
        let Stmt::Send { count, size, .. } = &prog.stmts[0] else { panic!() };
        assert_eq!(count, &Expr::Int(10));
        assert_eq!(size, &Expr::Int(1024));
    }

    #[test]
    fn parses_synchronize_and_let() {
        let prog = parse(
            "let half be num_tasks/2 while { all tasks synchronize then \
             task half sends a 4 byte message to task 0 }.",
        )
        .unwrap();
        assert!(matches!(prog.stmts[0], Stmt::Let { .. }));
    }

    #[test]
    fn parses_builtins() {
        let e = parse_expr("MESH_NEIGHBOR(8, 8, 8, t, 1, 0, 0)").unwrap();
        let Expr::Call(b, args) = e else { panic!() };
        assert_eq!(b, Builtin::MeshNeighbor);
        assert_eq!(args.len(), 7);
        assert!(parse_expr("NO_SUCH_FN(1)").is_err());
    }

    #[test]
    fn operator_precedence() {
        // 2+3*4 = 14 shape: Add(2, Mul(3,4))
        let e = parse_expr("2+3*4").unwrap();
        assert_eq!(e, Expr::Int(2).add(Expr::Int(3).mul(Expr::Int(4))));
        // 2**3**2 right-assoc: Pow(2, Pow(3, 2))
        let e = parse_expr("2**3**2").unwrap();
        let Expr::Bin(BinOp::Pow, _, rhs) = e else { panic!() };
        assert!(matches!(*rhs, Expr::Bin(BinOp::Pow, _, _)));
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse("task 0 sends a 10 byte message to.").unwrap_err();
        assert!(err.pos.line >= 1);
        assert!(err.message.contains("task selector"));
    }

    #[test]
    fn rejects_asynchronous_compute() {
        assert!(parse("all tasks asynchronously compute for 5 seconds.").is_err());
    }

    #[test]
    fn sync_loop_flag() {
        let prog = parse(
            "for 10 repetitions plus a synchronization task 0 sends a 4 byte message to task 1.",
        )
        .unwrap();
        let Stmt::For { sync, .. } = &prog.stmts[0] else { panic!() };
        assert!(sync);
    }
}
