//! Compiler diagnostics.

use crate::token::Pos;
use std::fmt;

/// Any error produced while compiling or evaluating a coNCePTuaL program.
#[derive(Clone, PartialEq, Debug)]
pub struct CompileError {
    pub pos: Pos,
    pub message: String,
}

impl CompileError {
    pub fn new(pos: Pos, message: impl Into<String>) -> Self {
        CompileError { pos, message: message.into() }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.pos, self.message)
    }
}

impl std::error::Error for CompileError {}

/// Runtime evaluation error (unbound variable, division by zero, …).
#[derive(Clone, PartialEq, Debug)]
pub struct EvalError(pub String);

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "evaluation error: {}", self.0)
    }
}

impl std::error::Error for EvalError {}
