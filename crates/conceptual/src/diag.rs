//! Severity-tagged diagnostics shared by the compiler front end and the
//! static-analysis passes (`union-lint`).
//!
//! Every layer that can reject an input — lexer/parser/sema here, the
//! skeleton and model linters in `union-lint` — reports through the same
//! [`Diagnostic`] type, so a user sees one uniform format whether a
//! problem was caught at parse time or by whole-program analysis:
//!
//! ```text
//! error[deadlock] rank 0 pc 3: wait-for cycle 0 -> 1 -> 0
//! warning[dead-code] pc 7..9: instructions never executed
//! info[budget] rank 2: loop-unrolling budget exhausted after 4096 ops
//! ```

use crate::error::CompileError;
use crate::token::Pos;
use std::fmt;

/// How bad a finding is. Ordered: `Info < Warning < Error`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// Not a defect: the analysis gave up or wants to tell you something.
    Info,
    /// Suspicious but not certainly wrong (e.g. unreachable instructions).
    Warning,
    /// Certainly wrong; registries reject skeletons with any of these.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding: a severity, a short category code, a message, and
/// whatever location context the producing pass had available.
#[derive(Clone, PartialEq, Debug)]
pub struct Diagnostic {
    pub severity: Severity,
    /// Short kebab-case category, e.g. `"deadlock"`, `"collective-divergence"`.
    pub code: &'static str,
    pub message: String,
    /// Source position, when the finding maps back to DSL text.
    pub pos: Option<Pos>,
    /// Rank context, when the finding is specific to one rank.
    pub rank: Option<u32>,
    /// Bytecode program counter, when the finding maps to an instruction.
    pub pc: Option<usize>,
}

impl Diagnostic {
    pub fn new(severity: Severity, code: &'static str, message: impl Into<String>) -> Diagnostic {
        Diagnostic { severity, code, message: message.into(), pos: None, rank: None, pc: None }
    }

    pub fn error(code: &'static str, message: impl Into<String>) -> Diagnostic {
        Diagnostic::new(Severity::Error, code, message)
    }

    pub fn warning(code: &'static str, message: impl Into<String>) -> Diagnostic {
        Diagnostic::new(Severity::Warning, code, message)
    }

    pub fn info(code: &'static str, message: impl Into<String>) -> Diagnostic {
        Diagnostic::new(Severity::Info, code, message)
    }

    /// Attach a source position.
    pub fn at(mut self, pos: Pos) -> Diagnostic {
        self.pos = Some(pos);
        self
    }

    /// Attach a rank context.
    pub fn on_rank(mut self, rank: u32) -> Diagnostic {
        self.rank = Some(rank);
        self
    }

    /// Attach a bytecode pc context.
    pub fn at_pc(mut self, pc: usize) -> Diagnostic {
        self.pc = Some(pc);
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.code)?;
        let mut ctx = Vec::new();
        if let Some(p) = self.pos {
            ctx.push(format!("{p}"));
        }
        if let Some(r) = self.rank {
            ctx.push(format!("rank {r}"));
        }
        if let Some(pc) = self.pc {
            ctx.push(format!("pc {pc}"));
        }
        if !ctx.is_empty() {
            write!(f, " {}", ctx.join(" "))?;
        }
        write!(f, ": {}", self.message)
    }
}

impl From<CompileError> for Diagnostic {
    fn from(e: CompileError) -> Diagnostic {
        Diagnostic::error("compile", e.message).at(e.pos)
    }
}

/// An ordered collection of findings from one analysis run.
#[derive(Clone, Default, Debug)]
pub struct Report {
    diags: Vec<Diagnostic>,
}

impl Report {
    pub fn new() -> Report {
        Report::default()
    }

    pub fn push(&mut self, d: Diagnostic) {
        self.diags.push(d);
    }

    pub fn extend(&mut self, other: Report) {
        self.diags.extend(other.diags);
    }

    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diags.iter()
    }

    pub fn len(&self) -> usize {
        self.diags.len()
    }

    pub fn is_empty(&self) -> bool {
        self.diags.is_empty()
    }

    /// Highest severity present, if any finding exists.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diags.iter().map(|d| d.severity).max()
    }

    /// True when no Error-severity finding is present (warnings and infos
    /// are allowed).
    pub fn is_clean(&self) -> bool {
        !self.has_errors()
    }

    pub fn has_errors(&self) -> bool {
        self.diags.iter().any(|d| d.severity == Severity::Error)
    }

    /// Render every finding, one per line, most severe first (stable
    /// within a severity).
    pub fn render(&self) -> String {
        let mut sorted: Vec<&Diagnostic> = self.diags.iter().collect();
        sorted.sort_by_key(|d| std::cmp::Reverse(d.severity));
        let mut out = String::new();
        for d in sorted {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<Diagnostic> for Report {
    fn from(d: Diagnostic) -> Report {
        Report { diags: vec![d] }
    }
}

impl FromIterator<Diagnostic> for Report {
    fn from_iter<T: IntoIterator<Item = Diagnostic>>(iter: T) -> Report {
        Report { diags: iter.into_iter().collect() }
    }
}

impl IntoIterator for Report {
    type Item = Diagnostic;
    type IntoIter = std::vec::IntoIter<Diagnostic>;
    fn into_iter(self) -> Self::IntoIter {
        self.diags.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_ordering() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn display_includes_context() {
        let d = Diagnostic::error("deadlock", "cycle 0 -> 1 -> 0").on_rank(0).at_pc(3);
        assert_eq!(d.to_string(), "error[deadlock] rank 0 pc 3: cycle 0 -> 1 -> 0");
        let d = Diagnostic::warning("dead-code", "never executed");
        assert_eq!(d.to_string(), "warning[dead-code]: never executed");
    }

    #[test]
    fn compile_error_converts_with_position() {
        let e = CompileError::new(Pos { line: 3, col: 7 }, "unbound variable `x`");
        let d: Diagnostic = e.into();
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.to_string(), "error[compile] 3:7: unbound variable `x`");
    }

    #[test]
    fn report_severity_queries() {
        let mut r = Report::new();
        assert!(r.is_clean());
        assert_eq!(r.max_severity(), None);
        r.push(Diagnostic::info("budget", "gave up"));
        r.push(Diagnostic::warning("dead-code", "pc 4"));
        assert!(r.is_clean());
        r.push(Diagnostic::error("deadlock", "stuck"));
        assert!(!r.is_clean());
        assert_eq!(r.max_severity(), Some(Severity::Error));
        // Errors render first.
        let first = r.render().lines().next().unwrap().to_string();
        assert!(first.starts_with("error["), "{first}");
    }
}
