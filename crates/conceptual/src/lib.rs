//! # conceptual
//!
//! A Rust implementation of a
//! [coNCePTuaL](https://conceptual.sourceforge.net)-style domain-specific
//! language for network correctness and performance testing, as used by the
//! Union workload manager (Wang et al., IPDPS 2020) to describe
//! application communication skeletons.
//!
//! The pipeline mirrors the original compiler:
//!
//! * [`lexer`] — source text → token list;
//! * [`parser`] — token list → abstract syntax tree ([`ast::Program`]);
//! * [`sema`] — scope and structural checks;
//! * [`eval`] — integer expression evaluation, including coNCePTuaL's
//!   salient virtual-topology builtins (n-ary trees, meshes, tori,
//!   k-nomial trees).
//!
//! Code generation to a Union skeleton lives in the `union-core` crate
//! (the paper's *translator*), which consumes the AST produced here.
//!
//! ```
//! let src = r#"
//!     Require language version "1.5".
//!     reps is "repetitions" and comes from "--reps" with default 3.
//!     For reps repetitions {
//!       task 0 sends a 1024 byte message to task 1 then
//!       task 1 sends a 1024 byte message to task 0
//!     }.
//! "#;
//! let prog = conceptual::compile(src).unwrap();
//! assert_eq!(prog.params[0].default, 3);
//! ```

pub mod ast;
pub mod diag;
pub mod error;
pub mod eval;
pub mod lexer;
pub mod parser;
pub mod sema;
pub mod token;

pub use ast::{
    Aggregate, AssertDecl, BinOp, Builtin, Cond, Expr, LogEntry, MsgAttrs, ParamDecl, Program,
    RelOp, Stmt, TaskSel, TimeUnit,
};
pub use diag::{Diagnostic, Report, Severity};
pub use error::{CompileError, EvalError};
pub use eval::{eval, eval_cond, Env};

/// Parse and semantically check a program in one step.
pub fn compile(src: &str) -> Result<Program, CompileError> {
    let prog = parser::parse(src)?;
    sema::check(&prog)?;
    Ok(prog)
}

/// Resolve a program's command-line parameters against `argv`-style
/// arguments (e.g. `["--msgsize", "4096", "-r", "10"]`), returning an
/// evaluation environment with every parameter bound (to its default when
/// not overridden) plus `num_tasks`.
pub fn bind_args(prog: &Program, num_tasks: u32, args: &[&str]) -> Result<Env, CompileError> {
    let mut env = Env::with_num_tasks(num_tasks);
    env.bind("elapsed_usecs", 0);
    env.bind("bytes_sent", 0);
    env.bind("bytes_received", 0);
    for p in &prog.params {
        env.bind(&p.name, p.default);
    }
    let mut i = 0;
    while i < args.len() {
        let flag = args[i];
        let Some(p) = prog
            .params
            .iter()
            .find(|p| p.long_flag == flag || p.short_flag.as_deref() == Some(flag))
        else {
            return Err(CompileError::new(
                Default::default(),
                format!("unknown argument `{flag}`"),
            ));
        };
        let Some(value) = args.get(i + 1) else {
            return Err(CompileError::new(
                Default::default(),
                format!("missing value for `{flag}`"),
            ));
        };
        let value: i64 = value.parse().map_err(|_| {
            CompileError::new(Default::default(), format!("bad value for `{flag}`: {value}"))
        })?;
        env.bind(&p.name, value);
        i += 2;
    }
    // Re-check asserts now that parameters are known.
    for a in &prog.asserts {
        if !eval_cond(&a.cond, &env)
            .map_err(|e| CompileError::new(Default::default(), e.to_string()))?
        {
            return Err(CompileError::new(
                Default::default(),
                format!("assertion failed: {}", a.message),
            ));
        }
    }
    Ok(env)
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROG: &str = r#"
        reps is "Number of repetitions" and comes from "--reps" or "-r" with default 1000.
        msgsize is "Message size" and comes from "--msgsize" or "-m" with default 1024.
        Assert that "need two tasks" with num_tasks >= 2.
        For reps repetitions task 0 sends a msgsize byte message to task 1.
    "#;

    #[test]
    fn bind_defaults() {
        let prog = compile(PROG).unwrap();
        let env = bind_args(&prog, 4, &[]).unwrap();
        assert_eq!(env.get("reps"), Some(1000));
        assert_eq!(env.get("msgsize"), Some(1024));
        assert_eq!(env.get("num_tasks"), Some(4));
    }

    #[test]
    fn bind_overrides_long_and_short() {
        let prog = compile(PROG).unwrap();
        let env = bind_args(&prog, 4, &["--reps", "5", "-m", "64"]).unwrap();
        assert_eq!(env.get("reps"), Some(5));
        assert_eq!(env.get("msgsize"), Some(64));
    }

    #[test]
    fn bind_rejects_unknown_flag() {
        let prog = compile(PROG).unwrap();
        assert!(bind_args(&prog, 4, &["--nope", "1"]).is_err());
        assert!(bind_args(&prog, 4, &["--reps"]).is_err());
        assert!(bind_args(&prog, 4, &["--reps", "xyz"]).is_err());
    }

    #[test]
    fn asserts_enforced_at_bind_time() {
        let prog = compile(PROG).unwrap();
        let err = bind_args(&prog, 1, &[]).unwrap_err();
        assert!(err.message.contains("need two tasks"));
    }
}
