//! Property tests: the front end must never panic, whatever bytes it is
//! fed. Parse errors are fine — `panic!`/index-out-of-bounds are not.
//!
//! The proptest shim only exposes integer-range strategies, so arbitrary
//! inputs are synthesized from a seeded splitmix64 stream inside the test
//! body: `seed` and `len` are the proptest-driven inputs, the byte string
//! is a pure function of them (deterministic, so failures minimize).

use proptest::prelude::*;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Arbitrary bytes — exercises the lexer's error paths (stray control
/// characters, unterminated strings, non-UTF-8-looking runs are impossible
/// here since we build a `String`, so map into the full printable+ws set).
fn arbitrary_text(seed: u64, len: usize) -> String {
    let mut state = seed;
    (0..len)
        .map(|_| {
            let r = splitmix64(&mut state);
            // Bias toward ASCII the lexer actually handles, but keep some
            // arbitrary chars to hit the "unexpected character" path.
            char::from_u32((r % 0x250) as u32).unwrap_or(' ')
        })
        .collect()
}

/// Token-soup inputs: random sequences of real keywords, literals, and
/// punctuation. These get much deeper into the parser than raw bytes do.
fn token_soup(seed: u64, len: usize) -> String {
    const WORDS: &[&str] = &[
        "all",
        "tasks",
        "task",
        "sends",
        "send",
        "a",
        "byte",
        "message",
        "messages",
        "to",
        "synchronize",
        "for",
        "repetitions",
        "each",
        "in",
        "reduce",
        "multicasts",
        "other",
        "then",
        "if",
        "otherwise",
        "let",
        "be",
        "while",
        "such",
        "that",
        "is",
        "even",
        "odd",
        "computes",
        "sleeps",
        "awaits",
        "completion",
        "logs",
        "resets",
        "its",
        "counters",
        "asynchronously",
        "0",
        "1",
        "42",
        "num_tasks",
        "t",
        "i",
        "(",
        ")",
        "{",
        "}",
        "[",
        "]",
        ",",
        ".",
        "...",
        "+",
        "-",
        "*",
        "/",
        "**",
        "mod",
        "=",
        "<>",
        "<",
        ">",
        "<=",
        ">=",
        "\"str\"",
        "with",
        "default",
        "comes",
        "from",
        "and",
        "or",
        "Assert",
        "Require",
        "language",
        "version",
    ];
    let mut state = seed;
    let mut out = String::new();
    for _ in 0..len {
        let r = splitmix64(&mut state) as usize;
        out.push_str(WORDS[r % WORDS.len()]);
        out.push(' ');
    }
    out.push('.');
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lexer_never_panics(seed in 0u64..u64::MAX, len in 0usize..256) {
        let src = arbitrary_text(seed, len);
        let _ = conceptual::lexer::lex(&src);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_text(seed in 0u64..u64::MAX, len in 0usize..256) {
        let src = arbitrary_text(seed, len);
        let _ = conceptual::parser::parse(&src);
    }

    #[test]
    fn compiler_never_panics_on_token_soup(seed in 0u64..u64::MAX, len in 0usize..64) {
        let src = token_soup(seed, len);
        // compile = parse + sema; both must fail gracefully or succeed.
        let _ = conceptual::compile(&src);
    }
}
