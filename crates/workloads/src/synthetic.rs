//! Synthetic background traffic (CODES synthetic-workload style).

use conceptual::Expr;
use union_core::{Builder, Skeleton};

/// **Uniform Random (UR)** — every rank sends a fixed-size message to a
/// uniformly random other rank at a fixed interval. Paper config
/// (Workload1): 4,096 ranks, 10 KiB every 1 ms. One-sided: deliveries
/// count toward latency but need no matching receive.
///
/// Parameters: `--iters`, `--bytes`, `--interval_us`.
pub fn uniform_random() -> Skeleton {
    Builder::new("ur")
        .param("iters", 10)
        .param("bytes", 10 * 1024)
        .param("interval_us", 1000)
        .loop_n(Expr::var("iters"), |b| {
            b.send_random(Expr::var("bytes"), true)
                .compute_ns(Expr::var("interval_us").mul(Expr::lit(1000)))
        })
        .build()
        .expect("ur skeleton")
}

#[cfg(test)]
mod tests {
    use super::*;
    use union_core::{MpiOp, RankVm, SkeletonInstance};

    #[test]
    fn ur_sends_one_message_per_interval() {
        let skel = uniform_random();
        let inst = SkeletonInstance::new(&skel, 16, &["--iters", "7"]).unwrap();
        let ops: Vec<MpiOp> = RankVm::new(inst, 3, 42).collect();
        let sends = ops.iter().filter(|o| matches!(o, MpiOp::SyntheticSend { .. })).count();
        let computes = ops.iter().filter(|o| matches!(o, MpiOp::Compute { .. })).count();
        assert_eq!(sends, 7);
        assert_eq!(computes, 7);
    }

    #[test]
    fn ur_destinations_spread() {
        let skel = uniform_random();
        let inst = SkeletonInstance::new(&skel, 64, &["--iters", "100"]).unwrap();
        let mut seen = std::collections::HashSet::new();
        for op in RankVm::new(inst, 0, 1) {
            if let MpiOp::SyntheticSend { dst, .. } = op {
                seen.insert(dst);
            }
        }
        assert!(seen.len() > 30, "only {} distinct destinations", seen.len());
    }
}
