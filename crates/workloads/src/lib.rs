//! # workloads
//!
//! The paper's applications (§IV-B, Table III):
//!
//! | App | Kind | Paper config |
//! |-----|------|--------------|
//! | Cosmoflow | ML, coNCePTuaL via Union | 1,024 ranks, 28.15 MiB Allreduce / 129 ms |
//! | AlexNet   | ML, coNCePTuaL via Union | 512 ranks, Horovod trace shape (Tables IV/V) |
//! | NN        | synthetic 3-D halo        | 512 ranks, 128 KiB nonblocking |
//! | MILC      | SWM                       | 4,096 ranks, 486 KiB 4-D halo |
//! | Nekbone   | SWM                       | 2,197 ranks, CG with 8 B collectives |
//! | LAMMPS    | SWM                       | 2,048 ranks, blocking send/nonblocking recv |
//! | UR        | synthetic                 | 4,096 ranks, 10 KiB / 1 ms |
//!
//! Workload mixes: **W1** = {Cosmoflow, AlexNet, LAMMPS, NN, UR};
//! **W2** = {Cosmoflow, AlexNet, LAMMPS, MILC, NN};
//! **W3** = {Cosmoflow, AlexNet, Nekbone, MILC, NN}.
//!
//! Two profiles: `Paper` (full rank counts and message sizes — what the
//! authors simulated for ~5 h on 144 cores) and `Quick` (×16 fewer ranks,
//! scaled payloads — the same code paths at laptop scale). EXPERIMENTS.md
//! records which profile produced each number.

pub mod ml;
pub mod swm;
pub mod synthetic;

use union_core::{RankVm, Skeleton, SkeletonInstance, SkeletonRegistry};

pub use ml::{alexnet, alexnet_reference, cosmoflow, ALEXNET_NCPTL, COSMOFLOW_NCPTL};
pub use swm::{lammps, milc, milc_with_dim, nearest_neighbor, nekbone};
pub use synthetic::uniform_random;

/// The seven applications.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AppKind {
    Cosmoflow,
    Alexnet,
    NearestNeighbor,
    Milc,
    Nekbone,
    Lammps,
    UniformRandom,
}

impl AppKind {
    /// Every bundled application, in registry order.
    pub const ALL: [AppKind; 7] = [
        AppKind::Cosmoflow,
        AppKind::Alexnet,
        AppKind::NearestNeighbor,
        AppKind::Milc,
        AppKind::Nekbone,
        AppKind::Lammps,
        AppKind::UniformRandom,
    ];

    pub fn label(self) -> &'static str {
        match self {
            AppKind::Cosmoflow => "Cosmoflow",
            AppKind::Alexnet => "AlexNet",
            AppKind::NearestNeighbor => "NN",
            AppKind::Milc => "MILC",
            AppKind::Nekbone => "Nekbone",
            AppKind::Lammps => "LAMMPS",
            AppKind::UniformRandom => "UR",
        }
    }
}

/// Experiment scale profile.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Profile {
    /// Paper-scale: Table II systems and §IV-B rank counts / sizes.
    Paper,
    /// ×16 fewer ranks and scaled payloads for fast runs.
    Quick,
}

/// A ready-to-place job: compiled skeleton + rank count + arguments.
pub struct AppConfig {
    pub kind: AppKind,
    pub skeleton: Skeleton,
    pub ranks: u32,
    pub args: Vec<String>,
}

impl AppConfig {
    pub fn name(&self) -> &'static str {
        self.kind.label()
    }

    /// Instantiate rank VMs for simulation.
    pub fn vms(&self, seed: u64) -> Result<Vec<RankVm>, String> {
        let args: Vec<&str> = self.args.iter().map(|s| s.as_str()).collect();
        let inst = SkeletonInstance::new(&self.skeleton, self.ranks, &args)?;
        Ok((0..self.ranks).map(|r| RankVm::new(inst.clone(), r, seed)).collect())
    }
}

fn arg(args: &mut Vec<String>, flag: &str, v: i64) {
    args.push(format!("--{flag}"));
    args.push(v.to_string());
}

/// Build one application at the given profile. `iters` bounds the number
/// of iterations/updates; `scale` divides payload sizes and compute
/// intervals (≥ 1).
pub fn app(kind: AppKind, profile: Profile, iters: i64, scale: i64) -> AppConfig {
    let scale = scale.max(1);
    let sz = |bytes: i64| (bytes / scale).max(4);
    let us = |micros: i64| (micros / scale).max(1);
    let mut args = Vec::new();
    let (skeleton, ranks) = match kind {
        AppKind::Cosmoflow => {
            arg(&mut args, "iters", iters);
            arg(&mut args, "msgsize", sz(29_517_414));
            arg(&mut args, "interval_us", us(129_000));
            (cosmoflow(), pick(profile, 1024, 128))
        }
        AppKind::Alexnet => {
            arg(&mut args, "updates", iters);
            arg(&mut args, "layer_bytes", sz(22_401_396));
            arg(&mut args, "init_bytes", sz(22_454_545));
            arg(&mut args, "interval_us", us(120_000));
            (alexnet(), pick(profile, 512, 64))
        }
        AppKind::NearestNeighbor => {
            arg(&mut args, "iters", iters);
            arg(&mut args, "bytes", sz(128 * 1024));
            arg(&mut args, "compute_us", us(1000));
            if profile == Profile::Quick {
                for (f, v) in [("nx", 4), ("ny", 4), ("nz", 4)] {
                    arg(&mut args, f, v);
                }
            }
            (nearest_neighbor(), pick(profile, 512, 64))
        }
        AppKind::Milc => {
            arg(&mut args, "iters", iters);
            arg(&mut args, "bytes", sz(486 * 1024));
            arg(&mut args, "compute_us", us(2000));
            match profile {
                Profile::Paper => (milc_with_dim(8), 4096),
                Profile::Quick => (milc_with_dim(3), 81),
            }
        }
        AppKind::Nekbone => {
            arg(&mut args, "iters", iters);
            arg(&mut args, "bytes", sz(165 * 1024));
            arg(&mut args, "compute_us", us(1500));
            if profile == Profile::Quick {
                for (f, v) in [("nx", 3), ("ny", 3), ("nz", 3)] {
                    arg(&mut args, f, v);
                }
            }
            (nekbone(), pick(profile, 2197, 27))
        }
        AppKind::Lammps => {
            arg(&mut args, "iters", iters);
            arg(&mut args, "bytes", sz(135 * 1024));
            arg(&mut args, "compute_us", us(3000));
            if profile == Profile::Quick {
                for (f, v) in [("nx", 4), ("ny", 4), ("nz", 4)] {
                    arg(&mut args, f, v);
                }
            }
            (lammps(), pick(profile, 2048, 64))
        }
        AppKind::UniformRandom => {
            arg(&mut args, "iters", iters);
            arg(&mut args, "bytes", sz(10 * 1024));
            arg(&mut args, "interval_us", us(1000));
            (uniform_random(), pick(profile, 4096, 64))
        }
    };
    AppConfig { kind, skeleton, ranks, args }
}

fn pick(profile: Profile, paper: u32, quick: u32) -> u32 {
    match profile {
        Profile::Paper => paper,
        Profile::Quick => quick,
    }
}

/// Table III hybrid workload compositions.
pub fn workload(which: u8, profile: Profile, iters: i64, scale: i64) -> Vec<AppConfig> {
    let kinds: &[AppKind] = match which {
        1 => &[
            AppKind::Cosmoflow,
            AppKind::Alexnet,
            AppKind::Lammps,
            AppKind::NearestNeighbor,
            AppKind::UniformRandom,
        ],
        2 => &[
            AppKind::Cosmoflow,
            AppKind::Alexnet,
            AppKind::Lammps,
            AppKind::Milc,
            AppKind::NearestNeighbor,
        ],
        3 => &[
            AppKind::Cosmoflow,
            AppKind::Alexnet,
            AppKind::Nekbone,
            AppKind::Milc,
            AppKind::NearestNeighbor,
        ],
        other => panic!("no workload {other} (paper defines 1..=3)"),
    };
    kinds.iter().map(|&k| app(k, profile, iters, scale)).collect()
}

/// A registry with every paper skeleton, mirroring Union's global
/// `union_skeleton_model` list.
pub fn registry() -> SkeletonRegistry {
    let mut reg = SkeletonRegistry::new();
    reg.register(cosmoflow());
    reg.register(alexnet());
    reg.register(nearest_neighbor());
    reg.register(milc());
    reg.register(nekbone());
    reg.register(lammps());
    reg.register(uniform_random());
    reg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_all_seven() {
        let reg = registry();
        assert_eq!(
            reg.names(),
            vec!["alexnet", "cosmoflow", "lammps", "milc", "nekbone", "nn", "ur"]
        );
    }

    #[test]
    fn workloads_match_table3() {
        let names = |w: u8| -> Vec<&str> {
            workload(w, Profile::Quick, 2, 16).iter().map(|a| a.name()).collect()
        };
        assert_eq!(names(1), vec!["Cosmoflow", "AlexNet", "LAMMPS", "NN", "UR"]);
        assert_eq!(names(2), vec!["Cosmoflow", "AlexNet", "LAMMPS", "MILC", "NN"]);
        assert_eq!(names(3), vec!["Cosmoflow", "AlexNet", "Nekbone", "MILC", "NN"]);
    }

    #[test]
    fn quick_profile_instantiates() {
        for cfg in workload(3, Profile::Quick, 2, 16) {
            let vms = cfg.vms(1).unwrap_or_else(|e| panic!("{}: {e}", cfg.name()));
            assert_eq!(vms.len() as u32, cfg.ranks);
        }
    }

    #[test]
    fn paper_profile_rank_counts() {
        let w2 = workload(2, Profile::Paper, 2, 1);
        let ranks: Vec<u32> = w2.iter().map(|a| a.ranks).collect();
        assert_eq!(ranks, vec![1024, 512, 2048, 4096, 512]);
        let total: u32 = ranks.iter().sum();
        assert!(total <= 8448, "must fit the Table II systems");
    }

    #[test]
    fn scale_reduces_sizes() {
        let a = app(AppKind::Cosmoflow, Profile::Quick, 2, 16);
        let idx = a.args.iter().position(|s| s == "--msgsize").unwrap();
        let v: i64 = a.args[idx + 1].parse().unwrap();
        assert_eq!(v, 29_517_414 / 16);
    }
}
