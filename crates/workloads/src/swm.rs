//! SWM-style skeletons, built directly against the Union IR — the paper's
//! hand-written scalable workload models (MILC, Nekbone, LAMMPS) plus the
//! synthetic nearest-neighbor kernel (§IV-B).

use conceptual::parser::parse_expr;
use conceptual::Expr;
use union_core::{Builder, Skeleton};

/// Expression for the rank variable bound by builder message leaves.
fn t() -> Expr {
    Expr::var("t")
}

/// Torus neighbor of `t` along dimension `dim` (extent/stride given),
/// displaced by `delta` (±1): `t − c·s + ((c + delta) mod d)·s` where
/// `c = (t / s) mod d`.
fn torus_neighbor(dims: &[i64], dim: usize, delta: i64) -> Expr {
    let stride: i64 = dims[..dim].iter().product();
    let d = dims[dim];
    let c = t().rem(Expr::lit(stride * d));
    // c_full = (t / stride) mod d
    let coord = Expr::Bin(conceptual::BinOp::Div, Box::new(t()), Box::new(Expr::lit(stride)))
        .rem(Expr::lit(d));
    let _ = c;
    let wrapped = coord.clone().add(Expr::lit(delta)).rem(Expr::lit(d));
    t().sub(coord.mul(Expr::lit(stride))).add(wrapped.mul(Expr::lit(stride)))
}

/// **Nearest Neighbor (NN)** — the synthetic 3-D halo kernel standing in
/// for AMG/HACC-style communication. Paper config: 512 ranks (8×8×8),
/// 128 KiB nonblocking send/receive to each face neighbor per iteration.
///
/// Parameters: `--iters`, `--bytes`, `--nx/--ny/--nz` (grid; non-periodic
/// — edge ranks have fewer neighbors), `--compute_us`.
pub fn nearest_neighbor() -> Skeleton {
    let mut b = Builder::new("nn")
        .param("iters", 10)
        .param("bytes", 128 * 1024)
        .param("nx", 8)
        .param("ny", 8)
        .param("nz", 8)
        .param("compute_us", 1000);
    let neighbor = |dx: i64, dy: i64, dz: i64| {
        parse_expr(&format!("MESH_NEIGHBOR(nx, ny, nz, t, {dx}, {dy}, {dz})")).unwrap()
    };
    b = b.loop_n(Expr::var("iters"), |mut b| {
        for (dx, dy, dz) in [(1, 0, 0), (-1, 0, 0), (0, 1, 0), (0, -1, 0), (0, 0, 1), (0, 0, -1)] {
            b = b.send_nb(neighbor(dx, dy, dz), Expr::var("bytes"));
        }
        b.await_all().compute_ns(Expr::var("compute_us").mul(Expr::lit(1000)))
    });
    b.build().expect("nn skeleton")
}

/// **MILC** — 4-D SU(3) lattice QCD halo exchange. Paper config: 4,096
/// ranks (8×8×8×8), each issuing nonblocking 486 KiB sends/receives to its
/// 8 lattice neighbors per iteration (periodic boundaries).
///
/// Parameters: `--iters`, `--bytes`, `--dim` (extent per dimension,
/// ranks = dim⁴), `--compute_us`.
pub fn milc() -> Skeleton {
    // The 4-D torus neighbor needs the extent at IR-build time, so `dim`
    // is fixed per skeleton build; `milc_with_dims` lets tests shrink it.
    milc_with_dim(8)
}

/// MILC over a `dim⁴` lattice.
pub fn milc_with_dim(dim: i64) -> Skeleton {
    let dims = [dim, dim, dim, dim];
    let mut b = Builder::new("milc")
        .param("iters", 10)
        .param("bytes", 486 * 1024)
        .param("compute_us", 2000);
    b = b.loop_n(Expr::var("iters"), |mut b| {
        for d in 0..4 {
            for delta in [1i64, -1] {
                b = b.send_nb(torus_neighbor(&dims, d, delta), Expr::var("bytes"));
            }
        }
        b.await_all().compute_ns(Expr::var("compute_us").mul(Expr::lit(1000)))
    });
    b.build().expect("milc skeleton")
}

/// **Nekbone** — conjugate-gradient Poisson solve from Nek5000. Paper
/// config: 2,197 ranks (13×13×13); many small 8-byte collectives (the CG
/// dot products) plus nonblocking halo exchanges from 8 B up to 165 KiB.
///
/// Parameters: `--iters` (CG iterations), `--bytes` (halo message size),
/// `--nx/--ny/--nz`, `--compute_us`.
pub fn nekbone() -> Skeleton {
    let mut b = Builder::new("nekbone")
        .param("iters", 10)
        .param("bytes", 165 * 1024)
        .param("nx", 13)
        .param("ny", 13)
        .param("nz", 13)
        .param("compute_us", 1500);
    let neighbor = |dx: i64, dy: i64, dz: i64| {
        parse_expr(&format!("MESH_NEIGHBOR(nx, ny, nz, t, {dx}, {dy}, {dz})")).unwrap()
    };
    b = b.loop_n(Expr::var("iters"), |mut b| {
        // CG: dot product, halo (gather/scatter), preconditioner dot.
        b = b.allreduce(Expr::lit(8));
        for (dx, dy, dz) in [(1, 0, 0), (-1, 0, 0), (0, 1, 0), (0, -1, 0), (0, 0, 1), (0, 0, -1)] {
            b = b.send_nb(neighbor(dx, dy, dz), Expr::var("bytes"));
        }
        b.await_all()
            .compute_ns(Expr::var("compute_us").mul(Expr::lit(1000)))
            .allreduce(Expr::lit(8))
    });
    b.build().expect("nekbone skeleton")
}

/// **LAMMPS** — classical molecular dynamics. Paper config: 2,048 ranks;
/// small-message Allreduces (thermodynamics) plus blocking sends with
/// nonblocking receives from 4 B up to 135 KiB (the ghost-atom exchange).
///
/// Parameters: `--iters` (timesteps), `--bytes` (ghost exchange size),
/// `--nx/--ny/--nz`, `--compute_us`.
pub fn lammps() -> Skeleton {
    let mut b = Builder::new("lammps")
        .param("iters", 10)
        .param("bytes", 135 * 1024)
        .param("nx", 16)
        .param("ny", 16)
        .param("nz", 8)
        .param("compute_us", 3000);
    let neighbor = |dx: i64, dy: i64, dz: i64| {
        parse_expr(&format!("TORUS_NEIGHBOR(nx, ny, nz, t, {dx}, {dy}, {dz})")).unwrap()
    };
    b = b.loop_n(Expr::var("iters"), |mut b| {
        // Ghost-atom exchange: blocking send + nonblocking receive per
        // dimension (LAMMPS' comm style); small 4-byte border counts
        // precede the big payload.
        for (dx, dy, dz) in [(1, 0, 0), (0, 1, 0), (0, 0, 1)] {
            b = b
                .send_irecv(neighbor(dx, dy, dz), Expr::lit(4))
                .send_irecv(neighbor(dx, dy, dz), Expr::var("bytes"))
                .send_irecv(neighbor(-dx, -dy, -dz), Expr::var("bytes"));
        }
        b.compute_ns(Expr::var("compute_us").mul(Expr::lit(1000))).allreduce(Expr::lit(8))
    });
    b.build().expect("lammps skeleton")
}

#[cfg(test)]
mod tests {
    use super::*;
    use union_core::{MpiOp, RankVm, SkeletonInstance, Validation};

    #[test]
    fn torus_neighbor_expression_wraps() {
        let e = torus_neighbor(&[4, 4, 4, 4], 0, 1);
        let mut env = conceptual::Env::with_num_tasks(256);
        env.bind("t", 3); // x = 3 -> wraps to x = 0
        assert_eq!(conceptual::eval(&e, &env).unwrap(), 0);
        env.unbind("t");
        env.bind("t", 0);
        assert_eq!(conceptual::eval(&e, &env).unwrap(), 1);
        // Dimension 3 (stride 64).
        let e = torus_neighbor(&[4, 4, 4, 4], 3, -1);
        assert_eq!(conceptual::eval(&e, &env).unwrap(), 192);
    }

    #[test]
    fn nn_edge_ranks_have_fewer_neighbors() {
        let skel = nearest_neighbor();
        let inst = SkeletonInstance::new(
            &skel,
            27,
            &["--nx", "3", "--ny", "3", "--nz", "3", "--iters", "1"],
        )
        .unwrap();
        let corner: Vec<MpiOp> = RankVm::new(inst.clone(), 0, 1).collect();
        let center: Vec<MpiOp> = RankVm::new(inst.clone(), 13, 1).collect();
        let sends = |v: &[MpiOp]| v.iter().filter(|o| matches!(o, MpiOp::Isend { .. })).count();
        assert_eq!(sends(&corner), 3);
        assert_eq!(sends(&center), 6);
    }

    #[test]
    fn milc_every_rank_has_eight_neighbors() {
        let skel = milc_with_dim(3);
        let inst = SkeletonInstance::new(&skel, 81, &["--iters", "1"]).unwrap();
        for r in [0u32, 40, 80] {
            let ops: Vec<MpiOp> = RankVm::new(inst.clone(), r, 1).collect();
            let sends = ops.iter().filter(|o| matches!(o, MpiOp::Isend { .. })).count();
            let recvs = ops.iter().filter(|o| matches!(o, MpiOp::Irecv { .. })).count();
            // 3-extent torus: ±1 in the same dim can coincide, but the
            // count of messages is still 8 (two per dimension).
            assert_eq!(sends, 8, "rank {r}");
            assert_eq!(recvs, 8, "rank {r}");
        }
    }

    #[test]
    fn nekbone_is_collective_heavy() {
        let skel = nekbone();
        let inst = SkeletonInstance::new(
            &skel,
            27,
            &["--nx", "3", "--ny", "3", "--nz", "3", "--iters", "5"],
        )
        .unwrap();
        let v = Validation::collect(27, |r| RankVm::new(inst.clone(), r, 1));
        assert_eq!(v.event_counts["MPI_Allreduce"], 10, "2 per CG iteration");
    }

    #[test]
    fn lammps_uses_blocking_send_nonblocking_recv() {
        let skel = lammps();
        let inst = SkeletonInstance::new(
            &skel,
            8,
            &["--nx", "2", "--ny", "2", "--nz", "2", "--iters", "1"],
        )
        .unwrap();
        let ops: Vec<MpiOp> = RankVm::new(inst.clone(), 0, 1).collect();
        assert!(ops.iter().any(|o| matches!(o, MpiOp::Send { .. })));
        assert!(ops.iter().any(|o| matches!(o, MpiOp::Irecv { .. })));
        assert!(!ops.iter().any(|o| matches!(o, MpiOp::Recv { .. })));
    }

    #[test]
    fn paper_scale_instances_resolve() {
        // Full-size instantiation is cheap (static resolution is O(ranks ×
        // neighbors)); make sure nothing panics at paper scale.
        assert!(SkeletonInstance::new(&nearest_neighbor(), 512, &[]).is_ok());
        assert!(SkeletonInstance::new(&milc(), 4096, &[]).is_ok());
        assert!(SkeletonInstance::new(&nekbone(), 2197, &[]).is_ok());
        assert!(SkeletonInstance::new(&lammps(), 2048, &[]).is_ok());
    }
}
