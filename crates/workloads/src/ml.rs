//! ML skeleton applications, written in the coNCePTuaL DSL and compiled
//! through Union — exactly the paper's workflow for Cosmoflow and AlexNet
//! (§IV-B).

use union_core::{translate_source, Skeleton};

/// Cosmoflow: distributed deep learning dominated by periodic Allreduce.
/// Configured per the paper as a 1,024-rank job issuing 28.15 MiB
/// Allreduce messages every 129 ms.
///
/// Parameters: `--iters` (training steps), `--msgsize` (gradient bytes),
/// `--interval_us` (compute between steps, µs).
pub const COSMOFLOW_NCPTL: &str = r#"
# Cosmoflow skeleton: gradient aggregation at a fixed cadence.
Require language version "1.5".

iters is "Number of training steps" and comes from "--iters" with default 20.
msgsize is "Gradient bytes per Allreduce" and comes from "--msgsize" with default 29517414.
interval_us is "Compute interval between steps (microseconds)" and comes from "--interval_us" with default 129000.

Assert that "cosmoflow needs at least two workers" with num_tasks >= 2.

For iters repetitions {
  all tasks compute for interval_us microseconds then
  all tasks reduce a msgsize byte message to all tasks
}.
"#;

/// AlexNet trained with Horovod on 512 nodes, modeled from its trace
/// (paper Tables IV/V): an initial parameter broadcast (11 tensors,
/// ≈2.47e8 bytes total), then per update a burst of small 4 B/25 B
/// negotiation broadcasts followed by 11 gradient Allreduces totaling
/// ~235 MiB, separated by a compute interval.
///
/// Counts per the trace: 1969 Bcasts = 11 startup + 178 updates × 11;
/// 1958 Allreduces = 178 × 11.
///
/// Parameters: `--updates`, `--layer_bytes` (gradient tensor bytes),
/// `--init_bytes` (startup broadcast tensor bytes), `--interval_us`.
pub const ALEXNET_NCPTL: &str = r#"
# AlexNet/Horovod skeleton modeled from a 512-node trace.
Require language version "1.5".

updates is "Gradient updates" and comes from "--updates" with default 178.
layer_bytes is "Bytes per gradient Allreduce" and comes from "--layer_bytes" with default 22401396.
init_bytes is "Bytes per startup parameter Bcast" and comes from "--init_bytes" with default 22454545.
interval_us is "Compute interval per update (microseconds)" and comes from "--interval_us" with default 120000.

Assert that "alexnet needs at least two workers" with num_tasks >= 2.

# Horovod broadcasts the initial model parameters, tensor by tensor.
for each l in {1, ..., 11}
  task 0 multicasts a init_bytes byte message to all other tasks.

For updates repetitions {
  all tasks compute for interval_us microseconds then
  # Negotiation: one 25-byte and ten 4-byte control broadcasts per update.
  task 0 multicasts a 25 byte message to all other tasks then
  for each l in {1, ..., 10}
    task 0 multicasts a 4 byte message to all other tasks
  then
  # Gradient aggregation: 11 fused tensors, ~235 MiB per update in total.
  for each l in {1, ..., 11}
    all tasks reduce a layer_bytes byte message to all tasks
}.
"#;

/// Compile the Cosmoflow skeleton.
pub fn cosmoflow() -> Skeleton {
    translate_source(COSMOFLOW_NCPTL, "cosmoflow").expect("cosmoflow skeleton")
}

/// Compile the AlexNet skeleton.
pub fn alexnet() -> Skeleton {
    translate_source(ALEXNET_NCPTL, "alexnet").expect("alexnet skeleton")
}

/// Paper-default rank counts.
pub const COSMOFLOW_RANKS: u32 = 1024;
pub const ALEXNET_RANKS: u32 = 512;

/// Independently written AlexNet reference generator — the "application"
/// side of the paper's §V validation. It produces each rank's MPI op
/// stream directly in Rust, with no shared code with the DSL/translator
/// path, so comparing the two validates the whole Union pipeline.
pub mod alexnet_reference {
    use union_core::MpiOp;

    pub const UPDATES: u64 = 178;
    pub const TENSORS: u64 = 11;
    pub const LAYER_BYTES: u64 = 22_401_396;
    pub const INIT_BYTES: u64 = 22_454_545;
    pub const INTERVAL_NS: u64 = 120_000_000;

    /// The op stream of `rank` in an `n`-rank training run.
    pub fn ops(rank: u32, n: u32) -> Vec<MpiOp> {
        assert!(n >= 2);
        let _ = rank;
        let mut v = Vec::new();
        v.push(MpiOp::Init);
        for _ in 0..TENSORS {
            v.push(MpiOp::Bcast { root: 0, bytes: INIT_BYTES });
        }
        for _ in 0..UPDATES {
            v.push(MpiOp::Compute { ns: INTERVAL_NS });
            v.push(MpiOp::Bcast { root: 0, bytes: 25 });
            for _ in 0..10 {
                v.push(MpiOp::Bcast { root: 0, bytes: 4 });
            }
            for _ in 0..TENSORS {
                v.push(MpiOp::Allreduce { bytes: LAYER_BYTES });
            }
        }
        v.push(MpiOp::Finalize);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use union_core::{RankVm, SkeletonInstance, Validation};

    #[test]
    fn cosmoflow_compiles_and_runs() {
        let skel = cosmoflow();
        let inst = SkeletonInstance::new(&skel, 8, &["--iters", "3"]).unwrap();
        let v = Validation::collect(8, |r| RankVm::new(inst.clone(), r, 1));
        assert_eq!(v.event_counts["MPI_Allreduce"], 3);
        assert_eq!(v.event_counts["MPI_Init"], 8);
    }

    #[test]
    fn alexnet_event_counts_match_table4() {
        let skel = alexnet();
        let inst = SkeletonInstance::new(&skel, ALEXNET_RANKS, &[]).unwrap();
        let v = Validation::collect(ALEXNET_RANKS, |r| RankVm::new(inst.clone(), r, 1));
        assert_eq!(v.event_counts["MPI_Init"], 512);
        assert_eq!(v.event_counts["MPI_Bcast"], 1969);
        assert_eq!(v.event_counts["MPI_Allreduce"], 1958);
        assert_eq!(v.event_counts["MPI_Finalize"], 512);
    }

    #[test]
    fn alexnet_skeleton_matches_reference_exactly() {
        // Small rank count so the test is quick; the harness re-runs this
        // at 512 ranks for the paper tables.
        let n = 16;
        let skel = alexnet();
        let inst = SkeletonInstance::new(&skel, n, &[]).unwrap();
        let skel_v = Validation::collect(n, |r| RankVm::new(inst.clone(), r, 1));
        let app_v = Validation::collect(n, |r| alexnet_reference::ops(r, n).into_iter());
        assert_eq!(skel_v.event_counts, app_v.event_counts);
        assert_eq!(skel_v.bytes_per_rank, app_v.bytes_per_rank);
        assert_eq!(skel_v.control_flow, app_v.control_flow);
        assert!(skel_v.matches(&app_v));
    }

    #[test]
    fn alexnet_table5_shape() {
        // Rank 0 transmits exactly the broadcast total less than the rest.
        let n = 32;
        let skel = alexnet();
        let inst = SkeletonInstance::new(&skel, n, &[]).unwrap();
        let v = Validation::collect(n, |r| RankVm::new(inst.clone(), r, 1));
        let bcast_total: u64 =
            11 * alexnet_reference::INIT_BYTES + alexnet_reference::UPDATES * (25 + 10 * 4);
        assert_eq!(v.bytes_per_rank[1] - v.bytes_per_rank[0], bcast_total);
        assert!(v.bytes_per_rank[1..].iter().all(|&b| b == v.bytes_per_rank[1]));
        // Startup broadcast volume ≈ 2.47e8 (Table V's per-rank delta).
        assert!((2.46e8..2.48e8).contains(&(bcast_total as f64)));
    }
}
