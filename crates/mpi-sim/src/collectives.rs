//! Collective algorithms, expanded into point-to-point schedules.
//!
//! When a rank's skeleton issues a collective, the MPI layer expands it
//! into a per-rank sequence of `Isend`/`Recv` operations with internal
//! tags and prepends it to the rank's op queue. Blocking semantics,
//! eager/rendezvous transfer, and latency metrics all come from the same
//! point-to-point machinery the application uses — exactly how MPICH
//! layers its collectives.
//!
//! Algorithms (job-local ranks, any `n`):
//!
//! * **Barrier** — dissemination: ⌈log₂ n⌉ rounds of 8-byte exchanges;
//! * **Bcast** — binomial tree over root-relabeled ranks;
//! * **Reduce** — reverse binomial tree;
//! * **Allreduce** — recursive doubling for small payloads, Rabenseifner
//!   (recursive-halving reduce-scatter + recursive-doubling allgather) for
//!   large ones; non-power-of-two sizes use the standard MPICH fold:
//!   the first `2·(n − p2)` ranks pair up so `p2` ranks run the core
//!   algorithm, then results fan back out.

use union_core::MpiOp;

/// Collective messages set the top tag bit; `seq` disambiguates
/// back-to-back collectives and `round` the phases within one.
pub const COLL_FLAG: u32 = 0x8000_0000;

/// The internal tag encodes only the low 15 bits of the collective
/// sequence number, so collective `seq` and `seq + 0x8000` reuse the same
/// tags. [`epoch_fence`] is interposed at every wrap of this mask so two
/// collectives with equal masked sequence numbers can never be in flight
/// at once.
pub const SEQ_MASK: u32 = 0x7FFF;

/// Round-number namespace reserved for the epoch fence. Algorithm rounds
/// stay far below it: ⌈log₂ n⌉ rounds for barrier/recursive doubling
/// (< 32), and `0x100`/`0x101` for the non-power-of-two fold.
const FENCE_ROUND: u32 = 0x8000;

#[inline]
fn tag(seq: u32, round: u32) -> u32 {
    COLL_FLAG | ((seq & SEQ_MASK) << 16) | (round & 0xFFFF)
}

/// Control payload for barrier/fold messages.
const CTRL_BYTES: u64 = 8;

/// Below this payload, allreduce uses recursive doubling (full payload per
/// round); at or above, Rabenseifner.
pub const RABENSEIFNER_THRESHOLD: u64 = 64 * 1024;

/// Expand one collective into this rank's op schedule.
pub fn expand(op: &MpiOp, rank: u32, n: u32, seq: u32) -> Vec<MpiOp> {
    match *op {
        MpiOp::Barrier => barrier(rank, n, seq),
        MpiOp::Bcast { root, bytes } => bcast(rank, n, root, bytes, seq),
        MpiOp::Reduce { root, bytes } => reduce(rank, n, root, bytes, seq),
        MpiOp::Allreduce { bytes } => {
            if bytes < RABENSEIFNER_THRESHOLD {
                allreduce_rd(rank, n, bytes, seq)
            } else {
                allreduce_rabenseifner(rank, n, bytes, seq)
            }
        }
        _ => panic!("not a collective: {op:?}"),
    }
}

/// Tag-epoch fence: a dissemination barrier in the reserved
/// [`FENCE_ROUND`] namespace, injected after the collective whose masked
/// sequence number is [`SEQ_MASK`] (the last of a tag epoch).
///
/// Soundness: every collective expansion consumes all messages addressed
/// to it with blocking `Recv`s, so a rank enters the fence only after all
/// prior-epoch messages addressed to it have been matched. A rank leaves
/// the dissemination barrier only after (transitively) hearing from every
/// other rank, i.e. only once *all* ranks have entered it — at which point
/// no prior-epoch collective message is still unconsumed anywhere and the
/// reused tags cannot cross-match.
pub fn epoch_fence(rank: u32, n: u32, seq: u32) -> Vec<MpiOp> {
    let mut ops = Vec::new();
    if n <= 1 {
        return ops;
    }
    let mut k = 0u32;
    let mut dist = 1u32;
    while dist < n {
        let to = (rank + dist) % n;
        let from = (rank + n - dist % n) % n;
        ops.push(MpiOp::Isend { dst: to, bytes: CTRL_BYTES, tag: tag(seq, FENCE_ROUND + k) });
        ops.push(MpiOp::Recv { src: from, bytes: CTRL_BYTES, tag: tag(seq, FENCE_ROUND + k) });
        dist *= 2;
        k += 1;
    }
    ops
}

/// Dissemination barrier.
fn barrier(rank: u32, n: u32, seq: u32) -> Vec<MpiOp> {
    let mut ops = Vec::new();
    if n <= 1 {
        return ops;
    }
    let mut k = 0u32;
    let mut dist = 1u32;
    while dist < n {
        let to = (rank + dist) % n;
        let from = (rank + n - dist % n) % n;
        ops.push(MpiOp::Isend { dst: to, bytes: CTRL_BYTES, tag: tag(seq, k) });
        ops.push(MpiOp::Recv { src: from, bytes: CTRL_BYTES, tag: tag(seq, k) });
        dist *= 2;
        k += 1;
    }
    ops
}

/// Binomial-tree parent of virtual rank `v` (root-relabeled): clear the
/// lowest set bit.
#[inline]
fn binomial_parent(v: u32) -> u32 {
    v & (v - 1)
}

/// Children of virtual rank `v` in a binomial tree over `0..n`: `v + 2^j`
/// for every `j` with `2^j` below `v`'s lowest set bit (all powers for the
/// root), bounded by `n`.
fn binomial_children(v: u32, n: u32) -> Vec<u32> {
    let mut kids = Vec::new();
    let limit = if v == 0 { n } else { v & v.wrapping_neg() };
    let mut d = 1u32;
    while d < limit && v + d < n {
        kids.push(v + d);
        d <<= 1;
    }
    // Largest subtree first, like MPICH, so deep subtrees start earliest.
    kids.reverse();
    kids
}

/// Binomial broadcast from `root`.
fn bcast(rank: u32, n: u32, root: u32, bytes: u64, seq: u32) -> Vec<MpiOp> {
    if n <= 1 {
        return Vec::new();
    }
    let v = (rank + n - root % n) % n;
    let unv = |x: u32| (x + root) % n;
    let mut ops = Vec::new();
    if v != 0 {
        ops.push(MpiOp::Recv { src: unv(binomial_parent(v)), bytes, tag: tag(seq, 0) });
    }
    for c in binomial_children(v, n) {
        ops.push(MpiOp::Isend { dst: unv(c), bytes, tag: tag(seq, 0) });
    }
    // Drain the child sends before leaving the collective.
    if !binomial_children(v, n).is_empty() {
        ops.push(MpiOp::WaitAll);
    }
    ops
}

/// Reverse binomial reduction to `root`.
fn reduce(rank: u32, n: u32, root: u32, bytes: u64, seq: u32) -> Vec<MpiOp> {
    if n <= 1 {
        return Vec::new();
    }
    let v = (rank + n - root % n) % n;
    let unv = |x: u32| (x + root) % n;
    let mut ops = Vec::new();
    // Receive partial results from children (deepest subtree last to
    // mirror the bcast order).
    let mut kids = binomial_children(v, n);
    kids.reverse();
    for c in kids {
        ops.push(MpiOp::Recv { src: unv(c), bytes, tag: tag(seq, 0) });
    }
    if v != 0 {
        ops.push(MpiOp::Send { dst: unv(binomial_parent(v)), bytes, tag: tag(seq, 0) });
    }
    ops
}

/// Largest power of two ≤ n.
#[inline]
fn pow2_floor(n: u32) -> u32 {
    if n == 0 {
        0
    } else {
        1 << (31 - n.leading_zeros())
    }
}

/// The non-power-of-two fold: ranks `< 2·extras` pair up (even passes its
/// contribution to odd). Returns `(participates, virtual_id)`; the core
/// algorithm runs over `p2` virtual ids.
fn fold_in(rank: u32, n: u32, p2: u32) -> (bool, u32) {
    let extras = n - p2;
    if rank < 2 * extras {
        if rank.is_multiple_of(2) {
            (false, 0)
        } else {
            (true, rank / 2)
        }
    } else {
        (true, rank - extras)
    }
}

/// Inverse of [`fold_in`] for participating virtual ids.
fn unfold(v: u32, n: u32, p2: u32) -> u32 {
    let extras = n - p2;
    if v < extras {
        2 * v + 1
    } else {
        v + extras
    }
}

/// Fold preamble/postamble shared by both allreduce variants.
fn fold_ops(
    rank: u32,
    n: u32,
    p2: u32,
    bytes: u64,
    seq: u32,
    core: impl FnOnce(u32, &mut Vec<MpiOp>),
) -> Vec<MpiOp> {
    let extras = n - p2;
    let mut ops = Vec::new();
    let (participates, v) = fold_in(rank, n, p2);
    if rank < 2 * extras {
        if !participates {
            // Even member: contribute, then wait for the result.
            ops.push(MpiOp::Send { dst: rank + 1, bytes, tag: tag(seq, 0x100) });
            ops.push(MpiOp::Recv { src: rank + 1, bytes, tag: tag(seq, 0x101) });
            return ops;
        }
        ops.push(MpiOp::Recv { src: rank - 1, bytes, tag: tag(seq, 0x100) });
    }
    core(v, &mut ops);
    if participates && rank < 2 * extras {
        ops.push(MpiOp::Send { dst: rank - 1, bytes, tag: tag(seq, 0x101) });
    }
    ops
}

/// Recursive-doubling allreduce (small payloads): log₂(p2) rounds, full
/// payload each round.
fn allreduce_rd(rank: u32, n: u32, bytes: u64, seq: u32) -> Vec<MpiOp> {
    if n <= 1 {
        return Vec::new();
    }
    let p2 = pow2_floor(n);
    fold_ops(rank, n, p2, bytes, seq, |v, ops| {
        let mut k = 0u32;
        let mut d = 1u32;
        while d < p2 {
            let partner = unfold(v ^ d, n, p2);
            ops.push(MpiOp::Isend { dst: partner, bytes, tag: tag(seq, k) });
            ops.push(MpiOp::Recv { src: partner, bytes, tag: tag(seq, k) });
            d <<= 1;
            k += 1;
        }
    })
}

/// Rabenseifner allreduce (large payloads): recursive-halving
/// reduce-scatter then recursive-doubling allgather; ~2·bytes moved per
/// rank regardless of n.
fn allreduce_rabenseifner(rank: u32, n: u32, bytes: u64, seq: u32) -> Vec<MpiOp> {
    if n <= 1 {
        return Vec::new();
    }
    let p2 = pow2_floor(n);
    if p2 == 1 {
        return allreduce_rd(rank, n, bytes, seq);
    }
    fold_ops(rank, n, p2, bytes, seq, |v, ops| {
        let mut k = 0u32;
        // Reduce-scatter: exchange half the remaining block each round.
        let mut d = p2 / 2;
        while d >= 1 {
            let partner = unfold(v ^ d, n, p2);
            let chunk = (bytes * d as u64 / p2 as u64).max(1);
            ops.push(MpiOp::Isend { dst: partner, bytes: chunk, tag: tag(seq, k) });
            ops.push(MpiOp::Recv { src: partner, bytes: chunk, tag: tag(seq, k) });
            d /= 2;
            k += 1;
        }
        // Allgather: mirror image, block sizes doubling.
        let mut d = 1;
        while d <= p2 / 2 {
            let partner = unfold(v ^ d, n, p2);
            let chunk = (bytes * d as u64 / p2 as u64).max(1);
            ops.push(MpiOp::Isend { dst: partner, bytes: chunk, tag: tag(seq, k) });
            ops.push(MpiOp::Recv { src: partner, bytes: chunk, tag: tag(seq, k) });
            d *= 2;
            k += 1;
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// Cross-rank consistency: every Isend/Send must have a matching
    /// Recv on the destination with the same (src, tag, bytes).
    fn check_matched(n: u32, expand_for: impl Fn(u32) -> Vec<MpiOp>) {
        let mut sends: HashMap<(u32, u32, u32, u64), i64> = HashMap::new();
        for r in 0..n {
            for op in expand_for(r) {
                match op {
                    MpiOp::Isend { dst, bytes, tag } | MpiOp::Send { dst, bytes, tag } => {
                        *sends.entry((r, dst, tag, bytes)).or_insert(0) += 1;
                    }
                    MpiOp::Recv { src, bytes, tag } | MpiOp::Irecv { src, bytes, tag } => {
                        *sends.entry((src, r, tag, bytes)).or_insert(0) -= 1;
                    }
                    _ => {}
                }
            }
        }
        for (k, v) in sends {
            assert_eq!(v, 0, "unmatched traffic {k:?}");
        }
    }

    #[test]
    fn barrier_matched_for_any_n() {
        for n in [1u32, 2, 3, 5, 8, 13, 16, 100] {
            check_matched(n, |r| barrier(r, n, 1));
        }
    }

    #[test]
    fn barrier_rounds_are_log2() {
        let ops = barrier(0, 16, 0);
        // 4 rounds × (Isend + Recv).
        assert_eq!(ops.len(), 8);
        let ops = barrier(0, 17, 0);
        assert_eq!(ops.len(), 10);
    }

    #[test]
    fn bcast_matched_and_covers_everyone() {
        for n in [2u32, 3, 7, 8, 12, 64] {
            for root in [0u32, 1, n - 1] {
                check_matched(n, |r| bcast(r, n, root, 1000, 2));
                // Every non-root receives exactly once.
                for r in 0..n {
                    let recvs = bcast(r, n, root, 1000, 2)
                        .iter()
                        .filter(|o| matches!(o, MpiOp::Recv { .. }))
                        .count();
                    assert_eq!(recvs, usize::from(r != root), "n={n} root={root} r={r}");
                }
            }
        }
    }

    #[test]
    fn reduce_matched_and_root_receives_tree() {
        for n in [2u32, 5, 8, 13] {
            for root in [0u32, 3 % n] {
                check_matched(n, |r| reduce(r, n, root, 64, 3));
                // Every non-root sends exactly once.
                for r in 0..n {
                    let sends = reduce(r, n, root, 64, 3)
                        .iter()
                        .filter(|o| matches!(o, MpiOp::Send { .. }))
                        .count();
                    assert_eq!(sends, usize::from(r != root));
                }
            }
        }
    }

    #[test]
    fn allreduce_rd_matched() {
        for n in [2u32, 3, 4, 6, 8, 13, 32] {
            check_matched(n, |r| allreduce_rd(r, n, 512, 4));
        }
    }

    #[test]
    fn allreduce_rabenseifner_matched() {
        for n in [2u32, 3, 4, 6, 8, 13, 32, 100] {
            check_matched(n, |r| allreduce_rabenseifner(r, n, 1 << 20, 5));
        }
    }

    #[test]
    fn rabenseifner_moves_about_2p_per_rank() {
        let n = 64u32;
        let p: u64 = 1 << 20;
        let sent: u64 = allreduce_rabenseifner(5, n, p, 0)
            .iter()
            .filter_map(|o| match o {
                MpiOp::Isend { bytes, .. } | MpiOp::Send { bytes, .. } => Some(*bytes),
                _ => None,
            })
            .sum();
        let expect = 2 * p * (n as u64 - 1) / n as u64;
        let tolerance = p / 8;
        assert!(sent.abs_diff(expect) < tolerance, "sent {sent}, expected ≈{expect}");
    }

    #[test]
    fn rd_moves_logn_times_p_per_rank() {
        let n = 16u32;
        let p: u64 = 1024;
        let sent: u64 = allreduce_rd(3, n, p, 0)
            .iter()
            .filter_map(|o| match o {
                MpiOp::Isend { bytes, .. } | MpiOp::Send { bytes, .. } => Some(*bytes),
                _ => None,
            })
            .sum();
        assert_eq!(sent, 4 * p);
    }

    #[test]
    fn expand_selects_algorithm_by_size() {
        let small = expand(&MpiOp::Allreduce { bytes: 8 }, 0, 8, 0);
        let large = expand(&MpiOp::Allreduce { bytes: 10 << 20 }, 0, 8, 0);
        let small_bytes: u64 = small
            .iter()
            .filter_map(|o| match o {
                MpiOp::Isend { bytes, .. } => Some(*bytes),
                _ => None,
            })
            .sum();
        let large_bytes: u64 = large
            .iter()
            .filter_map(|o| match o {
                MpiOp::Isend { bytes, .. } => Some(*bytes),
                _ => None,
            })
            .sum();
        assert_eq!(small_bytes, 3 * 8, "rd: log2(8)=3 rounds of full payload");
        assert!(large_bytes < 2 * (10 << 20), "rabenseifner moves ~2P");
    }

    #[test]
    fn binomial_tree_structure() {
        assert_eq!(binomial_children(0, 8), vec![4, 2, 1]);
        assert_eq!(binomial_children(4, 8), vec![6, 5]);
        assert_eq!(binomial_children(6, 8), vec![7]);
        assert_eq!(binomial_children(7, 8), Vec::<u32>::new());
        assert_eq!(binomial_parent(7), 6);
        assert_eq!(binomial_parent(6), 4);
        assert_eq!(binomial_parent(4), 0);
    }

    #[test]
    fn tag_space_wraps_at_32768_collectives() {
        // The hazard the epoch fence exists for: collective `s` and
        // `s + 0x8000` encode identical tags for every round.
        assert_eq!(tag(0, 0), tag(SEQ_MASK + 1, 0));
        assert_eq!(tag(1, 3), tag(0x8001, 3));
        // Within one epoch, sequence numbers stay distinct.
        assert_ne!(tag(0, 0), tag(SEQ_MASK, 0));
    }

    #[test]
    fn epoch_fence_matched_for_any_n() {
        for n in [1u32, 2, 3, 5, 8, 13, 16, 100] {
            check_matched(n, |r| epoch_fence(r, n, SEQ_MASK));
        }
    }

    #[test]
    fn epoch_fence_tags_disjoint_from_all_algorithms() {
        // The fence reuses the just-finished epoch's masked seq, so its
        // round namespace must never overlap any algorithm's rounds —
        // for the same seq or any other seq in the epoch.
        let n = 13u32;
        let seq = SEQ_MASK;
        let fence_tags: std::collections::HashSet<u32> = (0..n)
            .flat_map(|r| epoch_fence(r, n, seq))
            .filter_map(|o| match o {
                MpiOp::Isend { tag, .. } | MpiOp::Recv { tag, .. } => Some(tag),
                _ => None,
            })
            .collect();
        let colls = [
            MpiOp::Barrier,
            MpiOp::Bcast { root: 3, bytes: 4096 },
            MpiOp::Reduce { root: 1, bytes: 4096 },
            MpiOp::Allreduce { bytes: 64 },
            MpiOp::Allreduce { bytes: 1 << 20 },
        ];
        for coll in &colls {
            for s in [0u32, 1, seq] {
                for r in 0..n {
                    for op in expand(coll, r, n, s) {
                        if let MpiOp::Isend { tag, .. } | MpiOp::Recv { tag, .. } = op {
                            assert!(
                                !fence_tags.contains(&tag),
                                "fence tag collides with {coll:?} seq={s}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn collective_tags_never_collide_with_app_tags() {
        for n in [5u32, 8] {
            for r in 0..n {
                for op in expand(&MpiOp::Allreduce { bytes: 1 << 20 }, r, n, 77) {
                    if let MpiOp::Isend { tag, .. } | MpiOp::Recv { src: _, bytes: _, tag } = op {
                        assert!(tag & COLL_FLAG != 0);
                    }
                }
            }
        }
    }
}
