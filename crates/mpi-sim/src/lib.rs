//! # mpi-sim
//!
//! MPI point-to-point and collective semantics over a simulated network —
//! the CODES-side "workload module" that executes `UNION_MPI_X`
//! operations.
//!
//! Each rank is an [`MpiRank`]: it pulls operations from its Union skeleton
//! VM, expands collectives into point-to-point schedules
//! ([`collectives`]), and drives an eager/rendezvous transfer protocol:
//!
//! * payloads ≤ the eager threshold go straight out; the send request
//!   completes when the NIC finishes injecting;
//! * larger payloads send a small RTS; the receiver answers CTS when a
//!   matching receive is posted; the data follows, and the send request
//!   completes when the data leaves the NIC.
//!
//! The host (crate `codes`) owns time and the network: it feeds arriving
//! messages and NIC/compute completions in, and carries [`Action`]s out.
//! `MpiRank` is `Clone`, so the optimistic scheduler can snapshot it.

pub mod collectives;

use metricsx::{CommTimer, LatencyRecorder};
use std::collections::VecDeque;
use union_core::{MpiOp, OpSource};

// The metrics crate is named `metrics`; alias locally to avoid a name
// clash with this module path in doc links.
use metrics as metricsx;

/// On-the-wire message classes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MsgKind {
    /// Payload sent without a handshake.
    Eager,
    /// Rendezvous request-to-send (control).
    Rts,
    /// Rendezvous clear-to-send (control).
    Cts,
    /// Rendezvous payload.
    Data,
    /// One-sided synthetic traffic (no matching).
    Synthetic,
}

/// A rank-to-rank message (job-local rank numbering). The host maps ranks
/// to nodes and moves the bytes.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct MpiMsg {
    pub src: u32,
    pub dst: u32,
    pub tag: u32,
    /// Sender-unique id; pairs RTS/CTS/Data and tracks NIC injection.
    pub seq: u64,
    pub kind: MsgKind,
    /// Logical payload size (what the application asked to move).
    pub payload: u64,
    /// Bytes that actually cross the network for this message.
    pub wire: u64,
    /// Virtual time (ns) the *original* send was issued — the latency
    /// metric origin, preserved across the rendezvous handshake.
    pub created_ns: u64,
}

/// Size of RTS/CTS control messages on the wire.
pub const CTRL_WIRE_BYTES: u64 = 16;

/// What the host must do on behalf of the rank.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Action {
    /// Hand a message to the NIC.
    Send(MpiMsg),
    /// Model local computation: call `on_compute_done` after `ns`.
    Compute { ns: u64 },
}

#[derive(Clone, Debug, PartialEq)]
enum State {
    Ready,
    Blocked(Vec<u64>),
    Computing,
    Done,
    /// The wire protocol was violated (e.g. a CTS for a rendezvous this
    /// rank never started). The rank stops making progress and the host
    /// surfaces [`MpiRank::protocol_error`] as a simulation failure —
    /// a malformed or duplicated message must not abort the whole
    /// process with a panic.
    Failed,
}

#[derive(Clone, Copy, Debug)]
struct Posted {
    src: u32,
    tag: u32,
    req: u64,
}

#[derive(Clone, Copy, Debug)]
enum UnexKind {
    Eager,
    Rts { seq: u64 },
}

#[derive(Clone, Copy, Debug)]
struct Unexpected {
    src: u32,
    tag: u32,
    kind: UnexKind,
}

#[derive(Clone, Copy, Debug)]
struct RdvOut {
    dst: u32,
    tag: u32,
    payload: u64,
    req: u64,
    created_ns: u64,
}

/// MPI engine for one rank.
#[derive(Clone)]
pub struct MpiRank {
    src: OpSource,
    n: u32,
    rank: u32,
    /// Expanded collective ops waiting to run before the VM resumes.
    queue: VecDeque<MpiOp>,
    state: State,
    outstanding: Vec<u64>,
    req_seq: u64,
    msg_seq: u64,
    coll_seq: u32,
    eager_max: u64,
    posted: Vec<Posted>,
    unexpected: Vec<Unexpected>,
    /// Matched inbound rendezvous: (src, seq) → recv request.
    rdv_in: Vec<((u32, u64), u64)>,
    /// Outbound rendezvous awaiting CTS, by seq.
    rdv_out: Vec<(u64, RdvOut)>,
    /// Send requests completing when the NIC finishes msg `seq`.
    inject_wait: Vec<(u64, u64)>,
    /// Metrics.
    pub comm: CommTimer,
    pub latency: LatencyRecorder,
    pub bytes_sent: u64,
    /// Tag-epoch fences injected at `SEQ_MASK` wrap boundaries.
    pub coll_fences: u64,
    pub finished_at_ns: Option<u64>,
    pub ops_executed: u64,
    /// First protocol violation observed, if any (see `State::Failed`).
    protocol_error: Option<String>,
}

// `MpiRank` rides inside node LPs that the parallel schedulers move
// between worker threads — it must stay `Send`.
const _: () = {
    const fn require_send<T: Send>() {}
    require_send::<MpiRank>();
};

impl MpiRank {
    /// Wrap an op source (a Union skeleton VM or a trace cursor).
    /// `eager_max` is the eager/rendezvous threshold in bytes (16 KiB is
    /// a typical MPI default).
    pub fn new(src: impl Into<OpSource>, eager_max: u64) -> MpiRank {
        let src = src.into();
        let n = src.num_tasks();
        let rank = src.rank();
        MpiRank {
            src,
            n,
            rank,
            queue: VecDeque::new(),
            state: State::Ready,
            outstanding: Vec::new(),
            req_seq: 0,
            msg_seq: 0,
            coll_seq: 0,
            eager_max,
            posted: Vec::new(),
            unexpected: Vec::new(),
            rdv_in: Vec::new(),
            rdv_out: Vec::new(),
            inject_wait: Vec::new(),
            comm: CommTimer::default(),
            latency: LatencyRecorder::default(),
            bytes_sent: 0,
            coll_fences: 0,
            finished_at_ns: None,
            ops_executed: 0,
            protocol_error: None,
        }
    }

    pub fn rank(&self) -> u32 {
        self.rank
    }

    pub fn is_done(&self) -> bool {
        self.state == State::Done
    }

    /// True when the rank stopped on a wire-protocol violation.
    pub fn is_failed(&self) -> bool {
        self.state == State::Failed
    }

    /// The protocol violation that failed this rank, if any.
    pub fn protocol_error(&self) -> Option<&str> {
        self.protocol_error.as_deref()
    }

    /// Coarse state label ("ready", "blocked", "computing", "done") for
    /// diagnostics and trace track names.
    pub fn state_label(&self) -> &'static str {
        match self.state {
            State::Ready => "ready",
            State::Blocked(_) => "blocked",
            State::Computing => "computing",
            State::Done => "done",
            State::Failed => "failed",
        }
    }

    /// One-line description for trace tracks, e.g. `"rank 3/64 · done"`.
    /// A rank still `blocked` after a bounded run is the first place to
    /// look when a job misses its makespan.
    pub fn describe(&self) -> String {
        format!("rank {}/{} · {}", self.rank, self.n, self.state_label())
    }

    /// Kick the rank off (call once at simulation start).
    pub fn start(&mut self, now_ns: u64, out: &mut Vec<Action>) {
        self.step(now_ns, out);
    }

    /// The NIC finished serializing message `seq`.
    pub fn on_injected(&mut self, now_ns: u64, seq: u64, out: &mut Vec<Action>) {
        if let Some(i) = self.inject_wait.iter().position(|&(s, _)| s == seq) {
            let (_, req) = self.inject_wait.swap_remove(i);
            self.complete_req(req);
        }
        self.resume_if_ready(now_ns, out);
    }

    /// A message addressed to this rank was fully delivered.
    pub fn on_delivery(&mut self, now_ns: u64, msg: &MpiMsg, out: &mut Vec<Action>) {
        self.deliver(now_ns, msg, out);
        self.resume_if_ready(now_ns, out);
    }

    /// A `Compute` delay finished.
    pub fn on_compute_done(&mut self, now_ns: u64, out: &mut Vec<Action>) {
        if self.state == State::Failed {
            return;
        }
        debug_assert_eq!(self.state, State::Computing);
        self.state = State::Ready;
        self.step(now_ns, out);
    }

    // ---- internals ----

    /// Record the first protocol violation and stop this rank: no more
    /// ops execute, no more actions are emitted, and `is_done` stays
    /// false so the host reports the run as failed rather than hung.
    fn protocol_fail(&mut self, msg: String) {
        if self.protocol_error.is_none() {
            self.protocol_error = Some(msg);
        }
        self.state = State::Failed;
    }

    fn resume_if_ready(&mut self, now_ns: u64, out: &mut Vec<Action>) {
        if let State::Blocked(reqs) = &self.state {
            if reqs.iter().all(|r| !self.outstanding.contains(r)) {
                self.state = State::Ready;
                self.comm.unblock(now_ns);
                self.step(now_ns, out);
            }
        }
    }

    /// Advance until blocked, computing, or done.
    fn step(&mut self, now_ns: u64, out: &mut Vec<Action>) {
        while self.state == State::Ready {
            let op = match self.queue.pop_front() {
                Some(op) => Some(op),
                None => self.src.next_op(),
            };
            let Some(op) = op else {
                self.state = State::Done;
                self.finished_at_ns = Some(now_ns);
                return;
            };
            self.ops_executed += 1;
            match op {
                MpiOp::Init
                | MpiOp::Finalize
                | MpiOp::ResetCounters
                | MpiOp::LogCounters
                | MpiOp::Aggregates => {}
                MpiOp::Compute { ns } => {
                    if ns > 0 {
                        self.state = State::Computing;
                        out.push(Action::Compute { ns });
                    }
                }
                MpiOp::Isend { dst, bytes, tag } => {
                    self.do_isend(now_ns, dst, bytes, tag, out);
                }
                MpiOp::Send { dst, bytes, tag } => {
                    let req = self.do_isend(now_ns, dst, bytes, tag, out);
                    self.block_on(now_ns, vec![req]);
                }
                MpiOp::Irecv { src, bytes, tag } => {
                    self.do_irecv(now_ns, src, bytes, tag, out);
                }
                MpiOp::Recv { src, bytes, tag } => {
                    let req = self.do_irecv(now_ns, src, bytes, tag, out);
                    self.block_on(now_ns, vec![req]);
                }
                MpiOp::WaitAll => {
                    let reqs = self.outstanding.clone();
                    self.block_on(now_ns, reqs);
                }
                MpiOp::Allreduce { .. }
                | MpiOp::Bcast { .. }
                | MpiOp::Reduce { .. }
                | MpiOp::Barrier => {
                    let seq = self.coll_seq;
                    self.coll_seq = self.coll_seq.wrapping_add(1);
                    // Internal tags carry only `seq & SEQ_MASK`: fence the
                    // epoch boundary so a collective can never cross-match
                    // one from 32768 collectives earlier. All ranks issue
                    // collectives in the same order, so every rank injects
                    // the fence at the same sequence number and the fence
                    // barrier is itself matched.
                    if seq & collectives::SEQ_MASK == collectives::SEQ_MASK {
                        self.coll_fences += 1;
                        let fence = collectives::epoch_fence(self.rank, self.n, seq);
                        for e in fence.into_iter().rev() {
                            self.queue.push_front(e);
                        }
                    }
                    let expansion = collectives::expand(&op, self.rank, self.n, seq);
                    for e in expansion.into_iter().rev() {
                        self.queue.push_front(e);
                    }
                }
                MpiOp::SyntheticSend { dst, bytes } => {
                    let seq = self.next_msg_seq();
                    self.bytes_sent += bytes;
                    out.push(Action::Send(MpiMsg {
                        src: self.rank,
                        dst,
                        tag: 0,
                        seq,
                        kind: MsgKind::Synthetic,
                        payload: bytes,
                        wire: bytes,
                        created_ns: now_ns,
                    }));
                }
            }
        }
    }

    fn next_req(&mut self) -> u64 {
        self.req_seq += 1;
        self.req_seq
    }

    fn next_msg_seq(&mut self) -> u64 {
        self.msg_seq += 1;
        self.msg_seq
    }

    fn block_on(&mut self, now_ns: u64, reqs: Vec<u64>) {
        let pending: Vec<u64> = reqs.into_iter().filter(|r| self.outstanding.contains(r)).collect();
        if !pending.is_empty() {
            self.state = State::Blocked(pending);
            self.comm.block(now_ns);
        }
    }

    fn complete_req(&mut self, req: u64) {
        if let Some(i) = self.outstanding.iter().position(|&r| r == req) {
            self.outstanding.swap_remove(i);
        }
    }

    fn do_isend(
        &mut self,
        now_ns: u64,
        dst: u32,
        bytes: u64,
        tag: u32,
        out: &mut Vec<Action>,
    ) -> u64 {
        let req = self.next_req();
        self.outstanding.push(req);
        self.bytes_sent += bytes;
        if dst == self.rank {
            // Self-send: deliver locally and complete immediately.
            let msg = MpiMsg {
                src: self.rank,
                dst,
                tag,
                seq: self.next_msg_seq(),
                kind: MsgKind::Eager,
                payload: bytes,
                wire: 0,
                created_ns: now_ns,
            };
            self.deliver(now_ns, &msg, out);
            self.complete_req(req);
            return req;
        }
        let seq = self.next_msg_seq();
        if bytes <= self.eager_max {
            self.inject_wait.push((seq, req));
            out.push(Action::Send(MpiMsg {
                src: self.rank,
                dst,
                tag,
                seq,
                kind: MsgKind::Eager,
                payload: bytes,
                wire: bytes,
                created_ns: now_ns,
            }));
        } else {
            self.rdv_out.push((seq, RdvOut { dst, tag, payload: bytes, req, created_ns: now_ns }));
            out.push(Action::Send(MpiMsg {
                src: self.rank,
                dst,
                tag,
                seq,
                kind: MsgKind::Rts,
                payload: bytes,
                wire: CTRL_WIRE_BYTES,
                created_ns: now_ns,
            }));
        }
        req
    }

    fn do_irecv(
        &mut self,
        _now_ns: u64,
        src: u32,
        _bytes: u64,
        tag: u32,
        out: &mut Vec<Action>,
    ) -> u64 {
        let req = self.next_req();
        self.outstanding.push(req);
        // Check the unexpected queue first (FIFO per (src, tag)).
        if let Some(i) = self.unexpected.iter().position(|u| u.src == src && u.tag == tag) {
            let u = self.unexpected.remove(i);
            match u.kind {
                UnexKind::Eager => {
                    // Payload already arrived; latency was recorded then.
                    self.complete_req(req);
                }
                UnexKind::Rts { seq } => {
                    self.rdv_in.push(((src, seq), req));
                    // CTS gets its own wire id; the RTS seq it answers
                    // rides in `payload` (ids are per-sender — reusing the
                    // peer's seq would collide with our own messages).
                    let cts_seq = self.next_msg_seq();
                    out.push(Action::Send(MpiMsg {
                        src: self.rank,
                        dst: src,
                        tag,
                        seq: cts_seq,
                        kind: MsgKind::Cts,
                        payload: seq,
                        wire: CTRL_WIRE_BYTES,
                        created_ns: _now_ns,
                    }));
                }
            }
        } else {
            self.posted.push(Posted { src, tag, req });
        }
        req
    }

    fn deliver(&mut self, now_ns: u64, msg: &MpiMsg, out: &mut Vec<Action>) {
        if self.state == State::Failed {
            return;
        }
        match msg.kind {
            MsgKind::Eager => {
                self.latency.record(now_ns.saturating_sub(msg.created_ns));
                if let Some(i) =
                    self.posted.iter().position(|p| p.src == msg.src && p.tag == msg.tag)
                {
                    let p = self.posted.remove(i);
                    self.complete_req(p.req);
                } else {
                    self.unexpected.push(Unexpected {
                        src: msg.src,
                        tag: msg.tag,
                        kind: UnexKind::Eager,
                    });
                }
            }
            MsgKind::Rts => {
                if let Some(i) =
                    self.posted.iter().position(|p| p.src == msg.src && p.tag == msg.tag)
                {
                    let p = self.posted.remove(i);
                    self.rdv_in.push(((msg.src, msg.seq), p.req));
                    let cts_seq = self.next_msg_seq();
                    out.push(Action::Send(MpiMsg {
                        src: self.rank,
                        dst: msg.src,
                        tag: msg.tag,
                        seq: cts_seq,
                        kind: MsgKind::Cts,
                        payload: msg.seq,
                        wire: CTRL_WIRE_BYTES,
                        created_ns: now_ns,
                    }));
                } else {
                    self.unexpected.push(Unexpected {
                        src: msg.src,
                        tag: msg.tag,
                        kind: UnexKind::Rts { seq: msg.seq },
                    });
                }
            }
            MsgKind::Cts => {
                let rts_seq = msg.payload;
                let Some(i) = self.rdv_out.iter().position(|&(s, _)| s == rts_seq) else {
                    self.protocol_fail(format!(
                        "rank {}: CTS from rank {} (tag {}) answers rendezvous seq {} \
                         this rank never started",
                        self.rank, msg.src, msg.tag, rts_seq,
                    ));
                    return;
                };
                let (seq, rdv) = self.rdv_out.swap_remove(i);
                self.inject_wait.push((seq, rdv.req));
                out.push(Action::Send(MpiMsg {
                    src: self.rank,
                    dst: rdv.dst,
                    tag: rdv.tag,
                    seq,
                    kind: MsgKind::Data,
                    payload: rdv.payload,
                    wire: rdv.payload,
                    created_ns: rdv.created_ns,
                }));
            }
            MsgKind::Data => {
                self.latency.record(now_ns.saturating_sub(msg.created_ns));
                let Some(i) = self.rdv_in.iter().position(|&(k, _)| k == (msg.src, msg.seq)) else {
                    self.protocol_fail(format!(
                        "rank {}: rendezvous data from rank {} (tag {}, seq {}) \
                         arrived without a matched RTS",
                        self.rank, msg.src, msg.tag, msg.seq,
                    ));
                    return;
                };
                let (_, req) = self.rdv_in.swap_remove(i);
                self.complete_req(req);
            }
            MsgKind::Synthetic => {
                self.latency.record(now_ns.saturating_sub(msg.created_ns));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use union_core::{translate_source, Builder, RankVm, SkeletonInstance};

    /// An instantaneous loopback network: messages arrive immediately,
    /// injection completes immediately, computes take zero time. Drives a
    /// set of MpiRanks to completion and panics on deadlock.
    fn run_loopback(mut ranks: Vec<MpiRank>) -> Vec<MpiRank> {
        let mut actions: Vec<Action> = Vec::new();
        let mut inflight: VecDeque<(usize, Action)> = VecDeque::new();
        for r in ranks.iter_mut() {
            actions.clear();
            r.start(0, &mut actions);
            let who = r.rank() as usize;
            inflight.extend(actions.drain(..).map(|a| (who, a)));
        }
        let mut steps = 0u64;
        while let Some((who, action)) = inflight.pop_front() {
            steps += 1;
            assert!(steps < 10_000_000, "loopback runaway");
            actions.clear();
            match action {
                Action::Compute { .. } => {
                    ranks[who].on_compute_done(steps, &mut actions);
                    inflight.extend(actions.drain(..).map(|a| (who, a)));
                }
                Action::Send(msg) => {
                    // Injection completes instantly…
                    ranks[who].on_injected(steps, msg.seq, &mut actions);
                    inflight.extend(actions.drain(..).map(|a| (who, a)));
                    // …and the message arrives instantly.
                    actions.clear();
                    let dst = msg.dst as usize;
                    ranks[dst].on_delivery(steps, &msg, &mut actions);
                    inflight.extend(actions.drain(..).map(|a| (dst, a)));
                }
            }
        }
        for r in &ranks {
            assert!(r.is_done(), "rank {} deadlocked", r.rank());
        }
        ranks
    }

    fn ranks_for(src: &str, n: u32, eager: u64) -> Vec<MpiRank> {
        let skel = translate_source(src, "t").unwrap();
        let inst = SkeletonInstance::new(&skel, n, &[]).unwrap();
        (0..n).map(|r| MpiRank::new(RankVm::new(inst.clone(), r, 1), eager)).collect()
    }

    #[test]
    fn describe_tracks_the_state_machine() {
        let mut ranks = ranks_for("task 0 sends a 8 byte message to task 1.", 2, 1 << 20);
        assert_eq!(ranks[0].state_label(), "ready");
        assert_eq!(ranks[0].describe(), "rank 0/2 · ready");
        ranks = run_loopback(ranks);
        assert_eq!(ranks[0].state_label(), "done");
        assert_eq!(ranks[1].describe(), "rank 1/2 · done");
    }

    /// Wrap-boundary regression: the 32768th collective reuses the tags
    /// of the 1st (`SEQ_MASK` wrap), so an epoch fence must stop any rank
    /// from entering the next tag epoch while old-epoch messages are
    /// still unconsumed. Without the fence, a bcast root — whose sends
    /// complete at injection — races arbitrarily far ahead of a receiver
    /// stuck behind one slow message, and a new-epoch message can match
    /// the receiver's still-posted old-epoch `Recv`.
    #[test]
    fn tag_epoch_fence_blocks_next_epoch_until_prior_messages_land() {
        let mut ranks = ranks_for(
            "for 4 repetitions { task 0 multicasts an 8 byte message to all other tasks }.",
            2,
            1 << 20,
        );
        // Start two collectives before the wrap so the run crosses it.
        for r in ranks.iter_mut() {
            r.coll_seq = collectives::SEQ_MASK - 1;
        }
        let mut actions: Vec<Action> = Vec::new();
        let mut inflight: VecDeque<(usize, Action)> = VecDeque::new();
        for r in ranks.iter_mut() {
            actions.clear();
            r.start(0, &mut actions);
            let who = r.rank() as usize;
            inflight.extend(actions.drain(..).map(|a| (who, a)));
        }
        // Loopback, except the root's first bcast payload stays in the
        // network until everything else has drained.
        let mut held: Option<MpiMsg> = None;
        let mut already_held = false;
        let mut steps = 0u64;
        loop {
            while let Some((who, action)) = inflight.pop_front() {
                steps += 1;
                assert!(steps < 100_000, "runaway");
                actions.clear();
                match action {
                    Action::Compute { .. } => {
                        ranks[who].on_compute_done(steps, &mut actions);
                        inflight.extend(actions.drain(..).map(|a| (who, a)));
                    }
                    Action::Send(msg) => {
                        ranks[who].on_injected(steps, msg.seq, &mut actions);
                        inflight.extend(actions.drain(..).map(|a| (who, a)));
                        if !already_held && who == 0 {
                            already_held = true;
                            held = Some(msg);
                        } else {
                            actions.clear();
                            let dst = msg.dst as usize;
                            ranks[dst].on_delivery(steps, &msg, &mut actions);
                            inflight.extend(actions.drain(..).map(|a| (dst, a)));
                        }
                    }
                }
            }
            match held.take() {
                Some(msg) => {
                    // Quiescent with one old-epoch message in flight: the
                    // fence must be holding the root inside the old tag
                    // epoch (before the fix the root finished all four
                    // bcasts here).
                    assert!(!ranks[0].is_done(), "root raced past the tag-epoch fence");
                    assert!(!ranks[1].is_done());
                    assert_eq!(ranks[0].coll_fences, 1);
                    actions.clear();
                    let dst = msg.dst as usize;
                    ranks[dst].on_delivery(steps, &msg, &mut actions);
                    inflight.extend(actions.drain(..).map(|a| (dst, a)));
                }
                None => break,
            }
        }
        for r in &ranks {
            assert!(r.is_done(), "rank {} deadlocked", r.rank());
            assert_eq!(r.coll_fences, 1);
        }
        // Four bcast payloads plus the fence control message.
        assert_eq!(ranks[1].latency.count, 5);
    }

    #[test]
    fn ping_pong_completes_eager_and_rendezvous() {
        for eager in [1 << 20, 4] {
            let ranks = run_loopback(ranks_for(
                "for 3 repetitions { task 0 sends a 1024 byte message to task 1 then \
                 task 1 sends a 1024 byte message to task 0 }.",
                2,
                eager,
            ));
            for r in &ranks {
                assert_eq!(r.latency.count, 3, "eager={eager}");
            }
        }
    }

    #[test]
    fn nonblocking_ring_completes() {
        let ranks = run_loopback(ranks_for(
            "for 5 repetitions { all tasks t asynchronously send a 100000 byte message \
             to task (t+1) mod num_tasks then all tasks await completions }.",
            6,
            16 * 1024,
        ));
        for r in &ranks {
            assert_eq!(r.latency.count, 5);
            assert_eq!(r.bytes_sent, 5 * 100_000);
        }
    }

    #[test]
    fn collectives_complete_for_odd_sizes() {
        for n in [2u32, 3, 5, 8, 13] {
            let ranks = run_loopback(ranks_for(
                "all tasks reduce a 1000000 byte message to all tasks then \
                 task 0 multicasts a 25 byte message to all other tasks then \
                 all tasks synchronize then \
                 all tasks reduce a 8 byte message to task 0.",
                n,
                16 * 1024,
            ));
            for r in &ranks {
                assert!(r.is_done(), "n={n}");
            }
        }
    }

    #[test]
    fn unexpected_messages_match_later_recvs() {
        // Rank 1 computes before receiving, so rank 0's eager send arrives
        // unexpected; the later recv must still match.
        let ranks = run_loopback(ranks_for(
            "task 0 sends a 64 byte message to task 1 then \
             task 1 computes for 1 microseconds.",
            2,
            16 * 1024,
        ));
        assert_eq!(ranks[1].latency.count, 1);
    }

    #[test]
    fn comm_time_accumulates_only_when_blocked() {
        let skel =
            Builder::new("b").compute_ns(conceptual::Expr::lit(1000)).barrier().build().unwrap();
        let inst = SkeletonInstance::new(&skel, 2, &[]).unwrap();
        let ranks: Vec<MpiRank> =
            (0..2).map(|r| MpiRank::new(RankVm::new(inst.clone(), r, 1), 1024)).collect();
        let ranks = run_loopback(ranks);
        // Loopback time advances one step per action, so comm time is tiny
        // but the timer must be closed (not blocked at the end).
        for r in &ranks {
            assert!(!r.comm.is_blocked());
        }
    }

    #[test]
    fn synthetic_traffic_needs_no_match() {
        let skel = Builder::new("ur")
            .loop_n(conceptual::Expr::lit(4), |b| b.send_random(conceptual::Expr::lit(10240), true))
            .build()
            .unwrap();
        let inst = SkeletonInstance::new(&skel, 4, &[]).unwrap();
        let ranks: Vec<MpiRank> =
            (0..4).map(|r| MpiRank::new(RankVm::new(inst.clone(), r, 9), 1 << 20)).collect();
        let ranks = run_loopback(ranks);
        let total: u64 = ranks.iter().map(|r| r.latency.count).sum();
        assert_eq!(total, 16, "every synthetic send is received somewhere");
    }

    #[test]
    fn bogus_cts_fails_the_rank_instead_of_panicking() {
        let mut ranks = ranks_for("task 0 sends a 100000 byte message to task 1.", 2, 16 * 1024);
        let mut out = Vec::new();
        ranks[0].start(0, &mut out);
        // A CTS answering a rendezvous seq this rank never started —
        // e.g. a duplicated or misrouted control message.
        let bogus = MpiMsg {
            src: 1,
            dst: 0,
            tag: 0,
            seq: 7,
            kind: MsgKind::Cts,
            payload: 424_242,
            wire: CTRL_WIRE_BYTES,
            created_ns: 0,
        };
        out.clear();
        ranks[0].on_delivery(1, &bogus, &mut out);
        assert!(ranks[0].is_failed());
        assert!(!ranks[0].is_done());
        assert_eq!(ranks[0].state_label(), "failed");
        let err = ranks[0].protocol_error().expect("error recorded").to_string();
        assert!(err.contains("never started"), "unhelpful error: {err}");
        assert!(out.is_empty(), "a failed rank must emit no actions: {out:?}");
        // A failed rank ignores further traffic instead of cascading.
        ranks[0].on_delivery(2, &bogus, &mut out);
        ranks[0].on_compute_done(3, &mut out);
        assert!(out.is_empty());
        assert_eq!(ranks[0].protocol_error(), Some(err.as_str()));
    }

    #[test]
    fn unmatched_rendezvous_data_fails_the_rank() {
        let mut ranks = ranks_for("task 0 sends a 8 byte message to task 1.", 2, 1 << 20);
        let mut out = Vec::new();
        ranks[1].start(0, &mut out);
        let bogus = MpiMsg {
            src: 0,
            dst: 1,
            tag: 0,
            seq: 99,
            kind: MsgKind::Data,
            payload: 100_000,
            wire: 100_000,
            created_ns: 0,
        };
        out.clear();
        ranks[1].on_delivery(1, &bogus, &mut out);
        assert!(ranks[1].is_failed());
        let err = ranks[1].protocol_error().expect("error recorded");
        assert!(err.contains("without a matched RTS"), "unhelpful error: {err}");
    }

    #[test]
    fn self_sends_complete_locally() {
        let ranks = run_loopback(ranks_for(
            "all tasks t send a 4096 byte message to task t.",
            3,
            16 * 1024,
        ));
        for r in &ranks {
            assert!(r.is_done());
            assert_eq!(r.latency.count, 1);
        }
    }

    #[test]
    fn large_collective_uses_rendezvous_and_completes() {
        // 1 MiB allreduce with a 16 KiB eager threshold forces the
        // rendezvous path inside Rabenseifner rounds.
        let ranks = run_loopback(ranks_for(
            "all tasks reduce a 1048576 byte message to all tasks.",
            8,
            16 * 1024,
        ));
        for r in &ranks {
            assert!(r.is_done());
            assert!(r.bytes_sent > 1_500_000, "~2P per rank, got {}", r.bytes_sent);
        }
    }
}
