//! # metrics
//!
//! Performance metrics for hybrid-workload analysis (paper §IV-D):
//!
//! * [`LatencyRecorder`] — per-rank message-latency min/avg/max, plus
//!   whole-app distributions summarized as [`Boxplot`]s (Fig 7);
//! * [`CommTimer`] — per-rank communication time: the portion of runtime
//!   spent in blocking sends/receives/waits/collectives (Fig 9);
//! * [`TimeSeries`] — per-app byte counts on 0.5 ms windows, aggregated
//!   over a set of routers (Fig 8);
//! * [`LinkLoad`] — total and per-link global/local traffic (Table VI).

use serde::{Deserialize, Serialize};

/// Five-number summary plus mean — exactly what each Fig 7 box shows
/// ("minimum, first quartile, median, third quartile, and maximum … the
/// averages are shown in red squares").
#[derive(Clone, Copy, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct Boxplot {
    pub min: f64,
    pub q1: f64,
    pub median: f64,
    pub q3: f64,
    pub max: f64,
    pub mean: f64,
    pub count: u64,
    /// Samples dropped because they were NaN (`count` excludes them).
    pub nan_count: u64,
}

impl Boxplot {
    /// Summarize a set of samples. Empty input yields an all-zero box.
    /// NaN samples carry no ordering information: they are dropped from
    /// the summary and flagged in [`Boxplot::nan_count`].
    pub fn from_samples(samples: &[f64]) -> Boxplot {
        let mut s: Vec<f64> = samples.iter().copied().filter(|v| !v.is_nan()).collect();
        let nan_count = (samples.len() - s.len()) as u64;
        if s.is_empty() {
            return Boxplot { nan_count, ..Boxplot::default() };
        }
        s.sort_by(f64::total_cmp);
        let q = |p: f64| -> f64 {
            // Linear interpolation between closest ranks (type-7 quantile,
            // the numpy default).
            let h = p * (s.len() - 1) as f64;
            let lo = h.floor() as usize;
            let hi = h.ceil() as usize;
            s[lo] + (h - h.floor()) * (s[hi] - s[lo])
        };
        Boxplot {
            min: s[0],
            q1: q(0.25),
            median: q(0.5),
            q3: q(0.75),
            max: *s.last().unwrap(),
            mean: s.iter().sum::<f64>() / s.len() as f64,
            count: s.len() as u64,
            nan_count,
        }
    }

    /// Ratio of this box's mean to a baseline mean ("slowdown" in the
    /// paper's Fig 7/9 discussion). 1.0 when the baseline is zero.
    pub fn slowdown_vs(&self, baseline: &Boxplot) -> f64 {
        if baseline.mean > 0.0 {
            self.mean / baseline.mean
        } else {
            1.0
        }
    }
}

/// Per-rank message-latency accounting. Each process records the minimum,
/// average, and maximum latency among all messages it receives.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LatencyRecorder {
    pub min_ns: u64,
    pub max_ns: u64,
    pub sum_ns: u64,
    pub count: u64,
}

impl Default for LatencyRecorder {
    fn default() -> Self {
        LatencyRecorder { min_ns: u64::MAX, max_ns: 0, sum_ns: 0, count: 0 }
    }
}

impl LatencyRecorder {
    #[inline]
    pub fn record(&mut self, latency_ns: u64) {
        self.min_ns = self.min_ns.min(latency_ns);
        self.max_ns = self.max_ns.max(latency_ns);
        self.sum_ns += latency_ns;
        self.count += 1;
    }

    pub fn avg_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Merge another recorder into this one.
    pub fn merge(&mut self, other: &LatencyRecorder) {
        if other.count == 0 {
            return;
        }
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
        self.sum_ns += other.sum_ns;
        self.count += other.count;
    }
}

/// Distributions of per-rank latency statistics for one application: the
/// paper plots the distribution of **maximum** message latency across
/// ranks (Fig 7); we keep min/avg/max distributions.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct AppLatencySummary {
    pub max_box: Boxplot,
    pub avg_box: Boxplot,
    pub min_box: Boxplot,
    /// Mean of per-rank averages — the "red square".
    pub overall_avg_ns: f64,
}

impl AppLatencySummary {
    pub fn from_ranks(recs: &[LatencyRecorder]) -> AppLatencySummary {
        let active: Vec<&LatencyRecorder> = recs.iter().filter(|r| r.count > 0).collect();
        if active.is_empty() {
            return AppLatencySummary::default();
        }
        let maxs: Vec<f64> = active.iter().map(|r| r.max_ns as f64).collect();
        let avgs: Vec<f64> = active.iter().map(|r| r.avg_ns()).collect();
        let mins: Vec<f64> = active.iter().map(|r| r.min_ns as f64).collect();
        AppLatencySummary {
            max_box: Boxplot::from_samples(&maxs),
            avg_box: Boxplot::from_samples(&avgs),
            min_box: Boxplot::from_samples(&mins),
            overall_avg_ns: avgs.iter().sum::<f64>() / avgs.len() as f64,
        }
    }
}

/// Per-rank communication-time accounting: accumulates the intervals a
/// rank spends blocked inside MPI operations.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct CommTimer {
    pub total_ns: u64,
    blocked_since: Option<u64>,
}

impl CommTimer {
    /// The rank entered a blocking operation at `now_ns`.
    #[inline]
    pub fn block(&mut self, now_ns: u64) {
        debug_assert!(self.blocked_since.is_none(), "nested blocking");
        self.blocked_since = Some(now_ns);
    }

    /// The blocking operation completed at `now_ns`.
    #[inline]
    pub fn unblock(&mut self, now_ns: u64) {
        if let Some(t0) = self.blocked_since.take() {
            self.total_ns += now_ns.saturating_sub(t0);
        }
    }

    pub fn is_blocked(&self) -> bool {
        self.blocked_since.is_some()
    }
}

/// Per-app byte counts over fixed windows, summed over a set of routers —
/// Fig 8's "sum of messages received by all the routers that serve
/// AlexNet".
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    pub window_ns: u64,
    /// `bytes[window][app]`.
    pub bytes: Vec<Vec<u64>>,
}

/// Rejected [`TimeSeries::accumulate`] input: the counters were binned at
/// a different window size, so summing them would silently mix units.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WindowMismatch {
    pub expected_ns: u64,
    pub got_ns: u64,
}

impl std::fmt::Display for WindowMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "window mismatch: series is binned at {} ns but counters use {} ns",
            self.expected_ns, self.got_ns
        )
    }
}

impl std::error::Error for WindowMismatch {}

impl TimeSeries {
    /// Sum windowed counters (e.g. from several routers) into one series.
    ///
    /// The first call fixes the window size; later calls with a different
    /// `window_ns` are rejected (mixing bin sizes would silently corrupt
    /// the series). Rows may be ragged — each row only needs to cover the
    /// apps that router actually saw; missing columns count as zero.
    pub fn accumulate(
        &mut self,
        window_ns: u64,
        counts: &[Vec<u64>],
    ) -> Result<(), WindowMismatch> {
        if self.window_ns == 0 {
            self.window_ns = window_ns;
        }
        if self.window_ns != window_ns {
            return Err(WindowMismatch { expected_ns: self.window_ns, got_ns: window_ns });
        }
        if self.bytes.len() < counts.len() {
            self.bytes.resize_with(counts.len(), Vec::new);
        }
        for (w, apps) in counts.iter().enumerate() {
            // Size each row independently: routers report only the apps
            // they routed for, so rows legitimately differ in length.
            if self.bytes[w].len() < apps.len() {
                self.bytes[w].resize(apps.len(), 0);
            }
            for (a, &b) in apps.iter().enumerate() {
                self.bytes[w][a] += b;
            }
        }
        Ok(())
    }

    /// Peak bytes per window for one app.
    pub fn peak(&self, app: usize) -> u64 {
        self.bytes.iter().map(|w| w.get(app).copied().unwrap_or(0)).max().unwrap_or(0)
    }

    /// Total bytes over all windows for one app.
    pub fn total(&self, app: usize) -> u64 {
        self.bytes.iter().map(|w| w.get(app).copied().unwrap_or(0)).sum()
    }
}

/// Global/local link load summary (Table VI).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LinkLoad {
    pub global_bytes: u64,
    pub local_bytes: u64,
    pub terminal_bytes: u64,
    pub n_global_links: u64,
    pub n_local_links: u64,
}

impl LinkLoad {
    /// Average load per global link, bytes.
    pub fn per_global_link(&self) -> f64 {
        if self.n_global_links == 0 {
            0.0
        } else {
            self.global_bytes as f64 / self.n_global_links as f64
        }
    }

    /// Average load per local link, bytes.
    pub fn per_local_link(&self) -> f64 {
        if self.n_local_links == 0 {
            0.0
        } else {
            self.local_bytes as f64 / self.n_local_links as f64
        }
    }

    /// Fraction of router-to-router traffic on global links.
    pub fn global_fraction(&self) -> f64 {
        let total = self.global_bytes + self.local_bytes;
        if total == 0 {
            0.0
        } else {
            self.global_bytes as f64 / total as f64
        }
    }
}

/// Pretty-print bytes in the units the paper uses.
pub fn fmt_bytes(b: f64) -> String {
    if b >= 1e12 {
        format!("{:.2} TB", b / 1e12)
    } else if b >= 1e9 {
        format!("{:.2} GB", b / 1e9)
    } else if b >= 1e6 {
        format!("{:.2} MB", b / 1e6)
    } else if b >= 1e3 {
        format!("{:.2} KB", b / 1e3)
    } else {
        format!("{b:.0} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boxplot_of_known_distribution() {
        let b = Boxplot::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(b.min, 1.0);
        assert_eq!(b.q1, 2.0);
        assert_eq!(b.median, 3.0);
        assert_eq!(b.q3, 4.0);
        assert_eq!(b.max, 5.0);
        assert_eq!(b.mean, 3.0);
        assert_eq!(b.count, 5);
    }

    #[test]
    fn boxplot_interpolates_quartiles() {
        let b = Boxplot::from_samples(&[1.0, 2.0, 3.0, 4.0]);
        assert!((b.q1 - 1.75).abs() < 1e-9);
        assert!((b.median - 2.5).abs() < 1e-9);
        assert!((b.q3 - 3.25).abs() < 1e-9);
    }

    #[test]
    fn boxplot_empty_and_single() {
        assert_eq!(Boxplot::from_samples(&[]), Boxplot::default());
        let b = Boxplot::from_samples(&[7.0]);
        assert_eq!((b.min, b.median, b.max, b.mean), (7.0, 7.0, 7.0, 7.0));
    }

    #[test]
    fn latency_recorder_tracks_min_avg_max() {
        let mut r = LatencyRecorder::default();
        r.record(100);
        r.record(300);
        r.record(200);
        assert_eq!(r.min_ns, 100);
        assert_eq!(r.max_ns, 300);
        assert_eq!(r.avg_ns(), 200.0);
        let mut r2 = LatencyRecorder::default();
        r2.record(50);
        r.merge(&r2);
        assert_eq!(r.min_ns, 50);
        assert_eq!(r.count, 4);
    }

    #[test]
    fn comm_timer_accumulates_blocked_intervals() {
        let mut t = CommTimer::default();
        t.block(100);
        assert!(t.is_blocked());
        t.unblock(250);
        t.block(300);
        t.unblock(350);
        assert_eq!(t.total_ns, 200);
        // Unblock without block is a no-op.
        t.unblock(999);
        assert_eq!(t.total_ns, 200);
    }

    #[test]
    fn time_series_accumulates_across_routers() {
        let mut ts = TimeSeries::default();
        ts.accumulate(500, &[vec![10, 0], vec![5, 1]]).unwrap();
        ts.accumulate(500, &[vec![1, 1]]).unwrap();
        assert_eq!(ts.bytes[0], vec![11, 1]);
        assert_eq!(ts.bytes[1], vec![5, 1]);
        assert_eq!(ts.peak(0), 11);
        assert_eq!(ts.total(0), 16);
        assert_eq!(ts.total(1), 2);
    }

    #[test]
    fn time_series_rejects_mismatched_windows() {
        let mut ts = TimeSeries::default();
        ts.accumulate(500, &[vec![10]]).unwrap();
        // A second source binned at 250 ns must be rejected — in every
        // build profile, not just with debug assertions — and must leave
        // the series untouched.
        let err = ts.accumulate(250, &[vec![7]]).unwrap_err();
        assert_eq!(err, WindowMismatch { expected_ns: 500, got_ns: 250 });
        assert!(err.to_string().contains("500"), "{err}");
        assert_eq!(ts.bytes[0], vec![10]);
        assert_eq!(ts.window_ns, 500);
    }

    #[test]
    fn time_series_handles_ragged_rows() {
        let mut ts = TimeSeries::default();
        // First router reports one app; the second reports three apps and
        // an extra window. Rows must be sized independently (sizing every
        // row from the first one used to leave later columns unallocated).
        ts.accumulate(500, &[vec![1]]).unwrap();
        ts.accumulate(500, &[vec![2, 3, 4], vec![5]]).unwrap();
        assert_eq!(ts.bytes[0], vec![3, 3, 4]);
        assert_eq!(ts.bytes[1], vec![5]);
        // Ragged rows within one call, widest row last.
        let mut ts2 = TimeSeries::default();
        ts2.accumulate(500, &[vec![1], vec![2, 3]]).unwrap();
        assert_eq!(ts2.bytes[0], vec![1]);
        assert_eq!(ts2.bytes[1], vec![2, 3]);
    }

    #[test]
    fn boxplot_ignores_and_flags_nan() {
        // NaNs used to panic inside sort_by(partial_cmp().unwrap()).
        let b = Boxplot::from_samples(&[3.0, f64::NAN, 1.0, 2.0]);
        assert_eq!((b.min, b.median, b.max), (1.0, 2.0, 3.0));
        assert_eq!(b.mean, 2.0);
        assert_eq!(b.count, 3);
        assert_eq!(b.nan_count, 1);
        // All-NaN input degrades to the empty box, with the drop flagged.
        let all = Boxplot::from_samples(&[f64::NAN, f64::NAN]);
        assert_eq!(all.count, 0);
        assert_eq!(all.nan_count, 2);
        assert_eq!((all.min, all.max), (0.0, 0.0));
    }

    #[test]
    fn link_load_averages() {
        let l = LinkLoad {
            global_bytes: 1000,
            local_bytes: 3000,
            terminal_bytes: 0,
            n_global_links: 10,
            n_local_links: 30,
        };
        assert_eq!(l.per_global_link(), 100.0);
        assert_eq!(l.per_local_link(), 100.0);
        assert_eq!(l.global_fraction(), 0.25);
    }

    #[test]
    fn app_latency_summary_skips_idle_ranks() {
        let mut a = LatencyRecorder::default();
        a.record(10);
        let idle = LatencyRecorder::default();
        let s = AppLatencySummary::from_ranks(&[a, idle]);
        assert_eq!(s.max_box.count, 1);
        assert_eq!(s.max_box.max, 10.0);
    }

    #[test]
    fn fmt_bytes_units() {
        assert_eq!(fmt_bytes(500.0), "500 B");
        assert_eq!(fmt_bytes(1.26e12), "1.26 TB");
        assert_eq!(fmt_bytes(313.23e6), "313.23 MB");
    }
}
