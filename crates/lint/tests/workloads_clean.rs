//! Every bundled workload skeleton must lint clean — no errors, no
//! warnings, no infos — at its Quick-profile configuration. A finding
//! here means either a workload regressed or the analysis grew a false
//! positive; both are bugs.

use union_lint::{lint_skeleton, lint_trace, LintOptions};
use workloads::{app, AppKind, Profile};

#[test]
fn all_bundled_workloads_lint_clean() {
    let opts = LintOptions::default();
    for kind in AppKind::ALL {
        let cfg = app(kind, Profile::Quick, 2, 4096);
        let args: Vec<&str> = cfg.args.iter().map(|s| s.as_str()).collect();
        let r = lint_skeleton(&cfg.skeleton, cfg.ranks, &args, &opts);
        assert!(r.is_empty(), "{kind:?} at {} ranks:\n{r}", cfg.ranks);
    }
}

#[test]
fn recorded_workload_trace_lints_clean() {
    // The trace path sees exactly what the simulator would execute; a
    // recorded clean skeleton must stay clean through it.
    let cfg = app(AppKind::NearestNeighbor, Profile::Quick, 2, 4096);
    let args: Vec<&str> = cfg.args.iter().map(|s| s.as_str()).collect();
    let inst = union_core::SkeletonInstance::new(&cfg.skeleton, cfg.ranks, &args).unwrap();
    let trace = union_core::Trace::record(&inst, 42);
    let r = lint_trace(&trace, &LintOptions::default());
    assert!(r.is_empty(), "{r}");
}
