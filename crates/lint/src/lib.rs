//! # union-lint
//!
//! Static analysis for the Union workload pipeline, run *before* any
//! simulation time is spent (the paper's workflow burns hours of PDES
//! time per configuration — a skeleton that deadlocks or a parallel
//! schedule that violates causality should be rejected up front).
//!
//! Two tiers:
//!
//! * **Skeleton analysis** ([`lint_skeleton`], [`lint_trace`]): expand
//!   each rank's op stream symbolically (bounded loop unrolling — see
//!   [`LintOptions`]), then check cross-rank properties: communication
//!   deadlocks (wait-for cycles among blocking sends/receives/collectives),
//!   collective-sequence divergence, out-of-range or self-blocking
//!   targets, and dead code. Anything data- or RNG-dependent degrades
//!   conservatively (truncated expansion is reported as an `info`, not
//!   guessed at).
//! * **Model analysis** ([`model::ModelGraph`]): given the LP-level delay
//!   edges of an assembled CODES model, compute the minimum
//!   cross-partition send delay and validate a `par:T:L` schedule's
//!   lookahead window against it before the run starts.
//!
//! Findings use [`conceptual::Diagnostic`] / [`conceptual::Report`], the
//! same types the compiler front end reports through, so parse errors and
//! whole-program findings render identically.

pub mod expand;
pub mod fixtures;
pub mod model;
mod skeleton;

pub use conceptual::{Diagnostic, Report, Severity};
pub use expand::{expand_rank, ExpandStatus, ExpandedRank};

use union_core::{Skeleton, SkeletonInstance, Trace};

/// Budgets and thresholds for the skeleton analysis.
#[derive(Clone, Debug)]
pub struct LintOptions {
    /// Max interpreter steps per rank before expansion is truncated.
    pub max_steps_per_rank: usize,
    /// Max emitted ops per rank before expansion is truncated.
    pub max_ops_per_rank: usize,
    /// Largest message sent eagerly (buffered, sender never blocks);
    /// larger blocking sends rendezvous. Matches the simulator's MPI
    /// layer default.
    pub eager_max: u64,
}

impl Default for LintOptions {
    fn default() -> LintOptions {
        LintOptions { max_steps_per_rank: 200_000, max_ops_per_rank: 4096, eager_max: 16 * 1024 }
    }
}

/// Lint a skeleton at a concrete configuration (`num_tasks` ranks,
/// argv-style parameter overrides).
pub fn lint_skeleton(skel: &Skeleton, num_tasks: u32, args: &[&str], opts: &LintOptions) -> Report {
    match SkeletonInstance::new(skel, num_tasks, args) {
        Ok(inst) => lint_instance(&inst, opts),
        Err(e) => {
            let code = if e.contains("out of range") { "out-of-range" } else { "instantiate" };
            Report::from(Diagnostic::error(code, e))
        }
    }
}

/// Lint an already-instantiated skeleton.
pub fn lint_instance(inst: &SkeletonInstance, opts: &LintOptions) -> Report {
    let streams: Vec<ExpandedRank> =
        (0..inst.num_tasks).map(|r| expand_rank(inst, r, opts)).collect();
    skeleton::analyze(&streams, Some(inst.code().len()), opts)
}

/// Lint coNCePTuaL source directly (compile + translate + lint). Compile
/// errors come back through the same report.
pub fn lint_source(
    src: &str,
    name: &str,
    num_tasks: u32,
    args: &[&str],
    opts: &LintOptions,
) -> Report {
    match union_core::translate_source(src, name) {
        Ok(skel) => lint_skeleton(&skel, num_tasks, args, opts),
        Err(e) => Report::from(Diagnostic::from(e)),
    }
}

/// Lint a recorded trace. Unlike skeletons — whose collectives are
/// emitted unconditionally under rank-uniform control flow, making
/// rank-divergent collective sequences unexpressible — a trace is raw
/// per-rank history and can carry any defect the recording application
/// had, so this is where collective-order mismatches show up in practice.
pub fn lint_trace(trace: &Trace, opts: &LintOptions) -> Report {
    let streams: Vec<ExpandedRank> = trace
        .ops
        .iter()
        .enumerate()
        .map(|(r, ops)| ExpandedRank {
            rank: r as u32,
            ops: ops.iter().enumerate().map(|(i, op)| (i, *op)).collect(),
            visited: Default::default(),
            status: ExpandStatus::Complete,
        })
        .collect();
    skeleton::analyze(&streams, None, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use union_core::translate_source;

    fn skel(src: &str) -> Skeleton {
        translate_source(src, "t").unwrap()
    }

    #[test]
    fn ping_pong_is_clean() {
        let r = lint_skeleton(
            &skel(
                "for 3 repetitions { task 0 sends a 1024 byte message to task 1 then \
                 task 1 sends a 1024 byte message to task 0 }.",
            ),
            2,
            &[],
            &LintOptions::default(),
        );
        assert!(r.is_empty(), "{r}");
    }

    #[test]
    fn ring_with_waitall_is_clean() {
        let r = lint_skeleton(
            &skel(
                "all tasks t asynchronously send a 64 byte message to task (t+1) mod num_tasks \
                 then all tasks await completions.",
            ),
            8,
            &[],
            &LintOptions::default(),
        );
        assert!(r.is_empty(), "{r}");
    }

    #[test]
    fn collectives_are_clean() {
        let r = lint_skeleton(
            &skel(
                "all tasks reduce a 1024 byte message to all tasks then \
                 task 0 multicasts a 25 byte message to all other tasks then \
                 all tasks synchronize.",
            ),
            4,
            &[],
            &LintOptions::default(),
        );
        assert!(r.is_empty(), "{r}");
    }

    #[test]
    fn eager_send_exchange_is_clean() {
        // Simultaneous blocking sends below the eager threshold complete
        // without rendezvous — the classic "works because it's small" case.
        let r = lint_skeleton(
            &skel("all tasks t send a 512 byte message to task (1 - t)."),
            2,
            &[],
            &LintOptions::default(),
        );
        assert!(r.is_empty(), "{r}");
    }

    #[test]
    fn rendezvous_send_exchange_deadlocks() {
        let r = lint_skeleton(
            &skel("all tasks t send a 1048576 byte message to task (1 - t)."),
            2,
            &[],
            &LintOptions::default(),
        );
        assert_eq!(r.len(), 1, "{r}");
        let d = r.iter().next().unwrap();
        assert_eq!(d.code, "deadlock");
        assert_eq!(d.severity, Severity::Error);
    }

    #[test]
    fn self_send_blocks() {
        let r = lint_skeleton(
            &skel("task 0 sends a 1048576 byte message to task 0."),
            2,
            &[],
            &LintOptions::default(),
        );
        assert_eq!(r.len(), 1, "{r}");
        assert_eq!(r.iter().next().unwrap().code, "self-block");
    }

    #[test]
    fn reduce_root_out_of_range() {
        let r = lint_skeleton(
            &skel("all tasks reduce a 8 byte message to task num_tasks."),
            4,
            &[],
            &LintOptions::default(),
        );
        assert_eq!(r.len(), 1, "{r}");
        let d = r.iter().next().unwrap();
        assert_eq!(d.code, "out-of-range");
        assert!(d.message.contains("reduce root 4 out of range"), "{}", d.message);
    }

    #[test]
    fn mesh_edges_are_not_flagged() {
        // Out-of-range Single destinations are the mesh-edge idiom and
        // must stay silent, matching the VM.
        let skel = union_core::Builder::new("mesh")
            .send_nb(
                conceptual::parser::parse_expr("MESH_NEIGHBOR(2,2,1, t, 1,0,0)").unwrap(),
                conceptual::Expr::Int(8),
            )
            .build()
            .unwrap();
        let r = lint_skeleton(&skel, 4, &[], &LintOptions::default());
        assert!(r.is_empty(), "{r}");
    }

    #[test]
    fn zero_rep_loop_is_dead_code() {
        let r = lint_skeleton(
            &skel("for 0 repetitions task 0 sends a 8 byte message to task 1."),
            2,
            &[],
            &LintOptions::default(),
        );
        assert_eq!(r.len(), 1, "{r}");
        let d = r.iter().next().unwrap();
        assert_eq!(d.code, "dead-code");
        assert_eq!(d.severity, Severity::Warning);
    }

    #[test]
    fn budget_truncation_is_reported_as_info() {
        let opts = LintOptions { max_ops_per_rank: 4, ..LintOptions::default() };
        let r = lint_skeleton(
            &skel(
                "for 100 repetitions { task 0 sends a 8 byte message to task 1 then \
                 task 1 sends a 8 byte message to task 0 }.",
            ),
            2,
            &[],
            &opts,
        );
        assert_eq!(r.max_severity(), Some(Severity::Info), "{r}");
        assert!(r.iter().any(|d| d.code == "budget"), "{r}");
    }

    #[test]
    fn divergent_trace_collectives_are_flagged() {
        use union_core::MpiOp;
        let t = Trace {
            ops: vec![
                vec![MpiOp::Init, MpiOp::Barrier, MpiOp::Allreduce { bytes: 8 }, MpiOp::Finalize],
                vec![MpiOp::Init, MpiOp::Allreduce { bytes: 8 }, MpiOp::Barrier, MpiOp::Finalize],
            ],
        };
        let r = lint_trace(&t, &LintOptions::default());
        assert_eq!(r.len(), 1, "{r}");
        assert_eq!(r.iter().next().unwrap().code, "collective-divergence");
    }

    #[test]
    fn recorded_trace_of_clean_skeleton_is_clean() {
        let s = skel(
            "all tasks t asynchronously send a 32 byte message to task (t+1) mod num_tasks \
             then all tasks await completions then all tasks synchronize.",
        );
        let inst = SkeletonInstance::new(&s, 4, &[]).unwrap();
        let trace = Trace::record(&inst, 7);
        let r = lint_trace(&trace, &LintOptions::default());
        assert!(r.is_empty(), "{r}");
    }

    #[test]
    fn unreceived_isend_in_trace_warns() {
        use union_core::MpiOp;
        let t = Trace {
            ops: vec![
                vec![MpiOp::Init, MpiOp::Isend { dst: 1, bytes: 8, tag: 0 }, MpiOp::Finalize],
                vec![MpiOp::Init, MpiOp::Finalize],
            ],
        };
        let r = lint_trace(&t, &LintOptions::default());
        assert_eq!(r.max_severity(), Some(Severity::Warning), "{r}");
        assert!(r.iter().any(|d| d.code == "unmatched-send"), "{r}");
    }

    #[test]
    fn recv_from_terminated_rank_is_unmatched() {
        use union_core::MpiOp;
        let t = Trace {
            ops: vec![
                vec![MpiOp::Init, MpiOp::Recv { src: 1, bytes: 8, tag: 0 }, MpiOp::Finalize],
                vec![MpiOp::Init, MpiOp::Finalize],
            ],
        };
        let r = lint_trace(&t, &LintOptions::default());
        assert_eq!(r.len(), 1, "{r}");
        assert_eq!(r.iter().next().unwrap().code, "unmatched");
    }
}
