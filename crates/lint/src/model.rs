//! Model-level analysis: lookahead validation for conservative-parallel
//! schedules.
//!
//! The conservative protocol is only correct when every event crossing a
//! partition boundary is scheduled at least one lookahead window into the
//! future. The engine enforces this at runtime with a hard panic — hours
//! into a run. This pass computes, *statically*, the minimum delay of any
//! LP-to-LP edge that crosses a partition, and rejects a `par:T:L`
//! schedule whose window exceeds it before the simulation starts.
//!
//! The graph is plain data (LP indices, block assignments, delays in
//! nanoseconds) so this crate stays independent of the network-model
//! crates; the harness extracts edges from the assembled CODES model.

use conceptual::{Diagnostic, Report};

/// One static LP-to-LP scheduling edge: "src may send dst an event no
/// sooner than `delay_ns` after now".
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DelayEdge {
    pub src_lp: u32,
    pub dst_lp: u32,
    pub delay_ns: u64,
    /// Edge class, for diagnostics (e.g. `"packet"`, `"credit"`).
    pub kind: &'static str,
}

/// The delay graph of an assembled model, with its partition (scheduler
/// block) assignment.
#[derive(Clone, Debug)]
pub struct ModelGraph {
    /// `block_of[lp]` = the scheduler block the LP belongs to. LPs in the
    /// same block always execute on one thread, so only edges between
    /// different blocks constrain the lookahead window.
    pub block_of: Vec<u32>,
    pub edges: Vec<DelayEdge>,
    /// Human-readable LP names for diagnostics, indexed by LP id
    /// (empty = use `lp N`).
    pub names: Vec<String>,
}

impl ModelGraph {
    pub fn new(block_of: Vec<u32>, edges: Vec<DelayEdge>) -> ModelGraph {
        ModelGraph { block_of, edges, names: Vec::new() }
    }

    pub fn with_names(mut self, names: Vec<String>) -> ModelGraph {
        self.names = names;
        self
    }

    fn name(&self, lp: u32) -> String {
        self.names.get(lp as usize).cloned().unwrap_or_else(|| format!("lp {lp}"))
    }

    fn is_cross(&self, e: &DelayEdge) -> bool {
        let (s, d) = (e.src_lp as usize, e.dst_lp as usize);
        match (self.block_of.get(s), self.block_of.get(d)) {
            (Some(a), Some(b)) => a != b,
            // An edge to an unknown LP crosses by definition — be
            // conservative rather than silently ignoring it.
            _ => true,
        }
    }

    /// Minimum delay over all cross-partition edges, with the edge that
    /// attains it. `None` when no edge crosses a partition (single-block
    /// models can use any window).
    pub fn min_cross_partition_delay(&self) -> Option<(u64, &DelayEdge)> {
        self.edges
            .iter()
            .filter(|e| self.is_cross(e))
            .map(|e| (e.delay_ns, e))
            .min_by_key(|(d, _)| *d)
    }

    fn is_cross_shard(&self, e: &DelayEdge, shard_of: &[u32]) -> bool {
        let (s, d) = (e.src_lp as usize, e.dst_lp as usize);
        match (shard_of.get(s), shard_of.get(d)) {
            (Some(a), Some(b)) => a != b,
            // Same conservatism as `is_cross`: an edge touching an LP the
            // owner map doesn't cover is treated as crossing.
            _ => true,
        }
    }

    /// Minimum delay over all cross-shard edges given the shard-level
    /// owner map (`shard_of[lp]` = owning shard), with the edge that
    /// attains it. Shards own whole partition blocks, so this is never
    /// smaller than [`ModelGraph::min_cross_partition_delay`] — a
    /// `shard:N:1:L` window can legally exceed what `par:T:L` allows.
    pub fn min_cross_shard_delay(&self, shard_of: &[u32]) -> Option<(u64, &DelayEdge)> {
        self.edges
            .iter()
            .filter(|e| self.is_cross_shard(e, shard_of))
            .map(|e| (e.delay_ns, e))
            .min_by_key(|(d, _)| *d)
    }

    /// Validate a `shard:N:T:L` lookahead window (ns) against the graph.
    ///
    /// The sharded conservative protocol synchronizes on two kinds of
    /// edges: cross-shard edges always (the Mattern fence bounds them by
    /// the window), and intra-shard cross-block edges whenever each
    /// shard runs more than one worker thread (the in-process
    /// conservative rounds bound those by the same window). Errors name
    /// the offending LP pair and where the edge crosses.
    pub fn check_shard_lookahead(
        &self,
        shard_of: &[u32],
        threads_per_shard: usize,
        window_ns: u64,
    ) -> Report {
        let constrains = |e: &DelayEdge| {
            self.is_cross_shard(e, shard_of) || (threads_per_shard > 1 && self.is_cross(e))
        };
        let locus = |e: &DelayEdge| -> String {
            if self.is_cross_shard(e, shard_of) {
                let (s, d) = (e.src_lp as usize, e.dst_lp as usize);
                match (shard_of.get(s), shard_of.get(d)) {
                    (Some(a), Some(b)) => format!("crosses shards {a} -> {b}"),
                    _ => "leaves the shard-owner map".to_string(),
                }
            } else {
                let s = shard_of.get(e.src_lp as usize).copied().unwrap_or(0);
                format!("crosses worker threads within shard {s}")
            }
        };
        let mut report = Report::new();
        for e in self.edges.iter().filter(|e| constrains(e) && e.delay_ns == 0) {
            report.push(Diagnostic::error(
                "zero-delay",
                format!(
                    "zero-delay {} edge {} -> {} {}; no positive lookahead window is safe \
                     for this model under sharded scheduling",
                    e.kind,
                    self.name(e.src_lp),
                    self.name(e.dst_lp),
                    locus(e)
                ),
            ));
        }
        let min = self
            .edges
            .iter()
            .filter(|e| constrains(e))
            .map(|e| (e.delay_ns, e))
            .min_by_key(|(d, _)| *d);
        if let Some((min, e)) = min {
            if min > 0 && window_ns > min {
                report.push(Diagnostic::error(
                    "lookahead",
                    format!(
                        "lookahead window {window_ns} ns exceeds the minimum synchronized \
                         delay {min} ns ({} edge {} -> {}, {}); the sharded conservative \
                         protocol would violate causality",
                        e.kind,
                        self.name(e.src_lp),
                        self.name(e.dst_lp),
                        locus(e)
                    ),
                ));
            }
        }
        report
    }

    /// Validate a conservative-parallel lookahead window (ns) against the
    /// graph. Errors name the offending LP pair.
    pub fn check_lookahead(&self, window_ns: u64) -> Report {
        let mut report = Report::new();
        for e in self.edges.iter().filter(|e| self.is_cross(e) && e.delay_ns == 0) {
            report.push(Diagnostic::error(
                "zero-delay",
                format!(
                    "zero-delay {} edge crosses partitions: {} -> {}; no positive lookahead \
                     window is safe for this model",
                    e.kind,
                    self.name(e.src_lp),
                    self.name(e.dst_lp)
                ),
            ));
        }
        if let Some((min, e)) = self.min_cross_partition_delay() {
            if min > 0 && window_ns > min {
                report.push(Diagnostic::error(
                    "lookahead",
                    format!(
                        "lookahead window {window_ns} ns exceeds the minimum cross-partition \
                         delay {min} ns ({} edge {} -> {}); the conservative scheduler would \
                         violate causality",
                        e.kind,
                        self.name(e.src_lp),
                        self.name(e.dst_lp)
                    ),
                ));
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Severity;

    fn edge(src: u32, dst: u32, delay: u64) -> DelayEdge {
        DelayEdge { src_lp: src, dst_lp: dst, delay_ns: delay, kind: "packet" }
    }

    #[test]
    fn min_delay_ignores_intra_partition_edges() {
        // LPs 0,1 in block 0; LP 2 in block 1. The 5 ns edge is internal.
        let g =
            ModelGraph::new(vec![0, 0, 1], vec![edge(0, 1, 5), edge(1, 2, 120), edge(2, 0, 90)]);
        let (min, e) = g.min_cross_partition_delay().unwrap();
        assert_eq!(min, 90);
        assert_eq!((e.src_lp, e.dst_lp), (2, 0));
    }

    #[test]
    fn single_block_has_no_constraint() {
        let g = ModelGraph::new(vec![0, 0], vec![edge(0, 1, 1)]);
        assert!(g.min_cross_partition_delay().is_none());
        assert!(g.check_lookahead(u64::MAX).is_empty());
    }

    #[test]
    fn oversized_window_is_rejected_with_lp_pair() {
        let g = ModelGraph::new(vec![0, 1], vec![edge(0, 1, 100)])
            .with_names(vec!["node 0".into(), "router 0".into()]);
        let r = g.check_lookahead(150);
        assert_eq!(r.len(), 1, "{r}");
        let d = r.iter().next().unwrap();
        assert_eq!(d.code, "lookahead");
        assert_eq!(d.severity, Severity::Error);
        assert!(d.message.contains("node 0 -> router 0"), "{}", d.message);
        assert!(g.check_lookahead(100).is_empty(), "window == min delay is safe");
        assert!(g.check_lookahead(1).is_empty());
    }

    #[test]
    fn zero_delay_cross_edge_is_always_an_error() {
        let g = ModelGraph::new(vec![0, 1], vec![edge(0, 1, 0)]);
        let r = g.check_lookahead(1);
        assert!(r.iter().any(|d| d.code == "zero-delay"), "{r}");
    }

    #[test]
    fn shard_check_ignores_intra_shard_block_edges_at_one_thread() {
        // Blocks 0,1 live on shard 0; block 2 on shard 1. The 10 ns edge
        // is cross-block but intra-shard: it binds `par` but not
        // `shard:2:1`.
        let g = ModelGraph::new(vec![0, 1, 2], vec![edge(0, 1, 10), edge(1, 2, 80)]);
        let shard_of = vec![0, 0, 1];
        let (min, e) = g.min_cross_shard_delay(&shard_of).unwrap();
        assert_eq!(min, 80);
        assert_eq!((e.src_lp, e.dst_lp), (1, 2));
        assert!(g.check_lookahead(50).has_errors(), "par rejects the 10 ns edge");
        assert!(g.check_shard_lookahead(&shard_of, 1, 50).is_empty());
        assert!(g.check_shard_lookahead(&shard_of, 1, 80).is_empty());
        let r = g.check_shard_lookahead(&shard_of, 1, 81);
        assert_eq!(r.len(), 1, "{r}");
        let d = r.iter().next().unwrap();
        assert_eq!(d.code, "lookahead");
        assert!(d.message.contains("lp 1 -> lp 2"), "{}", d.message);
        assert!(d.message.contains("crosses shards 0 -> 1"), "{}", d.message);
    }

    #[test]
    fn shard_check_with_threads_also_binds_intra_shard_block_edges() {
        let g = ModelGraph::new(vec![0, 1, 2], vec![edge(0, 1, 10), edge(1, 2, 80)]);
        let shard_of = vec![0, 0, 1];
        let r = g.check_shard_lookahead(&shard_of, 2, 50);
        assert_eq!(r.len(), 1, "{r}");
        let d = r.iter().next().unwrap();
        assert!(d.message.contains("lp 0 -> lp 1"), "{}", d.message);
        assert!(d.message.contains("within shard 0"), "{}", d.message);
        assert!(g.check_shard_lookahead(&shard_of, 2, 10).is_empty());
    }

    #[test]
    fn shard_check_zero_delay_and_unknown_lp_are_conservative() {
        let g = ModelGraph::new(vec![0, 1], vec![edge(0, 1, 0)]);
        let r = g.check_shard_lookahead(&[0, 1], 1, 1);
        assert!(r.iter().any(|d| d.code == "zero-delay"), "{r}");
        // An edge to an LP the owner map doesn't cover counts as crossing.
        let g = ModelGraph::new(vec![0, 0], vec![edge(0, 5, 30)]);
        assert!(g.check_shard_lookahead(&[0, 0], 1, 40).has_errors());
        // Single shard, single thread: nothing is synchronized at all.
        let g = ModelGraph::new(vec![0, 1], vec![edge(0, 1, 10)]);
        assert!(g.check_shard_lookahead(&[0, 0], 1, u64::MAX).is_empty());
    }
}
