//! Model-level analysis: lookahead validation for conservative-parallel
//! schedules.
//!
//! The conservative protocol is only correct when every event crossing a
//! partition boundary is scheduled at least one lookahead window into the
//! future. The engine enforces this at runtime with a hard panic — hours
//! into a run. This pass computes, *statically*, the minimum delay of any
//! LP-to-LP edge that crosses a partition, and rejects a `par:T:L`
//! schedule whose window exceeds it before the simulation starts.
//!
//! The graph is plain data (LP indices, block assignments, delays in
//! nanoseconds) so this crate stays independent of the network-model
//! crates; the harness extracts edges from the assembled CODES model.

use conceptual::{Diagnostic, Report};

/// One static LP-to-LP scheduling edge: "src may send dst an event no
/// sooner than `delay_ns` after now".
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DelayEdge {
    pub src_lp: u32,
    pub dst_lp: u32,
    pub delay_ns: u64,
    /// Edge class, for diagnostics (e.g. `"packet"`, `"credit"`).
    pub kind: &'static str,
}

/// The delay graph of an assembled model, with its partition (scheduler
/// block) assignment.
#[derive(Clone, Debug)]
pub struct ModelGraph {
    /// `block_of[lp]` = the scheduler block the LP belongs to. LPs in the
    /// same block always execute on one thread, so only edges between
    /// different blocks constrain the lookahead window.
    pub block_of: Vec<u32>,
    pub edges: Vec<DelayEdge>,
    /// Human-readable LP names for diagnostics, indexed by LP id
    /// (empty = use `lp N`).
    pub names: Vec<String>,
}

impl ModelGraph {
    pub fn new(block_of: Vec<u32>, edges: Vec<DelayEdge>) -> ModelGraph {
        ModelGraph { block_of, edges, names: Vec::new() }
    }

    pub fn with_names(mut self, names: Vec<String>) -> ModelGraph {
        self.names = names;
        self
    }

    fn name(&self, lp: u32) -> String {
        self.names.get(lp as usize).cloned().unwrap_or_else(|| format!("lp {lp}"))
    }

    fn is_cross(&self, e: &DelayEdge) -> bool {
        let (s, d) = (e.src_lp as usize, e.dst_lp as usize);
        match (self.block_of.get(s), self.block_of.get(d)) {
            (Some(a), Some(b)) => a != b,
            // An edge to an unknown LP crosses by definition — be
            // conservative rather than silently ignoring it.
            _ => true,
        }
    }

    /// Minimum delay over all cross-partition edges, with the edge that
    /// attains it. `None` when no edge crosses a partition (single-block
    /// models can use any window).
    pub fn min_cross_partition_delay(&self) -> Option<(u64, &DelayEdge)> {
        self.edges
            .iter()
            .filter(|e| self.is_cross(e))
            .map(|e| (e.delay_ns, e))
            .min_by_key(|(d, _)| *d)
    }

    /// Validate a conservative-parallel lookahead window (ns) against the
    /// graph. Errors name the offending LP pair.
    pub fn check_lookahead(&self, window_ns: u64) -> Report {
        let mut report = Report::new();
        for e in self.edges.iter().filter(|e| self.is_cross(e) && e.delay_ns == 0) {
            report.push(Diagnostic::error(
                "zero-delay",
                format!(
                    "zero-delay {} edge crosses partitions: {} -> {}; no positive lookahead \
                     window is safe for this model",
                    e.kind,
                    self.name(e.src_lp),
                    self.name(e.dst_lp)
                ),
            ));
        }
        if let Some((min, e)) = self.min_cross_partition_delay() {
            if min > 0 && window_ns > min {
                report.push(Diagnostic::error(
                    "lookahead",
                    format!(
                        "lookahead window {window_ns} ns exceeds the minimum cross-partition \
                         delay {min} ns ({} edge {} -> {}); the conservative scheduler would \
                         violate causality",
                        e.kind,
                        self.name(e.src_lp),
                        self.name(e.dst_lp)
                    ),
                ));
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Severity;

    fn edge(src: u32, dst: u32, delay: u64) -> DelayEdge {
        DelayEdge { src_lp: src, dst_lp: dst, delay_ns: delay, kind: "packet" }
    }

    #[test]
    fn min_delay_ignores_intra_partition_edges() {
        // LPs 0,1 in block 0; LP 2 in block 1. The 5 ns edge is internal.
        let g =
            ModelGraph::new(vec![0, 0, 1], vec![edge(0, 1, 5), edge(1, 2, 120), edge(2, 0, 90)]);
        let (min, e) = g.min_cross_partition_delay().unwrap();
        assert_eq!(min, 90);
        assert_eq!((e.src_lp, e.dst_lp), (2, 0));
    }

    #[test]
    fn single_block_has_no_constraint() {
        let g = ModelGraph::new(vec![0, 0], vec![edge(0, 1, 1)]);
        assert!(g.min_cross_partition_delay().is_none());
        assert!(g.check_lookahead(u64::MAX).is_empty());
    }

    #[test]
    fn oversized_window_is_rejected_with_lp_pair() {
        let g = ModelGraph::new(vec![0, 1], vec![edge(0, 1, 100)])
            .with_names(vec!["node 0".into(), "router 0".into()]);
        let r = g.check_lookahead(150);
        assert_eq!(r.len(), 1, "{r}");
        let d = r.iter().next().unwrap();
        assert_eq!(d.code, "lookahead");
        assert_eq!(d.severity, Severity::Error);
        assert!(d.message.contains("node 0 -> router 0"), "{}", d.message);
        assert!(g.check_lookahead(100).is_empty(), "window == min delay is safe");
        assert!(g.check_lookahead(1).is_empty());
    }

    #[test]
    fn zero_delay_cross_edge_is_always_an_error() {
        let g = ModelGraph::new(vec![0, 1], vec![edge(0, 1, 0)]);
        let r = g.check_lookahead(1);
        assert!(r.iter().any(|d| d.code == "zero-delay"), "{r}");
    }
}
