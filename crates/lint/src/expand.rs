//! Symbolic per-rank expansion of a skeleton into finite op streams.
//!
//! This is the lint-side twin of `union_core::vm::RankVm`: the same
//! instruction semantics (loop frames, branches, bindings, per-mode
//! message emission order, silent skip of out-of-range `Single`
//! destinations) but with three deliberate differences:
//!
//! * every evaluation error is a `Result`, never a panic — a bad root or
//!   source index becomes a diagnostic, not an aborted process;
//! * expansion is budgeted (instruction steps and emitted ops per rank)
//!   so a huge or non-terminating configuration degrades to a truncated
//!   prefix instead of hanging the linter;
//! * RNG-driven traffic (`Sel::RandomOther`) is skipped: synthetic sends
//!   are one-sided fire-and-forget, so they cannot participate in a
//!   deadlock and their destinations are irrelevant to the analysis.
//!
//! Visited program counters are recorded so the analysis can report
//! instructions no rank ever executes at the linted configuration.

use conceptual::{eval, eval_cond, Cond, Env, Expr};
use std::collections::BTreeSet;
use union_core::ir::{Instr, LeafOp, MsgMode, ReduceTarget, Sel};
use union_core::vm::{enumerate_pairs, SkeletonInstance};
use union_core::MpiOp;

use crate::LintOptions;

/// How far a rank's expansion got.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExpandStatus {
    /// The whole program was expanded.
    Complete,
    /// A budget ran out; `ops` is a valid prefix of the real stream.
    Truncated,
    /// Evaluation failed at `pc` — the stream up to that point is valid.
    Failed { pc: usize, message: String },
}

/// One rank's expanded op stream. `ops` pairs each op with the program
/// counter of the instruction that emitted it (trace-derived streams use
/// the op index instead).
#[derive(Clone, Debug)]
pub struct ExpandedRank {
    pub rank: u32,
    pub ops: Vec<(usize, MpiOp)>,
    pub visited: BTreeSet<usize>,
    pub status: ExpandStatus,
}

/// Expand `rank`'s stream from an instantiated skeleton.
pub fn expand_rank(inst: &SkeletonInstance, rank: u32, opts: &LintOptions) -> ExpandedRank {
    let mut ex = Expander {
        inst,
        rank,
        env: inst.base_env().clone(),
        pc: 0,
        loops: Vec::new(),
        ops: Vec::new(),
        visited: BTreeSet::new(),
        steps: 0,
        opts,
    };
    let status = match ex.exec() {
        Ok(()) => ExpandStatus::Complete,
        Err(Stop::Budget) => ExpandStatus::Truncated,
        Err(Stop::Fail(pc, message)) => ExpandStatus::Failed { pc, message },
    };
    ExpandedRank { rank, ops: ex.ops, visited: ex.visited, status }
}

enum Stop {
    Budget,
    Fail(usize, String),
}

struct LoopFrame {
    start: usize,
    remaining: i64,
    var: Option<String>,
    next_value: i64,
}

struct Expander<'a> {
    inst: &'a SkeletonInstance,
    rank: u32,
    env: Env,
    pc: usize,
    loops: Vec<LoopFrame>,
    ops: Vec<(usize, MpiOp)>,
    visited: BTreeSet<usize>,
    steps: usize,
    opts: &'a LintOptions,
}

impl Expander<'_> {
    fn exec(&mut self) -> Result<(), Stop> {
        while self.pc < self.inst.code().len() {
            if self.steps >= self.opts.max_steps_per_rank {
                return Err(Stop::Budget);
            }
            self.steps += 1;
            let pc = self.pc;
            self.visited.insert(pc);
            let instr = self.inst.code()[pc].clone();
            match instr {
                Instr::Leaf(op) => {
                    self.pc += 1;
                    self.emit_leaf(pc, &op)?;
                }
                Instr::LoopStart { reps, var, first, end } => {
                    let reps = self.eval(&reps)?;
                    if reps <= 0 {
                        self.pc = end + 1;
                    } else {
                        let first = self.eval(&first)?;
                        if let Some(v) = &var {
                            self.env.bind(v, first);
                        }
                        self.loops.push(LoopFrame {
                            start: pc,
                            remaining: reps - 1,
                            var,
                            next_value: first + 1,
                        });
                        self.pc += 1;
                    }
                }
                Instr::LoopEnd { start } => {
                    let frame = self
                        .loops
                        .last_mut()
                        .ok_or_else(|| Stop::Fail(pc, "LoopEnd without LoopStart".into()))?;
                    debug_assert_eq!(frame.start, start);
                    if frame.remaining > 0 {
                        frame.remaining -= 1;
                        let next = frame.next_value;
                        frame.next_value += 1;
                        if let Some(v) = frame.var.clone() {
                            self.env.unbind(&v);
                            self.env.bind(&v, next);
                        }
                        self.pc = start + 1;
                    } else {
                        if let Some(v) = self.loops.last().unwrap().var.clone() {
                            self.env.unbind(&v);
                        }
                        self.loops.pop();
                        self.pc += 1;
                    }
                }
                Instr::Branch { cond, else_pc } => {
                    if self.eval_cond(&cond)? {
                        self.pc += 1;
                    } else {
                        self.pc = else_pc;
                    }
                }
                Instr::Jump { pc } => {
                    self.pc = pc;
                }
                Instr::Bind { var, value } => {
                    let v = self.eval(&value)?;
                    self.env.bind(&var, v);
                    self.pc += 1;
                }
                Instr::Unbind { var } => {
                    self.env.unbind(&var);
                    self.pc += 1;
                }
            }
        }
        Ok(())
    }

    fn eval(&self, e: &Expr) -> Result<i64, Stop> {
        eval(e, &self.env).map_err(|err| Stop::Fail(self.pc, err.to_string()))
    }

    fn eval_cond(&self, c: &Cond) -> Result<bool, Stop> {
        eval_cond(c, &self.env).map_err(|err| Stop::Fail(self.pc, err.to_string()))
    }

    fn push(&mut self, pc: usize, op: MpiOp) -> Result<(), Stop> {
        if self.ops.len() >= self.opts.max_ops_per_rank {
            return Err(Stop::Budget);
        }
        self.ops.push((pc, op));
        Ok(())
    }

    /// Does `sel` include this rank? Mirrors `RankVm::sel_matches` but
    /// fails instead of panicking on invalid selectors.
    fn sel_matches(&mut self, pc: usize, sel: &Sel) -> Result<Option<Option<String>>, Stop> {
        match sel {
            Sel::All(None) => Ok(Some(None)),
            Sel::All(Some(v)) => {
                self.env.bind(v, self.rank as i64);
                Ok(Some(Some(v.clone())))
            }
            Sel::Single(e) => {
                if self.eval(e)? == self.rank as i64 {
                    Ok(Some(None))
                } else {
                    Ok(None)
                }
            }
            Sel::SuchThat(v, c) => {
                self.env.bind(v, self.rank as i64);
                if self.eval_cond(c)? {
                    Ok(Some(Some(v.clone())))
                } else {
                    self.env.unbind(v);
                    Ok(None)
                }
            }
            Sel::AllOthers | Sel::RandomOther => {
                Err(Stop::Fail(pc, "invalid task selector for this operation".into()))
            }
        }
    }

    fn unbind_sel(&mut self, binding: Option<String>) {
        if let Some(v) = binding {
            self.env.unbind(&v);
        }
    }

    fn emit_leaf(&mut self, pc: usize, op: &LeafOp) -> Result<(), Stop> {
        let n = self.inst.num_tasks;
        match op {
            LeafOp::Message { src, dst, count, bytes, mode } => {
                self.emit_message(pc, src, dst, count, bytes, *mode)
            }
            LeafOp::Multicast { root, bytes } => {
                let root = self.eval(root)?;
                let bytes = self.eval(bytes)?.max(0) as u64;
                if root < 0 || root >= n as i64 {
                    return Err(Stop::Fail(
                        pc,
                        format!("multicast root {root} out of range 0..{n}"),
                    ));
                }
                self.push(pc, MpiOp::Bcast { root: root as u32, bytes })
            }
            LeafOp::Reduce { bytes, target } => {
                let bytes = self.eval(bytes)?.max(0) as u64;
                match target {
                    ReduceTarget::AllTasks => self.push(pc, MpiOp::Allreduce { bytes }),
                    ReduceTarget::Root(e) => {
                        let root = self.eval(e)?;
                        if root < 0 || root >= n as i64 {
                            return Err(Stop::Fail(
                                pc,
                                format!("reduce root {root} out of range 0..{n}"),
                            ));
                        }
                        self.push(pc, MpiOp::Reduce { root: root as u32, bytes })
                    }
                }
            }
            LeafOp::Barrier => self.push(pc, MpiOp::Barrier),
            LeafOp::Compute { tasks, ns } | LeafOp::Sleep { tasks, ns } => {
                if let Some(binding) = self.sel_matches(pc, &tasks.clone())? {
                    let ns = self.eval(ns)?.max(0) as u64;
                    self.unbind_sel(binding);
                    self.push(pc, MpiOp::Compute { ns })?;
                }
                Ok(())
            }
            LeafOp::Await { tasks } => {
                if let Some(binding) = self.sel_matches(pc, &tasks.clone())? {
                    self.unbind_sel(binding);
                    self.push(pc, MpiOp::WaitAll)?;
                }
                Ok(())
            }
            LeafOp::ResetCounters { tasks } => {
                if let Some(binding) = self.sel_matches(pc, &tasks.clone())? {
                    self.unbind_sel(binding);
                    self.push(pc, MpiOp::ResetCounters)?;
                }
                Ok(())
            }
            LeafOp::LogCounters { tasks } => {
                if let Some(binding) = self.sel_matches(pc, &tasks.clone())? {
                    self.unbind_sel(binding);
                    self.push(pc, MpiOp::LogCounters)?;
                }
                Ok(())
            }
            LeafOp::Aggregates { tasks } => {
                if let Some(binding) = self.sel_matches(pc, &tasks.clone())? {
                    self.unbind_sel(binding);
                    self.push(pc, MpiOp::Aggregates)?;
                }
                Ok(())
            }
        }
    }

    fn emit_message(
        &mut self,
        pc: usize,
        src: &Sel,
        dst: &Sel,
        count: &Expr,
        bytes: &Expr,
        mode: MsgMode,
    ) -> Result<(), Stop> {
        // Synthetic random traffic is one-sided and unmatched: no deadlock
        // potential, destination irrelevant — nothing to analyze.
        if matches!(dst, Sel::RandomOther) {
            return Ok(());
        }
        let tag = pc as u32;
        let n = self.inst.num_tasks;
        let rank = self.rank;

        let mut sends: Vec<(u32, u64, u32)> = Vec::new();
        let mut recvs: Vec<(u32, u64, u32)> = Vec::new();
        let mut env = self.env.clone();
        enumerate_pairs(src, dst, count, bytes, n, &mut env, Some(rank), &mut |s, d, b, c| {
            if s == rank {
                sends.push((d, b, c));
            }
        })
        .map_err(|e| Stop::Fail(pc, e))?;
        let mut env = self.env.clone();
        enumerate_pairs(src, dst, count, bytes, n, &mut env, None, &mut |s, d, b, c| {
            if d == rank {
                recvs.push((s, b, c));
            }
        })
        .map_err(|e| Stop::Fail(pc, e))?;

        match mode {
            MsgMode::Async => {
                for &(s, b, c) in &recvs {
                    for _ in 0..c {
                        self.push(pc, MpiOp::Irecv { src: s, bytes: b, tag })?;
                    }
                }
                for &(d, b, c) in &sends {
                    for _ in 0..c {
                        self.push(pc, MpiOp::Isend { dst: d, bytes: b, tag })?;
                    }
                }
            }
            MsgMode::Sync => {
                for &(d, b, c) in &sends {
                    for _ in 0..c {
                        self.push(pc, MpiOp::Send { dst: d, bytes: b, tag })?;
                    }
                }
                for &(s, b, c) in &recvs {
                    for _ in 0..c {
                        self.push(pc, MpiOp::Recv { src: s, bytes: b, tag })?;
                    }
                }
            }
            MsgMode::SendIrecv => {
                for &(s, b, c) in &recvs {
                    for _ in 0..c {
                        self.push(pc, MpiOp::Irecv { src: s, bytes: b, tag })?;
                    }
                }
                for &(d, b, c) in &sends {
                    for _ in 0..c {
                        self.push(pc, MpiOp::Send { dst: d, bytes: b, tag })?;
                    }
                }
                if !recvs.is_empty() {
                    self.push(pc, MpiOp::WaitAll)?;
                }
            }
        }
        Ok(())
    }
}
