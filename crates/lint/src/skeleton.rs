//! Stream-level analysis: collective divergence, deadlock detection, and
//! dead-code reporting over per-rank op streams.
//!
//! The input is whatever produced the streams — the symbolic expander for
//! skeletons, or a recorded [`union_core::Trace`] for trace replay. The
//! passes run in a strict order so each finding is reported once, by the
//! most specific check that can see it:
//!
//! 1. expansion failures (bad roots, bad sources, evaluation errors);
//! 2. collective-sequence divergence (a cross-rank property the deadlock
//!    machine would otherwise report as an opaque cycle);
//! 3. the message-matching machine: unmatched blocking operations and
//!    wait-for cycles;
//! 4. dead code — only when every rank expanded completely and nothing
//!    above fired, since a truncated or failed expansion makes "never
//!    executed" unknowable.
//!
//! The matching machine models the same MPI semantics the simulator's MPI
//! layer uses: eager sends (≤ `LintOptions::eager_max`) complete
//! immediately, larger sends rendezvous (block until matched), receives
//! match by source rank (tags are per-instruction and already agree when
//! sources do), collectives park until every rank arrives.

use conceptual::{Diagnostic, Report};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use union_core::MpiOp;

use crate::expand::{ExpandStatus, ExpandedRank};
use crate::LintOptions;

/// Analyze a set of per-rank streams. `code_len` enables the dead-code
/// pass (skeleton expansions only; trace streams have no program to map
/// back to).
pub(crate) fn analyze(
    streams: &[ExpandedRank],
    code_len: Option<usize>,
    opts: &LintOptions,
) -> Report {
    let mut report = Report::new();

    // 1. Expansion failures. Identical messages across ranks (the common
    // case: every rank fails on the same bad root) collapse to one
    // finding attributed to the lowest failing rank.
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    for s in streams {
        if let ExpandStatus::Failed { pc, message } = &s.status {
            if seen.insert(message) {
                let code = if message.contains("out of range") { "out-of-range" } else { "eval" };
                report.push(Diagnostic::error(code, message.clone()).on_rank(s.rank).at_pc(*pc));
            }
        }
    }
    if !report.is_empty() {
        return report;
    }

    let truncated = streams.iter().any(|s| s.status == ExpandStatus::Truncated);
    if truncated {
        let t = streams.iter().find(|s| s.status == ExpandStatus::Truncated).unwrap();
        report.push(
            Diagnostic::info(
                "budget",
                format!(
                    "expansion budget exhausted after {} ops; analysis covers only the \
                     expanded prefix (raise the budget to lint this configuration fully)",
                    t.ops.len()
                ),
            )
            .on_rank(t.rank),
        );
    }

    // 2. Collective divergence. With truncated streams only the common
    // prefix is comparable.
    if let Some(d) = check_collectives(streams, truncated) {
        report.push(d);
        return report;
    }
    if truncated {
        return report;
    }

    // 3. Deadlock / unmatched-operation analysis.
    let mut machine = Machine::new(streams, opts.eager_max);
    machine.run();
    machine.report(&mut report);

    // 4. Dead code, only on a fully clean, fully expanded program.
    if report.is_empty() {
        if let Some(len) = code_len {
            let mut visited: BTreeSet<usize> = BTreeSet::new();
            for s in streams {
                visited.extend(&s.visited);
            }
            let mut pc = 0;
            while pc < len {
                if visited.contains(&pc) {
                    pc += 1;
                    continue;
                }
                let start = pc;
                while pc < len && !visited.contains(&pc) {
                    pc += 1;
                }
                let msg = if pc - start == 1 {
                    format!(
                        "instruction {start} is never executed by any rank at this configuration"
                    )
                } else {
                    format!(
                        "instructions {start}..={} are never executed by any rank at this configuration",
                        pc - 1
                    )
                };
                report.push(Diagnostic::warning("dead-code", msg).at_pc(start));
            }
        }
    }
    report
}

/// Signature of one collective call; all ranks must issue equal
/// signatures in the same order.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum CollSig {
    Barrier,
    Allreduce(u64),
    Reduce(u32, u64),
    Bcast(u32, u64),
}

impl CollSig {
    fn of(op: &MpiOp) -> Option<CollSig> {
        match op {
            MpiOp::Barrier => Some(CollSig::Barrier),
            MpiOp::Allreduce { bytes } => Some(CollSig::Allreduce(*bytes)),
            MpiOp::Reduce { root, bytes } => Some(CollSig::Reduce(*root, *bytes)),
            MpiOp::Bcast { root, bytes } => Some(CollSig::Bcast(*root, *bytes)),
            _ => None,
        }
    }

    fn desc(&self) -> String {
        match self {
            CollSig::Barrier => "Barrier".into(),
            CollSig::Allreduce(b) => format!("Allreduce({b} B)"),
            CollSig::Reduce(r, b) => format!("Reduce(root {r}, {b} B)"),
            CollSig::Bcast(r, b) => format!("Bcast(root {r}, {b} B)"),
        }
    }
}

/// Compare every rank's ordered collective sequence against rank 0's.
/// Returns the first divergence found.
fn check_collectives(streams: &[ExpandedRank], prefix_only: bool) -> Option<Diagnostic> {
    if streams.len() < 2 {
        return None;
    }
    let seqs: Vec<Vec<(usize, CollSig)>> = streams
        .iter()
        .map(|s| s.ops.iter().filter_map(|(pc, op)| CollSig::of(op).map(|c| (*pc, c))).collect())
        .collect();
    let prefix = seqs.iter().map(|s| s.len()).min().unwrap_or(0);
    for (r, b) in seqs.iter().enumerate().skip(1) {
        let a = &seqs[0];
        for i in 0..a.len().min(b.len()).min(if prefix_only { prefix } else { usize::MAX }) {
            if a[i].1 != b[i].1 {
                return Some(
                    Diagnostic::error(
                        "collective-divergence",
                        format!(
                            "collective sequence diverges at collective #{i}: rank 0 issues {} \
                             but rank {r} issues {}",
                            a[i].1.desc(),
                            b[i].1.desc()
                        ),
                    )
                    .on_rank(r as u32)
                    .at_pc(b[i].0),
                );
            }
        }
        if !prefix_only && a.len() != b.len() {
            return Some(
                Diagnostic::error(
                    "collective-divergence",
                    format!(
                        "rank 0 issues {} collective(s) but rank {r} issues {}",
                        a.len(),
                        b.len()
                    ),
                )
                .on_rank(r as u32),
            );
        }
    }
    None
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Tok {
    Eager,
    Rendezvous,
}

/// The message-matching machine: advances every rank as far as MPI
/// semantics allow, then reads off who is permanently blocked and why.
struct Machine<'a> {
    streams: &'a [ExpandedRank],
    eager_max: u64,
    /// `ip[r]` = index into `streams[r].ops` of the next op to execute.
    ip: Vec<usize>,
    /// In-flight messages not yet matched to a receive, keyed `(src, dst)`.
    channels: BTreeMap<(u32, u32), VecDeque<Tok>>,
    /// Posted nonblocking receives not yet matched, keyed `(src, dst)`.
    pending: BTreeMap<(u32, u32), u32>,
    /// Per-rank count of posted-but-unmatched nonblocking receives.
    outstanding: Vec<u32>,
    /// `sent_offer[r]`: r has published a rendezvous token and is blocked.
    sent_offer: Vec<bool>,
    /// `offer_taken[r]`: r's published rendezvous token was consumed.
    offer_taken: Vec<bool>,
    /// `parked[r]`: r has arrived at its next collective.
    parked: Vec<bool>,
}

impl<'a> Machine<'a> {
    fn new(streams: &'a [ExpandedRank], eager_max: u64) -> Machine<'a> {
        let n = streams.len();
        Machine {
            streams,
            eager_max,
            ip: vec![0; n],
            channels: BTreeMap::new(),
            pending: BTreeMap::new(),
            outstanding: vec![0; n],
            sent_offer: vec![false; n],
            offer_taken: vec![false; n],
            parked: vec![false; n],
        }
    }

    /// A message from `s` arrives at `d`: match a posted receive if one
    /// exists, otherwise buffer it.
    fn deliver(&mut self, s: u32, d: u32, tok: Tok) {
        if let Some(p) = self.pending.get_mut(&(s, d)) {
            if *p > 0 {
                *p -= 1;
                self.outstanding[d as usize] -= 1;
                if tok == Tok::Rendezvous {
                    self.offer_taken[s as usize] = true;
                }
                return;
            }
        }
        self.channels.entry((s, d)).or_default().push_back(tok);
    }

    /// Try to consume a buffered message from `s` at `d`.
    fn pop(&mut self, s: u32, d: u32) -> bool {
        if let Some(q) = self.channels.get_mut(&(s, d)) {
            if let Some(tok) = q.pop_front() {
                if tok == Tok::Rendezvous {
                    self.offer_taken[s as usize] = true;
                }
                return true;
            }
        }
        false
    }

    /// Execute one op of rank `r` if semantics allow. Returns whether the
    /// rank made progress.
    fn try_step(&mut self, r: usize) -> bool {
        let ops = &self.streams[r].ops;
        let Some((_, op)) = ops.get(self.ip[r]) else {
            return false; // terminated
        };
        let rank = r as u32;
        match *op {
            // Local / one-sided ops never block the matching machine.
            MpiOp::Init
            | MpiOp::Finalize
            | MpiOp::Compute { .. }
            | MpiOp::SyntheticSend { .. }
            | MpiOp::ResetCounters
            | MpiOp::LogCounters
            | MpiOp::Aggregates => {
                self.ip[r] += 1;
                true
            }
            MpiOp::Isend { dst, bytes, .. } => {
                // Nonblocking: completes locally regardless of size.
                let _ = bytes;
                self.deliver(rank, dst, Tok::Eager);
                self.ip[r] += 1;
                true
            }
            MpiOp::Send { dst, bytes, .. } => {
                if bytes <= self.eager_max {
                    self.deliver(rank, dst, Tok::Eager);
                    self.ip[r] += 1;
                    true
                } else if self.sent_offer[r] {
                    if self.offer_taken[r] {
                        self.sent_offer[r] = false;
                        self.offer_taken[r] = false;
                        self.ip[r] += 1;
                        true
                    } else {
                        false
                    }
                } else if self.pending.get(&(rank, dst)).is_some_and(|&p| p > 0) {
                    *self.pending.get_mut(&(rank, dst)).unwrap() -= 1;
                    self.outstanding[dst as usize] -= 1;
                    self.ip[r] += 1;
                    true
                } else {
                    self.channels.entry((rank, dst)).or_default().push_back(Tok::Rendezvous);
                    self.sent_offer[r] = true;
                    false
                }
            }
            MpiOp::Irecv { src, .. } => {
                if !self.pop(src, rank) {
                    *self.pending.entry((src, rank)).or_insert(0) += 1;
                    self.outstanding[r] += 1;
                }
                self.ip[r] += 1;
                true
            }
            MpiOp::Recv { src, .. } => {
                if self.pop(src, rank) {
                    self.ip[r] += 1;
                    true
                } else {
                    false
                }
            }
            MpiOp::WaitAll => {
                if self.outstanding[r] == 0 {
                    self.ip[r] += 1;
                    true
                } else {
                    false
                }
            }
            MpiOp::Barrier
            | MpiOp::Allreduce { .. }
            | MpiOp::Reduce { .. }
            | MpiOp::Bcast { .. } => {
                self.parked[r] = true;
                false
            }
        }
    }

    fn run(&mut self) {
        let n = self.streams.len();
        loop {
            let mut progress = false;
            for r in 0..n {
                while self.try_step(r) {
                    progress = true;
                }
            }
            // Collective release: signatures were already checked equal,
            // so arrival of every rank is the only condition.
            if n > 0 && (0..n).all(|r| self.parked[r]) {
                for r in 0..n {
                    self.parked[r] = false;
                    self.ip[r] += 1;
                }
                progress = true;
            }
            if !progress {
                break;
            }
        }
    }

    /// What is rank `r` (stuck at `ip[r]`) blocked on?
    fn blocked_desc(&self, r: usize) -> String {
        let (pc, op) = &self.streams[r].ops[self.ip[r]];
        match op {
            MpiOp::Send { dst, bytes, .. } => {
                format!("blocked in a rendezvous send of {bytes} B to rank {dst} (pc {pc})")
            }
            MpiOp::Recv { src, .. } => {
                format!("waiting for a message from rank {src} (pc {pc})")
            }
            MpiOp::WaitAll => {
                let srcs: Vec<String> = self
                    .pending
                    .iter()
                    .filter(|(&(_, d), &c)| d == r as u32 && c > 0)
                    .map(|(&(s, _), _)| s.to_string())
                    .collect();
                format!("waiting on unmatched receives from rank(s) {} (pc {pc})", srcs.join(", "))
            }
            op => {
                let sig = CollSig::of(op).map(|c| c.desc()).unwrap_or_else(|| "op".into());
                format!("waiting in {sig} (pc {pc})")
            }
        }
    }

    /// Ranks rank `r` is waiting on.
    fn waits_for(&self, r: usize) -> Vec<usize> {
        let n = self.streams.len();
        let (_, op) = &self.streams[r].ops[self.ip[r]];
        match op {
            MpiOp::Send { dst, .. } => vec![*dst as usize],
            MpiOp::Recv { src, .. } => vec![*src as usize],
            MpiOp::WaitAll => self
                .pending
                .iter()
                .filter(|(&(_, d), &c)| d == r as u32 && c > 0)
                .map(|(&(s, _), _)| s as usize)
                .collect(),
            op if CollSig::of(op).is_some() => (0..n).filter(|&q| !self.parked[q]).collect(),
            _ => Vec::new(),
        }
    }

    fn report(&self, report: &mut Report) {
        let n = self.streams.len();
        let stuck: Vec<usize> =
            (0..n).filter(|&r| self.ip[r] < self.streams[r].ops.len()).collect();

        if stuck.is_empty() {
            // Everyone terminated — flag leftover unmatched traffic.
            for (&(s, d), q) in &self.channels {
                if !q.is_empty() {
                    report.push(Diagnostic::warning(
                        "unmatched-send",
                        format!(
                            "{} message(s) from rank {s} to rank {d} are sent but never received",
                            q.len()
                        ),
                    ));
                }
            }
            for (&(s, d), &c) in &self.pending {
                if c > 0 {
                    report.push(
                        Diagnostic::warning(
                            "unmatched-recv",
                            format!(
                                "rank {d} posts {c} receive(s) from rank {s} that are never \
                                 matched by a send"
                            ),
                        )
                        .on_rank(d),
                    );
                }
            }
            return;
        }

        // Wait-for graph over ranks; terminated ranks are sinks.
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &r in &stuck {
            adj[r] = self.waits_for(r);
        }
        if let Some(cycle) = find_cycle(&adj) {
            let (pc0, _) = self.streams[cycle[0]].ops[self.ip[cycle[0]]];
            if cycle.len() == 1 {
                let r = cycle[0];
                report.push(
                    Diagnostic::error(
                        "self-block",
                        format!("rank {r} waits on itself: {}", self.blocked_desc(r)),
                    )
                    .on_rank(r as u32)
                    .at_pc(pc0),
                );
            } else {
                let chain: Vec<String> =
                    cycle.iter().chain(cycle.first()).map(|r| r.to_string()).collect();
                let hops: Vec<String> =
                    cycle.iter().map(|&r| format!("rank {r} {}", self.blocked_desc(r))).collect();
                report.push(
                    Diagnostic::error(
                        "deadlock",
                        format!(
                            "communication deadlock, wait-for cycle {}: {}",
                            chain.join(" -> "),
                            hops.join("; ")
                        ),
                    )
                    .on_rank(cycle[0] as u32)
                    .at_pc(pc0),
                );
            }
            return;
        }

        // No cycle: blocked on operations that can never be matched
        // (e.g. the peer already terminated).
        let r0 = stuck[0];
        let (pc0, _) = self.streams[r0].ops[self.ip[r0]];
        report.push(
            Diagnostic::error(
                "unmatched",
                format!(
                    "{} rank(s) block forever with no matching operation: rank {r0} {}",
                    stuck.len(),
                    self.blocked_desc(r0)
                ),
            )
            .on_rank(r0 as u32)
            .at_pc(pc0),
        );
    }
}

/// First directed cycle in `adj`, as the list of nodes on it.
fn find_cycle(adj: &[Vec<usize>]) -> Option<Vec<usize>> {
    let n = adj.len();
    let mut color = vec![0u8; n]; // 0 = unvisited, 1 = on path, 2 = done
    for start in 0..n {
        if color[start] != 0 {
            continue;
        }
        let mut path = vec![start];
        let mut iters = vec![0usize];
        color[start] = 1;
        while let Some(&node) = path.last() {
            let i = *iters.last().unwrap();
            if i < adj[node].len() {
                *iters.last_mut().unwrap() += 1;
                let next = adj[node][i];
                match color[next] {
                    1 => {
                        let pos = path.iter().position(|&x| x == next).unwrap();
                        return Some(path[pos..].to_vec());
                    }
                    0 => {
                        color[next] = 1;
                        path.push(next);
                        iters.push(0);
                    }
                    _ => {}
                }
            } else {
                color[node] = 2;
                path.pop();
                iters.pop();
            }
        }
    }
    None
}
