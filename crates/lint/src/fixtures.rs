//! Seeded bad inputs: one fixture per defect class the skeleton linter
//! exists to catch. The harness exposes these via `union lint --fixture`
//! so the analysis can be demonstrated (and regression-tested) without
//! hand-writing a broken workload.
//!
//! Two fixtures are real coNCePTuaL programs. The collective-order
//! mismatch is deliberately a *trace*: skeleton collectives are emitted
//! unconditionally under rank-uniform control flow, so a divergent
//! collective sequence cannot be expressed in the DSL or IR — it can only
//! arrive through recorded per-rank history, which is exactly what the
//! trace path replays.

use union_core::{MpiOp, Trace};

use crate::{lint_source, lint_trace, LintOptions, Report};

/// Names accepted by [`lint`], in display order.
pub const NAMES: &[&str] = &["send-send-deadlock", "collective-mismatch", "rank-out-of-range"];

/// Two ranks, each issuing a blocking 1 MiB send to the other before
/// either posts a receive. Above the eager threshold both sends
/// rendezvous, so neither rank ever reaches its receive: the classic
/// send/send deadlock (expected: `error[deadlock]`).
pub const SEND_SEND_DEADLOCK: &str = "all tasks t send a 1048576 byte message to task (1 - t).";

/// An all-tasks reduction rooted at `num_tasks` — one past the last valid
/// rank (expected: `error[out-of-range]`).
pub const RANK_OUT_OF_RANGE: &str = "all tasks reduce a 8 byte message to task num_tasks.";

/// A two-rank trace whose ranks disagree on collective order: rank 0
/// enters the barrier first, rank 1 enters the allreduce first
/// (expected: `error[collective-divergence]`).
pub fn collective_mismatch_trace() -> Trace {
    Trace {
        ops: vec![
            vec![MpiOp::Init, MpiOp::Barrier, MpiOp::Allreduce { bytes: 8 }, MpiOp::Finalize],
            vec![MpiOp::Init, MpiOp::Allreduce { bytes: 8 }, MpiOp::Barrier, MpiOp::Finalize],
        ],
    }
}

/// Run the named fixture through the linter. `None` for unknown names.
pub fn lint(name: &str, opts: &LintOptions) -> Option<Report> {
    match name {
        "send-send-deadlock" => {
            Some(lint_source(SEND_SEND_DEADLOCK, "send-send-deadlock", 2, &[], opts))
        }
        "collective-mismatch" => Some(lint_trace(&collective_mismatch_trace(), opts)),
        "rank-out-of-range" => {
            Some(lint_source(RANK_OUT_OF_RANGE, "rank-out-of-range", 4, &[], opts))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Severity;

    /// Each fixture yields exactly the finding it was seeded with, at
    /// Error severity.
    #[test]
    fn fixtures_produce_their_expected_finding() {
        let opts = LintOptions::default();
        for (name, code) in [
            ("send-send-deadlock", "deadlock"),
            ("collective-mismatch", "collective-divergence"),
            ("rank-out-of-range", "out-of-range"),
        ] {
            let r = lint(name, &opts).unwrap();
            assert_eq!(r.len(), 1, "{name}: {r}");
            let d = r.iter().next().unwrap();
            assert_eq!(d.code, code, "{name}: {r}");
            assert_eq!(d.severity, Severity::Error, "{name}");
        }
    }

    #[test]
    fn unknown_fixture_is_none() {
        assert!(lint("nope", &LintOptions::default()).is_none());
    }
}
