//! # telemetry::live — the live metrics plane
//!
//! Everything in the parent module is *post-hoc*: records buffer until the
//! run exits. This module is the *in-flight* counterpart — the substrate a
//! long-running `union-exp serve` (ROADMAP item 5) will stream to clients:
//!
//! * [`MetricsRegistry`] — named counters, gauges, and log-bucketed
//!   HDR-style [`Histogram`]s, recorded through **thread-sharded handles**
//!   ([`CounterHandle`], [`HistogramHandle`]) so concurrent recording is
//!   wait-free (one relaxed `fetch_add` on a shard-private cache line).
//! * [`Sampler`] — a background thread that takes periodic **delta
//!   snapshots** of the registry into a bounded ring of timestamped
//!   [`SnapshotRecord`]s, and optionally forwards each snapshot to a sink
//!   (the shard gang streams them over its JSONL control socket).
//! * [`Server`] — a tiny exposition endpoint over a std `TcpListener`
//!   (no new deps): `GET /metrics` serves Prometheus text format,
//!   `GET /snapshot` a JSON snapshot.
//! * [`GangAggregator`] — merges per-worker snapshots (counter-sum,
//!   gauge-max, histogram-merge) so one endpoint observes a whole shard
//!   gang.
//!
//! ## Delta semantics
//!
//! Handles only ever *add*; the registry state is cumulative and monotone.
//! A [`SnapshotRecord`] carries both the cumulative `total` and the
//! since-last-snapshot `delta` per counter, so consecutive deltas sum back
//! to the cumulative value bit-exactly (property-tested). Histograms are
//! snapshotted cumulatively with **sparse** nonzero buckets, which makes
//! gang aggregation lossless: merging two snapshots is bucket-wise
//! addition, the same operation as [`Histogram::merge`].

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Histogram: log-bucketed, lossless merge, quantiles
// ---------------------------------------------------------------------------

/// Sub-bucket resolution: 2^5 = 32 sub-buckets per octave, i.e. values in
/// the same bucket differ by at most ~3.1%.
const SUB_BITS: u32 = 5;
const SUB: usize = 1 << SUB_BITS; // 32

/// Total bucket count covering the full `u64` range: values `0..32` get
/// exact unit buckets, every octave above contributes 32 sub-buckets.
pub const NUM_BUCKETS: usize = (64 - SUB_BITS as usize - 1) * SUB + 2 * SUB; // 1984

/// Map a value to its bucket index. Exact below 32; above, the bucket is
/// `[top << s, (top+1) << s)` where `top` keeps the leading `SUB_BITS+1`
/// bits of the value.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let m = 63 - v.leading_zeros(); // m >= SUB_BITS
        let s = m - SUB_BITS;
        let top = (v >> s) as usize; // in [SUB, 2*SUB)
        (s as usize) * SUB + top
    }
}

/// Inclusive `[lo, hi]` value range of bucket `index`.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    if index < SUB {
        (index as u64, index as u64)
    } else {
        // bucket_index gives index = s*SUB + top with top in [SUB, 2*SUB).
        let s = index / SUB - 1;
        let top = (index - s * SUB) as u64; // in [SUB, 2*SUB)
        let lo = top << s;
        let hi = lo + ((1u64 << s) - 1);
        (lo, hi)
    }
}

/// A plain (non-atomic) log-bucketed histogram: the value type snapshots,
/// merges, and property tests operate on. Merge is bucket-wise addition —
/// associative, commutative, and lossless (count and sum are preserved
/// bit-exactly; `wrapping_add` keeps even pathological sums associative).
#[derive(Clone, PartialEq, Eq)]
pub struct Histogram {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    buckets: Vec<u64>,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("min", &self.min)
            .field("max", &self.max)
            .finish()
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram { count: 0, sum: 0, min: u64::MAX, max: 0, buckets: vec![0; NUM_BUCKETS] }
    }

    #[inline]
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[bucket_index(v)] += 1;
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Bucket-wise merge: lossless, associative, commutative.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
    }

    /// The `q`-quantile (`0.0..=1.0`): the upper bound of the bucket
    /// holding the `ceil(q·count)`-th smallest recorded value, clamped to
    /// the observed max. The result therefore lands in the **same log
    /// bucket** as the exact quantile — within ~3.1% relative error.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_bounds(i).1.min(self.max);
            }
        }
        self.max
    }

    /// Nonzero `(bucket_index, count)` pairs, ascending — the wire format.
    pub fn sparse(&self) -> Vec<(u32, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, &c)| (i as u32, c))
            .collect()
    }

    /// Rebuild from the wire format produced by [`Histogram::sparse`].
    pub fn from_sparse(
        count: u64,
        sum: u64,
        min: u64,
        max: u64,
        sparse: &[(u32, u64)],
    ) -> Histogram {
        let mut h = Histogram::new();
        h.count = count;
        h.sum = sum;
        h.min = min;
        h.max = max;
        for &(i, c) in sparse {
            if (i as usize) < NUM_BUCKETS {
                h.buckets[i as usize] += c;
            }
        }
        h
    }
}

// ---------------------------------------------------------------------------
// Sharded live storage
// ---------------------------------------------------------------------------

/// One cache line holding one atomic — shards never false-share.
#[repr(align(64))]
struct PaddedU64(AtomicU64);

impl PaddedU64 {
    fn zero() -> PaddedU64 {
        PaddedU64(AtomicU64::new(0))
    }
}

struct LiveCounter {
    shards: Box<[PaddedU64]>,
}

impl LiveCounter {
    fn new(n: usize) -> LiveCounter {
        LiveCounter { shards: (0..n).map(|_| PaddedU64::zero()).collect() }
    }

    fn total(&self) -> u64 {
        self.shards.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }
}

struct LiveGauge {
    value: AtomicU64,
}

/// Atomic histogram shard: full bucket array + count/sum/min/max. Only the
/// owning handle writes it (relaxed), readers merge all shards.
struct HistShard {
    count: PaddedU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: Box<[AtomicU64]>,
}

impl HistShard {
    fn new() -> HistShard {
        HistShard {
            count: PaddedU64::zero(),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

struct LiveHistogram {
    shards: Box<[HistShard]>,
}

impl LiveHistogram {
    fn new(n: usize) -> LiveHistogram {
        LiveHistogram { shards: (0..n).map(|_| HistShard::new()).collect() }
    }

    fn read(&self) -> Histogram {
        let mut h = Histogram::new();
        for s in &self.shards {
            h.count += s.count.0.load(Ordering::Relaxed);
            h.sum = h.sum.wrapping_add(s.sum.load(Ordering::Relaxed));
            h.min = h.min.min(s.min.load(Ordering::Relaxed));
            h.max = h.max.max(s.max.load(Ordering::Relaxed));
            for (i, b) in s.buckets.iter().enumerate() {
                h.buckets[i] += b.load(Ordering::Relaxed);
            }
        }
        h
    }
}

/// Wait-free counter handle: one relaxed `fetch_add` on a shard-private
/// cache line per call. Clone is cheap; [`CounterHandle::for_shard`] moves
/// a clone onto another shard for per-worker use.
#[derive(Clone)]
pub struct CounterHandle {
    inner: Arc<LiveCounter>,
    shard: usize,
}

impl CounterHandle {
    #[inline]
    pub fn add(&self, n: u64) {
        self.inner.shards[self.shard].0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Sum over all shards.
    pub fn total(&self) -> u64 {
        self.inner.total()
    }

    /// The same counter recorded through shard `shard` (wrapped into the
    /// registry's shard count) — hand one to each worker thread.
    pub fn for_shard(&self, shard: usize) -> CounterHandle {
        CounterHandle { inner: Arc::clone(&self.inner), shard: shard % self.inner.shards.len() }
    }
}

/// Gauge handle: a single atomic. `set` stores the latest value,
/// `observe_max` keeps a running high-water mark — both wait-free.
#[derive(Clone)]
pub struct GaugeHandle {
    inner: Arc<LiveGauge>,
}

impl GaugeHandle {
    #[inline]
    pub fn set(&self, v: u64) {
        self.inner.value.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn observe_max(&self, v: u64) {
        self.inner.value.fetch_max(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.inner.value.load(Ordering::Relaxed)
    }
}

/// Wait-free histogram handle: two `fetch_add`s, a `fetch_min`/`fetch_max`
/// pair, and one bucket `fetch_add`, all relaxed on the handle's shard.
#[derive(Clone)]
pub struct HistogramHandle {
    inner: Arc<LiveHistogram>,
    shard: usize,
}

impl HistogramHandle {
    #[inline]
    pub fn record(&self, v: u64) {
        let s = &self.inner.shards[self.shard];
        s.count.0.fetch_add(1, Ordering::Relaxed);
        s.sum.fetch_add(v, Ordering::Relaxed);
        s.min.fetch_min(v, Ordering::Relaxed);
        s.max.fetch_max(v, Ordering::Relaxed);
        s.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Merged view across every shard.
    pub fn read(&self) -> Histogram {
        self.inner.read()
    }

    pub fn for_shard(&self, shard: usize) -> HistogramHandle {
        HistogramHandle { inner: Arc::clone(&self.inner), shard: shard % self.inner.shards.len() }
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// Shared registry of named live metrics. Registration (name → metric)
/// takes a mutex; recording through the returned handles never does. Names
/// may carry Prometheus-style labels (`app_ops{app="AlexNet"}`) — the
/// exposition renderer splits them out.
pub struct MetricsRegistry {
    shards: usize,
    start: Instant,
    counters: Mutex<BTreeMap<String, Arc<LiveCounter>>>,
    gauges: Mutex<BTreeMap<String, Arc<LiveGauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<LiveHistogram>>>,
}

impl Default for MetricsRegistry {
    fn default() -> MetricsRegistry {
        MetricsRegistry::new()
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("shards", &self.shards)
            .field("counters", &self.counters.lock().len())
            .field("gauges", &self.gauges.lock().len())
            .field("histograms", &self.histograms.lock().len())
            .finish()
    }
}

impl MetricsRegistry {
    /// Shard count sized to the host's parallelism (clamped to 16: shards
    /// cost one cache line per counter and ~16 KiB per histogram).
    pub fn new() -> MetricsRegistry {
        let n = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        MetricsRegistry::with_shards(n.clamp(1, 16))
    }

    pub fn with_shards(shards: usize) -> MetricsRegistry {
        MetricsRegistry {
            shards: shards.max(1),
            start: Instant::now(),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
        }
    }

    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// Milliseconds since the registry was created — the snapshot clock.
    pub fn elapsed_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    /// Get-or-register a counter; the handle records through shard 0.
    pub fn counter(&self, name: &str) -> CounterHandle {
        let mut map = self.counters.lock();
        let inner =
            map.entry(name.to_string()).or_insert_with(|| Arc::new(LiveCounter::new(self.shards)));
        CounterHandle { inner: Arc::clone(inner), shard: 0 }
    }

    pub fn gauge(&self, name: &str) -> GaugeHandle {
        let mut map = self.gauges.lock();
        let inner = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(LiveGauge { value: AtomicU64::new(0) }));
        GaugeHandle { inner: Arc::clone(inner) }
    }

    pub fn histogram(&self, name: &str) -> HistogramHandle {
        let mut map = self.histograms.lock();
        let inner = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(LiveHistogram::new(self.shards)));
        HistogramHandle { inner: Arc::clone(inner), shard: 0 }
    }

    /// Cumulative snapshot of every registered metric (deltas zero — see
    /// [`Sampler`] for delta computation against a previous snapshot).
    pub fn snapshot(&self) -> SnapshotRecord {
        let mut snap = SnapshotRecord::empty(self.elapsed_ms());
        for (name, c) in self.counters.lock().iter() {
            let total = c.total();
            snap.counters.push(CounterPoint { name: name.clone(), total, delta: total });
        }
        for (name, g) in self.gauges.lock().iter() {
            snap.gauges.push((name.clone(), g.value.load(Ordering::Relaxed)));
        }
        for (name, h) in self.histograms.lock().iter() {
            let full = h.read();
            snap.histograms.push(HistogramSnapshot::from_histogram(name, &full));
        }
        snap
    }
}

// ---------------------------------------------------------------------------
// Snapshot records
// ---------------------------------------------------------------------------

/// One counter in a snapshot: cumulative `total` plus the since-last-
/// snapshot `delta`. Consecutive deltas sum back to `total` bit-exactly.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CounterPoint {
    pub name: String,
    pub total: u64,
    pub delta: u64,
}

/// Cumulative histogram state with sparse nonzero buckets — lossless to
/// merge (bucket-wise add) and cheap to ship.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    pub name: String,
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    /// Nonzero `(bucket_index, count)` pairs, ascending.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    pub fn from_histogram(name: &str, h: &Histogram) -> HistogramSnapshot {
        HistogramSnapshot {
            name: name.to_string(),
            count: h.count,
            sum: h.sum,
            min: h.min,
            max: h.max,
            buckets: h.sparse(),
        }
    }

    pub fn to_histogram(&self) -> Histogram {
        Histogram::from_sparse(self.count, self.sum, self.min, self.max, &self.buckets)
    }
}

/// One timestamped observation of the whole registry. `record` is always
/// `"snapshot"` so the JSONL stream stays self-describing next to
/// telemetry records.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SnapshotRecord {
    pub record: String,
    /// Monotone sequence number within the emitting sampler.
    pub seq: u64,
    /// Milliseconds since the registry was created.
    pub wall_ms: u64,
    /// Milliseconds covered by the deltas (0 on the first snapshot).
    pub interval_ms: u64,
    pub counters: Vec<CounterPoint>,
    pub gauges: Vec<(String, u64)>,
    pub histograms: Vec<HistogramSnapshot>,
}

impl SnapshotRecord {
    pub fn empty(wall_ms: u64) -> SnapshotRecord {
        SnapshotRecord {
            record: "snapshot".to_string(),
            seq: 0,
            wall_ms,
            interval_ms: 0,
            counters: Vec::new(),
            gauges: Vec::new(),
            histograms: Vec::new(),
        }
    }

    pub fn counter_total(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|c| c.name == name).map(|c| c.total)
    }

    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.histograms.iter().find(|h| h.name == name).map(|h| h.to_histogram())
    }

    /// Events per second over the snapshot interval, from the
    /// `events_committed` counter delta.
    pub fn events_per_sec(&self) -> f64 {
        if self.interval_ms == 0 {
            return 0.0;
        }
        let delta =
            self.counters.iter().find(|c| c.name == "events_committed").map_or(0, |c| c.delta);
        delta as f64 * 1000.0 / self.interval_ms as f64
    }
}

// ---------------------------------------------------------------------------
// Sampler
// ---------------------------------------------------------------------------

/// Callback invoked with every snapshot the sampler takes (shard workers
/// use it to stream snapshots over the gang control socket).
pub type SnapshotSink = Box<dyn Fn(&SnapshotRecord) + Send + Sync>;

struct SamplerShared {
    registry: Arc<MetricsRegistry>,
    ring: Mutex<VecDeque<SnapshotRecord>>,
    ring_cap: usize,
    prev: Mutex<Option<SnapshotRecord>>,
    seq: AtomicU64,
    stop: AtomicBool,
    sink: Option<SnapshotSink>,
}

impl SamplerShared {
    /// Take one snapshot: cumulative read, delta against the previous
    /// snapshot, push into the bounded ring, forward to the sink.
    fn tick(&self) -> SnapshotRecord {
        let mut snap = self.registry.snapshot();
        snap.seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut prev = self.prev.lock();
        if let Some(p) = prev.as_ref() {
            snap.interval_ms = snap.wall_ms.saturating_sub(p.wall_ms);
            for c in snap.counters.iter_mut() {
                let before = p.counter_total(&c.name).unwrap_or(0);
                c.delta = c.total.saturating_sub(before);
            }
        } else {
            snap.interval_ms = snap.wall_ms;
        }
        *prev = Some(snap.clone());
        drop(prev);
        {
            let mut ring = self.ring.lock();
            if ring.len() == self.ring_cap {
                ring.pop_front();
            }
            ring.push_back(snap.clone());
        }
        if let Some(sink) = &self.sink {
            sink(&snap);
        }
        snap
    }
}

/// Periodic snapshotter: a background thread calling
/// [`SamplerShared::tick`] every `interval` until stopped. Stop takes one
/// final snapshot so the last ring entry always reflects end-of-run
/// totals exactly.
pub struct Sampler {
    shared: Arc<SamplerShared>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Sampler {
    pub fn start(
        registry: Arc<MetricsRegistry>,
        interval: Duration,
        ring_cap: usize,
        sink: Option<SnapshotSink>,
    ) -> Sampler {
        let shared = Arc::new(SamplerShared {
            registry,
            ring: Mutex::new(VecDeque::new()),
            ring_cap: ring_cap.max(1),
            prev: Mutex::new(None),
            seq: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            sink,
        });
        let s2 = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("live-sampler".to_string())
            .spawn(move || {
                // Sleep in short slices so stop() never waits a full
                // interval behind a long sampling period.
                let slice = Duration::from_millis(interval.as_millis().clamp(1, 50) as u64);
                let mut next = Instant::now() + interval;
                while !s2.stop.load(Ordering::Relaxed) {
                    if Instant::now() >= next {
                        s2.tick();
                        next = Instant::now() + interval;
                    }
                    std::thread::sleep(slice);
                }
            })
            .expect("spawn live-sampler thread");
        Sampler { shared, thread: Some(thread) }
    }

    /// Take a snapshot immediately (outside the periodic cadence).
    pub fn sample_now(&self) -> SnapshotRecord {
        self.shared.tick()
    }

    /// Contents of the bounded ring, oldest first.
    pub fn ring(&self) -> Vec<SnapshotRecord> {
        self.shared.ring.lock().iter().cloned().collect()
    }

    /// Stop the thread, take one final snapshot, and return the ring.
    pub fn stop(mut self) -> Vec<SnapshotRecord> {
        self.shared.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        self.shared.tick();
        self.ring()
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Gang aggregation
// ---------------------------------------------------------------------------

/// Merges the latest snapshot from each gang worker into one gang-wide
/// view: counters sum, gauges take the max, histograms merge bucket-wise
/// (lossless — the same operation as [`Histogram::merge`]).
#[derive(Default)]
pub struct GangAggregator {
    workers: Mutex<BTreeMap<u64, SnapshotRecord>>,
}

impl GangAggregator {
    pub fn new() -> GangAggregator {
        GangAggregator::default()
    }

    /// Record `snap` as worker `worker`'s latest state (snapshots carry
    /// cumulative values, so only the newest per worker matters).
    pub fn ingest(&self, worker: u64, snap: SnapshotRecord) {
        let mut map = self.workers.lock();
        match map.get(&worker) {
            Some(old) if old.seq > snap.seq => {} // stale reordering — keep newest
            _ => {
                map.insert(worker, snap);
            }
        }
    }

    pub fn worker_count(&self) -> usize {
        self.workers.lock().len()
    }

    /// The gang-wide snapshot: counter-sum, gauge-max, histogram-merge.
    pub fn aggregate(&self) -> SnapshotRecord {
        let map = self.workers.lock();
        let mut counters: BTreeMap<String, (u64, u64)> = BTreeMap::new();
        let mut gauges: BTreeMap<String, u64> = BTreeMap::new();
        let mut hists: BTreeMap<String, Histogram> = BTreeMap::new();
        let mut out = SnapshotRecord::empty(0);
        for snap in map.values() {
            out.wall_ms = out.wall_ms.max(snap.wall_ms);
            out.interval_ms = out.interval_ms.max(snap.interval_ms);
            out.seq += snap.seq;
            for c in &snap.counters {
                let e = counters.entry(c.name.clone()).or_insert((0, 0));
                e.0 += c.total;
                e.1 += c.delta;
            }
            for (name, v) in &snap.gauges {
                let e = gauges.entry(name.clone()).or_insert(0);
                *e = (*e).max(*v);
            }
            for h in &snap.histograms {
                hists.entry(h.name.clone()).or_default().merge(&h.to_histogram());
            }
        }
        out.counters = counters
            .into_iter()
            .map(|(name, (total, delta))| CounterPoint { name, total, delta })
            .collect();
        out.gauges = gauges.into_iter().collect();
        out.histograms =
            hists.iter().map(|(name, h)| HistogramSnapshot::from_histogram(name, h)).collect();
        out
    }
}

// ---------------------------------------------------------------------------
// Exposition rendering
// ---------------------------------------------------------------------------

/// Split `app_ops{app="AlexNet"}` into (`app_ops`, `{app="AlexNet"}`).
fn split_labels(name: &str) -> (&str, &str) {
    match name.find('{') {
        Some(i) => (&name[..i], &name[i..]),
        None => (name, ""),
    }
}

/// Sanitize a metric base name for Prometheus (`[a-zA-Z_][a-zA-Z0-9_]*`)
/// and prefix the exporter namespace.
fn prom_name(base: &str) -> String {
    let mut s = String::with_capacity(base.len() + 6);
    s.push_str("union_");
    for ch in base.chars() {
        if ch.is_ascii_alphanumeric() || ch == '_' {
            s.push(ch);
        } else {
            s.push('_');
        }
    }
    s
}

/// Splice extra labels into an existing `{...}` suffix (or create one).
fn with_extra_label(labels: &str, extra: &str) -> String {
    if labels.is_empty() {
        format!("{{{extra}}}")
    } else {
        // "{app=\"x\"}" -> "{app=\"x\",le=\"...\"}"
        format!("{},{}}}", &labels[..labels.len() - 1], extra)
    }
}

/// Render a snapshot in the Prometheus text exposition format
/// (text/plain; version=0.0.4): `# TYPE` lines, cumulative `_bucket`
/// series with `le` labels, `_sum` and `_count` per histogram.
pub fn render_prometheus(snap: &SnapshotRecord) -> String {
    let mut out = String::new();
    let mut typed: BTreeMap<String, &str> = BTreeMap::new();
    for c in &snap.counters {
        let (base, labels) = split_labels(&c.name);
        let pname = prom_name(base);
        if typed.insert(pname.clone(), "counter").is_none() {
            out.push_str(&format!("# TYPE {pname} counter\n"));
        }
        out.push_str(&format!("{pname}{labels} {}\n", c.total));
    }
    for (name, v) in &snap.gauges {
        let (base, labels) = split_labels(name);
        let pname = prom_name(base);
        if typed.insert(pname.clone(), "gauge").is_none() {
            out.push_str(&format!("# TYPE {pname} gauge\n"));
        }
        out.push_str(&format!("{pname}{labels} {v}\n"));
    }
    for h in &snap.histograms {
        let (base, labels) = split_labels(&h.name);
        let pname = prom_name(base);
        if typed.insert(pname.clone(), "histogram").is_none() {
            out.push_str(&format!("# TYPE {pname} histogram\n"));
        }
        let mut cum = 0u64;
        for &(i, c) in &h.buckets {
            cum += c;
            let le = bucket_bounds(i as usize).1;
            let lab = with_extra_label(labels, &format!("le=\"{le}\""));
            out.push_str(&format!("{pname}_bucket{lab} {cum}\n"));
        }
        let lab = with_extra_label(labels, "le=\"+Inf\"");
        out.push_str(&format!("{pname}_bucket{lab} {}\n", h.count));
        out.push_str(&format!("{pname}_sum{labels} {}\n", h.sum));
        out.push_str(&format!("{pname}_count{labels} {}\n", h.count));
    }
    out
}

// ---------------------------------------------------------------------------
// Exposition endpoint
// ---------------------------------------------------------------------------

/// Where the endpoint reads from: a single process's registry or a gang
/// aggregator. Both produce a fresh [`SnapshotRecord`] per request so
/// quantiles are live, not stale.
pub enum MetricsSource {
    Registry(Arc<MetricsRegistry>),
    Gang(Arc<GangAggregator>),
}

impl MetricsSource {
    pub fn snapshot(&self) -> SnapshotRecord {
        match self {
            MetricsSource::Registry(r) => r.snapshot(),
            MetricsSource::Gang(g) => g.aggregate(),
        }
    }
}

/// The in-process exposition endpoint: a std `TcpListener` accept loop on
/// its own thread. `GET /metrics` serves Prometheus text format,
/// `GET /snapshot` the JSON [`SnapshotRecord`]. One request per
/// connection (`Connection: close`) — scrape-shaped, not a web server.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and start
    /// serving `source`. The bound address is in [`Server::local_addr`].
    pub fn bind(addr: &str, source: MetricsSource) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let thread =
            std::thread::Builder::new().name("live-endpoint".to_string()).spawn(move || {
                for conn in listener.incoming() {
                    if stop2.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    // Serve inline: requests are tiny and scrapers are
                    // few; a thread pool would be ceremony.
                    let _ = serve_one(stream, &source);
                }
            })?;
        Ok(Server { addr: local, stop, thread: Some(thread) })
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the accept thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the accept loop with a wake-up connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn serve_one(mut stream: TcpStream, source: &MetricsSource) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request = String::new();
    reader.read_line(&mut request)?;
    let path = request.split_whitespace().nth(1).unwrap_or("/");
    // Drain headers so well-behaved clients see a clean close.
    let mut line = String::new();
    while reader.read_line(&mut line)? > 2 {
        line.clear();
    }
    let (status, ctype, body) = match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            render_prometheus(&source.snapshot()),
        ),
        "/snapshot" => (
            "200 OK",
            "application/json",
            serde_json::to_string(&source.snapshot()).unwrap_or_else(|_| "{}".to_string()),
        ),
        _ => ("404 Not Found", "text/plain; charset=utf-8", "not found\n".to_string()),
    };
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// One-shot client for [`Server`]: fetch `path` from `addr` and return the
/// response body (status line checked for 200).
pub fn http_get(addr: &str, path: &str) -> std::io::Result<String> {
    let sock = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "bad address"))?;
    let mut stream = TcpStream::connect_timeout(&sock, Duration::from_secs(2))?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    stream.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw).into_owned();
    let Some((head, body)) = text.split_once("\r\n\r\n") else {
        return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed response"));
    };
    if !head.starts_with("HTTP/1.1 200") && !head.starts_with("HTTP/1.0 200") {
        let status = head.lines().next().unwrap_or("").to_string();
        return Err(std::io::Error::other(format!("endpoint returned {status}")));
    }
    Ok(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_and_bounds_agree() {
        for v in [0u64, 1, 31, 32, 33, 63, 64, 100, 1023, 1024, 1 << 20, u64::MAX / 3, u64::MAX] {
            let i = bucket_index(v);
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && v <= hi, "v={v} idx={i} lo={lo} hi={hi}");
            assert!(i < NUM_BUCKETS);
        }
        // Buckets tile the line: consecutive buckets touch.
        for i in 0..2000usize.min(NUM_BUCKETS - 1) {
            let (_, hi) = bucket_bounds(i);
            let (lo2, _) = bucket_bounds(i + 1);
            assert_eq!(hi.wrapping_add(1), lo2, "gap between buckets {i} and {}", i + 1);
        }
    }

    #[test]
    fn histogram_records_and_queries() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count, 1000);
        assert_eq!(h.sum, 500_500);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 1000);
        let p50 = h.quantile(0.5);
        assert_eq!(bucket_index(p50), bucket_index(500), "p50 {p50} not in 500's bucket");
        assert_eq!(h.quantile(1.0), 1000);
        assert_eq!(h.quantile(0.0), bucket_bounds(bucket_index(1)).1.min(h.max));
    }

    #[test]
    fn sharded_handles_merge_reads() {
        let reg = MetricsRegistry::with_shards(4);
        let c = reg.counter("events_committed");
        for shard in 0..4 {
            c.for_shard(shard).add(10 + shard as u64);
        }
        assert_eq!(c.total(), 10 + 11 + 12 + 13);
        let h = reg.histogram("lat");
        h.for_shard(0).record(5);
        h.for_shard(3).record(500);
        let merged = h.read();
        assert_eq!(merged.count, 2);
        assert_eq!(merged.sum, 505);
        assert_eq!(merged.min, 5);
        assert_eq!(merged.max, 500);
    }

    #[test]
    fn registry_snapshot_round_trips_json() {
        let reg = MetricsRegistry::with_shards(2);
        reg.counter("events_committed").add(42);
        reg.gauge("gvt_ns").set(777);
        reg.histogram("commit_batch").record(9);
        let snap = reg.snapshot();
        let line = serde_json::to_string(&snap).unwrap();
        let back: SnapshotRecord = serde_json::from_str(&line).unwrap();
        assert_eq!(back.counter_total("events_committed"), Some(42));
        assert_eq!(back.gauge("gvt_ns"), Some(777));
        let h = back.histogram("commit_batch").unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 9);
    }

    #[test]
    fn gang_aggregation_rules() {
        let agg = GangAggregator::new();
        let reg_a = MetricsRegistry::with_shards(1);
        reg_a.counter("events_committed").add(10);
        reg_a.gauge("gvt_ns").set(100);
        reg_a.histogram("commit_batch").record(8);
        let reg_b = MetricsRegistry::with_shards(1);
        reg_b.counter("events_committed").add(32);
        reg_b.gauge("gvt_ns").set(70);
        reg_b.histogram("commit_batch").record(64);
        agg.ingest(0, reg_a.snapshot());
        agg.ingest(1, reg_b.snapshot());
        let g = agg.aggregate();
        assert_eq!(g.counter_total("events_committed"), Some(42)); // sum
        assert_eq!(g.gauge("gvt_ns"), Some(100)); // max
        let h = g.histogram("commit_batch").unwrap(); // merge
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 72);
        // A stale (lower-seq) re-ingest must not regress the worker.
        let mut stale = reg_b.snapshot();
        stale.seq = 0;
        stale.counters.clear();
        let mut fresh = reg_b.snapshot();
        fresh.seq = 5;
        agg.ingest(1, fresh);
        agg.ingest(1, stale);
        assert_eq!(agg.aggregate().counter_total("events_committed"), Some(42));
    }

    #[test]
    fn prometheus_rendering_shape() {
        let reg = MetricsRegistry::with_shards(1);
        reg.counter("events_committed").add(7);
        reg.counter("app_ops{app=\"AlexNet\"}").add(3);
        reg.gauge("queue_depth").set(12);
        let h = reg.histogram("commit_batch");
        h.record(1);
        h.record(40);
        let text = render_prometheus(&reg.snapshot());
        assert!(text.contains("# TYPE union_events_committed counter\n"));
        assert!(text.contains("union_events_committed 7\n"));
        assert!(text.contains("union_app_ops{app=\"AlexNet\"} 3\n"));
        assert!(text.contains("# TYPE union_queue_depth gauge\n"));
        assert!(text.contains("# TYPE union_commit_batch histogram\n"));
        assert!(text.contains("union_commit_batch_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("union_commit_batch_sum 41\n"));
        assert!(text.contains("union_commit_batch_count 2\n"));
        // Cumulative le buckets: the le="1" bucket holds 1, +Inf holds 2.
        assert!(text.contains("union_commit_batch_bucket{le=\"1\"} 1\n"));
    }

    #[test]
    fn endpoint_serves_metrics_and_snapshot() {
        let reg = Arc::new(MetricsRegistry::with_shards(1));
        reg.counter("events_committed").add(99);
        let server =
            Server::bind("127.0.0.1:0", MetricsSource::Registry(Arc::clone(&reg))).unwrap();
        let addr = server.local_addr().to_string();
        let metrics = http_get(&addr, "/metrics").unwrap();
        assert!(metrics.contains("union_events_committed 99"));
        let snap_json = http_get(&addr, "/snapshot").unwrap();
        let snap: SnapshotRecord = serde_json::from_str(&snap_json).unwrap();
        assert_eq!(snap.counter_total("events_committed"), Some(99));
        assert!(http_get(&addr, "/nope").is_err());
        server.shutdown();
    }

    #[test]
    fn sampler_ring_is_bounded_and_final_snapshot_is_exact() {
        let reg = Arc::new(MetricsRegistry::with_shards(1));
        let c = reg.counter("events_committed");
        let sampler = Sampler::start(Arc::clone(&reg), Duration::from_millis(5), 4, None);
        for i in 0..10u64 {
            c.add(i);
            std::thread::sleep(Duration::from_millis(3));
        }
        let ring = sampler.stop();
        assert!(ring.len() <= 4);
        let last = ring.last().unwrap();
        assert_eq!(last.counter_total("events_committed"), Some(45));
    }
}
