//! # telemetry
//!
//! Run-telemetry for the simulation stack: cheap atomic counters, timing
//! scopes, and a bounded JSONL sink. The schedulers in `ross`, the network
//! layer in `codes`, and the `harness` CLI all write into one [`Recorder`];
//! the harness dumps it as one JSON object per line (`--telemetry <path>`).
//!
//! Design constraints, in order:
//!
//! 1. **Near-zero cost when disabled.** Everything hangs off an
//!    `Option<Arc<Recorder>>`; with `None` the schedulers skip even the
//!    clock reads.
//! 2. **Cheap when enabled.** Counters are plain `u64`s in thread-local or
//!    LP-local state, flushed into records at run end; the shared atomics
//!    ([`Counter`], [`HighWater`]) are for aggregation points that are
//!    touched once per synchronization round, never per event. Timing uses
//!    a handful of `Instant` reads per round ([`Scope`]).
//! 3. **Bounded.** The sink holds at most `capacity` records; overflow is
//!    counted in [`Recorder::dropped`] rather than growing without limit.
//!
//! Records are self-describing: every one carries a `record` field naming
//! its schema (`manifest`, `scheduler`, `network`, `phase`). The first
//! record of a harness run is always the [`ManifestRecord`], so an
//! experiment is reproducible from its telemetry file alone.

pub mod live;

use parking_lot::Mutex;
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Default bound on the number of buffered records.
pub const DEFAULT_CAPACITY: usize = 65_536;

/// A shared monotonically increasing counter. Use only at aggregation
/// points (once per round / per run), never on per-event hot paths.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A shared high-water mark (running maximum).
#[derive(Debug, Default)]
pub struct HighWater(AtomicU64);

impl HighWater {
    pub fn new() -> HighWater {
        HighWater(AtomicU64::new(0))
    }

    #[inline]
    pub fn observe(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A timing scope: adds the wall time between construction and drop to a
/// local nanosecond accumulator. One `Instant` read at each end.
///
/// ```
/// let mut busy_ns = 0u64;
/// {
///     let _scope = telemetry::Scope::new(&mut busy_ns);
///     // ... work ...
/// }
/// assert!(busy_ns < 1_000_000_000);
/// ```
pub struct Scope<'a> {
    acc: &'a mut u64,
    t0: Instant,
}

impl<'a> Scope<'a> {
    #[inline]
    pub fn new(acc: &'a mut u64) -> Scope<'a> {
        Scope { acc, t0: Instant::now() }
    }
}

impl Drop for Scope<'_> {
    #[inline]
    fn drop(&mut self) {
        *self.acc += self.t0.elapsed().as_nanos() as u64;
    }
}

/// The bounded JSONL sink. Records are serialized eagerly (one compact
/// JSON object per line) so emitting never borrows the caller's state past
/// the call, and the buffer is a flat `Vec<String>` behind one mutex —
/// contended only at run boundaries, not during event processing.
pub struct Recorder {
    start: Instant,
    capacity: usize,
    lines: Mutex<Vec<String>>,
    dropped: AtomicU64,
    ser_errors: AtomicU64,
}

impl Default for Recorder {
    fn default() -> Recorder {
        Recorder::new()
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("records", &self.lines.lock().len())
            .field("capacity", &self.capacity)
            .field("dropped", &self.dropped.load(Ordering::Relaxed))
            .finish()
    }
}

impl Recorder {
    pub fn new() -> Recorder {
        Recorder::with_capacity(DEFAULT_CAPACITY)
    }

    pub fn with_capacity(capacity: usize) -> Recorder {
        Recorder {
            start: Instant::now(),
            capacity,
            lines: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
            ser_errors: AtomicU64::new(0),
        }
    }

    /// Serialize `rec` and append it as one JSONL line. Over capacity
    /// the record is counted in [`Recorder::dropped`]; a record that
    /// fails to serialize yields `Err` and buffers nothing. Use this on
    /// paths that can report the error (a bad record must not kill a
    /// long sharded run); fire-and-forget callers use
    /// [`Recorder::emit`].
    pub fn try_emit<T: Serialize>(&self, rec: &T) -> std::io::Result<()> {
        let line = serde_json::to_string(rec).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("telemetry record serialization: {e}"),
            )
        })?;
        self.emit_raw(line);
        Ok(())
    }

    /// Serialize `rec` and append it as one JSONL line. Over capacity the
    /// record is counted in [`Recorder::dropped`] instead. Serialization
    /// failures never panic: they are counted in
    /// [`Recorder::serialization_errors`] and surfaced as a trailer line
    /// by [`Recorder::write_jsonl`].
    pub fn emit<T: Serialize>(&self, rec: &T) {
        if self.try_emit(rec).is_err() {
            self.ser_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Append one pre-serialized JSONL line (no trailing newline). Used
    /// by the shard launcher to merge telemetry streamed back from
    /// worker processes without re-parsing every record.
    pub fn emit_raw(&self, line: String) {
        let mut lines = self.lines.lock();
        if lines.len() < self.capacity {
            lines.push(line);
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of buffered records.
    pub fn len(&self) -> usize {
        self.lines.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.lines.lock().is_empty()
    }

    /// Records rejected because the sink was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Records lost because they failed to serialize (see
    /// [`Recorder::emit`]).
    pub fn serialization_errors(&self) -> u64 {
        self.ser_errors.load(Ordering::Relaxed)
    }

    /// Nanoseconds since the recorder was created (phase timing base).
    pub fn elapsed_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// Snapshot of the buffered lines, in emission order.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().clone()
    }

    /// The whole buffer as one JSONL document (trailing newline included
    /// when non-empty).
    pub fn to_jsonl(&self) -> String {
        let lines = self.lines.lock();
        let mut out = String::new();
        for l in lines.iter() {
            out.push_str(l);
            out.push('\n');
        }
        out
    }

    /// Write the buffer to `path` as JSONL, creating missing parent
    /// directories. When records were dropped a final
    /// `{"type":"drops","count":N}` line makes the truncation visible in
    /// the file itself, not just in-process.
    pub fn write_jsonl(&self, path: &std::path::Path) -> std::io::Result<()> {
        let mut w = StreamWriter::create(path)?;
        w.write_str(&self.to_jsonl())?;
        let dropped = self.dropped();
        if dropped > 0 {
            w.write_str(&format!("{{\"type\":\"drops\",\"count\":{dropped}}}\n"))?;
        }
        let ser_errors = self.serialization_errors();
        if ser_errors > 0 {
            w.write_str(&format!(
                "{{\"type\":\"serialization_errors\",\"count\":{ser_errors}}}\n"
            ))?;
        }
        w.finish()
    }
}

/// A buffered file sink that creates missing parent directories — the
/// write path for telemetry JSONL and Chrome-trace exports, which can
/// run to hundreds of megabytes and should not be assembled via
/// `fs::write` of throwaway intermediate copies.
pub struct StreamWriter {
    inner: std::io::BufWriter<std::fs::File>,
}

impl StreamWriter {
    /// Open `path` for writing (truncating), creating parent directories.
    pub fn create(path: &std::path::Path) -> std::io::Result<StreamWriter> {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir)?;
        }
        Ok(StreamWriter { inner: std::io::BufWriter::new(std::fs::File::create(path)?) })
    }

    pub fn write_str(&mut self, s: &str) -> std::io::Result<()> {
        use std::io::Write;
        self.inner.write_all(s.as_bytes())
    }

    /// Flush and close.
    pub fn finish(mut self) -> std::io::Result<()> {
        use std::io::Write;
        self.inner.flush()
    }
}

/// First record of every harness run: everything needed to reproduce the
/// experiment.
#[derive(Clone, Debug, Serialize)]
pub struct ManifestRecord {
    pub record: String,
    /// Harness subcommand (`sweep`, `fig8`, ...).
    pub cmd: String,
    /// Full command-line arguments as given.
    pub args: Vec<String>,
    pub seed: u64,
    /// Scheduler spec string (`seq`, `cons:T`, `opt:T`, `par:T:L`).
    pub sched: String,
    /// `git describe --always --dirty` of the working tree, or `unknown`.
    pub git: String,
    /// Logical cores on the host that produced this file — per-thread
    /// busy/blocked numbers are meaningless without it.
    pub host_cores: u64,
    /// Free-form configuration summary (profile, networks, workloads...).
    pub config: serde::Value,
}

impl ManifestRecord {
    pub fn new(cmd: &str, args: Vec<String>, seed: u64, sched: &str, git: &str) -> ManifestRecord {
        ManifestRecord {
            record: "manifest".to_string(),
            cmd: cmd.to_string(),
            args,
            seed,
            sched: sched.to_string(),
            git: git.to_string(),
            host_cores: std::thread::available_parallelism().map(|n| n.get() as u64).unwrap_or(1),
            config: serde::Value::Null,
        }
    }
}

/// Per-thread detail inside a [`SchedulerRecord`].
#[derive(Clone, Debug, Default, Serialize)]
pub struct ThreadRecord {
    pub thread: usize,
    /// Events this thread executed (speculative executions included).
    pub events: u64,
    /// Wall time spent executing events.
    pub busy_ns: u64,
    /// Wall time spent waiting at barriers / for quiescence.
    pub blocked_ns: u64,
    /// Wall time not accounted busy or blocked (drains, bookkeeping).
    pub idle_ns: u64,
    /// Largest single mailbox drain observed by this thread.
    pub mailbox_high_water: u64,
}

/// One scheduler run: counters every scheduler reports, plus the
/// optimistic- and parallel-only ones (zero where not applicable).
#[derive(Clone, Debug, Serialize)]
pub struct SchedulerRecord {
    pub record: String,
    /// `sequential`, `conservative`, `conservative-parallel`, `optimistic`.
    pub scheduler: String,
    pub threads: usize,
    /// Pending-event queue implementation: `heap` or `ladder`.
    pub queue: String,
    /// Total push + pop operations across every queue the run used
    /// (summed over per-thread queues for the parallel schedulers).
    pub queue_ops: u64,
    /// Queue length high-water mark (max over per-thread queues).
    pub queue_max_len: u64,
    /// Envelope-pool population high-water mark (max over per-thread
    /// queues): the slab never grows past this many live events.
    pub pool_high_water: u64,
    /// Envelope-pool slot reuses (summed over per-thread queues): pushes
    /// served from the free list instead of fresh allocation.
    pub pool_recycled: u64,
    pub committed: u64,
    pub rolled_back: u64,
    pub rollbacks: u64,
    pub anti_messages: u64,
    /// Anti-messages that met their target before it executed.
    pub annihilated: u64,
    pub remote_events: u64,
    /// Events delivered across OS-process shards through a transport
    /// (sharded runs only).
    pub cross_shard_events: u64,
    /// Synchronization rounds (conservative windows or GVT epochs).
    pub rounds: u64,
    /// LP blocks migrated between workers by work stealing
    /// (conservative-async scheduler only).
    pub steals: u64,
    /// Total nanoseconds workers spent stalled waiting for peer horizons
    /// to advance (conservative-async scheduler only).
    pub horizon_stall_ns: u64,
    /// Max observed gap between the most- and least-advanced published
    /// safe-horizons (conservative-async scheduler only).
    pub horizon_lag_max: u64,
    /// Max over epochs of (local minimum − GVT): how far ahead the most
    /// optimistic thread ran (optimistic scheduler only).
    pub max_gvt_lag_ns: u64,
    pub end_time_ns: u64,
    pub wall_ns: u64,
    pub per_thread: Vec<ThreadRecord>,
}

impl SchedulerRecord {
    pub fn new(scheduler: &str, threads: usize) -> SchedulerRecord {
        SchedulerRecord {
            record: "scheduler".to_string(),
            scheduler: scheduler.to_string(),
            threads,
            queue: String::new(),
            queue_ops: 0,
            queue_max_len: 0,
            pool_high_water: 0,
            pool_recycled: 0,
            committed: 0,
            rolled_back: 0,
            rollbacks: 0,
            anti_messages: 0,
            annihilated: 0,
            remote_events: 0,
            cross_shard_events: 0,
            rounds: 0,
            steals: 0,
            horizon_stall_ns: 0,
            horizon_lag_max: 0,
            max_gvt_lag_ns: 0,
            end_time_ns: 0,
            wall_ns: 0,
            per_thread: Vec::new(),
        }
    }
}

/// Per-application progress inside a [`NetworkRecord`].
#[derive(Clone, Debug, Default, Serialize)]
pub struct AppProgressRecord {
    pub app: String,
    pub ranks: u64,
    pub ranks_finished: u64,
    pub bytes_sent: u64,
    pub ops_executed: u64,
    /// Simulated finish time of the slowest rank, if every rank finished.
    pub makespan_ns: Option<u64>,
}

/// Network-layer counters harvested from LP state after a `codes` run.
#[derive(Clone, Debug, Default, Serialize)]
pub struct NetworkRecord {
    pub record: String,
    pub packets_injected: u64,
    pub packets_delivered: u64,
    pub bytes_injected: u64,
    /// Packets that queued waiting for VC credits at routers.
    pub credit_stalls: u64,
    pub apps: Vec<AppProgressRecord>,
}

impl NetworkRecord {
    pub fn new() -> NetworkRecord {
        NetworkRecord { record: "network".to_string(), ..Default::default() }
    }
}

/// Where a causal trace was exported and how complete it is — emitted
/// into the telemetry stream when a run records both.
#[derive(Clone, Debug, Serialize)]
pub struct TraceExportRecord {
    pub record: String,
    pub path: String,
    /// Executed-event records stored across all runs.
    pub events: u64,
    /// Event/span records lost to the tracer's capacity caps.
    pub events_dropped: u64,
    pub spans_dropped: u64,
}

impl TraceExportRecord {
    pub fn new(path: &str, events: u64, events_dropped: u64, spans_dropped: u64) -> Self {
        TraceExportRecord {
            record: "trace".to_string(),
            path: path.to_string(),
            events,
            events_dropped,
            spans_dropped,
        }
    }
}

/// Wall time of one harness phase (one sweep run, report generation...).
#[derive(Clone, Debug, Serialize)]
pub struct PhaseRecord {
    pub record: String,
    pub phase: String,
    pub wall_ns: u64,
}

impl PhaseRecord {
    pub fn new(phase: &str, wall_ns: u64) -> PhaseRecord {
        PhaseRecord { record: "phase".to_string(), phase: phase.to_string(), wall_ns }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_high_water() {
        let c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        let h = HighWater::new();
        h.observe(3);
        h.observe(7);
        h.observe(2);
        assert_eq!(h.get(), 7);
    }

    #[test]
    fn scope_accumulates_time() {
        let mut acc = 0u64;
        {
            let _s = Scope::new(&mut acc);
            std::hint::black_box(());
        }
        {
            let _s = Scope::new(&mut acc);
            std::hint::black_box(());
        }
        // Monotonic clocks: two scopes cost a nonzero, finite amount.
        assert!(acc < 10_000_000_000);
    }

    #[test]
    fn recorder_emits_jsonl_with_discriminators() {
        let r = Recorder::new();
        r.emit(&ManifestRecord::new("sweep", vec!["--iters".into(), "1".into()], 42, "seq", "g0"));
        let mut sched = SchedulerRecord::new("sequential", 1);
        sched.committed = 10;
        r.emit(&sched);
        r.emit(&PhaseRecord::new("sweep", 1234));
        assert_eq!(r.len(), 3);
        let doc = r.to_jsonl();
        let mut kinds = Vec::new();
        for line in doc.lines() {
            let v: serde::Value = serde_json::from_str(line).expect("valid JSON line");
            kinds.push(v.get("record").and_then(|r| r.as_str()).unwrap().to_string());
        }
        assert_eq!(kinds, ["manifest", "scheduler", "phase"]);
    }

    #[test]
    fn recorder_is_bounded() {
        let r = Recorder::with_capacity(2);
        for i in 0..5u64 {
            r.emit(&PhaseRecord::new("p", i));
        }
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 3);
    }

    #[test]
    fn write_jsonl_creates_parents_and_records_drops() {
        let r = Recorder::with_capacity(1);
        r.emit(&PhaseRecord::new("kept", 1));
        r.emit(&PhaseRecord::new("lost", 2));
        let dir = std::env::temp_dir().join(format!("telemetry-jsonl-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/out.jsonl");
        r.write_jsonl(&path).expect("parent directories are created");
        let doc = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = doc.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"kept\""));
        assert_eq!(lines[1], "{\"type\":\"drops\",\"count\":1}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_round_trips_config() {
        let mut m = ManifestRecord::new("fig8", vec![], 7, "par:4:100", "abc123");
        m.config = serde::Value::Object(vec![(
            "profile".to_string(),
            serde::Value::Str("quick".to_string()),
        )]);
        let line = serde_json::to_string(&m).unwrap();
        let v: serde::Value = serde_json::from_str(&line).unwrap();
        assert_eq!(v.get("seed").and_then(|s| s.as_u64()), Some(7));
        assert_eq!(
            v.get("config").and_then(|c| c.get("profile")).and_then(|p| p.as_str()),
            Some("quick")
        );
    }
}
