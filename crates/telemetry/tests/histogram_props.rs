//! Property tests for the live metrics plane's log-bucketed histogram
//! and the sampler's delta semantics.
//!
//! The gang aggregation story rests on three algebraic facts about
//! [`Histogram::merge`] — associativity, commutativity, and bit-exact
//! count/sum preservation — plus the quantile error bound (the served
//! quantile lands in the same log bucket as the exact order statistic).
//! Each is checked over random value streams here rather than assumed.

use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;
use telemetry::live::{bucket_index, Histogram, MetricsRegistry, Sampler};

/// Deterministic splitmix64 so a case's value stream derives from one
/// seed.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A stream mixing magnitudes: raw 64-bit values alone almost never
/// exercise the low buckets, so shift each draw by a random amount.
fn stream(seed: u64, len: usize) -> Vec<u64> {
    let mut rng = Mix(seed | 1);
    (0..len)
        .map(|_| {
            let v = rng.next();
            v >> (rng.next() % 64)
        })
        .collect()
}

fn hist_of(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// merge is commutative and associative: any grouping/order of
    /// per-worker histograms yields the identical aggregate.
    #[test]
    fn merge_commutes_and_associates(seed in 0u64..u64::MAX, n in 1usize..200) {
        let (a, b, c) = (
            hist_of(&stream(seed, n)),
            hist_of(&stream(seed ^ 0xdead_beef, n / 2 + 1)),
            hist_of(&stream(seed ^ 0x5a5a_5a5a, n / 3 + 1)),
        );
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);

        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);
    }

    /// count survives merge exactly and sum survives with wrapping
    /// addition (the same arithmetic recording them one-by-one uses).
    #[test]
    fn count_and_sum_survive_merge_bit_exactly(seed in 0u64..u64::MAX, n in 1usize..300) {
        let values = stream(seed, n);
        let (left, right) = values.split_at(n / 2);
        let mut merged = hist_of(left);
        merged.merge(&hist_of(right));
        let whole = hist_of(&values);
        prop_assert_eq!(merged.count, whole.count);
        prop_assert_eq!(merged.sum, whole.sum);
        prop_assert_eq!(merged.min, whole.min);
        prop_assert_eq!(merged.max, whole.max);
        prop_assert_eq!(&merged, &whole);
    }

    /// Served quantiles sit in the same log bucket as the exact order
    /// statistic of the recorded stream, for a spread of probes.
    #[test]
    fn quantiles_within_one_log_bucket_of_exact(seed in 0u64..u64::MAX, n in 1usize..400) {
        let mut values = stream(seed, n);
        let h = hist_of(&values);
        values.sort_unstable();
        for &q in &[0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let exact = values[rank - 1];
            let served = h.quantile(q);
            prop_assert!(
                bucket_index(served) == bucket_index(exact),
                "q={} exact={} served={}",
                q,
                exact,
                served
            );
            // And never above the observed maximum.
            prop_assert!(served <= *values.last().unwrap());
        }
    }

    /// Round trip through the sparse wire form is lossless.
    #[test]
    fn sparse_round_trip_is_lossless(seed in 0u64..u64::MAX, n in 0usize..200) {
        let h = hist_of(&stream(seed, n));
        let back = Histogram::from_sparse(h.count, h.sum, h.min, h.max, &h.sparse());
        prop_assert_eq!(&h, &back);
    }
}

/// Consecutive snapshot deltas sum back to the cumulative counter: the
/// sampler's delta stream is lossless no matter where the ticks land
/// relative to the recording.
#[test]
fn snapshot_deltas_sum_to_cumulative_counters() {
    let reg = Arc::new(MetricsRegistry::with_shards(2));
    let c = reg.counter("events_committed");
    // Long interval: ticks are driven manually via sample_now so the
    // test is deterministic, and stop() adds the final exact tick.
    let sampler = Sampler::start(Arc::clone(&reg), Duration::from_secs(3600), 64, None);
    let mut rng = Mix(7);
    let mut total = 0u64;
    for _ in 0..10 {
        let burst = rng.next() % 10_000;
        c.add(burst);
        total += burst;
        sampler.sample_now();
    }
    c.add(17);
    total += 17;
    let ring = sampler.stop();
    assert!(ring.len() >= 11, "ring too short: {}", ring.len());
    let delta_sum: u64 = ring
        .iter()
        .map(|s| s.counters.iter().find(|p| p.name == "events_committed").map_or(0, |p| p.delta))
        .sum();
    let last = ring.last().unwrap();
    assert_eq!(last.counter_total("events_committed"), Some(total));
    assert_eq!(delta_sum, total, "deltas must sum back to the cumulative total");
    // Sequence numbers are strictly increasing.
    for w in ring.windows(2) {
        assert!(w[1].seq > w[0].seq);
    }
}
