//! Model-checked oracle harness for the parallel schedulers.
//!
//! Built (and meaningful) only under `RUSTFLAGS="--cfg union_check"`:
//! every synchronization primitive in `ross::parallel`, `ross::mailbox`
//! and the sharded scheduler's loopback transport then routes through
//! `ross-check`'s controlled scheduler, and `ross_check::Builder::check`
//! drives whole simulation runs through every DPOR-distinct thread
//! interleaving.
//!
//! On **every explored schedule** the harness asserts:
//!
//! * the parallel/sharded fingerprint is bit-identical to the
//!   sequential reference (determinism oracle);
//! * no processed event ever precedes the agreed GVT (asserted inside
//!   the schedulers, `cfg(union_check)` only);
//! * no mailbox event is dropped or double-delivered (push/drain
//!   counters asserted in `Mailbox::drop`);
//! * no data race and no deadlock (the checker fails the run and prints
//!   a replayable schedule otherwise — see DESIGN.md §13).
//!
//! Models are deliberately tiny (2 LPs, ~8 events) so the DPOR-pruned
//! exploration stays exhaustive over trace-equivalence classes.
#![cfg(union_check)]

use ross::shard::{loopback_mesh, shard_owner_map, ShardRun};
use ross::{Ctx, Envelope, Lp, OptimisticConfig, QueueKind, SimDuration, SimTime, Simulation};

/// Deterministic mini-PHOLD: every event forwards to the next LP on the
/// ring after a fixed 60 ns delay, folding a checksum. No RNG — state
/// space stays small and the sequential fingerprint is exact.
#[derive(Clone)]
struct Ring {
    n_lps: u32,
    hits: u64,
    checksum: u64,
    horizon: SimTime,
}

impl Lp for Ring {
    type Event = u64;
    fn handle(&mut self, ev: &Envelope<u64>, ctx: &mut Ctx<'_, u64>) {
        self.hits += 1;
        self.checksum = self
            .checksum
            .wrapping_mul(6364136223846793005)
            .wrapping_add(ev.payload ^ ev.recv_time.as_ns());
        if ctx.now() < self.horizon {
            let dst = (ev.dst + 1) % self.n_lps;
            ctx.send(dst, SimDuration::from_ns(60), self.checksum);
        }
    }
}

// Four events per ring chain (t=i, i+60, i+120, i+180), several
// processing rounds: big enough to cross partitions/shards every round,
// small enough that DPOR-pruned exploration finishes in seconds on one
// core.
const HORIZON_NS: u64 = 150;

fn mk_sim(n_lps: u32, qk: QueueKind) -> Simulation<Ring> {
    let lps = (0..n_lps)
        .map(|_| Ring { n_lps, hits: 0, checksum: 0, horizon: SimTime::from_ns(HORIZON_NS) })
        .collect();
    let mut sim = Simulation::with_queue(lps, SimDuration::from_ns(1), qk);
    for i in 0..n_lps {
        sim.schedule(i, SimTime::from_ns(i as u64), i as u64);
    }
    sim
}

fn fingerprint(sim: &Simulation<Ring>) -> Vec<(u64, u64)> {
    sim.lps().iter().map(|l| (l.hits, l.checksum)).collect()
}

fn sequential_reference(qk: QueueKind) -> Vec<(u64, u64)> {
    let mut seq = mk_sim(2, qk);
    let stats = seq.run_sequential(SimTime::MAX);
    assert!(stats.committed >= 4, "reference model generated no work: {stats:?}");
    fingerprint(&seq)
}

/// 2-thread conservative-parallel run: 1 ring LP per worker, so every
/// send crosses partitions through a lock-free mailbox.
fn check_parallel(qk: QueueKind) {
    let expect = sequential_reference(qk);
    let schedules = ross_check::Builder::new().max_paths(100_000).check(|| {
        let mut sim = mk_sim(2, qk);
        let stats = sim.run_conservative_parallel(2, SimDuration::from_ns(60), SimTime::MAX);
        assert!(stats.committed >= 4);
        assert_eq!(
            fingerprint(&sim),
            expect,
            "parallel fingerprint diverged from sequential on this schedule"
        );
    });
    // DPOR must actually have explored alternatives (the workers' final
    // stats merges alone conflict), not bailed after one path.
    assert!(schedules > 1, "expected >1 explored schedules, got {schedules}");
}

/// 2-shard loopback run: each shard leader + 1 worker, cross-shard
/// events and the Mattern token fence over shimmed mpsc channels.
fn check_sharded(qk: QueueKind) {
    let expect = sequential_reference(qk);
    let schedules = ross_check::Builder::new().max_paths(100_000).check(|| {
        let mut mesh = loopback_mesh::<u64>(2);
        let t1 = mesh.pop().unwrap();
        let t0 = mesh.pop().unwrap();
        let run = move |mut tr: ross::shard::LoopbackTransport<u64>| {
            let mut sim = mk_sim(2, qk);
            let stats = sim
                .run_sharded(&mut tr, ShardRun::new(1, SimDuration::from_ns(60)), SimTime::MAX)
                .expect("sharded run failed");
            (fingerprint(&sim), stats.committed)
        };
        let h0 = ross_check::thread::spawn(move || run(t0));
        let h1 = {
            let run = move |mut tr: ross::shard::LoopbackTransport<u64>| {
                let mut sim = mk_sim(2, qk);
                let stats = sim
                    .run_sharded(&mut tr, ShardRun::new(1, SimDuration::from_ns(60)), SimTime::MAX)
                    .expect("sharded run failed");
                (fingerprint(&sim), stats.committed)
            };
            ross_check::thread::spawn(move || run(t1))
        };
        let (f0, c0) = h0.join().unwrap();
        let (f1, c1) = h1.join().unwrap();
        assert!(c0 + c1 >= 4);
        // Merge owned slices: each shard's fingerprint is only
        // meaningful for the LPs it owns.
        let owner = shard_owner_map(None, 2, 2);
        let merged: Vec<(u64, u64)> =
            (0..2).map(|g| if owner[g] == 0 { f0[g] } else { f1[g] }).collect();
        assert_eq!(merged, expect, "sharded fingerprint diverged from sequential on this schedule");
    });
    assert!(schedules >= 1, "sharded model explored no schedules");
}

/// 2-thread optimistic (Time Warp) run: rollbacks, anti-messages, the
/// in-flight/busy-thread quiescence protocol and the GVT epochs all route
/// through the shimmed seam now that the scheduler is on `crate::sync`.
/// Full DPOR over the epoch loop's SeqCst atomics is intractable, so this
/// uses CHESS-style preemption bounding (≤ 1 preemption), the same mode CI
/// uses for larger models — `max_paths` stays a loud bound, never a silent
/// truncation. Tiny batches force several GVT epochs (and give stragglers
/// a chance to roll the other thread back) within the bounded exploration.
fn check_optimistic(qk: QueueKind) {
    let expect = sequential_reference(qk);
    let schedules = ross_check::Builder::new().fringe(1).max_paths(200_000).check(|| {
        let mut sim = mk_sim(2, qk);
        let stats = sim.run_optimistic(
            2,
            OptimisticConfig { batch: 4, snapshot_interval: 2 },
            SimTime::MAX,
        );
        assert!(stats.committed >= 4);
        assert_eq!(
            fingerprint(&sim),
            expect,
            "optimistic fingerprint diverged from sequential on this schedule"
        );
    });
    assert!(schedules >= 1, "optimistic model explored no schedules");
}

/// 2-thread barrier-free asynchronous run: safe-horizon publishes, the
/// Mattern S/R counters, the park/wake handshake and (when load allows)
/// the steal handoff all route through the shimmed seam. The checked
/// build additionally asserts horizon monotonicity at every publish and
/// exactly-once delivery in `Mailbox::drop`. Like the optimistic model,
/// full DPOR over the per-iteration SeqCst horizon traffic is
/// intractable, so this uses CHESS-style preemption bounding
/// (≤ 1 preemption) with `max_paths` as a loud bound.
fn check_async(qk: QueueKind) {
    let expect = sequential_reference(qk);
    let schedules = ross_check::Builder::new().fringe(1).max_paths(200_000).check(|| {
        let mut sim = mk_sim(2, qk);
        let stats = sim.run_conservative_async(2, SimDuration::from_ns(60), SimTime::MAX);
        assert!(stats.committed >= 4);
        assert_eq!(
            fingerprint(&sim),
            expect,
            "async fingerprint diverged from sequential on this schedule"
        );
    });
    assert!(schedules >= 1, "async model explored no schedules");
}

#[test]
fn async_two_workers_heap_matches_sequential_on_every_schedule() {
    check_async(QueueKind::Heap);
}

#[test]
fn async_two_workers_ladder_matches_sequential_on_every_schedule() {
    check_async(QueueKind::Ladder);
}

/// Mini-ring that keeps all traffic on LPs {0, 1} while LPs {2, 3} stay
/// silent: with partition blocks `[0, 0, 1, 1]` worker 1 owns only dead
/// LPs, so it must go through the thief path (request, horizon cap,
/// migration install) to ever contribute. Exercises the steal handshake
/// under the controlled scheduler.
#[derive(Clone)]
struct LopsidedRing {
    hits: u64,
    checksum: u64,
    horizon: SimTime,
}

impl Lp for LopsidedRing {
    type Event = u64;
    fn handle(&mut self, ev: &Envelope<u64>, ctx: &mut Ctx<'_, u64>) {
        self.hits += 1;
        self.checksum = self
            .checksum
            .wrapping_mul(6364136223846793005)
            .wrapping_add(ev.payload ^ ev.recv_time.as_ns());
        if ctx.now() < self.horizon {
            ctx.send((ev.dst + 1) % 2, SimDuration::from_ns(60), self.checksum);
        }
    }
}

/// Steal-path oracle: on every explored schedule the lopsided model must
/// stay bit-identical to sequential, and across the exploration the
/// handoff must actually fire (8 seeded chains keep the victim's queue
/// at the steal threshold, so an idle thief always finds it).
#[test]
fn async_work_stealing_matches_sequential_on_every_schedule() {
    let mk = || {
        let lps = (0..4)
            .map(|_| LopsidedRing { hits: 0, checksum: 0, horizon: SimTime::from_ns(HORIZON_NS) })
            .collect();
        let mut sim = Simulation::new(lps, SimDuration::from_ns(1));
        sim.set_partition(ross::Partition::from_blocks(vec![0, 0, 1, 1]));
        for i in 0..8u64 {
            sim.schedule((i % 2) as u32, SimTime::from_ns(i), i);
        }
        sim
    };
    let mut seq = mk();
    seq.run_sequential(SimTime::MAX);
    let expect: Vec<(u64, u64)> = seq.lps().iter().map(|l| (l.hits, l.checksum)).collect();
    // Plain std atomic on purpose: tallies across schedules without
    // perturbing the controlled exploration.
    let total_steals = std::sync::atomic::AtomicU64::new(0);
    let schedules = ross_check::Builder::new().fringe(1).max_paths(200_000).check(|| {
        let mut sim = mk();
        let stats = sim.run_conservative_async(2, SimDuration::from_ns(60), SimTime::MAX);
        total_steals.fetch_add(stats.steals, std::sync::atomic::Ordering::Relaxed);
        let got: Vec<(u64, u64)> = sim.lps().iter().map(|l| (l.hits, l.checksum)).collect();
        assert_eq!(got, expect, "steal-path fingerprint diverged on this schedule");
    });
    assert!(schedules >= 1, "steal model explored no schedules");
    assert!(
        total_steals.load(std::sync::atomic::Ordering::Relaxed) > 0,
        "no explored schedule ever exercised the steal handoff"
    );
}

#[test]
fn parallel_two_workers_heap_matches_sequential_on_every_schedule() {
    check_parallel(QueueKind::Heap);
}

#[test]
fn parallel_two_workers_ladder_matches_sequential_on_every_schedule() {
    check_parallel(QueueKind::Ladder);
}

#[test]
fn optimistic_two_threads_heap_matches_sequential_on_every_schedule() {
    check_optimistic(QueueKind::Heap);
}

#[test]
fn optimistic_two_threads_ladder_matches_sequential_on_every_schedule() {
    check_optimistic(QueueKind::Ladder);
}

#[test]
fn sharded_two_shards_loopback_heap_matches_sequential_on_every_schedule() {
    check_sharded(QueueKind::Heap);
}

#[test]
fn sharded_two_shards_loopback_ladder_matches_sequential_on_every_schedule() {
    check_sharded(QueueKind::Ladder);
}

/// Fringe smoke: the same parallel model under CHESS-style preemption
/// bounding (≤ 1 preemption) — the mode CI uses for larger models.
#[test]
fn fringe_bounded_preemption_smoke() {
    let expect = sequential_reference(QueueKind::Ladder);
    let schedules = ross_check::Builder::new().fringe(1).max_paths(20_000).check(|| {
        let mut sim = mk_sim(2, QueueKind::Ladder);
        sim.run_conservative_parallel(2, SimDuration::from_ns(60), SimTime::MAX);
        assert_eq!(fingerprint(&sim), expect);
    });
    assert!(schedules >= 1);
}
