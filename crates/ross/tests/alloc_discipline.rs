//! Steady-state allocation discipline for the sequential hot path.
//!
//! The event-pooling rework (DESIGN.md §14) promises that once the pool,
//! rung shells and bucket spares have warmed up, processing an event
//! allocates nothing: envelopes are recycled through `EventPool`, ladder
//! buckets through the spare pool, and the scheduler's scratch buffers
//! keep their capacity across events. This test pins that promise with a
//! counting `#[global_allocator]`: warm up a constant-population PHOLD,
//! then process a couple hundred thousand more events and assert the
//! allocator was hit at most a handful of times *per run call* — i.e.
//! zero times per event.
//!
//! Deliberately a single `#[test]` in its own binary: the allocator
//! counter is process-global, and a concurrent sibling test would
//! pollute it.

use ross::{Ctx, Envelope, Lp, QueueKind, SimDuration, SimTime, Simulation};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Counts `alloc`/`realloc`/`alloc_zeroed` hits while `TRACKING` is set.
/// Frees are not counted: releasing warmup-era memory is fine, acquiring
/// new memory on the hot path is what this test forbids.
struct CountingAlloc;

static TRACKING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if TRACKING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if TRACKING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc_zeroed(layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if TRACKING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// xorshift64* — inline so the model needs no `rand` (whose thread-local
/// state could itself allocate under the counter).
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

/// Constant-population PHOLD: every handled event sends exactly one
/// replacement to a uniform LP after a 1..=500 ns delay.
struct Phold {
    n_lps: u32,
    rng: XorShift,
    hits: u64,
}

impl Lp for Phold {
    type Event = u64;
    fn handle(&mut self, ev: &Envelope<u64>, ctx: &mut Ctx<'_, u64>) {
        self.hits += 1;
        let r = self.rng.next();
        let dst = (r % self.n_lps as u64) as u32;
        let delay = 1 + (r >> 32) % 500;
        ctx.send(dst, SimDuration::from_ns(delay), ev.payload ^ r);
    }
}

#[test]
fn sequential_steady_state_allocates_nothing_per_event() {
    const N_LPS: u32 = 256;
    let lps = (0..N_LPS)
        .map(|i| Phold {
            n_lps: N_LPS,
            rng: XorShift(0x9E3779B97F4A7C15 ^ (i as u64) << 17),
            hits: 0,
        })
        .collect();
    let mut sim = Simulation::with_queue(lps, SimDuration::from_ns(1), QueueKind::Ladder);
    for i in 0..N_LPS {
        sim.schedule(i, SimTime::from_ns(i as u64), i as u64);
    }

    // Warm up: pool slots, ladder rung shells, bucket spares and scratch
    // buffers all reach their steady-state capacity here.
    let warm = sim.run_sequential(SimTime::from_ns(2_000_000));
    assert!(warm.committed > 50_000, "warmup ran dry: {warm:?}");

    // Measured window: ~200k more events under the counting allocator.
    ALLOCS.store(0, Ordering::SeqCst);
    TRACKING.store(true, Ordering::SeqCst);
    let run = sim.run_sequential(SimTime::from_ns(2_200_000));
    TRACKING.store(false, Ordering::SeqCst);
    let allocs = ALLOCS.load(Ordering::SeqCst);

    assert!(run.committed > 100_000, "measured window ran dry: {run:?}");
    // Per-run setup cost (the scheduler's scratch `out` buffer) is
    // allowed; anything scaling with the event count is not. 8 is a
    // loud, generous bound — the expected count is 1.
    assert!(
        allocs <= 8,
        "sequential hot path allocated {} times over {} events — \
         event pooling or bucket recycling has regressed",
        allocs,
        run.committed
    );
}
